from setuptools import setup

# Offline environments here lack the `wheel` package, so `pip install -e .`
# (PEP 660) cannot build. `python setup.py develop` and the .pth fallback in
# the README both work; configuration lives in pyproject.toml.
setup()
