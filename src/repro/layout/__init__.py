"""SIMD-friendly compact data layout (paper Figure 3).

A *compact batch* stores the same element of P consecutive matrices
contiguously, where P fills one SIMD register (paper: "puts the same
location of consecutive P matrices in a contiguous area in memory, with
zero padding for the cases where there are not enough P matrices").
Complex matrices are stored as split re/im planes per element so complex
arithmetic decomposes into real vector FMAs.
"""

from .compact import CompactBatch
from .padding import pad_to_multiple, padded_count

__all__ = ["CompactBatch", "pad_to_multiple", "padded_count"]
