"""The compact (SIMD-friendly, interleaved) batch container.

Matrices are stored **column-major within each matrix** (the BLAS/MKL
compact convention), interleaved across P lanes.  Storage order of one
group of P matrices of shape ``rows x cols``::

    real:     [elem(0,0) lanes 0..P-1][elem(1,0) lanes 0..P-1]...   col-major
    complex:  [elem(0,0).re lanes][elem(0,0).im lanes][elem(1,0).re]...

so a vector load at an element's byte offset fetches that element for P
matrices at once; for complex data an LDP fetches the re and im vectors
together.  Column-major order is what makes the paper's *no-packing*
fast paths real: when M does not exceed the kernel height, a GEMM-NN A
operand and a TRSM-LNLN B operand are already laid out exactly as the
compute kernel consumes them.

Groups are stored back to back; a batch that is not a multiple of P is
zero-padded (the padding lanes compute garbage that is never unpacked,
exactly as the paper describes).

All conversions are pure reshapes/transposes + one copy, per the
scientific-Python guidance: no Python-level loops over matrices.
"""

from __future__ import annotations

import numpy as np

from ..errors import LayoutError
from ..types import BlasDType
from .padding import padded_count

__all__ = ["CompactBatch"]


class CompactBatch:
    """A batch of fixed-size matrices in SIMD-friendly layout.

    Parameters
    ----------
    buffer:
        Flat 1-D real array holding the interleaved data (owned).
    rows, cols:
        Shape of each logical matrix.
    batch:
        Number of *valid* matrices (lanes beyond this are padding).
    dtype:
        BLAS data type; complex batches store split re/im planes.
    lanes:
        The paper's P — matrices interleaved per vector register.
    """

    def __init__(self, buffer: np.ndarray, rows: int, cols: int, batch: int,
                 dtype: BlasDType, lanes: int) -> None:
        dtype = BlasDType.from_any(dtype)
        ncomp = 2 if dtype.is_complex else 1
        groups = padded_count(batch, lanes) // lanes
        expected = groups * rows * cols * ncomp * lanes
        if buffer.ndim != 1 or buffer.shape[0] != expected:
            raise LayoutError(
                f"buffer has {buffer.shape} elements, expected ({expected},) for "
                f"{batch} matrices of {rows}x{cols} {dtype.value} at P={lanes}")
        if buffer.dtype != dtype.real_dtype:
            raise LayoutError(
                f"buffer dtype {buffer.dtype} != plane dtype {dtype.real_dtype}")
        self.buffer = buffer
        self.rows = int(rows)
        self.cols = int(cols)
        self.batch = int(batch)
        self.dtype = dtype
        self.lanes = int(lanes)

    # -- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls, rows: int, cols: int, batch: int,
              dtype: "BlasDType | str", lanes: int) -> "CompactBatch":
        dtype = BlasDType.from_any(dtype)
        ncomp = 2 if dtype.is_complex else 1
        groups = padded_count(batch, lanes) // lanes
        buf = np.zeros(groups * rows * cols * ncomp * lanes,
                       dtype=dtype.real_dtype)
        return cls(buf, rows, cols, batch, dtype, lanes)

    @classmethod
    def from_matrices(cls, matrices: np.ndarray, lanes: int,
                      dtype: "BlasDType | str | None" = None) -> "CompactBatch":
        """Interleave a standard ``(batch, rows, cols)`` array.

        The batch axis is zero-padded up to a multiple of ``lanes``.
        """
        if matrices.ndim != 3:
            raise LayoutError(
                f"expected (batch, rows, cols) array, got {matrices.ndim}-D")
        dt = BlasDType.from_any(dtype if dtype is not None else matrices.dtype)
        matrices = np.ascontiguousarray(matrices, dtype=dt.np_dtype)
        batch, rows, cols = matrices.shape
        groups = padded_count(batch, lanes) // lanes
        padded = np.zeros((groups * lanes, rows, cols), dtype=dt.np_dtype)
        padded[:batch] = matrices
        grouped = padded.reshape(groups, lanes, rows, cols)
        if dt.is_complex:
            planes = np.stack([grouped.real, grouped.imag], axis=2)
            # (G, P, comp, r, c) -> column-major (G, c, r, comp, P)
            interleaved = planes.transpose(0, 4, 3, 2, 1)
        else:
            # (G, P, r, c) -> column-major (G, c, r, P)
            interleaved = grouped.transpose(0, 3, 2, 1)
        buf = np.ascontiguousarray(interleaved,
                                   dtype=dt.real_dtype).reshape(-1)
        return cls(buf, rows, cols, batch, dt, lanes)

    # -- geometry --------------------------------------------------------

    @property
    def groups(self) -> int:
        return padded_count(self.batch, self.lanes) // self.lanes

    @property
    def ncomp(self) -> int:
        return 2 if self.dtype.is_complex else 1

    @property
    def elem_stride(self) -> int:
        """Real elements between consecutive matrix elements down a column."""
        return self.ncomp * self.lanes

    @property
    def elem_stride_bytes(self) -> int:
        return self.elem_stride * self.dtype.real_itemsize

    @property
    def col_stride_bytes(self) -> int:
        """Bytes between the starts of consecutive matrix columns."""
        return self.rows * self.elem_stride_bytes

    @property
    def group_elems(self) -> int:
        """Real elements per group."""
        return self.rows * self.cols * self.elem_stride

    @property
    def group_stride_bytes(self) -> int:
        return self.group_elems * self.dtype.real_itemsize

    @property
    def nbytes(self) -> int:
        return int(self.buffer.nbytes)

    def element_offset(self, i: int, j: int, comp: int = 0) -> int:
        """Byte offset of element (i, j) plane ``comp`` within a group."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise LayoutError(f"element ({i},{j}) outside {self.rows}x{self.cols}")
        if not 0 <= comp < self.ncomp:
            raise LayoutError(f"component {comp} invalid for {self.dtype.value}")
        idx = (j * self.rows + i) * self.elem_stride + comp * self.lanes
        return idx * self.dtype.real_itemsize

    def group_base_offsets(self) -> np.ndarray:
        """Byte offset of each group's start — pointer fan-out for the executor."""
        return (np.arange(self.groups, dtype=np.int64)
                * self.group_stride_bytes)

    # -- views / conversion ----------------------------------------------

    def as_grid(self) -> np.ndarray:
        """View shaped ``(groups, rows, cols, ncomp, lanes)`` (no copy)."""
        colmajor = self.buffer.reshape(self.groups, self.cols, self.rows,
                                       self.ncomp, self.lanes)
        return colmajor.transpose(0, 2, 1, 3, 4)

    def to_matrices(self) -> np.ndarray:
        """De-interleave back to a standard ``(batch, rows, cols)`` array."""
        grid = self.as_grid()
        if self.dtype.is_complex:
            # (G, r, c, comp, P) -> complex (G, P, r, c)
            planes = grid.transpose(0, 4, 3, 1, 2)
            full = planes[:, :, 0] + 1j * planes[:, :, 1]
            full = full.astype(self.dtype.np_dtype)
        else:
            full = grid[:, :, :, 0, :].transpose(0, 3, 1, 2)
        out = full.reshape(self.groups * self.lanes, self.rows, self.cols)
        return np.ascontiguousarray(out[: self.batch])

    def matrix(self, index: int) -> np.ndarray:
        """One logical matrix (copy), mostly for tests and examples."""
        if not 0 <= index < self.batch:
            raise LayoutError(f"matrix index {index} out of range {self.batch}")
        g, lane = divmod(index, self.lanes)
        grid = self.as_grid()
        if self.dtype.is_complex:
            return (grid[g, :, :, 0, lane]
                    + 1j * grid[g, :, :, 1, lane]).astype(self.dtype.np_dtype)
        return grid[g, :, :, 0, lane].copy()

    def extract_block(self, i0: int, i1: int, j0: int,
                      j1: int) -> "CompactBatch":
        """Copy the sub-block ``[i0:i1, j0:j1]`` of every matrix into a
        new compact batch (used by blocked factorizations)."""
        if not (0 <= i0 < i1 <= self.rows and 0 <= j0 < j1 <= self.cols):
            raise LayoutError(
                f"block [{i0}:{i1}, {j0}:{j1}] outside "
                f"{self.rows}x{self.cols}")
        sub = self.as_grid()[:, i0:i1, j0:j1, :, :]
        rows, cols = i1 - i0, j1 - j0
        # to column-major flat: (G, r, c, comp, P) -> (G, c, r, comp, P)
        buf = np.ascontiguousarray(
            sub.transpose(0, 2, 1, 3, 4)).reshape(-1).copy()
        return CompactBatch(buf, rows, cols, self.batch, self.dtype,
                            self.lanes)

    def write_block(self, i0: int, j0: int, block: "CompactBatch") -> None:
        """Write a compact sub-batch back at offset ``(i0, j0)``."""
        i1, j1 = i0 + block.rows, j0 + block.cols
        if not (0 <= i0 < i1 <= self.rows and 0 <= j0 < j1 <= self.cols):
            raise LayoutError(
                f"block [{i0}:{i1}, {j0}:{j1}] outside "
                f"{self.rows}x{self.cols}")
        if block.dtype != self.dtype or block.lanes != self.lanes \
                or block.groups != self.groups:
            raise LayoutError("block batch properties do not match target")
        self.as_grid()[:, i0:i1, j0:j1, :, :] = block.as_grid()

    def copy(self) -> "CompactBatch":
        return CompactBatch(self.buffer.copy(), self.rows, self.cols,
                            self.batch, self.dtype, self.lanes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompactBatch({self.batch}x[{self.rows}x{self.cols}] "
                f"{self.dtype.value}, P={self.lanes}, groups={self.groups})")
