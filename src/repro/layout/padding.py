"""Padding helpers shared by the layout and packing subsystems."""

from __future__ import annotations

import numpy as np

__all__ = ["padded_count", "pad_to_multiple"]


def padded_count(count: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= ``count``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if multiple < 1:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    return -(-count // multiple) * multiple


def pad_to_multiple(array: np.ndarray, axis: int, multiple: int,
                    value: float = 0.0) -> np.ndarray:
    """Zero-pad ``array`` along ``axis`` up to a multiple of ``multiple``.

    Returns the input unchanged (no copy) when already aligned.
    """
    size = array.shape[axis]
    target = padded_count(size, multiple)
    if target == size:
        return array
    pad_width = [(0, 0)] * array.ndim
    pad_width[axis] = (0, target - size)
    return np.pad(array, pad_width, constant_values=value)
