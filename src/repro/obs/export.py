"""Registry-snapshot exporters: Prometheus text, JSON, and delta views.

One :meth:`Registry.snapshot` dict is the wire format; everything here
is a pure function of it, so the same registry feeds CI artifacts
(JSON), the watchdog (deltas/rates), and a live scraper (Prometheus)
without three instrumentation paths.  Renders are deterministic —
names sorted, no timestamps — so two scrapes of an idle registry are
bit-identical (the property the serve smoke test pins).

The exporters deliberately do **not** write into the registry they
render: a scrape must be read-only, or "idle" would be unobservable.
Render cost self-accounts into a module-local stats dict instead
(:func:`render_stats`).

Prometheus text-exposition form (https://prometheus.io/docs/instrumenting/exposition_formats/):

* counters -> ``# TYPE repro_<name> counter`` + one sample line;
* gauges (written via :func:`repro.obs.gauge`) -> ``# TYPE ... gauge``;
* histograms -> cumulative ``_bucket{le="..."}`` series (le-sorted,
  ending in ``le="+Inf"``) plus ``_sum`` and ``_count``.

Metric names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar
(dots and dashes become underscores) and prefixed ``repro_``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Protocol, runtime_checkable

__all__ = ["Exporter", "PrometheusExporter", "JsonExporter",
           "snapshot_delta", "DeltaExporter", "EXPORTERS", "render",
           "render_stats"]

_PREFIX = "repro_"

#: module-local render accounting (NOT registry counters — see module
#: docstring); read via render_stats()
_stats_lock = threading.Lock()
_stats = {"renders": 0, "seconds": 0.0}


def render_stats() -> dict:
    """Cumulative exporter self-accounting: renders run and seconds
    spent, across every exporter in this process."""
    with _stats_lock:
        return dict(_stats)


def _account(t0: float) -> None:
    dt = time.perf_counter() - t0
    with _stats_lock:
        _stats["renders"] += 1
        _stats["seconds"] += dt


@runtime_checkable
class Exporter(Protocol):
    """Renders one registry snapshot dict as text."""

    #: short identifier (``"prometheus"``, ``"json"``) used by the
    #: serve endpoint and the EXPORTERS registry
    format: str
    #: the Content-Type the serve endpoint sends for this render
    content_type: str

    def render(self, snapshot: dict) -> str:
        """The snapshot as this exporter's text format."""
        ...


def _metric_name(name: str) -> str:
    """Sanitize a dotted obs name into the Prometheus grammar."""
    out = []
    for i, ch in enumerate(name):
        if ch.isascii() and (ch.isalpha() or ch == "_" or ch == ":"
                             or (ch.isdigit() and i > 0)):
            out.append(ch)
        else:
            out.append("_")
    return _PREFIX + "".join(out)


def _fmt(value: "int | float") -> str:
    """Deterministic sample-value formatting: integral floats print as
    ints, everything else via repr (shortest round-trip form)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class PrometheusExporter:
    """The text-exposition format a Prometheus scraper ingests."""

    format = "prometheus"
    content_type = "text/plain; version=0.0.4; charset=utf-8"

    def render(self, snapshot: dict) -> str:
        t0 = time.perf_counter()
        gauges = set(snapshot.get("gauge_names", ()))
        lines: list[str] = []
        for name in sorted(snapshot.get("counters", {})):
            value = snapshot["counters"][name]
            mname = _metric_name(name)
            kind = "gauge" if name in gauges else "counter"
            lines.append(f"# TYPE {mname} {kind}")
            lines.append(f"{mname} {_fmt(value)}")
        for name in sorted(snapshot.get("histograms", {})):
            s = snapshot["histograms"][name]
            mname = _metric_name(name)
            lines.append(f"# TYPE {mname} histogram")
            for le, cum in s.get("buckets", ()):
                lines.append(f'{mname}_bucket{{le="{_fmt(le)}"}} {cum}')
            lines.append(f'{mname}_bucket{{le="+Inf"}} {s["count"]}')
            lines.append(f"{mname}_sum {_fmt(s['total'])}")
            lines.append(f"{mname}_count {s['count']}")
        # the registry's own health as gauges, so a scraper sees span
        # pressure and event volume without a second endpoint
        for name, value in (
                ("obs_spans_recorded", snapshot.get("spans", 0)),
                ("obs_spans_dropped", snapshot.get("dropped_spans", 0)),
                ("obs_events_logged",
                 snapshot.get("events", {}).get("logged", 0)),
                ("obs_events_dropped",
                 snapshot.get("events", {}).get("dropped", 0))):
            lines.append(f"# TYPE {_PREFIX}{name} gauge")
            lines.append(f"{_PREFIX}{name} {_fmt(value)}")
        text = "\n".join(lines) + "\n"
        _account(t0)
        return text


class JsonExporter:
    """The snapshot as stable (sorted-keys) JSON — the CI artifact."""

    format = "json"
    content_type = "application/json"

    def render(self, snapshot: dict) -> str:
        t0 = time.perf_counter()
        text = json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
        _account(t0)
        return text


def snapshot_delta(before: dict, after: dict,
                   seconds: "float | None" = None) -> dict:
    """Diff two snapshots of the same registry into deltas and rates.

    Counters (monotonic) get ``delta`` clamped at zero — a registry
    reset between snapshots must not read as negative traffic — plus
    ``rate`` per second when ``seconds`` is given.  Gauges get a signed
    ``delta`` (levels legitimately fall) and no rate.  Histograms diff
    ``count`` and ``total``.  Names present only in ``after`` diff
    against zero; names only in ``before`` are dropped (reset).

    A zero or negative ``seconds`` (two scrapes inside one clock tick,
    or a stepped clock) suppresses rates entirely rather than dividing
    through to infinity or negative traffic.
    """
    if seconds is not None and seconds <= 0.0:
        seconds = None
    gauges = set(after.get("gauge_names", ()))
    out: dict = {"seconds": seconds, "counters": {}, "gauges": {},
                 "histograms": {}}
    before_c = before.get("counters", {})
    for name, value in sorted(after.get("counters", {}).items()):
        prev = before_c.get(name, 0)
        if name in gauges:
            out["gauges"][name] = {"value": value, "delta": value - prev}
            continue
        delta = max(0, value - prev)
        entry = {"delta": delta}
        if seconds:
            entry["rate"] = delta / seconds
        out["counters"][name] = entry
    before_h = before.get("histograms", {})
    for name, s in sorted(after.get("histograms", {}).items()):
        prev = before_h.get(name, {})
        dcount = max(0, s["count"] - prev.get("count", 0))
        dtotal = max(0.0, s["total"] - prev.get("total", 0.0))
        entry = {"delta_count": dcount, "delta_total": dtotal,
                 "mean": (dtotal / dcount) if dcount else 0.0}
        if seconds:
            entry["rate"] = dcount / seconds
        out["histograms"][name] = entry
    return out


class DeltaExporter:
    """Stateful delta view: render what changed since the last render.

    The first render diffs against an empty snapshot (everything is
    new); each subsequent render diffs against the previous one and
    derives rates from the wall time between the two — the watchdog's
    "what moved in this window" view.
    """

    format = "delta"
    content_type = "application/json"

    def __init__(self) -> None:
        self._prev: dict = {}
        self._prev_t: "float | None" = None
        self._lock = threading.Lock()

    def render(self, snapshot: dict) -> str:
        t0 = time.perf_counter()
        now = time.monotonic()
        with self._lock:
            seconds = (now - self._prev_t
                       if self._prev_t is not None else None)
            delta = snapshot_delta(self._prev, snapshot, seconds)
            self._prev, self._prev_t = snapshot, now
        text = json.dumps(delta, sort_keys=True, indent=2) + "\n"
        _account(t0)
        return text


EXPORTERS: "dict[str, type]" = {
    PrometheusExporter.format: PrometheusExporter,
    JsonExporter.format: JsonExporter,
    DeltaExporter.format: DeltaExporter,
}


def render(snapshot: dict, format: str = "prometheus") -> str:
    """One-shot render of a snapshot in the named format."""
    cls = EXPORTERS.get(format)
    if cls is None:
        raise ValueError(f"unknown exporter format {format!r}; "
                         f"available: {', '.join(sorted(EXPORTERS))}")
    return cls().render(snapshot)
