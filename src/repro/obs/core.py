"""Observability core: counters, histograms, and the process registry.

The run-time stage makes input-aware decisions (batch counter group
math, pack-vs-nopack selection, CMAR tile decomposition, autotune
sweeps) that are invisible from the outside; this module is the ledger
they report into.  Design constraints:

* **zero overhead when off** — instrumentation sites call the
  module-level helpers (:func:`count`, :func:`observe`, :func:`tick`),
  which check one module global and return immediately when disabled
  (the default).  No registry lookup, no allocation, no lock.
* **thread-safe when on** — a multicore sweep or a threaded benchmark
  may increment the same counter from several workers; every mutation
  takes the owning object's lock.
* **zero dependencies** — stdlib only.

Usage::

    from repro import obs
    with obs.scoped() as reg:           # fresh registry, enabled
        iatf.time_gemm(problem)
        print(reg.report())
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager

__all__ = ["Counter", "Histogram", "Registry", "get_registry",
           "set_registry", "enabled", "enable", "disable", "scoped",
           "count", "observe", "gauge", "tick", "tock"]

_enabled: bool = False
"""Process-wide instrumentation switch (off by default)."""


class Counter:
    """A named monotonically growing value (int or float increments).

    A counter written through :meth:`set` becomes a **gauge**: a
    point-in-time level where last write wins (cache sizes, queue
    depths).  The ``kind`` distinction matters to exporters — a
    Prometheus scraper computes rates over counters but reads gauges
    verbatim.
    """

    __slots__ = ("name", "value", "kind", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.kind = "counter"
        self._lock = threading.Lock()

    def inc(self, n: "int | float" = 1) -> None:
        with self._lock:
            self.value += n

    def set(self, value: "int | float") -> None:
        """Gauge-style absolute write, under the same lock as ``inc``
        (a racy bare ``value =`` store could interleave with a
        concurrent read-modify-write increment and lose it)."""
        with self._lock:
            self.value = value
            self.kind = "gauge"

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Summary statistics of observed values.

    Keeps exact count/total/min/max plus a bounded sample of recent
    observations for percentile estimates (the sample bound keeps
    long-running processes from growing without limit), and exact
    fixed-boundary bucket counts so exporters can render the
    Prometheus cumulative-bucket form without approximating from the
    sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sample",
                 "_bucket_counts", "_lock")

    SAMPLE = 1024

    #: upper bounds (``le``) of the export buckets.  Decade-ish spacing
    #: covering sub-millisecond ticks through multi-second sweeps; the
    #: implicit final bucket is +Inf (== count).
    BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
               1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
               1000.0, 2500.0)

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: deque = deque(maxlen=self.SAMPLE)
        self._bucket_counts = [0] * len(self.BUCKETS)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._sample.append(value)
            idx = bisect_left(self.BUCKETS, value)
            if idx < len(self._bucket_counts):
                self._bucket_counts[idx] += 1

    def merge(self, shipped: dict) -> None:
        """Fold a shipped histogram capture (the cross-process merge
        payload built by :func:`repro.obs.procagg.child_capture`:
        count/total/min/max, raw per-bucket counts, recent sample) into
        this histogram.  Exact for count/total/min/max and buckets; the
        percentile sample becomes a blend of both processes' recent
        observations, which is all the bounded sample ever promised.
        """
        n = int(shipped.get("count", 0))
        if n <= 0:
            return
        with self._lock:
            self.count += n
            self.total += float(shipped.get("total", 0.0))
            lo, hi = shipped.get("min"), shipped.get("max")
            if lo is not None and lo < self.min:
                self.min = lo
            if hi is not None and hi > self.max:
                self.max = hi
            for i, c in enumerate(shipped.get("bucket_counts", ())):
                if i < len(self._bucket_counts):
                    self._bucket_counts[i] += c
            self._sample.extend(shipped.get("sample", ()))

    def buckets(self) -> "list[tuple[float, int]]":
        """Cumulative ``(le, count)`` pairs, le-sorted, excluding the
        implicit +Inf bucket (whose cumulative count is ``count``)."""
        with self._lock:
            counts = list(self._bucket_counts)
        out, running = [], 0
        for le, n in zip(self.BUCKETS, counts):
            running += n
            out.append((le, running))
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (0..100) from the recent sample."""
        with self._lock:
            data = sorted(self._sample)
        if not data:
            return 0.0
        idx = min(len(data) - 1, int(round(q / 100.0 * (len(data) - 1))))
        return data[idx]

    def summary(self) -> dict:
        return {"count": self.count, "total": self.total,
                "mean": self.mean,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99)}

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class Registry:
    """Named counters, histograms, and recorded spans for one scope."""

    MAX_SPANS = 100_000
    """Recorded-span cap; beyond it spans are dropped (and counted)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events = None          # EventLog, created on first use
        self._flight = None          # FlightRecorder, via attach()
        self.spans: list = []
        self.dropped_spans = 0

    # -- accessors (create on first use) --------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name))
        return h

    def record_span(self, record) -> None:
        # the flight recorder's ring is bounded while self.spans is
        # capped: the ring keeps the most RECENT spans even after the
        # registry stops accepting new ones (exactly the post-mortem's
        # question), so it is fed before the cap check
        flight = self._flight
        if flight is not None:
            flight.note_span(record)
        with self._lock:
            if len(self.spans) >= self.MAX_SPANS:
                self.dropped_spans += 1
                return
            self.spans.append(record)

    @property
    def events(self):
        """The registry's structured :class:`~repro.obs.events.EventLog`
        (created on first access; lazy so :mod:`core` stays importable
        without its siblings)."""
        log = self._events
        if log is None:
            from .events import EventLog
            with self._lock:
                if self._events is None:
                    self._events = EventLog()
                log = self._events
        return log

    # -- inspection ------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """Counter name -> value, sorted by name."""
        with self._lock:
            items = sorted(self._counters.items())
        return {name: c.value for name, c in items}

    def snapshot(self) -> dict:
        """One JSON-able dict of everything recorded so far.

        ``gauge_names`` marks which entries of ``counters`` are gauges
        (absolute levels) rather than monotonic counters, and each
        histogram summary carries its cumulative ``buckets`` — both are
        what the exporters (:mod:`repro.obs.export`) render from, so a
        snapshot is the complete wire format.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            histograms = sorted(self._histograms.items())
            n_spans = len(self.spans)
            events = self._events
        hist_out = {}
        for name, h in histograms:
            s = h.summary()
            s["buckets"] = [[le, n] for le, n in h.buckets()]
            hist_out[name] = s
        return {
            "counters": {name: c.value for name, c in counters},
            "gauge_names": [name for name, c in counters
                            if c.kind == "gauge"],
            "histograms": hist_out,
            "spans": n_spans,
            "dropped_spans": self.dropped_spans,
            "events": (events.stats() if events is not None
                       else {"logged": 0, "dropped": 0}),
        }

    def report(self) -> str:
        """Human-readable snapshot (the CLI's default output)."""
        snap = self.snapshot()
        lines = ["observability registry"]
        lines.append(f"  spans recorded: {snap['spans']}"
                     + (f" (+{snap['dropped_spans']} dropped)"
                        if snap["dropped_spans"] else ""))
        if snap["counters"]:
            lines.append("  counters:")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"    {name:<{width}}  {shown}")
        if snap["histograms"]:
            lines.append("  histograms:")
            for name, s in snap["histograms"].items():
                lines.append(
                    f"    {name}: n={s['count']} mean={s['mean']:.3g} "
                    f"min={s['min']:.3g} max={s['max']:.3g} "
                    f"p50={s['p50']:.3g} p95={s['p95']:.3g} "
                    f"p99={s['p99']:.3g}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self.spans.clear()
            self.dropped_spans = 0
            self._events = None


_registry = Registry()


def get_registry() -> Registry:
    """The current process-wide registry."""
    return _registry


def set_registry(registry: Registry) -> Registry:
    """Swap the process-wide registry; returns the previous one."""
    global _registry
    old, _registry = _registry, registry
    return old


def enabled() -> bool:
    """Is instrumentation currently recording?"""
    return _enabled


def enable() -> None:
    """Turn instrumentation on (process-wide)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (the default state)."""
    global _enabled
    _enabled = False


@contextmanager
def scoped(fresh: bool = True):
    """Enable instrumentation within a block, yielding the registry.

    With ``fresh`` (the default) a new empty :class:`Registry` is
    swapped in so the block's measurements are isolated; the previous
    registry and enabled-state are restored on exit.
    """
    global _enabled
    old_enabled = _enabled
    old_registry = set_registry(Registry()) if fresh else _registry
    _enabled = True
    try:
        yield _registry
    finally:
        _enabled = old_enabled
        if fresh:
            set_registry(old_registry)


# -- hot-path helpers (true no-ops when disabled) ------------------------

def count(name: str, n: "int | float" = 1) -> None:
    """Increment a counter iff instrumentation is enabled."""
    if _enabled:
        _registry.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation iff instrumentation is enabled."""
    if _enabled:
        _registry.histogram(name).observe(value)


def gauge(name: str, value: "int | float") -> None:
    """Set a counter to an absolute level (last write wins) iff enabled.

    For point-in-time quantities like cache size, where increments make
    no sense but a snapshot should still show the latest value.  The
    write goes through :meth:`Counter.set` so it serializes with any
    concurrent ``inc`` on the same counter.
    """
    if _enabled:
        _registry.counter(name).set(value)


def tick() -> float:
    """Start a wall-clock measurement; 0.0 (and free) when disabled."""
    return time.perf_counter() if _enabled else 0.0


def tock(name: str, t0: float) -> None:
    """Record elapsed milliseconds since :func:`tick` into a histogram."""
    if _enabled and t0:
        _registry.histogram(name).observe(
            (time.perf_counter() - t0) * 1e3)
