"""Hierarchical spans and Chrome-trace export.

A span brackets one region of work (``span("plan.gemm")``,
``span("pack.A")``, ``span("engine.time_plan")``).  Spans nest via a
per-thread stack, so a trace viewer shows plan generation containing
kernel generation containing scheduling, exactly as the call tree runs.

When instrumentation is disabled (the default), :func:`span` returns a
shared no-op context manager — one global check, no allocation — so
production hot paths pay effectively nothing.

Recorded spans export to the Chrome ``chrome://tracing`` / Perfetto
JSON format (an object with a ``traceEvents`` list of complete ``"X"``
events, timestamps in microseconds)::

    from repro import obs
    with obs.scoped() as reg:
        iatf.time_gemm(problem)
        obs.write_chrome_trace("run.trace.json", registry=reg)

Open the file at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from . import core

__all__ = ["SpanRecord", "span", "chrome_trace", "write_chrome_trace",
           "validate_chrome_trace"]


@dataclass
class SpanRecord:
    """One completed span: flat, JSON-able, Chrome-event shaped."""

    name: str
    start_us: float               # perf_counter-based, microseconds
    dur_us: float
    tid: int
    depth: int
    args: dict = field(default_factory=dict)


class _NullSpan:
    """The disabled-path context manager: a shared, stateless no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **kwargs) -> None:
        """Attribute setter, ignored when disabled."""


_NULL_SPAN = _NullSpan()
_stack = threading.local()


class _Span:
    """Live span: records start on enter, emits a SpanRecord on exit."""

    __slots__ = ("name", "args", "_t0", "_depth")

    def __init__(self, name: str, args: dict) -> None:
        self.name = name
        self.args = args

    def set(self, **kwargs) -> None:
        """Attach attributes discovered mid-span (shown in the viewer)."""
        self.args.update(kwargs)

    def __enter__(self):
        depth = getattr(_stack, "depth", 0)
        self._depth = depth
        _stack.depth = depth + 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter()
        _stack.depth = self._depth
        core.get_registry().record_span(SpanRecord(
            name=self.name,
            start_us=self._t0 * 1e6,
            dur_us=(t1 - self._t0) * 1e6,
            tid=threading.get_ident() & 0xFFFF,
            depth=self._depth,
            args=self.args,
        ))
        return False


def span(name: str, **args):
    """Context manager timing one named region (no-op when disabled)."""
    if not core._enabled:
        return _NULL_SPAN
    return _Span(name, args)


# -- Chrome trace export -------------------------------------------------

def chrome_trace(registry: "core.Registry | None" = None,
                 extra_events: "list[dict] | None" = None) -> dict:
    """Recorded spans as a Chrome/Perfetto trace-JSON object.

    ``extra_events`` appends ready-made trace events onto the export —
    the attribution profiler's modeled-timeline track
    (:meth:`repro.obs.profile.ProfileReport.trace_events`) merges in
    this way, so one ``.trace.json`` shows wall-time spans and modeled
    cycle attribution side by side.
    """
    reg = registry if registry is not None else core.get_registry()
    pid = os.getpid()
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro (IATF reproduction)"},
    }]
    for s in reg.spans:
        events.append({
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "ph": "X",
            "ts": s.start_us,
            "dur": s.dur_us,
            "pid": pid,
            "tid": s.tid,
            "args": s.args,
        })
    if extra_events:
        events.extend(extra_events)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(path, registry: "core.Registry | None" = None,
                       extra_events: "list[dict] | None" = None) -> str:
    """Write the trace JSON to ``path`` (conventionally ``*.trace.json``)."""
    trace = chrome_trace(registry, extra_events=extra_events)
    with open(path, "w") as f:
        json.dump(trace, f, indent=1)
    return str(path)


def validate_chrome_trace(trace: dict) -> None:
    """Schema-check a trace object; raises ``ValueError`` on violation.

    Checks the subset of the Trace Event Format the exporter emits —
    a ``traceEvents`` list whose ``"X"`` (complete) events carry
    name/ts/dur/pid/tid with non-negative numeric timestamps and
    durations — plus, for duration (``"B"``/``"E"``) pairs: every ``E``
    must close the most recent open ``B`` on the same ``(pid, tid)``
    track with a matching name and a non-negative duration, and no
    ``B`` may be left open at the end of the trace.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    open_spans: "dict[tuple, list]" = {}   # (pid, tid) -> [(name, ts, i)]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "C", "i"):
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"event {i} has no string name")
        if ph not in ("X", "B", "E"):
            continue
        keys = ("ts", "dur") if ph == "X" else ("ts",)
        for k in keys:
            v = ev.get(k)
            if not isinstance(v, (int, float)) or v < 0:
                raise ValueError(f"event {i} field {k} invalid: {v!r}")
        for k in ("pid", "tid"):
            if not isinstance(ev.get(k), int):
                raise ValueError(f"event {i} field {k} must be an int")
        if ph == "B":
            open_spans.setdefault((ev["pid"], ev["tid"]), []).append(
                (ev["name"], ev["ts"], i))
        elif ph == "E":
            stack = open_spans.get((ev["pid"], ev["tid"]))
            if not stack:
                raise ValueError(f"event {i}: E with no open B on "
                                 f"pid={ev['pid']} tid={ev['tid']}")
            name, ts, bi = stack.pop()
            if name != ev["name"]:
                raise ValueError(
                    f"event {i}: improperly nested spans — E "
                    f"{ev['name']!r} closes B {name!r} (event {bi})")
            if ev["ts"] < ts:
                raise ValueError(
                    f"event {i}: negative duration — E at {ev['ts']} "
                    f"before its B at {ts} (event {bi})")
    for (pid, tid), stack in open_spans.items():
        if stack:
            name, _, bi = stack[-1]
            raise ValueError(f"unclosed B span {name!r} (event {bi}) on "
                             f"pid={pid} tid={tid}")
