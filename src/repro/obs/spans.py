"""Hierarchical spans, trace-context propagation, and Chrome-trace export.

A span brackets one region of work (``span("plan.gemm")``,
``span("pack.A")``, ``span("engine.time_plan")``).  Spans nest via a
**trace context** carried in a :mod:`contextvars` variable: the first
span entered with no surrounding context starts a new *trace* (a fresh
``trace_id``); every nested span records its parent's ``span_id`` as
``parent_id``, so the recorded spans of one logical operation form a
single tree no matter which thread recorded them.

Threads do not inherit context automatically (a fresh thread starts
with an empty context), so cross-thread handoff is **explicit**:
:func:`carrier` captures the current context as an opaque value, and
:func:`attach` adopts it inside the worker::

    car = obs.carrier()                 # in the submitting thread
    pool.submit(lambda: run_shard(car))

    def run_shard(car):
        with obs.attach(car):           # in the worker thread
            with obs.span("backend.parallel.shard"):
                ...                     # same trace_id, valid parent_id

The ``parallel`` executor backend does exactly this for its group-axis
shards, so one ``run_plan`` yields one coherent trace tree across all
worker threads.

When instrumentation is disabled (the default), :func:`span` returns a
shared no-op context manager — one global check, no allocation — so
production hot paths pay effectively nothing.

Recorded spans export to the Chrome ``chrome://tracing`` / Perfetto
JSON format (an object with a ``traceEvents`` list of complete ``"X"``
events, timestamps in microseconds)::

    from repro import obs
    with obs.scoped() as reg:
        iatf.time_gemm(problem)
        obs.write_chrome_trace("run.trace.json", registry=reg)

Open the file at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from . import core

__all__ = ["SpanRecord", "span", "carrier", "attach", "current_context",
           "chrome_trace", "write_chrome_trace", "validate_chrome_trace"]


@dataclass
class SpanRecord:
    """One completed span: flat, JSON-able, Chrome-event shaped.

    ``trace_id`` groups every span of one logical operation (one
    ``run_plan``, one bench point); ``span_id`` is unique per span and
    ``parent_id`` links to the enclosing span's id (``None`` for a
    trace root).  ``pid`` is 0 for spans recorded in this process; the
    cross-process merge (:mod:`repro.obs.procagg`) stamps the worker's
    OS pid when it re-homes a forked shard's spans, so the Chrome
    export can keep each process on its own track.  The defaults keep
    hand-built records (tests, tools) valid.
    """

    name: str
    start_us: float               # perf_counter-based, microseconds
    dur_us: float
    tid: int
    depth: int
    args: dict = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: "str | None" = None
    pid: int = 0                  # 0 = recorded in this process


class _NullSpan:
    """The disabled-path context manager: a shared, stateless no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **kwargs) -> None:
        """Attribute setter, ignored when disabled."""


_NULL_SPAN = _NullSpan()

#: (trace_id, span_id-of-enclosing-span, depth) — or None outside any
#: span.  A ContextVar rather than threading.local so async callers and
#: explicit carrier()/attach() handoffs both compose.
_CTX: "contextvars.ContextVar[tuple | None]" = contextvars.ContextVar(
    "repro_obs_trace", default=None)

#: process-unique id source (next() on itertools.count is atomic under
#: the GIL, so no lock is needed)
_ids = itertools.count(1)


def _new_id(prefix: str) -> str:
    return f"{prefix}{next(_ids):08x}"


# -- stable thread-track ids ---------------------------------------------

#: OS thread ident -> small stable track id.  threading.get_ident()
#: values are reused after a thread exits and truncating them (the old
#: ``& 0xFFFF``) could collide two *live* threads onto one trace track;
#: a locked first-come-first-serve map cannot.
_tid_lock = threading.Lock()
_tids: "dict[int, int]" = {}


def _tid() -> int:
    ident = threading.get_ident()
    tid = _tids.get(ident)
    if tid is None:
        with _tid_lock:
            tid = _tids.setdefault(ident, len(_tids) + 1)
    return tid


# -- context handoff -----------------------------------------------------

def current_context() -> "tuple | None":
    """The live ``(trace_id, span_id, depth)`` triple, or ``None`` when
    no span is open on this thread of execution."""
    return _CTX.get()


def carrier() -> "tuple | None":
    """Capture the current trace context for explicit handoff to
    another thread (opaque: pass it to :func:`attach` unchanged)."""
    return _CTX.get()


@contextmanager
def attach(car: "tuple | None"):
    """Adopt a captured trace context inside a worker thread.

    Spans opened inside the block join the carrier's trace (same
    ``trace_id``; ``parent_id`` = the span that was open at
    :func:`carrier` time).  Always restores the previous context, and
    accepts ``None`` (no context at capture time) as a no-op adoption.
    """
    token = _CTX.set(car)
    try:
        yield
    finally:
        _CTX.reset(token)


class _Span:
    """Live span: records start on enter, emits a SpanRecord on exit."""

    __slots__ = ("name", "args", "_t0", "_depth", "_trace_id", "_span_id",
                 "_parent_id", "_token")

    def __init__(self, name: str, args: dict) -> None:
        self.name = name
        self.args = args

    def set(self, **kwargs) -> None:
        """Attach attributes discovered mid-span (shown in the viewer)."""
        self.args.update(kwargs)

    def __enter__(self):
        ctx = _CTX.get()
        if ctx is None:
            self._trace_id = _new_id("t")
            self._parent_id = None
            self._depth = 0
        else:
            self._trace_id, self._parent_id, self._depth = ctx
        self._span_id = _new_id("s")
        self._token = _CTX.set((self._trace_id, self._span_id,
                                self._depth + 1))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter()
        _CTX.reset(self._token)
        core.get_registry().record_span(SpanRecord(
            name=self.name,
            start_us=self._t0 * 1e6,
            dur_us=(t1 - self._t0) * 1e6,
            tid=_tid(),
            depth=self._depth,
            args=self.args,
            trace_id=self._trace_id,
            span_id=self._span_id,
            parent_id=self._parent_id,
        ))
        return False


def span(name: str, **args):
    """Context manager timing one named region (no-op when disabled)."""
    if not core._enabled:
        return _NULL_SPAN
    return _Span(name, args)


# -- Chrome trace export -------------------------------------------------

def chrome_trace(registry: "core.Registry | None" = None,
                 extra_events: "list[dict] | None" = None) -> dict:
    """Recorded spans as a Chrome/Perfetto trace-JSON object.

    Span events are grouped by ``trace_id`` (stable within a trace, so
    single-trace exports keep their recorded order) and carry the
    trace/span/parent ids in their ``args`` for correlation in the
    viewer; one ``thread_name`` metadata event names each stable track.

    ``extra_events`` appends ready-made trace events onto the export —
    the attribution profiler's modeled-timeline track
    (:meth:`repro.obs.profile.ProfileReport.trace_events`) merges in
    this way, so one ``.trace.json`` shows wall-time spans and modeled
    cycle attribution side by side.
    """
    reg = registry if registry is not None else core.get_registry()
    own_pid = os.getpid()

    def event_pid(s) -> int:
        return getattr(s, "pid", 0) or own_pid

    spans = sorted(reg.spans, key=lambda s: getattr(s, "trace_id", ""))
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": own_pid, "tid": 0,
        "args": {"name": "repro (IATF reproduction)"},
    }]
    # merged shard spans keep their own pid, so each forked worker gets
    # its own named process track (tids are per-pid namespaces: both
    # parent and child number their threads from 1)
    for pid in sorted({event_pid(s) for s in spans} - {own_pid}):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro shard worker (pid {pid})"},
        })
    for pid, tid in sorted({(event_pid(s), s.tid) for s in spans}):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"thread-{tid}"},
        })
    # parent span_id -> its X event, for cross-pid flow arrows
    by_id: dict = {}
    flows: list = []
    for s in spans:
        args = dict(s.args)
        if getattr(s, "trace_id", ""):
            args["trace_id"] = s.trace_id
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
        ev = {
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "ph": "X",
            "ts": s.start_us,
            "dur": s.dur_us,
            "pid": event_pid(s),
            "tid": s.tid,
            "args": args,
        }
        events.append(ev)
        if getattr(s, "span_id", ""):
            by_id[s.span_id] = ev
        if s.args.get("shard_root") and s.parent_id is not None:
            flows.append((s.parent_id, s.span_id, ev))
    # one flow ("s" -> "f") per re-homed shard root: an arrow in the
    # viewer from the parent-process span that forked the worker to the
    # worker's root span
    for parent_id, span_id, child_ev in flows:
        parent_ev = by_id.get(parent_id)
        if parent_ev is None or parent_ev["pid"] == child_ev["pid"]:
            continue
        for ph, ev in (("s", parent_ev), ("f", child_ev)):
            flow = {"name": "shard", "cat": "flow", "ph": ph,
                    "id": span_id, "ts": ev["ts"], "pid": ev["pid"],
                    "tid": ev["tid"]}
            if ph == "f":
                flow["bp"] = "e"
            events.append(flow)
    if extra_events:
        events.extend(extra_events)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(path, registry: "core.Registry | None" = None,
                       extra_events: "list[dict] | None" = None) -> str:
    """Write the trace JSON to ``path`` (conventionally ``*.trace.json``)."""
    trace = chrome_trace(registry, extra_events=extra_events)
    with open(path, "w") as f:
        json.dump(trace, f, indent=1)
    return str(path)


def validate_chrome_trace(trace: dict) -> None:
    """Schema-check a trace object; raises ``ValueError`` on violation.

    Checks the subset of the Trace Event Format the exporter emits —
    a ``traceEvents`` list whose ``"X"`` (complete) events carry
    name/ts/dur/pid/tid with non-negative numeric timestamps and
    durations; ``"C"`` (counter) and ``"i"`` (instant) events must
    carry the same ts/pid/tid fields (a malformed counter track would
    otherwise load silently wrong in the viewer) — plus, for duration
    (``"B"``/``"E"``) pairs: every ``E`` must close the most recent
    open ``B`` on the same ``(pid, tid)`` track with a matching name
    and a non-negative duration, and no ``B`` may be left open at the
    end of the trace.

    Merged multi-pid traces add three checks: flow events (``"s"`` /
    ``"f"``) must carry an ``id``, every ``f`` must bind a previously
    started ``s`` with the same id, and no flow may run backwards in
    time; and on any pid that carries shard-root spans (the re-homed
    worker processes — ``args.shard_root``), every other ``X`` event
    must lie inside one of that shard's root spans, since a child
    event outside its shard's time bounds means the merge stitched
    timestamps from incomparable clocks.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    open_spans: "dict[tuple, list]" = {}   # (pid, tid) -> [(name, ts, i)]
    flow_starts: "dict[object, float]" = {}   # flow id -> start ts
    shard_roots: "dict[int, list]" = {}    # pid -> [(ts, ts+dur)]
    shard_events: "dict[int, list]" = {}   # pid -> [(ts, dur, i)]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "C", "i", "s", "f"):
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"event {i} has no string name")
        if ph == "M":
            continue
        keys = ("ts", "dur") if ph == "X" else ("ts",)
        for k in keys:
            v = ev.get(k)
            if not isinstance(v, (int, float)) or v < 0:
                raise ValueError(f"event {i} field {k} invalid: {v!r}")
        for k in ("pid", "tid"):
            if not isinstance(ev.get(k), int):
                raise ValueError(f"event {i} field {k} must be an int")
        if ph in ("s", "f"):
            fid = ev.get("id")
            if not isinstance(fid, (str, int)):
                raise ValueError(f"event {i}: flow event without an id")
            if ph == "s":
                flow_starts[fid] = ev["ts"]
            else:
                start = flow_starts.get(fid)
                if start is None:
                    raise ValueError(f"event {i}: flow finish {fid!r} "
                                     f"has no matching start")
                if ev["ts"] < start:
                    raise ValueError(
                        f"event {i}: flow {fid!r} runs backwards "
                        f"({ev['ts']} < {start})")
        elif ph == "X":
            args = ev.get("args")
            if isinstance(args, dict) and args.get("shard_root"):
                shard_roots.setdefault(ev["pid"], []).append(
                    (ev["ts"], ev["ts"] + ev["dur"]))
            else:
                shard_events.setdefault(ev["pid"], []).append(
                    (ev["ts"], ev["dur"], i))
        elif ph == "B":
            open_spans.setdefault((ev["pid"], ev["tid"]), []).append(
                (ev["name"], ev["ts"], i))
        elif ph == "E":
            stack = open_spans.get((ev["pid"], ev["tid"]))
            if not stack:
                raise ValueError(f"event {i}: E with no open B on "
                                 f"pid={ev['pid']} tid={ev['tid']}")
            name, ts, bi = stack.pop()
            if name != ev["name"]:
                raise ValueError(
                    f"event {i}: improperly nested spans — E "
                    f"{ev['name']!r} closes B {name!r} (event {bi})")
            if ev["ts"] < ts:
                raise ValueError(
                    f"event {i}: negative duration — E at {ev['ts']} "
                    f"before its B at {ts} (event {bi})")
    for (pid, tid), stack in open_spans.items():
        if stack:
            name, _, bi = stack[-1]
            raise ValueError(f"unclosed B span {name!r} (event {bi}) on "
                             f"pid={pid} tid={tid}")
    for pid, bounds in shard_roots.items():
        for ts, dur, i in shard_events.get(pid, ()):
            if not any(lo <= ts and ts + dur <= hi for lo, hi in bounds):
                raise ValueError(
                    f"event {i}: escapes its shard's time bounds — "
                    f"[{ts}, {ts + dur}] on pid={pid} lies in none of "
                    f"that shard's root spans")
