"""Performance-attribution profiler over compiled command streams.

The paper's headline metric is *percentage of machine peak* (Figs.
11-12); ``explain`` already prints the cycle model's four-way phase
split, but nothing said *where inside the kernels* the cycles and bytes
go.  This module walks a :class:`~repro.runtime.lowering.CompiledPlan`'s
raw or pass-optimized command stream and attributes the cycle model's
kernel budget per **instruction class** (loads, stores, FMLA/FMLS
chains, ``K_MACC`` macro-ops, wide copies, ...), per **kernel** (via the
lowering's recorded call ranges), and per **plan phase** (pack /
compute / save / plan overhead), under one hard invariant:

    **conservation** — attributed cycles sum *exactly* (integer
    equality for the kernel budget, bitwise float equality for the
    phase split) to ``PlanTiming.total_cycles``.  Nothing is lost,
    nothing is invented; :meth:`PlanProfile.check` enforces it and
    the profiler runs it before returning.

Exactness comes from integer largest-remainder apportionment: the
kernel budget ``kernel_cycles_per_group * groups`` is an integer, each
command gets an integer issue-slot weight from the machine's
:class:`~repro.machine.pipeline.IssueRules`, and the apportionment
distributes the budget so the parts reconstruct the whole in any
summation order.  The weights are a *model* (attribution shares), the
*total* is the scoreboard simulation's — so per-class shares are
honest about the machine's issue structure while the sum stays pinned
to the measured number.

On top of the attribution sit three consumers:

* :func:`profile_report` — a renderable :class:`ProfileReport`
  (text / JSON / collapsed-stack flamegraph / Chrome-trace events)
  including the roofline verdict: achieved GFLOPS vs
  ``machine.peak_gflops`` and arithmetic intensity vs the issue-rule
  ridge point, flagging memory- vs compute-bound plans;
* :func:`model_drift` — cycle-model predictions cross-checked against
  ``Evaluator`` wall-clock replays, ratio per executor backend;
* ``python -m repro.obs profile`` / the bench watchdog, which persist
  the JSON form.

Runtime imports happen inside functions (the ``explain`` idiom):
``repro.runtime`` imports ``repro.obs`` for instrumentation, so
module-level imports here would be circular.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import ProfileError

__all__ = ["ClassProfile", "KernelProfile", "PlanProfile", "ProfileReport",
           "apportion", "profile_plan", "profile_report", "model_drift"]


def apportion(total: int, weights: "list[int]") -> "list[int]":
    """Split integer ``total`` over positive integer ``weights`` so the
    parts sum back exactly (largest-remainder method, ties broken by
    lower index — fully deterministic).
    """
    if total < 0:
        raise ProfileError(f"cannot apportion a negative total ({total})")
    if not weights:
        raise ProfileError("cannot apportion over zero weights")
    if any(w <= 0 for w in weights):
        raise ProfileError("apportionment weights must be positive")
    w_sum = sum(weights)
    base = [total * w // w_sum for w in weights]
    rem = total - sum(base)
    order = sorted(range(len(weights)),
                   key=lambda i: (-(total * weights[i] % w_sum), i))
    for i in order[:rem]:
        base[i] += 1
    return base


@dataclass
class ClassProfile:
    """Attribution totals for one instruction class over the batch."""

    name: str
    commands: int = 0
    cycles: int = 0
    flops: int = 0
    bytes_moved: int = 0

    def to_dict(self) -> dict:
        return {"class": self.name, "commands": self.commands,
                "cycles": self.cycles, "flops": self.flops,
                "bytes": self.bytes_moved}


@dataclass
class KernelProfile:
    """Attribution totals for one kernel's raw-stream slice, with the
    per-class cycle split inside it (feeds the flamegraph stacks)."""

    name: str
    commands: int = 0
    cycles: int = 0
    flops: int = 0
    bytes_moved: int = 0
    classes: "dict[str, int]" = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kernel": self.name, "commands": self.commands,
                "cycles": self.cycles, "flops": self.flops,
                "bytes": self.bytes_moved, "classes": dict(self.classes)}


def _command_metrics(cmd: tuple, lanes: int, ew: int, rules, lat,
                     lw) -> "tuple[str, int, int, int]":
    """One command's ``(class, weight, flops, bytes)`` — all per group.

    The weight is issue slots in a common unit: a memory command costs
    ``pieces / max_mem`` cycles under the issue rules, an FP command
    ``ops / max_fp``; multiplying both through by ``max_mem * max_fp``
    keeps everything integral.  FDIV charges its unpipelined pipe-block
    cycles; a ``K_MACC`` of ``n`` members replays as ``n`` multiplies
    plus one vectorized accumulate.
    """
    k = cmd[0]
    mem_u = rules.max_fp(ew)          # weight of one vector-sized access
    fp_u = rules.max_mem              # weight of one FP pipe op
    if k in (lw.K_LOAD, lw.K_LOAD_PART):
        return "LD", mem_u, 0, cmd[4] * ew
    if k == lw.K_LOAD1R:
        return "LD", mem_u, 0, ew
    if k in (lw.K_LOADPAIR, lw.K_LOAD2):
        return "LD", 2 * mem_u, 0, 2 * cmd[5] * ew
    if k == lw.K_STORE:
        return "ST", mem_u, 0, cmd[4] * ew
    if k in (lw.K_STOREPAIR, lw.K_STORE2):
        return "ST", 2 * mem_u, 0, 2 * cmd[5] * ew
    if k in (lw.K_FMLA, lw.K_FMAI):
        return "FMLA", fp_u, 2 * lanes, 0
    if k == lw.K_FMLS:
        return "FMLS", fp_u, 2 * lanes, 0
    if k in (lw.K_FMUL, lw.K_FMULI):
        return "FMUL", fp_u, lanes, 0
    if k == lw.K_FADD:
        return "FADD", fp_u, lanes, 0
    if k == lw.K_FSUB:
        return "FSUB", fp_u, lanes, 0
    if k == lw.K_FDIV:
        return "FDIV", lat.div_block(ew) * fp_u, lanes, 0
    if k in (lw.K_VZERO, lw.K_VMOV, lw.K_FIMM):
        return "MOV", fp_u, 0, 0
    if k == lw.K_MACC:
        n = cmd[5]
        return "MACC", (n + 1) * fp_u, 2 * n * lanes, 0
    if k == lw.K_LOADW:
        return "LDW", cmd[5] * mem_u, 0, cmd[4] * cmd[5] * ew
    if k == lw.K_STOREW:
        return "STW", cmd[5] * mem_u, 0, cmd[4] * cmd[5] * ew
    raise ProfileError(f"unknown command kind {k}")


@dataclass
class PlanProfile:
    """Full attribution of one timed plan over one command stream."""

    kind: str                     # "gemm" | "trsm"
    problem: object
    machine: object               # MachineConfig
    stream: str                   # "raw" | "fused" | "megakernel"
    groups: int
    timing: object                # PlanTiming
    classes: "dict[str, ClassProfile]"
    kernels: "dict[str, KernelProfile]"
    """Per-kernel attribution.  For ``"raw"`` it comes from the
    lowering's ``call_ranges``; for ``"megakernel"`` from the trace
    segments (each segment belongs to exactly one kernel, so coverage
    is total by construction).  The fused pass pipeline merges across
    call boundaries, so this is empty for ``stream == "fused"``."""

    # -- totals ----------------------------------------------------------

    @property
    def kernel_cycle_budget(self) -> int:
        """The integer compute budget the classes were apportioned from."""
        return self.timing.kernel_cycles_per_group * self.groups

    @property
    def flops(self) -> int:
        return sum(c.flops for c in self.classes.values())

    @property
    def bytes_moved(self) -> int:
        return sum(c.bytes_moved for c in self.classes.values())

    @property
    def phases(self) -> "dict[str, float]":
        """Cycle split by plan phase; summed left-to-right in this
        order it reproduces ``timing.total_cycles`` bit-exactly."""
        t = self.timing
        return {"compute": float(self.kernel_cycle_budget),
                "pack": t.pack_cycles,
                "save": t.unpack_cycles,
                "plan-overhead": t.overhead_cycles}

    @property
    def total_cycles(self) -> float:
        total = 0.0
        for v in self.phases.values():
            total += v
        return total

    # -- roofline --------------------------------------------------------

    @property
    def gflops(self) -> float:
        return self.timing.gflops

    @property
    def percent_of_peak(self) -> float:
        return self.timing.percent_of_peak

    @property
    def intensity(self) -> float:
        """Achieved arithmetic intensity (flops per byte of modeled
        kernel-stream traffic)."""
        b = self.bytes_moved
        return self.flops / b if b else float("inf")

    @property
    def ridge(self) -> float:
        return self.machine.ridge_intensity(self.problem.dtype)

    @property
    def memory_bound(self) -> bool:
        return self.intensity < self.ridge

    @property
    def bound(self) -> str:
        return "memory-bound" if self.memory_bound else "compute-bound"

    # -- invariants ------------------------------------------------------

    def check(self) -> None:
        """Enforce conservation; raises :class:`ProfileError`."""
        budget = self.kernel_cycle_budget
        got = sum(c.cycles for c in self.classes.values())
        if got != budget:
            raise ProfileError(
                f"class attribution lost cycles: {got} != budget {budget}")
        if self.kernels:
            got = sum(k.cycles for k in self.kernels.values())
            if got != budget:
                raise ProfileError(
                    f"kernel attribution lost cycles: {got} != {budget}")
            for k in self.kernels.values():
                if sum(k.classes.values()) != k.cycles:
                    raise ProfileError(
                        f"kernel {k.name} class split != kernel total")
        if self.total_cycles != self.timing.total_cycles:
            raise ProfileError(
                f"phase attribution drifted: {self.total_cycles!r} != "
                f"cycle-model total {self.timing.total_cycles!r}")


def profile_plan(plan, *, stream: str = "raw", compiled=None,
                 timing=None) -> PlanProfile:
    """Attribute one plan's modeled cycles/flops/bytes.

    ``stream`` selects what to walk: ``"raw"`` (what the ``compiled``
    backend replays; enables per-kernel attribution), ``"fused"`` (the
    pass-optimized macro-op stream the ``fused`` backend replays), or
    ``"megakernel"`` (the per-segment optimized streams the trace
    compiler turns into generated source — per-kernel attribution comes
    back here, because every trace segment belongs to one kernel).
    ``compiled`` and ``timing`` may be supplied to reuse a cached
    lowering / an existing ``PlanTiming``; otherwise both are computed
    here.  The returned profile has passed :meth:`PlanProfile.check`.
    """
    from .. import obs
    from ..runtime import lowering as lw
    from ..runtime.engine import Engine

    if stream not in ("raw", "fused", "megakernel"):
        raise ProfileError(f"unknown stream {stream!r} "
                           "(expected 'raw', 'fused', or 'megakernel')")
    with obs.span("obs.profile", kind=plan.kind, stream=stream):
        if compiled is None:
            compiled = lw.lower_plan(plan)
        if timing is None:
            timing = Engine(plan.machine).time_plan(plan)
        segments = None
        if stream == "megakernel":
            segments = lw.partition_trace(compiled)
            commands = [cmd for seg in segments for cmd in seg.commands]
        elif stream == "fused":
            commands = compiled.fused_commands
        else:
            commands = compiled.commands
        if not commands:
            raise ProfileError(f"plan has no {stream} commands to profile")

        machine = plan.machine
        lanes, ew = compiled.lanes, compiled.ew
        rules, lat = machine.rules, machine.lat
        groups = plan.groups
        metrics = [_command_metrics(cmd, lanes, ew, rules, lat, lw)
                   for cmd in commands]
        budget = timing.kernel_cycles_per_group * groups
        cycles = apportion(budget, [m[1] for m in metrics])

        classes: "dict[str, ClassProfile]" = {}
        for (cls, _w, flops, nbytes), cyc in zip(metrics, cycles):
            cp = classes.get(cls)
            if cp is None:
                cp = classes[cls] = ClassProfile(cls)
            cp.commands += 1
            cp.cycles += cyc
            cp.flops += flops * groups
            cp.bytes_moved += nbytes * groups

        kernels: "dict[str, KernelProfile]" = {}
        if stream == "raw":
            covered = 0
            for name, start, stop in compiled.call_ranges:
                kp = kernels.get(name)
                if kp is None:
                    kp = kernels[name] = KernelProfile(name)
                for i in range(start, stop):
                    cls = metrics[i][0]
                    kp.commands += 1
                    kp.cycles += cycles[i]
                    kp.flops += metrics[i][2] * groups
                    kp.bytes_moved += metrics[i][3] * groups
                    kp.classes[cls] = kp.classes.get(cls, 0) + cycles[i]
                covered += stop - start
            if covered != len(commands):
                # a lowering that emitted commands outside any call range
                # would break kernel-level conservation; fail loudly
                raise ProfileError(
                    f"call ranges cover {covered} of {len(commands)} "
                    "raw commands")
        elif stream == "megakernel":
            # segment streams concatenate to exactly `commands`, so
            # coverage is total by construction — no residue check
            pos = 0
            for seg in segments:
                kp = kernels.get(seg.kernel)
                if kp is None:
                    kp = kernels[seg.kernel] = KernelProfile(seg.kernel)
                for i in range(pos, pos + len(seg.commands)):
                    cls = metrics[i][0]
                    kp.commands += 1
                    kp.cycles += cycles[i]
                    kp.flops += metrics[i][2] * groups
                    kp.bytes_moved += metrics[i][3] * groups
                    kp.classes[cls] = kp.classes.get(cls, 0) + cycles[i]
                pos += len(seg.commands)

        profile = PlanProfile(
            kind=plan.kind, problem=plan.problem, machine=machine,
            stream=stream, groups=groups, timing=timing,
            classes=classes, kernels=kernels)
        profile.check()
    obs.count("obs.profile.plans")
    return profile


# -- the renderable report ----------------------------------------------

#: synthetic tid the modeled-profile track uses in merged Chrome traces
#: (real span tids are thread idents masked to 16 bits, so 17 bits is
#: collision-free)
PROFILE_TRACE_TID = 1 << 16


@dataclass
class ProfileReport:
    """Renderable roofline/attribution report over a :class:`PlanProfile`.

    ``render()`` is the human text, ``to_dict()`` the JSON artifact,
    ``collapsed()`` the collapsed-stack flamegraph format (one
    ``frame;frame;frame count`` line per stack, cycles as counts —
    feed to ``flamegraph.pl`` or speedscope), and ``trace_events()``
    Chrome-trace complete events on a synthetic modeled timeline,
    mergeable into the span exporter via
    ``obs.write_chrome_trace(path, extra_events=...)``.
    """

    profile: PlanProfile
    drift: "dict[str, dict] | None" = None

    def to_dict(self) -> dict:
        p = self.profile
        m = p.machine
        out = {
            "kind": p.kind,
            "problem": str(p.problem),
            "machine": m.name,
            "machine_id": m.machine_id,
            "dtype": p.problem.dtype.value,
            "stream": p.stream,
            "groups": p.groups,
            "phases": dict(p.phases),
            "total_cycles": p.total_cycles,
            "kernel_cycle_budget": p.kernel_cycle_budget,
            "classes": [c.to_dict() for c in p.classes.values()],
            "kernels": [k.to_dict() for k in p.kernels.values()],
            "roofline": {
                "gflops": p.gflops,
                "peak_gflops": m.peak_gflops(p.problem.dtype),
                "percent_of_peak": p.percent_of_peak,
                "flops": p.flops,
                "bytes": p.bytes_moved,
                "intensity": p.intensity,
                "ridge_intensity": p.ridge,
                "bound": p.bound,
            },
        }
        if self.drift is not None:
            out["drift"] = {b: dict(d) for b, d in self.drift.items()}
        return out

    def render(self) -> str:
        p = self.profile
        m = p.machine
        total = p.total_cycles

        def sect(title: str) -> str:
            return f"-- {title} " + "-" * max(1, 54 - len(title))

        out = [f"profile[{p.kind}] {p.problem}",
               f"machine: {m.name} ({m.machine_id})  stream: {p.stream}",
               sect("phase attribution")]
        for name, cyc in p.phases.items():
            out.append(f"  {name:<14} {cyc:14.0f} cycles "
                       f"{100.0 * cyc / total:5.1f}%")
        out.append(f"  {'total':<14} {total:14.0f} cycles "
                   "(== cycle-model total, conserved)")
        out.append(sect("instruction classes (compute budget "
                        f"{p.kernel_cycle_budget} cycles)"))
        out.append(f"  {'class':<6} {'commands':>9} {'cycles':>14} "
                   f"{'share':>6} {'flops':>14} {'bytes':>14}")
        budget = p.kernel_cycle_budget
        for c in sorted(p.classes.values(), key=lambda c: -c.cycles):
            out.append(f"  {c.name:<6} {c.commands:>9} {c.cycles:>14} "
                       f"{100.0 * c.cycles / budget:5.1f}% "
                       f"{c.flops:>14} {c.bytes_moved:>14}")
        if p.kernels:
            out.append(sect("kernels (raw call ranges)"))
            for k in sorted(p.kernels.values(), key=lambda k: -k.cycles):
                out.append(f"  {k.name}: {k.cycles} cycles "
                           f"({100.0 * k.cycles / budget:.1f}%), "
                           f"{k.commands} commands")
        out.append(sect("roofline (vs machine peak)"))
        peak = m.peak_gflops(p.problem.dtype)
        out.append(f"  achieved: {p.gflops:.2f} GFLOPS = "
                   f"{p.percent_of_peak:.1f}% of peak "
                   f"({peak:.1f} GFLOPS '{p.problem.dtype.value}')")
        out.append(f"  arithmetic intensity: {p.intensity:.2f} flops/byte "
                   f"vs ridge {p.ridge:.2f} -> {p.bound}")
        if self.drift is not None:
            out.append(sect("model drift (cycle model vs wall clock)"))
            for backend, d in self.drift.items():
                out.append(
                    f"  {backend}: predicted {d['predicted_seconds']:.3e} s, "
                    f"wall {d['wall_seconds']:.3e} s, "
                    f"ratio {d['ratio']:.2f}x")
        return "\n".join(out)

    def collapsed(self) -> str:
        """Collapsed-stack flamegraph lines (cycles as sample counts)."""
        p = self.profile
        root = f"{p.kind}[{p.stream}]"
        lines = []
        if p.kernels:
            for k in p.kernels.values():
                for cls, cyc in k.classes.items():
                    if cyc:
                        lines.append(f"{root};compute;{k.name};{cls} {cyc}")
        else:
            for c in p.classes.values():
                if c.cycles:
                    lines.append(f"{root};compute;{c.name} {c.cycles}")
        for name in ("pack", "save", "plan-overhead"):
            cyc = int(round(p.phases[name]))
            if cyc:
                lines.append(f"{root};{name} {cyc}")
        return "\n".join(lines) + "\n"

    def trace_events(self) -> "list[dict]":
        """Chrome-trace complete events on a synthetic modeled timeline
        (phases laid end to end, kernels/classes nested inside
        compute).  Timestamps are modeled microseconds at the machine's
        clock, not wall time; the track is named accordingly."""
        p = self.profile
        m = p.machine
        pid = os.getpid()
        tid = PROFILE_TRACE_TID

        def us(cycles: float) -> float:
            return cycles / (m.freq_ghz * 1e3)

        events: "list[dict]" = [{
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": "modeled profile (cycle attribution)"},
        }, {
            "name": f"profile.{p.kind}", "cat": "profile", "ph": "X",
            "ts": 0.0, "dur": us(p.total_cycles), "pid": pid, "tid": tid,
            "args": {"stream": p.stream, "machine": m.machine_id,
                     "percent_of_peak": p.percent_of_peak},
        }]
        t = 0.0
        for name, cyc in p.phases.items():
            if cyc <= 0:
                continue
            events.append({
                "name": f"profile.{name}", "cat": "profile", "ph": "X",
                "ts": t, "dur": us(cyc), "pid": pid, "tid": tid,
                "args": {"cycles": cyc},
            })
            if name == "compute":
                inner = (p.kernels or p.classes).values()
                ti = t
                for item in inner:
                    events.append({
                        "name": item.name, "cat": "profile.compute",
                        "ph": "X", "ts": ti, "dur": us(item.cycles),
                        "pid": pid, "tid": tid,
                        "args": {"cycles": item.cycles,
                                 "commands": item.commands},
                    })
                    ti += us(item.cycles)
            t += us(cyc)
        return events


def profile_report(plan, *, stream: str = "raw", compiled=None,
                   timing=None, drift=None) -> ProfileReport:
    """Profile a plan and wrap it in a renderable report; ``drift`` is
    an optional :func:`model_drift` result to append."""
    return ProfileReport(profile_plan(plan, stream=stream,
                                      compiled=compiled, timing=timing),
                         drift=drift)


def model_drift(problem, machine=None, *,
                backends: "tuple[str, ...]" = ("compiled", "fused",
                                               "megakernel"),
                repeats: int = 3) -> "dict[str, dict]":
    """Cycle-model predictions vs wall-clock replays, per backend.

    Returns ``{backend: {"predicted_seconds", "wall_seconds",
    "ratio"}}`` where the ratio is wall over predicted (>1 means the
    host is slower than the modeled silicon — expected, since the
    replay is NumPy, not ARM assembly; what matters is that the ratio
    is *stable* per backend, which is what the watchdog tracks).
    """
    from ..machine.machines import KUNPENG_920
    from ..tuning.evaluate import Evaluator

    ev = Evaluator(machine if machine is not None else KUNPENG_920,
                   repeats=repeats)
    return ev.drift(problem, backends=backends)
