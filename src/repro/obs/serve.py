"""``python -m repro.obs serve`` — the live telemetry endpoint.

A stdlib :mod:`http.server` plane over the process registry, so a
Prometheus scraper, the watchdog, or a human with ``curl`` can watch a
long-running IATF process (a bench sweep, a future service frontend)
instead of waiting for the batch ``report()`` at the end:

* ``/metrics``        — Prometheus text exposition of the registry
* ``/snapshot.json``  — the full :meth:`Registry.snapshot` as JSON
* ``/delta.json``     — what moved since the previous ``/delta.json``
  scrape (counter deltas + per-second rates)
* ``/events?n=100&level=warn`` — the structured-event ring, oldest
  first
* ``/healthz``        — liveness (also reports exporter self-accounting)
* ``/trajectory``     — the schema-v2 ``BENCH_backends.json`` series
  the watchdog diffs

Scrapes are **read-only**: handlers never write into the registry they
render, so an idle registry serves bit-identical ``/metrics`` bodies.

``--demo`` enables instrumentation and loops the bench ``backends``
experiment (small batch by default) in a daemon thread so a fresh
process has live counters, spans, and events to scrape — the CI smoke
step and local exploration both use it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from . import core
from .events import event
from .export import (DeltaExporter, JsonExporter, PrometheusExporter,
                     render_stats)

__all__ = ["TelemetryServer", "make_server", "serve", "run_demo"]

DEFAULT_TRAJECTORY = "BENCH_backends.json"


class _Handler(BaseHTTPRequestHandler):
    """Routes one GET; everything it serves is a pure read."""

    server_version = "repro-obs/1.0"
    protocol_version = "HTTP/1.1"

    # the default handler logs every request to stderr; a scraper
    # polling /metrics would flood the console
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        try:
            route = self.server.routes.get(parts.path)
            if route is None:
                self._send(404, "text/plain; charset=utf-8",
                           f"no such endpoint: {parts.path}\n")
                return
            body, content_type = route(query)
            self._send(200, content_type, body)
        except Exception as exc:  # a broken handler must not kill serve
            self._send(500, "text/plain; charset=utf-8",
                       f"internal error: {exc}\n")

    def _send(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class TelemetryServer(ThreadingHTTPServer):
    """The HTTP server plus its route table and data sources."""

    daemon_threads = True

    def __init__(self, address: "tuple[str, int]",
                 registry=None,
                 trajectory_path: str = DEFAULT_TRAJECTORY) -> None:
        super().__init__(address, _Handler)
        self._registry = registry
        self.trajectory_path = trajectory_path
        self._prometheus = PrometheusExporter()
        self._json = JsonExporter()
        self._delta = DeltaExporter()
        self.routes = {
            "/metrics": self._metrics,
            "/snapshot.json": self._snapshot,
            "/delta.json": self._delta_view,
            "/events": self._events,
            "/healthz": self._healthz,
            "/trajectory": self._trajectory,
        }

    # routes return (body, content_type)

    def add_route(self, path: str, handler) -> None:
        """Register an extra endpoint (e.g. ``/serve/stats`` from the
        BLAS service frontend).  ``handler(query) -> (body, content_type)``
        like the built-ins; must be a pure read."""
        if not path.startswith("/"):
            raise ValueError(f"route path must start with '/': {path!r}")
        self.routes[path] = handler

    def registry(self):
        return (self._registry if self._registry is not None
                else core.get_registry())

    def _metrics(self, query) -> "tuple[str, str]":
        exp = self._prometheus
        return exp.render(self.registry().snapshot()), exp.content_type

    def _snapshot(self, query) -> "tuple[str, str]":
        exp = self._json
        return exp.render(self.registry().snapshot()), exp.content_type

    def _delta_view(self, query) -> "tuple[str, str]":
        exp = self._delta
        return exp.render(self.registry().snapshot()), exp.content_type

    def _events(self, query) -> "tuple[str, str]":
        try:
            n = int(query.get("n", ["100"])[0])
        except ValueError:
            n = 100
        level = query.get("level", [None])[0]
        prefix = query.get("prefix", [None])[0]
        try:
            records = self.registry().events.tail(n, level=level,
                                                  prefix=prefix)
        except ValueError:   # unknown ?level= — unfiltered beats a 500
            records = self.registry().events.tail(n, prefix=prefix)
        return (json.dumps(records, sort_keys=True, indent=2) + "\n",
                "application/json")

    def _healthz(self, query) -> "tuple[str, str]":
        health = {"status": "ok", "export": render_stats(),
                  "events": self.registry().events.stats()}
        return (json.dumps(health, sort_keys=True) + "\n",
                "application/json")

    def _trajectory(self, query) -> "tuple[str, str]":
        try:
            with open(self.trajectory_path) as f:
                raw = f.read()
            json.loads(raw)          # malformed history is a 500, not junk
        except OSError:
            return (json.dumps([]) + "\n", "application/json")
        return raw, "application/json"


def make_server(host: str = "127.0.0.1", port: int = 9109,
                registry=None,
                trajectory_path: str = DEFAULT_TRAJECTORY) -> TelemetryServer:
    """Construct (but do not start) a telemetry server; ``port=0``
    binds an ephemeral port (``server.server_address`` has the real
    one — what the tests use)."""
    return TelemetryServer((host, port), registry=registry,
                           trajectory_path=trajectory_path)


def run_demo(stop: threading.Event, batch: int = 512,
             interval: float = 2.0) -> None:
    """Demo workload loop: the bench ``backends`` showdown (compiled vs
    fused vs megakernel vs parallel) on a small batch, round after
    round, until ``stop`` is set — so every endpoint has live data to
    serve."""
    from ..bench.experiments import backend_showdown

    rounds = 0
    while not stop.is_set():
        result = backend_showdown(batch=batch, repeats=1,
                                  backends=("compiled", "fused",
                                            "megakernel", "parallel"))
        rounds += 1
        core.gauge("serve.demo.rounds", rounds)
        event("serve.demo.round",
              round=rounds, batch=batch,
              seconds={b: round(s, 6)
                       for b, s in result["seconds"].items()})
        stop.wait(interval)


def serve(host: str = "127.0.0.1", port: int = 9109, *,
          demo: bool = False, demo_batch: int = 512,
          trajectory_path: str = DEFAULT_TRAJECTORY,
          for_seconds: "float | None" = None,
          quiet: bool = False) -> int:
    """Run the endpoint until interrupted (the CLI entry point).

    ``--demo`` flips instrumentation on process-wide and starts the
    demo thread; ``for_seconds`` bounds the run (CI smoke).
    """
    server = make_server(host, port, trajectory_path=trajectory_path)
    stop = threading.Event()
    if demo:
        core.enable()
        worker = threading.Thread(target=run_demo, args=(stop, demo_batch),
                                  name="repro-obs-demo", daemon=True)
        worker.start()
    bound_host, bound_port = server.server_address[:2]
    if not quiet:
        print(f"repro.obs serve on http://{bound_host}:{bound_port} "
              f"(endpoints: {', '.join(sorted(server.routes))})"
              + (" [demo workload running]" if demo else ""))
    if for_seconds is not None:
        timer = threading.Timer(for_seconds, server.shutdown)
        timer.daemon = True
        timer.start()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
    return 0
