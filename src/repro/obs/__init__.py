"""repro.obs — zero-dependency observability for the run-time stage.

Five layers:

* :mod:`repro.obs.core` — the process-wide :class:`Registry` of named
  :class:`Counter`/:class:`Histogram` objects and the hot-path helpers
  (:func:`count`, :func:`observe`) that are true no-ops while
  instrumentation is disabled (the default);
* :mod:`repro.obs.spans` — hierarchical :func:`span` timing regions,
  exportable to Chrome ``chrome://tracing`` / Perfetto JSON;
* :mod:`repro.obs.explain` — :func:`explain` reports narrating every
  run-time-stage decision a plan embodies (batch counter math,
  pack-selector reasoning, tile decomposition, autotune sweeps, and
  the cycle-model breakdown);
* :mod:`repro.obs.profile` — the attribution profiler:
  :func:`profile_plan` walks a plan's compiled command stream and
  attributes modeled cycles/FLOPs/bytes to instruction classes,
  kernels, and plan phases with exact conservation;
  :class:`ProfileReport` adds the %-of-peak roofline view, collapsed
  flamegraph stacks, and a modeled Chrome-trace track;
  :func:`model_drift` compares the cycle model to wall clock;
* :mod:`repro.obs.watch` — the stdlib-pure bench-trajectory watchdog
  behind ``python -m repro.obs watch``.

Quick start::

    from repro import IATF, obs
    from repro.types import GemmProblem

    iatf = IATF()
    with obs.scoped() as reg:                 # enable + fresh registry
        t = iatf.time_gemm(GemmProblem(8, 8, 8, "d", batch=16384))
        print(reg.report())                   # counters & histograms
        obs.write_chrome_trace("run.trace.json", registry=reg)

    print(iatf.explain_gemm(GemmProblem(8, 8, 8, "d", batch=16384),
                            deep=True).render())

``python -m repro.obs --self-check`` exercises the whole subsystem.
"""

from .core import (Counter, Histogram, Registry, count, disable, enable,
                   enabled, gauge, get_registry, observe, scoped,
                   set_registry, tick, tock)
from .explain import ExplainReport, explain
from .profile import (ClassProfile, KernelProfile, PlanProfile,
                      ProfileReport, model_drift, profile_plan,
                      profile_report)
from .spans import (SpanRecord, chrome_trace, span, validate_chrome_trace,
                    write_chrome_trace)

__all__ = [
    "Counter", "Histogram", "Registry",
    "count", "observe", "gauge", "tick", "tock",
    "enabled", "enable", "disable", "scoped",
    "get_registry", "set_registry",
    "SpanRecord", "span", "chrome_trace", "write_chrome_trace",
    "validate_chrome_trace",
    "ExplainReport", "explain",
    "ClassProfile", "KernelProfile", "PlanProfile", "ProfileReport",
    "profile_plan", "profile_report", "model_drift",
]
