"""repro.obs — zero-dependency observability for the run-time stage.

Five layers:

* :mod:`repro.obs.core` — the process-wide :class:`Registry` of named
  :class:`Counter`/:class:`Histogram` objects and the hot-path helpers
  (:func:`count`, :func:`observe`) that are true no-ops while
  instrumentation is disabled (the default);
* :mod:`repro.obs.spans` — hierarchical :func:`span` timing regions,
  exportable to Chrome ``chrome://tracing`` / Perfetto JSON;
* :mod:`repro.obs.explain` — :func:`explain` reports narrating every
  run-time-stage decision a plan embodies (batch counter math,
  pack-selector reasoning, tile decomposition, autotune sweeps, and
  the cycle-model breakdown);
* :mod:`repro.obs.profile` — the attribution profiler:
  :func:`profile_plan` walks a plan's compiled command stream and
  attributes modeled cycles/FLOPs/bytes to instruction classes,
  kernels, and plan phases with exact conservation;
  :class:`ProfileReport` adds the %-of-peak roofline view, collapsed
  flamegraph stacks, and a modeled Chrome-trace track;
  :func:`model_drift` compares the cycle model to wall clock;
* :mod:`repro.obs.watch` — the stdlib-pure bench-trajectory watchdog
  behind ``python -m repro.obs watch``;
* :mod:`repro.obs.events` — leveled structured events
  (:func:`event`): a bounded in-memory ring per registry plus an
  optional size-rotated JSONL file sink — the durable record for
  plan-cache evictions, TuningDB fallbacks, and watchdog verdicts;
* :mod:`repro.obs.export` — pluggable snapshot exporters
  (:class:`PrometheusExporter`, :class:`JsonExporter`,
  :class:`DeltaExporter`) rendering one :meth:`Registry.snapshot`
  as Prometheus text exposition, stable JSON, or a rate-computing
  delta view;
* :mod:`repro.obs.serve` — ``python -m repro.obs serve``, the stdlib
  ``http.server`` endpoint exposing ``/metrics``, ``/snapshot.json``,
  ``/delta.json``, ``/events``, ``/healthz``, and ``/trajectory``.

Spans carry a **trace context** (``trace_id`` / ``span_id`` /
``parent_id``) propagated through :mod:`contextvars`; cross-thread
handoff is explicit via :func:`carrier` / :func:`attach` — the
``parallel`` executor backend uses it so one ``run_plan`` records one
coherent span tree across worker threads.

Quick start::

    from repro import IATF, obs
    from repro.types import GemmProblem

    iatf = IATF()
    with obs.scoped() as reg:                 # enable + fresh registry
        t = iatf.time_gemm(GemmProblem(8, 8, 8, "d", batch=16384))
        print(reg.report())                   # counters & histograms
        obs.write_chrome_trace("run.trace.json", registry=reg)

    print(iatf.explain_gemm(GemmProblem(8, 8, 8, "d", batch=16384),
                            deep=True).render())

``python -m repro.obs --self-check`` exercises the whole subsystem.
"""

from .budget import STAGES as BUDGET_STAGES
from .budget import Budget, BudgetLedger
from .core import (Counter, Histogram, Registry, count, disable, enable,
                   enabled, gauge, get_registry, observe, scoped,
                   set_registry, tick, tock)
from .events import EventLog, FileSink, event
from .explain import ExplainReport, explain
from .export import (DeltaExporter, Exporter, JsonExporter,
                     PrometheusExporter, snapshot_delta)
from .flight import FlightRecorder, get_flight, install_flight
from .procagg import child_begin, child_capture, merge_child
from .profile import (ClassProfile, KernelProfile, PlanProfile,
                      ProfileReport, model_drift, profile_plan,
                      profile_report)
from .slo import SLOMonitor, SLOSpec, default_specs
from .spans import (SpanRecord, attach, carrier, chrome_trace,
                    current_context, span, validate_chrome_trace,
                    write_chrome_trace)

__all__ = [
    "Counter", "Histogram", "Registry",
    "count", "observe", "gauge", "tick", "tock",
    "enabled", "enable", "disable", "scoped",
    "get_registry", "set_registry",
    "SpanRecord", "span", "carrier", "attach", "current_context",
    "chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "EventLog", "FileSink", "event",
    "Exporter", "PrometheusExporter", "JsonExporter", "DeltaExporter",
    "snapshot_delta",
    "Budget", "BudgetLedger", "BUDGET_STAGES",
    "child_begin", "child_capture", "merge_child",
    "SLOSpec", "SLOMonitor", "default_specs",
    "FlightRecorder", "get_flight", "install_flight",
    "ExplainReport", "explain",
    "ClassProfile", "KernelProfile", "PlanProfile", "ProfileReport",
    "profile_plan", "profile_report", "model_drift",
]
