"""Request-scoped latency budgets: where did this request's wall time go?

Counters say the service is busy and histograms say requests are slow;
a :class:`Budget` says *why*: every request entering
:class:`~repro.serve.service.BlasService` carries one, and each stage
of its life stamps a mark as it completes::

    admit -> coalesce_wait -> stack -> plan -> execute -> scatter

Durations are **telescoping** — stage ``i`` is ``mark[i+1] - mark[i]``
and the end-to-end wall is ``mark[last] - mark[first]`` — so the stage
sum equals the total *exactly* (each intermediate mark cancels), the
same discipline as the attribution profiler's largest-remainder
invariant: attributed time == measured time, or the budget is broken
and :meth:`Budget.check` raises :class:`~repro.errors.BudgetError`.
Float addition can still lose the last few ulps when the magnitudes
differ wildly, which is why conservation is asserted to a relative
epsilon instead of ``==``.

A bucket flush serves many requests at once; the scheduler stamps every
entry's budget with the *same* absolute timestamps for the shared
stages (stack/plan/execute/scatter), so per-request conservation holds
while per-request ``coalesce_wait`` still differs (each request joined
the bucket at its own time).

:class:`BudgetLedger` aggregates closed budgets per group (the service
keeps one ledger keyed by tenant and one keyed by coalescing key), and
the service also exports each stage into ``serve.budget.<stage>.ms``
histograms when instrumentation is on.  The ledger itself is always-on
(plain locked floats), like the rest of the service's operator stats.
"""

from __future__ import annotations

import math
import threading
import time

from ..errors import BudgetError

__all__ = ["STAGES", "Budget", "BudgetLedger"]

#: request lifecycle stages, in order.  ``admit`` covers validation +
#: admission + parking in the coalescer; ``coalesce_wait`` ends when the
#: pump starts flushing the bucket; ``stack`` is operand stacking +
#: compact interleave; ``plan`` is plan-cache lookup or compile;
#: ``execute`` is the backend run; ``scatter`` is de-interleave +
#: future fan-out.
STAGES = ("admit", "coalesce_wait", "stack", "plan", "execute", "scatter")

_STAGE_INDEX = {name: i for i, name in enumerate(STAGES)}

#: relative conservation epsilon: the telescoping sum is exact in real
#: arithmetic; float addition may lose a few ulps, never more
EPSILON = 1e-9


class Budget:
    """Per-request stage marks with exact wall-time conservation.

    Stamp stages in order (skipping none); :meth:`stages` yields the
    per-stage seconds, :attr:`total` the end-to-end wall, and
    :meth:`check` enforces that they agree.  ``flags`` carries
    discrete facts discovered along the way (``plan_cache="hit"``,
    ``error=True``) for the post-mortem record.
    """

    __slots__ = ("t0", "_marks", "flags")

    def __init__(self, t0: "float | None" = None) -> None:
        self.t0 = time.perf_counter() if t0 is None else t0
        self._marks: "list[float]" = []
        self.flags: dict = {}

    def stamp(self, stage: str, t: "float | None" = None) -> float:
        """Mark ``stage`` as completed at ``t`` (now by default).

        Stages must arrive in :data:`STAGES` order with no repeats —
        a scheduler bug that stamped out of order would silently
        misattribute time, so it raises instead.  Passing an explicit
        ``t`` is how a bucket flush gives every entry the same shared
        timestamps.  Returns the timestamp used.
        """
        idx = _STAGE_INDEX.get(stage)
        if idx is None:
            raise BudgetError(f"unknown budget stage {stage!r}; "
                              f"stages: {', '.join(STAGES)}")
        if idx != len(self._marks):
            expected = (STAGES[len(self._marks)]
                        if len(self._marks) < len(STAGES) else "nothing")
            raise BudgetError(
                f"budget stage {stage!r} stamped out of order "
                f"(expected {expected!r})")
        if t is None:
            t = time.perf_counter()
        last = self._marks[-1] if self._marks else self.t0
        if t < last:
            # clock marks never go backwards (perf_counter is
            # monotonic); a caller-supplied earlier timestamp would
            # mint negative stage time out of nothing
            t = last
        self._marks.append(t)
        return t

    def annotate(self, **flags) -> None:
        self.flags.update(flags)

    def abort(self, t: "float | None" = None) -> None:
        """Stamp every remaining stage at one instant (zero width) so a
        failed request still closes with exact conservation."""
        if t is None:
            t = time.perf_counter()
        for stage in STAGES[len(self._marks):]:
            self.stamp(stage, t)

    @property
    def closed(self) -> bool:
        return len(self._marks) == len(STAGES)

    @property
    def total(self) -> float:
        """End-to-end wall seconds (0.0 until the first stamp)."""
        return self._marks[-1] - self.t0 if self._marks else 0.0

    def stages(self) -> "dict[str, float]":
        """Per-stage seconds for the stages stamped so far."""
        out: "dict[str, float]" = {}
        prev = self.t0
        for stage, mark in zip(STAGES, self._marks):
            out[stage] = mark - prev
            prev = mark
        return out

    def conservation_error(self) -> float:
        """``|sum(stages) - total|`` — zero in real arithmetic, a few
        ulps at most in floats."""
        return abs(math.fsum(self.stages().values()) - self.total)

    def check(self) -> None:
        """Raise :class:`BudgetError` unless the budget is closed and
        its stage sum reproduces the end-to-end wall within epsilon."""
        if not self.closed:
            missing = STAGES[len(self._marks):]
            raise BudgetError(
                f"budget not closed: stages {', '.join(missing)} never "
                f"stamped")
        err = self.conservation_error()
        bound = EPSILON * max(1.0, self.total)
        if err > bound:
            raise BudgetError(
                f"budget conservation violated: stage sum differs from "
                f"end-to-end wall by {err:.3e}s (> {bound:.3e}s)")

    def to_dict(self) -> dict:
        """JSON-able report: per-stage milliseconds, total, flags."""
        return {
            "stages_ms": {s: d * 1e3 for s, d in self.stages().items()},
            "total_ms": self.total * 1e3,
            "flags": dict(self.flags),
        }


class _GroupTotals:
    """Per-group accumulator (internal to :class:`BudgetLedger`)."""

    __slots__ = ("count", "total", "max_total", "stage_totals")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max_total = 0.0
        self.stage_totals = [0.0] * len(STAGES)


class BudgetLedger:
    """Always-on aggregation of closed budgets, per group label.

    The service keeps two: one keyed by tenant, one keyed by coalescing
    key (the problem descriptor) — the input-aware view the paper's
    framing asks for, budgets per problem-signature rather than one
    global blur.  ``max_groups`` bounds cardinality: beyond it new
    groups fold into ``"(other)"`` instead of growing without limit.
    """

    def __init__(self, max_groups: int = 64) -> None:
        if max_groups < 1:
            raise ValueError(f"max_groups must be >= 1, got {max_groups}")
        self.max_groups = int(max_groups)
        self._lock = threading.Lock()
        self._groups: "dict[str, _GroupTotals]" = {}
        self.recorded = 0
        self.violations = 0

    OVERFLOW = "(other)"

    def record(self, group: str, budget: Budget) -> None:
        """Fold one closed budget into ``group``'s totals.

        A budget that fails its own conservation check is counted in
        ``violations`` (the number an operator alerts on — it should
        stay zero forever) but still aggregated, so the evidence is in
        the totals rather than silently dropped.
        """
        try:
            budget.check()
            ok = True
        except BudgetError:
            ok = False
        stages = budget.stages()
        with self._lock:
            g = self._groups.get(group)
            if g is None:
                if len(self._groups) >= self.max_groups:
                    group = self.OVERFLOW
                    g = self._groups.get(group)
                if g is None:
                    g = self._groups.setdefault(group, _GroupTotals())
            g.count += 1
            g.total += budget.total
            g.max_total = max(g.max_total, budget.total)
            for i, stage in enumerate(STAGES):
                g.stage_totals[i] += stages.get(stage, 0.0)
            self.recorded += 1
            if not ok:
                self.violations += 1

    def summary(self) -> dict:
        """JSON-able per-group stage breakdown in milliseconds.

        Each group reports count, mean/max end-to-end, and per-stage
        totals + the fraction of that group's wall each stage consumed
        (the budget view: "tenant alice spends 60% of her latency in
        coalesce_wait").
        """
        with self._lock:
            items = sorted(self._groups.items())
            recorded, violations = self.recorded, self.violations
            groups = {}
            for name, g in items:
                total = g.total
                groups[name] = {
                    "count": g.count,
                    "total_ms": total * 1e3,
                    "mean_ms": (total / g.count) * 1e3 if g.count else 0.0,
                    "max_ms": g.max_total * 1e3,
                    "stages_ms": {s: g.stage_totals[i] * 1e3
                                  for i, s in enumerate(STAGES)},
                    "stage_share": {s: (g.stage_totals[i] / total
                                        if total > 0 else 0.0)
                                    for i, s in enumerate(STAGES)},
                }
        return {"recorded": recorded, "violations": violations,
                "groups": groups}

    def reset(self) -> None:
        with self._lock:
            self._groups.clear()
            self.recorded = 0
            self.violations = 0
