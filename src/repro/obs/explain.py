"""``explain(plan)``: narrate every run-time-stage decision in a plan.

The paper's run-time stage decides four things per problem shape —
how many groups per batch round (Section 5.1), whether to pack each
operand (Section 5.2), how to tile the dimensions over the Table 1
kernel family (CMAR, Section 4), and (with autotuning) which candidate
the empirical sweep picked.  A plan carries the *outcomes*; this module
reconstructs the *reasoning* into a structured, renderable report, plus
(with ``deep=True``) the cycle-model consequences: pack-vs-nopack cost
comparison and the ``TimingResult`` stall/miss breakdown.

Runtime imports happen inside functions: ``repro.runtime`` itself
imports ``repro.obs`` for instrumentation, so module-level imports here
would be circular.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ExplainReport", "explain"]


@dataclass
class ExplainReport:
    """Structured narration of one execution plan's decisions."""

    kind: str
    problem: object
    machine_name: str
    sections: list = field(default_factory=list)
    """``(title, lines)`` pairs in presentation order."""

    def section(self, title: str) -> "list[str]":
        """Lines of one section (KeyError if absent)."""
        for t, lines in self.sections:
            if t == title:
                return lines
        raise KeyError(title)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "problem": str(self.problem),
                "machine": self.machine_name,
                "sections": {t: list(lines) for t, lines in self.sections}}

    def render(self) -> str:
        out = [f"explain[{self.kind}] {self.problem}",
               f"machine: {self.machine_name}"]
        for title, lines in self.sections:
            out.append(f"-- {title} " + "-" * max(1, 54 - len(title)))
            out.extend(f"  {line}" for line in lines)
        return "\n".join(out)


def _fmt_bytes(n: int) -> str:
    return f"{n} B" if n < 4096 else f"{n} B ({n / 1024:.1f} KiB)"


def _batch_counter_section(plan) -> "list[str]":
    from ..runtime.batch_counter import (gemm_group_working_bytes,
                                         trsm_group_working_bytes)
    machine = plan.machine
    if plan.kind == "gemm":
        work = gemm_group_working_bytes(plan.problem, machine)
    else:
        work = trsm_group_working_bytes(plan.problem, machine)
    gpr = plan.groups_per_round
    rounds = math.ceil(plan.groups / gpr)
    round_set = work * min(gpr, plan.groups)
    raw = max(1, machine.l1.size // work)
    if gpr < raw:
        gpr_line = (f"groups per round: {gpr} (clamped to the batch's "
                    f"{plan.groups} groups; L1 alone would allow {raw})")
    else:
        gpr_line = (f"groups per round: {gpr} "
                    f"(= max(1, L1 // working_set) = max(1, "
                    f"{machine.l1.size} // {work}))")
    lines = [
        f"working set per group: {_fmt_bytes(work)}",
        f"L1 capacity: {_fmt_bytes(machine.l1.size)}",
        gpr_line,
        f"batch rounds: {rounds} x {gpr} groups covering "
        f"{plan.groups} groups",
    ]
    if work > machine.l1.size:
        lines.append("verdict: one group alone exceeds L1 — degenerate "
                     "single-group rounds, traffic served from L2")
    else:
        fits = round_set <= machine.l1.size
        lines.append(f"round working set: {_fmt_bytes(round_set)} — "
                     + ("fits in L1, packed buffers simulated warm"
                        if fits else "exceeds L1, packed buffers demoted "
                        "to L2"))
    lines.append("buffer residency: "
                 + ", ".join(f"{name}={spec.warm}"
                             for name, spec in sorted(plan.buffers.items())))
    return lines


def _pack_selector_section(plan, deep: bool, registry) -> "list[str]":
    machine = plan.machine
    packing = plan.meta.get("packing", {})
    lines = [f"strategy: " + ", ".join(f"{op}: {how}"
                                       for op, how in packing.items())]
    if plan.kind == "gemm":
        reasons = plan.meta.get("pack_reasons", {})
        for op in ("A", "B"):
            if op in reasons:
                lines.append(f"reason {op}: {reasons[op]}")
    else:
        norm = plan.meta.get("norm")
        if norm is not None:
            lines.append(
                f"mode normalization: d={norm.d} n_rhs={norm.n_rhs} "
                f"flip={norm.flip} transpose_b={norm.transpose_b} "
                f"unit={norm.unit} alpha={norm.alpha}")
        reason = plan.meta.get("pack_reason_b")
        if reason:
            lines.append(f"reason B: {reason}")
    lines.append(f"analytic pack cost: "
                 f"{plan.pack_cost.cycles(machine):.0f} cycles; "
                 f"unpack: {plan.unpack_cost.cycles(machine):.0f} cycles")
    if deep and registry is not None:
        alt = _alternative_plan(plan, registry)
        if alt is not None:
            from ..runtime.engine import Engine
            engine = Engine(machine)
            ours = engine.time_plan(plan).total_cycles
            theirs = engine.time_plan(alt).total_cycles
            label = ("forced-pack" if _has_nopack(plan) else "no-pack")
            verdict = "selector wins" if ours <= theirs else \
                "alternative would have been faster"
            lines.append(
                f"cost comparison: selected plan {ours:.0f} cycles vs "
                f"{label} alternative {theirs:.0f} cycles "
                f"({theirs / ours:.2f}x) — {verdict}")
    return lines


def _has_nopack(plan) -> bool:
    if plan.kind == "gemm":
        packing = plan.meta.get("packing", {})
        return "no-pack" in packing.values()
    return bool(plan.meta.get("b_nopack"))


def _alternative_plan(plan, registry):
    """The road not taken: forced-pack if any no-pack was chosen."""
    from ..runtime.plan import build_gemm_plan, build_trsm_plan
    if not _has_nopack(plan):
        return None        # both operands already packed; nopack is
    if plan.kind == "gemm":   # shape-infeasible, nothing to compare
        return build_gemm_plan(plan.problem, plan.machine, registry,
                               force_pack=True,
                               main_override=plan.meta.get("main_kernel"))
    return build_trsm_plan(plan.problem, plan.machine, registry,
                           force_pack=True)


def _tiles_section(plan) -> "list[str]":
    lines = []
    if plan.kind == "gemm":
        lines.append(f"main kernel (CMAR): "
                     f"{plan.meta.get('main_kernel')}")
        lines.append(f"m tiles: {plan.problem.m} -> "
                     f"{plan.meta.get('m_tiles')}")
        lines.append(f"n tiles: {plan.problem.n} -> "
                     f"{plan.meta.get('n_tiles')}")
    else:
        lines.append(f"diagonal blocks: {plan.meta.get('blocks')} "
                     f"(whole_in_regs={plan.meta.get('whole_in_regs')})")
        lines.append(f"rhs panel width padded to n_pad="
                     f"{plan.meta.get('n_pad')}")
    lines.append(f"kernel calls per group: {len(plan.calls)}")
    for name in plan.kernels_used:
        lines.append(f"  - {name}")
    sweep = plan.meta.get("autotune_sweep")
    if sweep:
        lines.append("autotune sweep (timed on the machine model):")
        best = min(entry["total_cycles"] for entry in sweep)
        for entry in sweep:
            mark = "<- chosen" if entry["total_cycles"] == best else ""
            lines.append(f"  candidate {entry['candidate']}: "
                         f"{entry['total_cycles']:.0f} cycles {mark}".rstrip())
    return lines


def _decision_section(plan) -> "list[str]":
    """Where the plan's decisions came from: the analytic CMAR rules,
    a persisted install-time TuningDB record, or a run-time autotune
    sweep — with the record's provenance when tuned."""
    d = plan.meta.get("decision") or {"source": "analytic"}
    source = d.get("source", "analytic")
    if source == "tuned":
        lines = [
            f"source: tuned @ db v{d.get('db_schema')} "
            f"(tuner v{d.get('tuner_version')}, "
            f"{d.get('candidates')} candidates swept)",
            f"record: {d.get('cycles'):.0f} cycles measured at batch "
            f"{d.get('batch')}",
        ]
        main = d.get("main")
        applied = [f"main={main[0]}x{main[1]}" if main is not None
                   else "main=fixed",
                   "pack=tuned" if d.get("force_pack") else "pack=analytic",
                   "schedule=" + ("on" if d.get("schedule", True)
                                  else "off")]
        lines.append("applied: " + " ".join(applied))
        # schema-v3 record provenance: where/how/when the sweep ran
        # (absent on records loaded from legacy v1/v2 files)
        if d.get("machine_id") or d.get("evaluator_version"):
            prov = [f"machine={d.get('machine_id') or '?'}",
                    f"sweep={d.get('sweep', 'full')}"]
            if d.get("space"):
                prov.append(f"({d.get('candidates')}/{d.get('space')} "
                            "of space measured)")
            prov.append(f"evaluator v{d.get('evaluator_version')}")
            ts = d.get("timestamp") or 0.0
            prov.append(f"at t={ts:.0f}" if ts else "unstamped")
            lines.append("provenance: " + " ".join(prov))
        return lines
    if source == "runtime-autotune":
        return [f"source: run-time autotune "
                f"({d.get('candidates')} candidates timed on the "
                f"machine model)"]
    return ["source: analytic CMAR (no TuningDB record applied)"]


def _timing_section(plan) -> "list[str]":
    from ..runtime.engine import Engine
    t = Engine(plan.machine).time_plan(plan)
    d = t.detail
    total = t.total_cycles
    def pct(x: float) -> str:
        return f"{100.0 * x / total:5.1f}%"
    lines = [
        f"total: {total:.0f} cycles = {t.gflops:.2f} GFLOPS "
        f"({t.percent_of_peak:.1f}% of peak)",
        f"  kernel:   {t.kernel_cycles:12.0f} cycles  {pct(t.kernel_cycles)}"
        f"  ({t.kernel_cycles_per_group} / group x {t.groups} groups)",
        f"  pack:     {t.pack_cycles:12.0f} cycles  {pct(t.pack_cycles)}",
        f"  unpack:   {t.unpack_cycles:12.0f} cycles  {pct(t.unpack_cycles)}",
        f"  overhead: {t.overhead_cycles:12.0f} cycles  "
        f"{pct(t.overhead_cycles)}",
        f"pipeline detail (one group): {d.instructions} instructions in "
        f"{d.cycles} cycles (IPC {d.ipc:.2f})",
        f"  stall cycles: {d.stall_cycles}  fp issued: {d.fp_issued}  "
        f"mem issued: {d.mem_issued}",
        f"  L1 misses: {d.l1_misses}  L2 misses: {d.l2_misses}",
    ]
    return lines


def _backend_section(backend, compiled) -> "list[str]":
    lines = [f"backend: {backend.name} "
             + ("(replays the lowered command stream)"
                if backend.needs_lowering
                else "(interprets programs instruction by instruction)")]
    inner = getattr(backend, "inner", None)
    if inner is not None:
        lines.append(f"sharding: group axis over {backend.workers} "
                     f"{getattr(backend, 'mode', 'thread')} workers, "
                     f"inner backend {inner.name!r}")
    names = {backend.name, inner.name if inner is not None else ""}
    if "megakernel" in names and compiled is not None:
        lines.extend(_megakernel_section(compiled))
    if compiled is not None:
        s = compiled.stats
        lines.append(
            f"lowered: {s['instructions']} instructions over "
            f"{s['calls']} calls -> {compiled.num_commands} commands "
            f"({s['mem_commands']} mem, {s['fp_commands']} fp)")
        lines.append(
            f"constant-folded at lower time: {s['folded_addi']} "
            f"pointer-arithmetic instrs; dropped: {s['dropped']} "
            f"prefetch/nop")
        p = s.get("passes")
        if p:
            lines.append(
                f"pass pipeline: {p['commands_before']} -> "
                f"{p['commands_after']} commands "
                f"(dce -{p['dce_removed']}, fuse -{p['fuse_commands']}, "
                f"coalesce -{p['coalesce_commands']})")
            lines.append(
                f"  fused chains: {p['fuse_chains']} "
                f"(longest {p['fuse_max_chain']}); wide copies: "
                f"{p['coalesce_loads']} load / {p['coalesce_stores']} "
                f"store ({p['coalesce_vectorized']} vectorized 16-B)")
    return lines


def _megakernel_section(compiled) -> "list[str]":
    """Trace-compiler stats for a plan run under ``megakernel``.

    Reports the cached program when one is already riding the lowered
    plan; otherwise compiles it here (explain is diagnostic — warming
    the cache is a feature, and the miss is reported honestly).
    """
    from ..runtime.megakernel import PROGRAM_KEY, ensure_program

    hit = PROGRAM_KEY in compiled.attachments
    prog = ensure_program(compiled)
    s = prog.stats
    lines = [
        f"megakernel: {s['segments']} trace segments -> "
        f"{s['loc']} generated lines, compiled in "
        f"{s['compile_ms']:.2f} ms "
        + ("(cache hit: program reused)" if hit
           else "(cache miss: compiled now, cached on the plan)"),
        f"  staging: {len(prog.staged)} buffers / {prog.stage_slots} "
        f"stage slots; macro-op stack depth {prog.stack_need}",
        f"  ops: {s['batched_macc']} batched MACC "
        f"({s['scalar_macc']} scalar), {s['batched_runs']} batched "
        f"runs, {s['prop_loads']} loads propagated away",
    ]
    return lines


def _plan_cache_section(stats: dict) -> "list[str]":
    total = stats.get("hits", 0) + stats.get("misses", 0)
    rate = stats.get("hit_rate", 0.0)
    lines = [
        f"entries: {stats.get('size', 0)} / {stats.get('maxsize', 0)}",
        f"lookups: {total} ({stats.get('hits', 0)} hits, "
        f"{stats.get('misses', 0)} misses) -> hit rate {100.0 * rate:.1f}%",
        f"evictions: {stats.get('evictions', 0)}; "
        f"invalidations: {stats.get('invalidations', 0)}",
    ]
    if total and rate < 0.5:
        lines.append("verdict: mostly cold — plans are not being reused "
                     "(expected on first calls; a concern under steady "
                     "serving traffic)")
    return lines


def explain(plan, *, registry=None, deep: bool = False, backend=None,
            compiled=None, plan_cache=None) -> ExplainReport:
    """Build the decision report for one :class:`ExecutionPlan`.

    ``deep`` additionally runs the cycle model: the pack-vs-nopack cost
    comparison (needs ``registry``, a :class:`KernelRegistry`, to build
    the alternative plan) and the full ``TimingResult`` breakdown.
    ``backend`` (an executor backend) adds an execution-backend section,
    with lowering statistics when its ``compiled`` plan is supplied.
    ``plan_cache`` (a :meth:`PlanCache.stats` dict) adds a plan-cache
    section so operators see reuse alongside the plan's decisions.
    """
    report = ExplainReport(kind=plan.kind, problem=plan.problem,
                           machine_name=plan.machine.name)
    report.sections.append(
        ("batch counter (Section 5.1)", _batch_counter_section(plan)))
    report.sections.append(
        ("pack selector (Section 5.2)",
         _pack_selector_section(plan, deep, registry)))
    report.sections.append(
        ("tile decomposition (Section 4 / autotune)", _tiles_section(plan)))
    report.sections.append(
        ("decision provenance (install-time tuning)",
         _decision_section(plan)))
    if backend is not None:
        report.sections.append(
            ("execution backend", _backend_section(backend, compiled)))
    if plan_cache is not None:
        report.sections.append(
            ("plan cache", _plan_cache_section(plan_cache)))
    if deep:
        report.sections.append(
            ("timing breakdown (cycle model)", _timing_section(plan)))
    return report
