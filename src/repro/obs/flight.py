"""The flight recorder: an always-on ring that answers "what just
happened?" after something went wrong.

Counters and histograms survive an incident but lose its *sequence*;
the event ring keeps sequence but only for events.  The
:class:`FlightRecorder` keeps a small bounded ring of the most recent
**spans**, **events**, and **stats pulses** — cheap enough to leave on
in production — and freezes them into one self-contained JSON
post-mortem when triggered:

* automatically, on a poisoned bucket (a flush error fails every
  request in the batch) or a :class:`~repro.errors.RejectedError`
  storm (admission rejecting faster than a configured rate), both
  rate-limited by a cooldown so an incident produces one dump, not one
  per failure;
* on demand, via the ``/flight`` endpoint or
  ``python -m repro.obs flight``.

Feeding the rings costs one deque append per span/event, and only for
telemetry that is already being recorded — :meth:`attach` hooks the
registry's ``record_span`` and the event log's ``emit``/``absorb``, so
the disabled path (no spans, no events) stays allocation-free and the
recorder never makes quiet code loud.  Stats pulses are pushed by the
service (one compact dict per flush), not pulled, so the recorder
needs no thread.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

from . import core

__all__ = ["FlightRecorder", "get_flight", "install_flight"]


class FlightRecorder:
    """Bounded recent-history rings plus triggered post-mortem dumps.

    ``dump_dir`` makes automatic dumps durable (one
    ``flight-<n>-<trigger>.json`` per trigger); without it the latest
    dump is kept in memory (``last_dump``) where the ``/flight``
    endpoint and tests can read it.
    """

    def __init__(self, spans: int = 512, events: int = 512,
                 pulses: int = 128, dump_dir: "str | None" = None,
                 cooldown_s: float = 30.0,
                 storm_window_s: float = 10.0,
                 storm_threshold: int = 50) -> None:
        self._spans: deque = deque(maxlen=max(1, spans))
        self._events: deque = deque(maxlen=max(1, events))
        self._pulses: deque = deque(maxlen=max(1, pulses))
        self._rejects: deque = deque()   # monotonic reject timestamps
        self._lock = threading.Lock()
        self.dump_dir = dump_dir
        self.cooldown_s = float(cooldown_s)
        self.storm_window_s = float(storm_window_s)
        self.storm_threshold = int(storm_threshold)
        self.dumps = 0
        self.suppressed = 0
        self.last_dump: "dict | None" = None
        self._last_trigger_t: "float | None" = None

    # -- feeding (hot paths: one lock, one append) ----------------------

    def note_span(self, record) -> None:
        with self._lock:
            self._spans.append(record)

    def note_event(self, record: dict) -> None:
        with self._lock:
            self._events.append(record)

    def note_pulse(self, pulse: dict) -> None:
        """One compact stats delta (the service pushes one per flush)."""
        with self._lock:
            self._pulses.append(pulse)

    def note_reject(self, tenant: str,
                    now: "float | None" = None) -> "dict | None":
        """Track one admission rejection; returns a dump when this one
        tips the window over the storm threshold (else ``None``)."""
        t = time.monotonic() if now is None else now
        with self._lock:
            self._rejects.append(t)
            horizon = t - self.storm_window_s
            while self._rejects and self._rejects[0] < horizon:
                self._rejects.popleft()
            storm = len(self._rejects) >= self.storm_threshold
        if storm:
            return self.trigger("reject_storm", now=t, tenant=tenant,
                                rejects_in_window=len(self._rejects),
                                window_s=self.storm_window_s)
        return None

    # -- attachment -----------------------------------------------------

    def attach(self, registry: "core.Registry | None" = None
               ) -> "FlightRecorder":
        """Hook this recorder into ``registry`` (the process-wide one
        by default): every span it records and every event its log
        emits or absorbs is mirrored into the rings."""
        reg = registry if registry is not None else core.get_registry()
        reg._flight = self
        reg.events._flight = self
        return self

    @staticmethod
    def detach(registry: "core.Registry | None" = None) -> None:
        reg = registry if registry is not None else core.get_registry()
        reg._flight = None
        if reg._events is not None:
            reg._events._flight = None

    # -- dumping --------------------------------------------------------

    def snapshot(self) -> dict:
        """The rings as JSON-able lists, oldest first."""
        with self._lock:
            spans = list(self._spans)
            events = [dict(r) for r in self._events]
            pulses = [dict(p) for p in self._pulses]
        return {
            "spans": [{
                "name": s.name, "start_us": s.start_us,
                "dur_us": s.dur_us, "tid": s.tid, "depth": s.depth,
                "pid": getattr(s, "pid", 0), "args": dict(s.args),
                "trace_id": s.trace_id, "span_id": s.span_id,
                "parent_id": s.parent_id,
            } for s in spans],
            "events": events,
            "stats_pulses": pulses,
        }

    def dump(self, trigger: str, **detail) -> dict:
        """Freeze the rings into one post-mortem dict (no rate limit —
        this is the on-demand path)."""
        dump = {
            "trigger": trigger,
            "detail": detail,
            "captured_at": time.time(),
            "dumps_so_far": self.dumps,
            **self.snapshot(),
        }
        with self._lock:
            self.dumps += 1
            self.last_dump = dump
            n = self.dumps
        if self.dump_dir is not None:
            path = f"{self.dump_dir}/flight-{n}-{trigger}.json"
            with open(path, "w") as f:
                json.dump(dump, f, sort_keys=True, indent=1)
            dump["path"] = path
        return dump

    def trigger(self, trigger: str, now: "float | None" = None,
                **detail) -> "dict | None":
        """Rate-limited dump for automatic triggers: within
        ``cooldown_s`` of the previous automatic dump the trigger is
        counted (``suppressed``) but produces nothing, so one incident
        yields one post-mortem instead of hundreds."""
        t = time.monotonic() if now is None else now
        with self._lock:
            last = self._last_trigger_t
            if last is not None and (t - last) < self.cooldown_s:
                self.suppressed += 1
                return None
            self._last_trigger_t = t
        return self.dump(trigger, **detail)

    def stats(self) -> dict:
        with self._lock:
            return {"spans": len(self._spans), "events": len(self._events),
                    "stats_pulses": len(self._pulses), "dumps": self.dumps,
                    "suppressed": self.suppressed}

    def route(self, query) -> "tuple[str, str]":
        """``/flight`` handler: an on-demand post-mortem of the current
        rings (pass ``?last=1`` for the most recent *triggered* dump
        instead — the one that captured the incident)."""
        if query.get("last") and self.last_dump is not None:
            body = self.last_dump
        else:
            body = self.dump("on_demand")
        return (json.dumps(body, sort_keys=True, indent=2) + "\n",
                "application/json")


#: process-wide recorder (None until something installs one)
_flight: "FlightRecorder | None" = None


def get_flight() -> "FlightRecorder | None":
    """The installed process-wide recorder, if any."""
    return _flight


def install_flight(recorder: "FlightRecorder | None" = None,
                   registry: "core.Registry | None" = None
                   ) -> FlightRecorder:
    """Install (and attach) a process-wide flight recorder; reuses the
    existing one when called twice without an explicit recorder."""
    global _flight
    if recorder is None:
        recorder = _flight if _flight is not None else FlightRecorder()
    _flight = recorder
    return recorder.attach(registry)
