"""Service-level objectives with multi-window burn-rate alerts.

An :class:`SLOSpec` is one declarative per-tenant objective over the
serve-layer telemetry — "p99 wait under 250 ms", "deadline misses
under 1%", "rejects under 5%" — and :class:`SLOMonitor` evaluates a
set of them the way a production alerting stack would: not on instant
values (one slow request would page) and not on all-time totals (a bad
hour would hide in a good week), but on **burn rates over two
windows**.  The burn rate is how fast the tenant is consuming its
error budget — ``(bad / total) / allowed_bad_ratio`` — and an alert
requires the budget to be burning in *both* a fast window (is it
happening now?) and a slow window (has it been happening long enough
to matter?).  Burn ≥ ``page_burn`` in both windows pages; burn ≥
``warn_burn`` in both warns; anything else is ok.

The monitor is deliberately shaped like :class:`DeltaExporter`: it
keeps its own ring of timestamped :meth:`Registry.snapshot` dicts and
every evaluation is a pure function of two snapshots, so scrapes stay
read-only on the registry (idle must remain observable) and sampling
is driven by whoever scrapes ``/slo`` — no extra thread.

All three objective kinds read the per-tenant telemetry the service
emits (``serve.tenant.<t>.submitted`` / ``.completed`` /
``.deadline_missed`` / ``.rejected`` counters, the
``serve.tenant.<t>.wait_ms`` histogram):

* ``latency`` — objective is a threshold in ms at a quantile; "bad"
  is the windowed count of requests whose wait landed in a histogram
  bucket above the threshold, allowed ratio is ``1 - quantile``;
* ``deadline_miss`` — objective is the allowed miss ratio, bad/total
  = windowed ``deadline_missed`` / ``completed``;
* ``reject`` — objective is the allowed reject ratio, bad/total =
  windowed ``rejected`` / (``submitted`` + ``rejected``).
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

from . import core

__all__ = ["SLOSpec", "SLOMonitor", "KINDS", "default_specs"]

#: objective kinds the monitor evaluates
KINDS = ("latency", "deadline_miss", "reject")

#: verdicts, least to most severe (the order ``obs watch`` folds them in)
VERDICTS = ("no_data", "ok", "warn", "page")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective for one tenant.

    ``objective`` is a threshold in milliseconds for ``latency`` (at
    ``quantile``), and the maximum allowed bad-ratio for the two ratio
    kinds.  ``warn_burn``/``page_burn`` are multiples of the allowed
    budget: burn 1.0 means exactly on budget, 6.0 means burning six
    times faster than the objective allows.
    """

    name: str
    tenant: str
    kind: str
    objective: float
    quantile: float = 0.99
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    warn_burn: float = 1.0
    page_burn: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"kinds: {', '.join(KINDS)}")
        if self.objective <= 0.0:
            raise ValueError(f"SLO objective must be positive, "
                             f"got {self.objective}")
        if self.kind != "latency" and self.objective >= 1.0:
            raise ValueError(f"{self.kind} objective is a ratio and must "
                             f"be < 1.0, got {self.objective}")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), "
                             f"got {self.quantile}")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("SLO windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise ValueError(
                f"fast window ({self.fast_window_s}s) must not exceed "
                f"the slow window ({self.slow_window_s}s)")

    @property
    def allowed_ratio(self) -> float:
        """The bad-request ratio the objective tolerates."""
        if self.kind == "latency":
            return 1.0 - self.quantile
        return self.objective


def default_specs(tenant: str = "default") -> "list[SLOSpec]":
    """A sane starter set for one tenant: p99 wait under 250 ms,
    deadline misses under 1%, rejects under 5%."""
    return [
        SLOSpec(name=f"{tenant}-wait-p99", tenant=tenant, kind="latency",
                objective=250.0, quantile=0.99),
        SLOSpec(name=f"{tenant}-deadline-miss", tenant=tenant,
                kind="deadline_miss", objective=0.01),
        SLOSpec(name=f"{tenant}-reject", tenant=tenant, kind="reject",
                objective=0.05),
    ]


def _counter_delta(before: dict, after: dict, name: str) -> float:
    prev = before.get("counters", {}).get(name, 0)
    now = after.get("counters", {}).get(name, 0)
    return max(0.0, now - prev)


def _cum_le(hist: dict, threshold: float) -> float:
    """Cumulative windowless count of observations ≤ the first bucket
    boundary at/above ``threshold`` (the whole count when the
    threshold exceeds every boundary means nothing is 'bad' that the
    buckets can see — callers diff the +Inf tail instead)."""
    buckets = hist.get("buckets", ())
    les = [b[0] for b in buckets]
    idx = bisect_left(les, threshold)
    if idx >= len(buckets):
        return float(hist.get("count", 0))
    return float(buckets[idx][1])


class SLOMonitor:
    """Evaluates a set of :class:`SLOSpec` over snapshot history.

    ``sample()`` appends one timestamped registry snapshot to the
    ring; ``evaluate()`` diffs the latest sample against the newest
    sample old enough for each window (truncating to monitor age while
    the history is younger than the window, so a fresh service still
    gets verdicts).  ``route`` is the ``/slo`` endpoint handler: each
    scrape takes one sample, then evaluates — the scraper's own
    cadence is the sampling cadence, exactly like ``/delta.json``.
    """

    MAX_SAMPLES = 720

    def __init__(self, specs: "list[SLOSpec] | None" = None,
                 registry: "core.Registry | None" = None,
                 max_samples: int = MAX_SAMPLES) -> None:
        self.specs = list(specs) if specs is not None else default_specs()
        self._registry = registry
        self._samples: "deque[tuple[float, dict]]" = deque(
            maxlen=max(2, int(max_samples)))

    def registry(self) -> "core.Registry":
        return (self._registry if self._registry is not None
                else core.get_registry())

    def sample(self, now: "float | None" = None) -> None:
        """Append one timestamped snapshot to the history ring."""
        t = time.monotonic() if now is None else now
        self._samples.append((t, self.registry().snapshot()))

    # -- evaluation -----------------------------------------------------

    def _window_base(self, now: float, seconds: float) -> "dict | None":
        """The newest sample at least ``seconds`` old — or the oldest
        sample we have (window truncated to monitor age)."""
        target = now - seconds
        base = None
        for t, snap in self._samples:
            if t <= target:
                base = snap
            else:
                break
        if base is None and len(self._samples) >= 2:
            base = self._samples[0][1]
        return base

    def _bad_total(self, spec: SLOSpec, before: dict,
                   after: dict) -> "tuple[float, float]":
        t = spec.tenant
        if spec.kind == "deadline_miss":
            return (_counter_delta(before, after,
                                   f"serve.tenant.{t}.deadline_missed"),
                    _counter_delta(before, after,
                                   f"serve.tenant.{t}.completed"))
        if spec.kind == "reject":
            rejected = _counter_delta(before, after,
                                      f"serve.tenant.{t}.rejected")
            submitted = _counter_delta(before, after,
                                       f"serve.tenant.{t}.submitted")
            return rejected, submitted + rejected
        name = f"serve.tenant.{t}.wait_ms"
        hb = before.get("histograms", {}).get(name, {})
        ha = after.get("histograms", {}).get(name, {})
        total = max(0.0, ha.get("count", 0) - hb.get("count", 0))
        good = max(0.0, _cum_le(ha, spec.objective)
                   - _cum_le(hb, spec.objective))
        return max(0.0, total - good), total

    def _window_view(self, spec: SLOSpec, now: float, seconds: float,
                     latest: dict) -> dict:
        base = self._window_base(now, seconds)
        if base is None:
            return {"window_s": seconds, "bad": 0.0, "total": 0.0,
                    "ratio": None, "burn": None}
        bad, total = self._bad_total(spec, base, latest)
        if total <= 0:
            return {"window_s": seconds, "bad": bad, "total": total,
                    "ratio": None, "burn": None}
        ratio = bad / total
        return {"window_s": seconds, "bad": bad, "total": total,
                "ratio": ratio, "burn": ratio / spec.allowed_ratio}

    def evaluate(self, now: "float | None" = None) -> "list[dict]":
        """One verdict dict per spec, from the current history."""
        t = time.monotonic() if now is None else now
        latest = self._samples[-1][1] if self._samples else {}
        out = []
        for spec in self.specs:
            fast = self._window_view(spec, t, spec.fast_window_s, latest)
            slow = self._window_view(spec, t, spec.slow_window_s, latest)
            burns = (fast["burn"], slow["burn"])
            if any(b is None for b in burns):
                # a window without traffic is not burning budget; both
                # empty means there is nothing to judge at all
                verdict = ("no_data" if all(b is None for b in burns)
                           else "ok")
            elif all(b >= spec.page_burn for b in burns):
                verdict = "page"
            elif all(b >= spec.warn_burn for b in burns):
                verdict = "warn"
            else:
                verdict = "ok"
            out.append({
                "name": spec.name,
                "tenant": spec.tenant,
                "kind": spec.kind,
                "objective": spec.objective,
                "quantile": (spec.quantile if spec.kind == "latency"
                             else None),
                "allowed_ratio": spec.allowed_ratio,
                "warn_burn": spec.warn_burn,
                "page_burn": spec.page_burn,
                "fast": fast,
                "slow": slow,
                "verdict": verdict,
            })
        return out

    def dump(self, now: "float | None" = None) -> dict:
        """The ``/slo`` payload: verdicts plus monitor health."""
        verdicts = self.evaluate(now)
        worst = "no_data"
        for v in verdicts:
            if VERDICTS.index(v["verdict"]) > VERDICTS.index(worst):
                worst = v["verdict"]
        return {"slos": verdicts, "worst": worst,
                "samples": len(self._samples)}

    def route(self, query) -> "tuple[str, str]":
        """``/slo`` handler for :meth:`TelemetryServer.add_route`.

        Takes one sample, then evaluates — read-only on the registry
        (the history ring lives in the monitor, like
        :class:`DeltaExporter`'s previous snapshot)."""
        self.sample()
        return (json.dumps(self.dump(), sort_keys=True, indent=2) + "\n",
                "application/json")
