"""Cross-process telemetry merge: re-home a forked worker's telemetry.

``ParallelBackend(mode="process")`` forks shard workers; each child
inherits the parent's registry, span context, *and* span-id counter at
fork time, then records its ``backend.*``/``obs.*`` telemetry into a
copy-on-write registry the parent never sees — so before this module,
process mode silently dropped every child-side counter, histogram,
span, and event.  The fix is a three-step protocol over the backend's
existing error-queue channel:

1. **child_begin** (in the forked child, before any work): swap in a
   fresh :class:`~repro.obs.core.Registry` so the capture ships only
   what the child itself recorded — the inherited pre-fork contents
   would otherwise double-count into the parent on merge.
2. **child_capture** (in the child, after the shard ran): freeze the
   child registry into one flat, picklable payload — counter values,
   raw histogram internals (count/total/min/max, per-bucket counts,
   recent sample), finished spans as dicts, event records.
3. **merge_child** (in the parent, after join): fold counters as
   deltas (gauges as last-write levels), merge histograms exactly,
   absorb events, and **re-home the spans**: every child span id gets
   a ``p<pid>.`` prefix (the forked child inherited the parent's
   ``itertools.count`` id source, so raw child ids collide with span
   ids the parent minted after the fork), intra-payload parent links
   are rewritten to match, and each shard-tree root is re-parented
   under the carrier span that launched the fork (``shard_root=True``
   in its args marks the seam for the trace validator).

Timestamps need no adjustment: spans are stamped with
``time.perf_counter``, which on Linux is CLOCK_MONOTONIC — one
system-wide clock, so parent and child microseconds are directly
comparable and the merged Chrome trace lines up across pid tracks.
"""

from __future__ import annotations

import os

from . import core
from .spans import SpanRecord

__all__ = ["child_begin", "child_capture", "merge_child"]


def child_begin() -> "core.Registry":
    """Install a fresh process-wide registry in a forked child.

    Call before the shard does any work.  Everything the child records
    afterwards is purely its own; the inherited copy-on-write registry
    (with all the parent's pre-fork telemetry) is dropped.  Returns
    the new registry.
    """
    reg = core.Registry()
    core.set_registry(reg)
    return reg


def child_capture(shard: "int | None" = None,
                  registry: "core.Registry | None" = None) -> dict:
    """Freeze a child registry into one flat picklable payload.

    Ships everything :func:`merge_child` needs: counter values with
    their counter/gauge kinds, exact histogram internals, finished
    spans as plain dicts, and the event ring.  Safe to call from the
    ``finally`` of a failed shard — a crashed worker's telemetry is
    exactly what the post-mortem wants.
    """
    reg = registry if registry is not None else core.get_registry()
    with reg._lock:
        counters = sorted(reg._counters.items())
        histograms = sorted(reg._histograms.items())
        spans = list(reg.spans)
        dropped_spans = reg.dropped_spans
        events = reg._events
    hist_out = {}
    for name, h in histograms:
        with h._lock:
            hist_out[name] = {
                "count": h.count,
                "total": h.total,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "bucket_counts": list(h._bucket_counts),
                "sample": list(h._sample),
            }
    return {
        "pid": os.getpid(),
        "shard": shard,
        "counters": {name: c.value for name, c in counters},
        "gauge_names": [name for name, c in counters
                        if c.kind == "gauge"],
        "histograms": hist_out,
        "spans": [{
            "name": s.name, "start_us": s.start_us, "dur_us": s.dur_us,
            "tid": s.tid, "depth": s.depth, "args": dict(s.args),
            "trace_id": s.trace_id, "span_id": s.span_id,
            "parent_id": s.parent_id,
        } for s in spans],
        "dropped_spans": dropped_spans,
        "events": (events.tail(len(events)) if events is not None
                   else []),
    }


def merge_child(payload: dict,
                registry: "core.Registry | None" = None,
                carrier: "tuple | None" = None) -> None:
    """Fold one child payload into ``registry`` (the current one by
    default).

    ``carrier`` is the parent-side trace context captured just before
    the fork (``obs.carrier()``): shard-tree roots are re-parented
    under its span and every re-homed span joins its trace, so one
    process-mode ``run_plan`` reads as one tree in the viewer.
    Without a carrier, roots stay roots and child trace ids are
    pid-prefixed so they cannot collide with traces the parent minted
    after the fork.
    """
    reg = registry if registry is not None else core.get_registry()
    pid = int(payload["pid"])
    prefix = f"p{pid}."
    gauges = set(payload.get("gauge_names", ()))
    for name, value in payload.get("counters", {}).items():
        if name in gauges:
            reg.counter(name).set(value)
        else:
            reg.counter(name).inc(value)
    for name, shipped in payload.get("histograms", {}).items():
        reg.histogram(name).merge(shipped)
    car_trace = carrier[0] if carrier is not None else None
    car_span = carrier[1] if carrier is not None else None
    shipped_ids = {s["span_id"] for s in payload.get("spans", ())
                   if s["span_id"]}
    for s in payload.get("spans", ()):
        args = dict(s["args"])
        parent = s["parent_id"]
        if parent in shipped_ids:
            parent = prefix + parent
        else:
            # a root of the shard's tree: its recorded parent (if any)
            # was the context inherited through fork — re-parent it
            # under the carrier span and mark the process seam
            args["shard_root"] = True
            parent = car_span
        trace = s["trace_id"]
        if car_trace is not None:
            trace = car_trace
        elif trace:
            trace = prefix + trace
        reg.record_span(SpanRecord(
            name=s["name"], start_us=s["start_us"], dur_us=s["dur_us"],
            tid=s["tid"], depth=s["depth"], args=args, trace_id=trace,
            span_id=(prefix + s["span_id"]) if s["span_id"] else "",
            parent_id=parent, pid=pid))
    events = payload.get("events", ())
    if events:
        log = reg.events
        for record in events:
            rec = dict(record)
            if rec.get("trace_id"):
                if car_trace is not None:
                    rec["trace_id"] = car_trace
                else:
                    rec["trace_id"] = prefix + rec["trace_id"]
            if rec.get("span_id"):
                rec["span_id"] = prefix + rec["span_id"]
            log.absorb(rec)
    dropped = int(payload.get("dropped_spans", 0))
    if dropped:
        with reg._lock:
            reg.dropped_spans += dropped
    reg.counter("obs.procagg.merged").inc()
