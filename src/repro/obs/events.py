"""Structured, leveled events: the durable record of discrete facts.

Counters say *how often*, histograms say *how much*, spans say *how
long* — events say **what happened**: a plan-cache eviction, a TuningDB
fallback, a watchdog verdict.  Each event is one flat JSON-able record
(timestamp, level, name, free-form fields, and the live trace context
if a span is open), appended to a bounded in-memory ring on the
registry and, optionally, to a size-rotated JSONL file sink.

Usage::

    from repro import obs
    with obs.scoped() as reg:
        obs.event("tuning.fallback", reason="corrupt db")
        obs.event("watch.regression", level="warn", series="sgemm8")
        for rec in reg.events.tail(10):
            print(rec["name"], rec["fields"])

Design constraints match the rest of :mod:`repro.obs`: the module-level
:func:`event` helper is a true no-op while instrumentation is disabled
(one global check, zero allocation inside this module), every mutation
takes the log's lock, and everything is stdlib-only.  The enabled-path
cost self-accounts into the ``obs.overhead.events`` /
``obs.overhead.events.ms`` counters so the telemetry plane's own price
shows up in the telemetry.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from . import core, spans

__all__ = ["LEVELS", "EventLog", "FileSink", "event"]

#: severity order, least to most severe
LEVELS = ("debug", "info", "warn", "error")
_LEVEL_RANK = {name: i for i, name in enumerate(LEVELS)}


class FileSink:
    """Append-only JSONL sink with size-based rotation.

    When the active file exceeds ``max_bytes`` after a write, it is
    renamed to ``<path>.1`` (shifting older backups up to ``backups``,
    the oldest dropped) and a fresh file is started — so a long-running
    service's event log is bounded at roughly
    ``(backups + 1) * max_bytes``.  Writes are serialized by the owning
    :class:`EventLog`'s lock.
    """

    def __init__(self, path: str, max_bytes: int = 1_000_000,
                 backups: int = 1) -> None:
        if max_bytes < 1:
            raise ValueError("FileSink needs max_bytes >= 1")
        if backups < 0:
            raise ValueError("FileSink needs backups >= 0")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._f = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._f.write(json.dumps(record, sort_keys=True) + "\n")
        self._f.flush()
        if self._f.tell() >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._f.close()
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for i in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
        self._f = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        self._f.close()


class EventLog:
    """Bounded, thread-safe ring of structured events.

    The ring (``maxlen=RING``) keeps the most recent events for the
    ``/events`` endpoint and post-mortem inspection; events pushed out
    of the ring are counted in ``dropped``, never silently lost from
    the totals.  An optional :class:`FileSink` makes the stream
    durable.
    """

    RING = 4096

    def __init__(self, ring: int = RING) -> None:
        if ring < 1:
            raise ValueError("EventLog needs ring >= 1")
        self._ring: deque = deque(maxlen=ring)
        self._lock = threading.Lock()
        self._sink: "FileSink | None" = None
        self._flight = None          # FlightRecorder, via attach()
        self.logged = 0
        self.dropped = 0

    def emit(self, name: str, level: str = "info",
             fields: "dict | None" = None,
             trace_id: str = "", span_id: str = "") -> dict:
        """Append one event; returns the stored record."""
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown event level {level!r}; "
                             f"levels: {', '.join(LEVELS)}")
        record = {
            "ts": time.time(),
            "level": level,
            "name": name,
            "fields": dict(fields) if fields else {},
        }
        if trace_id:
            record["trace_id"] = trace_id
        if span_id:
            record["span_id"] = span_id
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(record)
            self.logged += 1
            if self._sink is not None:
                self._sink.write(record)
        flight = self._flight
        if flight is not None:
            flight.note_event(record)
        return record

    def absorb(self, record: dict) -> None:
        """Append an already-built event record verbatim (the
        cross-process merge re-homing a forked worker's events) —
        same ring/drop/sink accounting as :meth:`emit`, no
        re-stamping."""
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(record)
            self.logged += 1
            if self._sink is not None:
                self._sink.write(record)
        flight = self._flight
        if flight is not None:
            flight.note_event(record)

    def tail(self, n: int = 100, level: "str | None" = None,
             prefix: "str | None" = None) -> "list[dict]":
        """The most recent ``n`` events (oldest first), optionally
        filtered to ``level`` severity and above and/or to names
        starting with ``prefix`` (e.g. ``"tuning.retune."`` to follow
        one online re-tuning episode through the ring)."""
        with self._lock:
            records = list(self._ring)
        if level is not None:
            floor = _LEVEL_RANK.get(level)
            if floor is None:
                raise ValueError(f"unknown event level {level!r}; "
                                 f"levels: {', '.join(LEVELS)}")
            records = [r for r in records
                       if _LEVEL_RANK[r["level"]] >= floor]
        if prefix is not None:
            records = [r for r in records if r["name"].startswith(prefix)]
        return records[-max(0, n):]

    def attach_sink(self, sink: FileSink) -> None:
        """Route every subsequent event into ``sink`` as well."""
        with self._lock:
            self._sink = sink

    def detach_sink(self) -> "FileSink | None":
        with self._lock:
            sink, self._sink = self._sink, None
        return sink

    def stats(self) -> dict:
        with self._lock:
            return {"logged": self.logged, "dropped": self.dropped}

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def event(name: str, *, level: str = "info", **fields) -> None:
    """Record one structured event iff instrumentation is enabled.

    Attaches the live trace context (if a span is open) so events
    correlate with the span tree that produced them.  The enabled-path
    cost is self-accounted into ``obs.overhead.events`` (count) and
    ``obs.overhead.events.ms`` (accumulated milliseconds).
    """
    if not core._enabled:
        return
    t0 = time.perf_counter()
    reg = core.get_registry()
    ctx = spans.current_context()
    if ctx is None:
        reg.events.emit(name, level, fields)
    else:
        reg.events.emit(name, level, fields,
                        trace_id=ctx[0], span_id=ctx[1])
    reg.counter("obs.overhead.events").inc()
    reg.counter("obs.overhead.events.ms").inc(
        (time.perf_counter() - t0) * 1e3)
