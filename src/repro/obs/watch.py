"""Bench-trajectory regression watchdog (``python -m repro.obs watch``).

``BENCH_*.json`` files are perf *trajectories*: every bench/CI run
appends one uniform-schema point per executor backend (see
:mod:`repro.bench.trajectory`), so a regression shows up as a dip in a
series instead of a silently overwritten number.  This module is the
series' guard dog: it loads one or more trajectory files, groups points
by ``(machine, routine, backend, dtype, shape, batch)``, and compares
each series' **latest** point against the **best earlier** point.

Three checks, composable per invocation:

* **modeled GFLOPS** (default, threshold ``--threshold``, 10%) — the
  cycle model is deterministic pure Python, identical on every host, so
  this check is CI-stable: a dip can only come from a code change that
  made plans, kernels, or the model itself worse;
* **wall clock** (opt-in, ``--wall-threshold``) — host-dependent and
  noisy, so it is never on by default; useful on pinned perf runners;
* **backend ratio floor** (``--ratio-floor``) — within the *latest*
  run only: ``wall(compiled) / wall(fused) >= floor``, i.e. the fused
  stream must stay within the floor of the compiled replayer (the CI
  guard that used to live as an inline assert in the workflow);
* **megakernel ratio floor** (``--mega-floor``) — within the *latest*
  run only: ``wall(fused) / wall(megakernel) >= floor``, i.e. the
  trace-compiled backend must keep its measured speedup over the
  per-instruction fused replay;
* **model drift** (opt-in, ``--drift-threshold``) — per series, has the
  host's wall clock pulled away from the cycle model's prediction over
  time?  Drift verdicts are *advisory* (never the exit code): they feed
  :meth:`repro.runtime.iatf.IATF.retune_from_watch`, which re-sweeps
  the offending shapes and swaps fresh records into the TuningDB;
* **SLO fold-in** (opt-in, ``--slo PATH``) — a saved ``/slo`` dump's
  warn/page burn-rate verdicts are rendered alongside the perf checks.
  Advisory like drift: a burning SLO marks load or capacity, not a
  code change the trajectory diff could bisect.

Exit codes: 0 all series healthy, 1 regression detected, 2 schema
problems (unreadable file, malformed points, or nothing checkable).
Pre-schema (v1) points are skipped with a note, never an error.

Stdlib only, and no repro.runtime imports at all — the watchdog must
stay importable and runnable even when a perf regression comes with a
broken runtime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .events import event

__all__ = ["SCHEMA_VERSION", "WatchResult", "load_trajectory",
           "load_slo_dump", "point_key", "check_trajectory", "watch"]

SCHEMA_VERSION = 2
"""Uniform bench-point schema version.  v2 is the first uniform one
(machine id, backend, dtype, shape, modeled gflops, % of peak); the
ad-hoc v1 dicts had no ``schema`` key and are skipped on load."""

#: field name -> required type(s) for one v2 trajectory point
_POINT_FIELDS: "dict[str, tuple]" = {
    "schema": (int,),
    "machine": (str,),
    "machine_id": (str,),
    "routine": (str,),
    "backend": (str,),
    "dtype": (str,),
    "shape": (list, tuple),
    "batch": (int,),
    "gflops": (int, float),
    "percent_peak": (int, float),
    "wall_seconds": (int, float, type(None)),
    "repeats": (int,),
    "timestamp": (int, float),
}


@dataclass
class WatchResult:
    """Outcome of one watchdog pass over loaded trajectory points."""

    series_checked: int = 0
    points_seen: int = 0
    skipped_v1: int = 0
    regressions: "list[str]" = field(default_factory=list)
    problems: "list[str]" = field(default_factory=list)
    notes: "list[str]" = field(default_factory=list)
    drifts: "list[dict]" = field(default_factory=list)
    """Observed-vs-model drift verdicts (opt-in, ``--drift-threshold``):
    structured dicts — machine_id/routine/backend/dtype/shape/batch plus
    the drift ratio — shaped for
    :meth:`repro.runtime.iatf.IATF.retune_from_watch` to consume.
    Advisory: drift marks a *machine* that changed, not a code
    regression, so it never affects the exit code — the remedy is
    online re-tuning, not failing CI."""
    slo_alerts: "list[dict]" = field(default_factory=list)
    """Serving-SLO verdicts folded in from an ``/slo`` dump (opt-in,
    ``--slo PATH``): every objective whose multi-window burn rate
    reached ``warn`` or ``page``.  Advisory like drift — a burning SLO
    marks *load* or *capacity*, not a code regression the trajectory
    diff could bisect, so it colors the report but never the exit
    code."""

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.problems

    @property
    def exit_code(self) -> int:
        """0 healthy, 1 regression, 2 schema problems (problems win:
        a malformed trajectory cannot certify anything)."""
        if self.problems:
            return 2
        return 1 if self.regressions else 0

    def render(self) -> str:
        lines = [f"bench watchdog: {self.series_checked} series over "
                 f"{self.points_seen} points"
                 + (f" ({self.skipped_v1} pre-schema points skipped)"
                    if self.skipped_v1 else "")]
        for n in self.notes:
            lines.append(f"  note: {n}")
        for p in self.problems:
            lines.append(f"  SCHEMA PROBLEM: {p}")
        for r in self.regressions:
            lines.append(f"  REGRESSION: {r}")
        for d in self.drifts:
            lines.append(
                "  DRIFT: {}/{} {} {} {} batch={}: wall/model ratio grew "
                "{:.2f}x vs baseline (threshold {:.0f}%) — re-tune "
                "advised".format(
                    d["machine_id"], d["routine"], d["backend"], d["dtype"],
                    "x".join(map(str, d["shape"])), d["batch"],
                    d["ratio"], 100.0 * d["threshold"]))
        for a in self.slo_alerts:
            burns = tuple("n/a" if a.get(k) is None else f"{a[k]:.2f}"
                          for k in ("fast_burn", "slow_burn"))
            lines.append(
                "  SLO {}: {} (tenant {}, {}): fast burn {} / slow burn "
                "{} vs warn {} page {} — advisory".format(
                    a["verdict"].upper(), a["name"], a["tenant"], a["kind"],
                    burns[0], burns[1], a["warn_burn"], a["page_burn"]))
        if self.ok:
            lines.append("  all series healthy")
        return "\n".join(lines)


def point_key(point: dict) -> tuple:
    """The series identity a point belongs to."""
    return (point["machine_id"], point["routine"], point["backend"],
            point["dtype"], tuple(point["shape"]), point["batch"])


def _check_point(point, where: str) -> "str | None":
    """Validate one v2 point; returns a problem string or ``None``."""
    if not isinstance(point, dict):
        return f"{where}: point is not an object"
    for name, types in _POINT_FIELDS.items():
        if name not in point:
            return f"{where}: missing field {name!r}"
        v = point[name]
        if not isinstance(v, types) or isinstance(v, bool):
            return f"{where}: field {name!r} has wrong type {type(v).__name__}"
    if point["schema"] != SCHEMA_VERSION:
        return (f"{where}: schema {point['schema']} unsupported "
                f"(expected {SCHEMA_VERSION})")
    if not all(isinstance(d, int) and not isinstance(d, bool)
               for d in point["shape"]):
        return f"{where}: shape must be a list of ints"
    if point["gflops"] <= 0:
        return f"{where}: gflops must be positive"
    return None


def load_trajectory(path: str, result: WatchResult) -> "list[dict]":
    """Load one trajectory file, recording problems/skips in ``result``."""
    try:
        with open(path) as f:
            raw = json.load(f)
    except OSError as e:
        result.problems.append(f"{path}: unreadable ({e})")
        return []
    except json.JSONDecodeError as e:
        result.problems.append(f"{path}: not valid JSON ({e})")
        return []
    if not isinstance(raw, list):
        result.problems.append(f"{path}: trajectory must be a JSON list")
        return []
    points: "list[dict]" = []
    for i, p in enumerate(raw):
        if isinstance(p, dict) and "schema" not in p:
            result.skipped_v1 += 1          # pre-schema ad-hoc point
            continue
        problem = _check_point(p, f"{path}[{i}]")
        if problem is not None:
            result.problems.append(problem)
            continue
        points.append(p)
    return points


def load_slo_dump(path: str, result: WatchResult) -> None:
    """Fold one saved ``/slo`` dump (the JSON the CI smoke scrapes)
    into ``result.slo_alerts``: every objective whose verdict is
    ``warn`` or ``page`` becomes one advisory alert.  Unreadable or
    malformed dumps are *notes*, not problems — the serving plane being
    down must not turn the perf watchdog's exit code."""
    try:
        with open(path) as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        result.notes.append(f"slo dump {path}: unreadable ({e})")
        return
    slos = dump.get("slos") if isinstance(dump, dict) else None
    if not isinstance(slos, list):
        result.notes.append(f"slo dump {path}: no 'slos' list")
        return
    for v in slos:
        if not isinstance(v, dict) or v.get("verdict") not in ("warn",
                                                               "page"):
            continue
        fast, slow = v.get("fast") or {}, v.get("slow") or {}
        alert = {
            "name": v.get("name", "?"), "tenant": v.get("tenant", "?"),
            "kind": v.get("kind", "?"), "verdict": v["verdict"],
            "fast_burn": fast.get("burn"), "slow_burn": slow.get("burn"),
            "warn_burn": v.get("warn_burn"), "page_burn": v.get("page_burn"),
        }
        result.slo_alerts.append(alert)
        event("watch.slo_alert", level="warn",
              **{("slo" if k == "name" else k): v for k, v in alert.items()})


def check_trajectory(points: "list[dict]", result: "WatchResult | None" = None,
                     *, gflops_threshold: float = 0.10,
                     wall_threshold: "float | None" = None,
                     ratio_floor: "float | None" = None,
                     mega_floor: "float | None" = None,
                     drift_threshold: "float | None" = None) -> WatchResult:
    """Run the regression checks over already-validated points."""
    result = result if result is not None else WatchResult()
    result.points_seen += len(points)
    series: "dict[tuple, list[dict]]" = {}
    for p in sorted(points, key=lambda p: p["timestamp"]):
        series.setdefault(point_key(p), []).append(p)

    for key, pts in sorted(series.items()):
        result.series_checked += 1
        label = "{}/{} {} {} {} batch={}".format(
            key[0], key[1], key[2], key[3],
            "x".join(map(str, key[4])), key[5])
        if len(pts) < 2:
            result.notes.append(f"{label}: single point, nothing to diff")
            continue
        latest, earlier = pts[-1], pts[:-1]
        best = max(p["gflops"] for p in earlier)
        if latest["gflops"] < best * (1.0 - gflops_threshold):
            result.regressions.append(
                f"{label}: modeled {latest['gflops']:.3f} GFLOPS is "
                f"{100.0 * (1.0 - latest['gflops'] / best):.1f}% below the "
                f"best earlier point ({best:.3f}; threshold "
                f"{100.0 * gflops_threshold:.0f}%)")
        if wall_threshold is not None:
            walls = [p["wall_seconds"] for p in earlier
                     if p["wall_seconds"] is not None]
            if walls and latest["wall_seconds"] is not None:
                best_wall = min(walls)
                if latest["wall_seconds"] > best_wall * (1.0 + wall_threshold):
                    result.regressions.append(
                        f"{label}: wall {latest['wall_seconds']:.4f}s is "
                        f"{100.0 * (latest['wall_seconds'] / best_wall - 1.0):.1f}% "
                        f"above the best earlier point ({best_wall:.4f}s)")

    if ratio_floor is not None:
        _check_ratio_floor(series, ratio_floor, result)
    if mega_floor is not None:
        _check_mega_floor(series, mega_floor, result)
    if drift_threshold is not None:
        _check_drift(series, drift_threshold, result)
    # the verdict as structured events (no-ops unless instrumentation
    # is on): the durable record online re-tuning will trigger from
    for r in result.regressions:
        event("watch.regression", level="warn", detail=r)
    event("watch.verdict",
          level="error" if result.problems else
          ("warn" if result.regressions else "info"),
          exit_code=result.exit_code, series=result.series_checked,
          points=result.points_seen, regressions=len(result.regressions),
          problems=len(result.problems))
    return result


def _check_drift(series: "dict[tuple, list[dict]]", threshold: float,
                 result: WatchResult) -> None:
    """Observed-vs-model drift per series: has the machine's wall clock
    pulled away from the (fixed) cycle-model prediction over time?

    Within one series every point computes the same FLOP count, so
    ``wall_seconds * gflops`` is proportional to ``wall / predicted``
    with a constant factor — which lets the stdlib-only watchdog track
    the model-drift ratio without importing any FLOP formula from the
    runtime.  The latest walled point is compared against the *best*
    (lowest-ratio) earlier one; growth beyond ``1 + threshold`` yields
    a structured verdict in :attr:`WatchResult.drifts` and a
    ``watch.drift`` event — fuel for
    :meth:`IATF.retune_from_watch`, never an exit-code failure.
    """
    for key, pts in sorted(series.items()):
        walled = [p for p in pts if p["wall_seconds"] is not None
                  and p["wall_seconds"] > 0]
        if len(walled) < 2:
            continue
        latest, earlier = walled[-1], walled[:-1]
        metric = lambda p: p["wall_seconds"] * p["gflops"]
        baseline = min(metric(p) for p in earlier)
        if baseline <= 0:
            continue
        ratio = metric(latest) / baseline
        if ratio > 1.0 + threshold:
            verdict = {
                "machine_id": key[0], "routine": key[1], "backend": key[2],
                "dtype": key[3], "shape": list(key[4]), "batch": key[5],
                "ratio": ratio, "threshold": threshold,
            }
            result.drifts.append(verdict)
            event("watch.drift", level="warn", ratio=ratio,
                  threshold=threshold, machine_id=key[0], routine=key[1],
                  backend=key[2], dtype=key[3],
                  shape="x".join(map(str, key[4])), batch=key[5])


def _check_ratio_floor(series: "dict[tuple, list[dict]]", floor: float,
                       result: WatchResult) -> None:
    """Latest-run compiled-vs-fused wall ratio per problem shape."""
    latest_by_backend: "dict[tuple, dict[str, dict]]" = {}
    for key, pts in series.items():
        shape_key = key[:2] + key[3:]       # identity minus the backend
        latest_by_backend.setdefault(shape_key, {})[key[2]] = pts[-1]
    checked = 0
    for shape_key, per_backend in sorted(latest_by_backend.items()):
        compiled = per_backend.get("compiled")
        fused = per_backend.get("fused")
        if (compiled is None or fused is None
                or compiled.get("wall_seconds") is None
                or fused.get("wall_seconds") is None
                or not fused["wall_seconds"]):
            continue
        checked += 1
        ratio = compiled["wall_seconds"] / fused["wall_seconds"]
        if ratio < floor:
            result.regressions.append(
                "{}/{} {} {} batch={}: fused backend fell behind — "
                "compiled/fused wall ratio {:.2f} < floor {:.2f}".format(
                    shape_key[0], shape_key[1], shape_key[2],
                    "x".join(map(str, shape_key[3])), shape_key[4],
                    ratio, floor))
    if not checked:
        result.notes.append("ratio floor requested but no run has both "
                            "compiled and fused wall points")


def _check_mega_floor(series: "dict[tuple, list[dict]]", floor: float,
                      result: WatchResult) -> None:
    """Latest-run fused-vs-megakernel wall ratio per problem shape: the
    trace-compiled backend must keep its speedup over the fused
    replay.  The floor is set from *measured* single-core numbers (see
    ``BENCH_backends.json``), deliberately below the noise band."""
    latest_by_backend: "dict[tuple, dict[str, dict]]" = {}
    for key, pts in series.items():
        shape_key = key[:2] + key[3:]       # identity minus the backend
        latest_by_backend.setdefault(shape_key, {})[key[2]] = pts[-1]
    checked = 0
    for shape_key, per_backend in sorted(latest_by_backend.items()):
        fused = per_backend.get("fused")
        mega = per_backend.get("megakernel")
        if (fused is None or mega is None
                or fused.get("wall_seconds") is None
                or mega.get("wall_seconds") is None
                or not mega["wall_seconds"]):
            continue
        checked += 1
        ratio = fused["wall_seconds"] / mega["wall_seconds"]
        if ratio < floor:
            result.regressions.append(
                "{}/{} {} {} batch={}: megakernel lost its edge — "
                "fused/megakernel wall ratio {:.2f} < floor {:.2f}".format(
                    shape_key[0], shape_key[1], shape_key[2],
                    "x".join(map(str, shape_key[3])), shape_key[4],
                    ratio, floor))
    if not checked:
        result.notes.append("mega floor requested but no run has both "
                            "fused and megakernel wall points")


def watch(paths: "list[str]", *, gflops_threshold: float = 0.10,
          wall_threshold: "float | None" = None,
          ratio_floor: "float | None" = None,
          mega_floor: "float | None" = None,
          drift_threshold: "float | None" = None,
          slo_path: "str | None" = None) -> WatchResult:
    """Load trajectory files and run every requested check."""
    result = WatchResult()
    points: "list[dict]" = []
    for path in paths:
        points.extend(load_trajectory(path, result))
    if not points and not result.problems:
        result.problems.append("no checkable trajectory points found in: "
                               + ", ".join(paths))
    check_trajectory(points, result, gflops_threshold=gflops_threshold,
                     wall_threshold=wall_threshold, ratio_floor=ratio_floor,
                     mega_floor=mega_floor, drift_threshold=drift_threshold)
    if slo_path is not None:
        load_slo_dump(slo_path, result)
    return result
