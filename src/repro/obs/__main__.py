"""Command-line interface for the observability subsystem.

Usage::

    python -m repro.obs --self-check
    python -m repro.obs snapshot [--trace-out run.trace.json]
    python -m repro.obs explain gemm --m 9 --n 9 --k 9 --dtype d \\
        --batch 4096 [--deep] [--autotune] [--force-pack]
    python -m repro.obs explain trsm --m 8 --n 6 --dtype d --mode LLNN
    python -m repro.obs profile gemm --m 8 --n 8 --k 8 --dtype s \\
        [--stream raw|fused] [--json out.json] [--flame out.folded] \\
        [--trace-out out.trace.json] [--drift]
    python -m repro.obs watch BENCH_backends.json [--threshold 0.10] \\
        [--wall-threshold 0.5] [--ratio-floor 0.90] \\
        [--mega-floor 1.2] [--drift-threshold 0.5] [--slo slo.json]
    python -m repro.obs flight [--url http://127.0.0.1:9110/flight] \\
        [--last] [-o dump.json]
    python -m repro.obs serve [--port 9109] [--demo] \\
        [--trajectory BENCH_backends.json] [--for-seconds 30]

``snapshot`` runs a small representative GEMM+TRSM workload with
instrumentation enabled, prints the registry report, and (with
``--trace-out``) converts the recorded spans to a Chrome-trace
``.trace.json``.  ``profile`` renders the attribution profiler's
roofline report for one problem shape (optionally persisting the JSON,
collapsed-stack flamegraph, and merged Chrome-trace artifacts).
``watch`` is the bench-trajectory regression watchdog; its exit code
feeds CI.  ``serve`` is the live telemetry endpoint (``/metrics``,
``/snapshot.json``, ``/delta.json``, ``/events``, ``/healthz``,
``/trajectory``); ``--demo`` keeps a small bench workload running so
there is something to scrape.  ``--self-check`` exercises all of the
above end to end — the CI smoke test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from . import (chrome_trace, explain, model_drift, profile_report, scoped,
               validate_chrome_trace, write_chrome_trace)
from .watch import watch

__all__ = ["main"]


def _demo_workload():
    """A tiny but representative run: plan, execute, and time both
    routines so every instrumented layer records something."""
    import numpy as np

    from ..runtime.iatf import IATF
    from ..types import GemmProblem, TrsmProblem

    iatf = IATF()
    gp = GemmProblem(6, 6, 6, "d", batch=8)
    tp = TrsmProblem(4, 4, "d", batch=8)
    iatf.time_gemm(gp)
    iatf.time_gemm(gp)                       # plan-cache hit
    iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=8), autotune=True)
    iatf.time_trsm(tp)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((8, 6, 6))
    b = rng.standard_normal((8, 6, 6))
    iatf.gemm(a, b, np.zeros((8, 6, 6)), beta=0.0)
    t = np.tril(rng.standard_normal((8, 4, 4))) + 3 * np.eye(4)
    iatf.trsm(t, rng.standard_normal((8, 4, 4)))
    return iatf, gp, tp


def _cmd_snapshot(args) -> int:
    with scoped() as reg:
        _demo_workload()
        print(reg.report())
        if args.trace_out:
            path = write_chrome_trace(args.trace_out, registry=reg)
            print(f"wrote {len(reg.spans)} spans to {path}")
    return 0


def _synthetic_point(gflops: float, timestamp: float) -> dict:
    """A valid v2 trajectory point for the self-check's watchdog drill."""
    from .watch import SCHEMA_VERSION
    return {"schema": SCHEMA_VERSION, "machine": "Self Check",
            "machine_id": "self-check", "routine": "gemm",
            "backend": "compiled", "dtype": "s", "shape": [8, 8, 8],
            "batch": 16384, "gflops": gflops, "percent_peak": 50.0,
            "wall_seconds": None, "repeats": 1, "timestamp": timestamp}


def _cmd_self_check(args) -> int:
    problems = []
    with scoped() as reg:
        iatf, gp, tp = _demo_workload()
        snap = reg.snapshot()
        counters = snap["counters"]
        for want in ("plan_cache.misses", "plan_cache.hits",
                     "pack_selector.gemm.calls",
                     "pack_selector.trsm.calls",
                     "batch_counter.calls",
                     "codegen.generated",
                     "engine.timed_plans",
                     "autotune.candidates"):
            if counters.get(want, 0) <= 0:
                problems.append(f"counter {want} did not move")
        if snap["spans"] == 0:
            problems.append("no spans recorded")
        # trace export round-trips and validates
        fd, path = tempfile.mkstemp(suffix=".trace.json")
        os.close(fd)
        try:
            write_chrome_trace(path, registry=reg)
            with open(path) as f:
                validate_chrome_trace(json.load(f))
        except ValueError as e:
            problems.append(f"trace schema: {e}")
        finally:
            os.unlink(path)
        # explain covers both routines
        for plan in (iatf.plan_gemm(gp), iatf.plan_trsm(tp)):
            report = explain(plan, registry=iatf.registry, deep=True)
            text = report.render()
            for needle in ("batch counter", "pack selector",
                           "tile decomposition", "timing breakdown"):
                if needle not in text:
                    problems.append(
                        f"explain[{plan.kind}] missing section {needle!r}")
        # attribution profiler: conservation holds on both streams and
        # the modeled-timeline events merge into a valid Chrome trace
        from ..errors import ProfileError
        prof = None
        for stream in ("raw", "fused", "megakernel"):
            try:
                prof = profile_report(iatf.plan_gemm(gp), stream=stream)
            except ProfileError as e:
                problems.append(f"profiler[{stream}]: {e}")
        if prof is not None:
            for needle in ("phase attribution", "instruction classes",
                           "roofline", "% of peak"):
                if needle not in prof.render():
                    problems.append(f"profile report missing {needle!r}")
            if not prof.collapsed().strip():
                problems.append("profiler produced no flamegraph stacks")
            try:
                validate_chrome_trace(chrome_trace(
                    reg, extra_events=prof.trace_events()))
            except ValueError as e:
                problems.append(f"merged profile trace schema: {e}")
        # exporter drill: the Prometheus render carries a counter the
        # workload moved and is bit-stable across two renders of the
        # now-idle registry; the delta view computes sane rates
        from .export import (JsonExporter, PrometheusExporter,
                             snapshot_delta)
        text1 = PrometheusExporter().render(reg.snapshot())
        text2 = PrometheusExporter().render(reg.snapshot())
        if "repro_plan_cache_misses" not in text1:
            problems.append("prometheus render missing "
                            "repro_plan_cache_misses")
        if text1 != text2:
            problems.append("prometheus render not bit-stable on an "
                            "idle registry")
        try:
            json.loads(JsonExporter().render(reg.snapshot()))
        except ValueError as e:
            problems.append(f"json exporter output unparseable: {e}")
        delta = snapshot_delta({}, reg.snapshot(), seconds=1.0)
        if any(c["delta"] < 0 or c.get("rate", 0) < 0
               for c in delta["counters"].values()):
            problems.append("delta view produced a negative counter "
                            "delta/rate")
    # trace-propagation drill: a parallel run's shard spans must all
    # join the plan-run's trace with valid parent links
    import numpy as np

    from ..runtime.iatf import IATF
    with scoped() as reg:
        piatf = IATF(backend="parallel", workers=2)
        rng = np.random.default_rng(1)
        a = rng.standard_normal((64, 4, 4))
        b = rng.standard_normal((64, 4, 4))
        piatf.gemm(a, b, np.zeros((64, 4, 4)), beta=0.0)
        shard_spans = [s for s in reg.spans
                       if s.name == "backend.parallel.shard"]
        kernel_spans = [s for s in reg.spans
                        if s.name == "engine.kernels"]
        span_ids = {s.span_id for s in reg.spans}
        if len(shard_spans) < 2:
            problems.append("parallel run recorded fewer than 2 shard "
                            "spans")
        elif not kernel_spans:
            problems.append("parallel run recorded no engine.kernels span")
        else:
            run_trace = kernel_spans[0].trace_id
            for s in shard_spans:
                if s.trace_id != run_trace:
                    problems.append("shard span orphaned from the "
                                    "plan-run's trace")
                    break
                if s.parent_id not in span_ids:
                    problems.append(f"shard span parent {s.parent_id!r} "
                                    f"is not a recorded span")
                    break
        try:
            validate_chrome_trace(chrome_trace(reg))
        except ValueError as e:
            problems.append(f"parallel-run trace schema: {e}")
    # watchdog drill: a healthy trajectory passes, an injected 20%
    # modeled-gflops regression is flagged with exit code 1
    from .watch import check_trajectory
    healthy = [_synthetic_point(10.0, 1.0), _synthetic_point(10.1, 2.0)]
    regressed = healthy + [_synthetic_point(8.0, 3.0)]
    if check_trajectory(list(healthy)).exit_code != 0:
        problems.append("watchdog flagged a healthy trajectory")
    if check_trajectory(list(regressed)).exit_code != 1:
        problems.append("watchdog missed an injected 20% regression")
    # budget drill: a fully-stamped request budget conserves exactly —
    # the stages telescope, so their sum IS the end-to-end wall
    from .budget import STAGES, Budget
    b = Budget()
    for stage in STAGES:
        b.stamp(stage)
    if not b.closed:
        problems.append("stamping every stage did not close the budget")
    try:
        b.check()
    except Exception as e:   # noqa: BLE001 - any violation is the bug
        problems.append(f"budget conservation violated: {e}")
    # SLO drill: injected deadline-miss traffic must flip the verdict
    # from ok to page across two synthetic snapshots
    from .slo import SLOMonitor, SLOSpec
    spec = SLOSpec(name="drill-miss", tenant="drill", kind="deadline_miss",
                   objective=0.01, fast_window_s=5.0, slow_window_s=10.0)
    mon = SLOMonitor(specs=[spec])
    snap_of = lambda done, missed: {"counters": {
        "serve.tenant.drill.completed": done,
        "serve.tenant.drill.deadline_missed": missed}}
    mon._samples.append((0.0, snap_of(0, 0)))
    mon._samples.append((20.0, snap_of(100, 0)))
    healthy_verdict = mon.evaluate(now=20.0)[0]["verdict"]
    mon._samples.append((40.0, snap_of(200, 50)))
    burning_verdict = mon.evaluate(now=40.0)[0]["verdict"]
    if healthy_verdict != "ok":
        problems.append(f"SLO verdict on healthy traffic was "
                        f"{healthy_verdict!r}, not 'ok'")
    if burning_verdict != "page":
        problems.append(f"SLO verdict under 50% injected deadline misses "
                        f"was {burning_verdict!r}, not 'page'")
    # flight drill: the recorder's rings capture the demo workload's
    # spans and events, and a reject storm produces exactly one dump
    from .events import event as emit_event
    from .flight import FlightRecorder
    with scoped():
        rec = FlightRecorder(storm_window_s=10.0,
                             storm_threshold=5).attach()
        _demo_workload()
        emit_event("selfcheck.flight", level="info", drill=True)
        dump = rec.dump("self_check")
        if not dump["spans"]:
            problems.append("flight recorder captured no spans")
        if not dump["events"]:
            problems.append("flight recorder captured no events")
        for i in range(10):
            rec.note_reject("drill", now=100.0 + 0.1 * i)
        if rec.last_dump["trigger"] != "reject_storm":
            problems.append("reject storm did not trigger a flight dump")
        if rec.dumps != 2:
            problems.append(f"storm cooldown failed: {rec.dumps} dumps "
                            f"recorded, expected 2 (manual + one storm)")
    # serve drill: admission limits reject deterministically (typed, not
    # InvalidProblemError), coalesced results are bit-identical to
    # serial execution, and the serve.* counters move
    from ..errors import RejectedError
    from ..serve import BlasService, Request
    with scoped() as reg:
        # a bucket that can never flush on its own: queued requests
        # stay in flight, so the 3rd same-tenant submit must bounce
        svc = BlasService(max_batch=1024, max_wait_ms=10_000.0,
                          max_in_flight=2, max_queue_depth=1024)
        svc.start()
        rng = np.random.default_rng(2)
        def one_gemm(tenant):
            a = rng.standard_normal((4, 4)).astype(np.float32)
            return Request.gemm(a, a, tenant=tenant)
        held = [svc.submit(one_gemm("hog")) for _ in range(2)]
        try:
            svc.submit(one_gemm("hog"))
            problems.append("over-limit tenant was not rejected")
        except RejectedError:
            pass
        except Exception as e:   # noqa: BLE001 - wrong type is the bug
            problems.append(f"over-limit tenant got {type(e).__name__}, "
                            f"not RejectedError")
        try:
            svc.submit(one_gemm("polite"))
        except RejectedError:
            problems.append("in-limit tenant was rejected alongside the "
                            "over-limit one")
        svc.stop()               # drains: the held futures must resolve
        if any(f.exception() is not None for f in held):
            problems.append("drained request failed at service stop")
        # coalesced == serial, bit for bit, over mixed routines/dtypes
        from ..runtime.iatf import IATF
        from ..serve.client import make_request
        svc2 = BlasService(max_batch=8, max_wait_ms=1.0)
        svc2.start()
        rng2 = np.random.default_rng(3)
        reqs = [make_request(rng2, i) for i in range(24)]
        futs = [svc2.submit(r) for r in reqs]
        outs = [f.result(60.0) for f in futs]
        svc2.stop()
        serial = IATF()
        for req, out in zip(reqs, outs):
            if req.routine == "gemm":
                p = req.problem
                want = serial.gemm(req.a[None], req.b[None], req.c[None],
                                   alpha=p.alpha, beta=p.beta,
                                   transa=p.transa, transb=p.transb)[0]
            else:
                p = req.problem
                want = serial.trsm(req.a[None], req.b[None], alpha=p.alpha,
                                   side=p.side, uplo=p.uplo,
                                   transa=p.transa, diag=p.diag)[0]
            if out.tobytes() != want.tobytes():
                problems.append(f"coalesced result diverged from serial "
                                f"for {req.describe()}")
                break
        counters = reg.snapshot()["counters"]
        for want_counter in ("serve.submitted", "serve.admitted",
                             "serve.rejected", "serve.flush"):
            if counters.get(want_counter, 0) <= 0:
                problems.append(f"counter {want_counter} did not move")
        if not any(e["name"] == "serve.reject"
                   for e in reg.events.tail(1000, prefix="serve.")):
            problems.append("rejection emitted no serve.reject event")
        # every completed request left a closed, conserving budget
        bstats = svc2.stats()["budget"]["by_tenant"]
        if bstats["recorded"] < len(reqs):
            problems.append(
                f"budget ledger recorded {bstats['recorded']} of "
                f"{len(reqs)} completed requests")
        if bstats["violations"] != 0:
            problems.append(f"{bstats['violations']} budget conservation "
                            f"violations in the serve drill")
    if problems:
        print("obs self-check FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("obs self-check OK: counters, spans, trace schema, exporters, "
          "trace propagation, explain reports, profiler conservation, "
          "the watchdog, latency budgets, SLO burn rates, the flight "
          "recorder, and the serve drill all healthy")
    return 0


def _cmd_explain(args) -> int:
    from ..runtime.iatf import IATF
    from ..types import GemmProblem, TrsmProblem

    from ..errors import InvalidProblemError

    iatf = IATF()
    try:
        if args.routine == "gemm":
            problem = GemmProblem(args.m, args.n, args.k, args.dtype,
                                  batch=args.batch)
            report = iatf.explain_gemm(problem, force_pack=args.force_pack,
                                       autotune=args.autotune, deep=args.deep)
        else:
            mode = args.mode.upper()
            if len(mode) != 4:
                print(f"error: --mode wants 4 letters "
                      f"(side/uplo/trans/diag, e.g. LLNN), got {args.mode!r}")
                return 2
            side, uplo, trans, diag = mode
            problem = TrsmProblem(args.m, args.n, args.dtype, side, uplo,
                                  trans, diag, batch=args.batch)
            report = iatf.explain_trsm(problem, force_pack=args.force_pack,
                                       deep=args.deep)
    except InvalidProblemError as exc:
        print(f"error: {exc}")
        return 2
    print(report.render())
    return 0


def _parse_trsm_mode(mode: str) -> "tuple[str, str, str, str] | None":
    mode = mode.upper()
    return tuple(mode) if len(mode) == 4 else None


def _cmd_profile(args) -> int:
    from ..errors import InvalidProblemError, ProfileError
    from ..runtime.iatf import IATF
    from ..types import GemmProblem, TrsmProblem

    iatf = IATF()
    try:
        if args.routine == "gemm":
            problem = GemmProblem(args.m, args.n, args.k, args.dtype,
                                  batch=args.batch)
        else:
            letters = _parse_trsm_mode(args.mode)
            if letters is None:
                print(f"error: --mode wants 4 letters "
                      f"(side/uplo/trans/diag, e.g. LLNN), got {args.mode!r}")
                return 2
            problem = TrsmProblem(args.m, args.n, args.dtype, *letters,
                                  batch=args.batch)
        with scoped() as reg:
            plan = (iatf.plan_gemm(problem) if args.routine == "gemm"
                    else iatf.plan_trsm(problem))
            drift = (model_drift(problem, backends=("compiled", "fused",
                                                    "megakernel"))
                     if args.drift else None)
            report = profile_report(plan, stream=args.stream, drift=drift)
            if args.trace_out:
                path = write_chrome_trace(args.trace_out, registry=reg,
                                          extra_events=report.trace_events())
    except InvalidProblemError as exc:
        print(f"error: {exc}")
        return 2
    except ProfileError as exc:
        print(f"profile error: {exc}")
        return 1
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
            f.write("\n")
        print(f"profile JSON written to {args.json_out}")
    if args.flame:
        with open(args.flame, "w") as f:
            f.write(report.collapsed())
        print(f"collapsed flamegraph stacks written to {args.flame}")
    if args.trace_out:
        print(f"Chrome trace (spans + modeled profile) written to {path}")
    return 0


def _cmd_watch(args) -> int:
    result = watch(args.paths, gflops_threshold=args.threshold,
                   wall_threshold=args.wall_threshold,
                   ratio_floor=args.ratio_floor,
                   mega_floor=args.mega_floor,
                   drift_threshold=args.drift_threshold,
                   slo_path=args.slo_path)
    print(result.render())
    return result.exit_code


def _cmd_flight(args) -> int:
    """Fetch (or locally produce) one flight-recorder post-mortem."""
    if args.url:
        from urllib.request import urlopen
        url = args.url + ("?last=1" if args.last else "")
        try:
            with urlopen(url, timeout=10.0) as resp:
                dump = json.load(resp)
        except Exception as e:   # noqa: BLE001 - any fetch failure = exit 1
            print(f"error: could not fetch {url}: {e}")
            return 1
    else:
        # no live service: run the demo workload with a recorder
        # attached so the dump shows a real span/event sequence
        from .flight import FlightRecorder
        with scoped():
            rec = FlightRecorder().attach()
            _demo_workload()
            dump = rec.dump("cli_demo")
    body = json.dumps(dump, sort_keys=True, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(body)
        print(f"flight dump ({dump.get('trigger', '?')}, "
              f"{len(dump.get('spans', []))} spans, "
              f"{len(dump.get('events', []))} events) written to {args.out}")
    else:
        print(body, end="")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro.obs``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--self-check" in argv:            # CI-friendly flag spelling
        argv = ["self-check"] + [a for a in argv if a != "--self-check"]

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect the IATF run-time stage: counters, spans, "
        "Chrome traces, and plan explain reports.")
    sub = parser.add_subparsers(dest="command")

    p_snap = sub.add_parser("snapshot", help="run a demo workload and "
                            "dump the registry snapshot")
    p_snap.add_argument("--trace-out", metavar="PATH",
                        help="also write recorded spans as Chrome trace "
                        "JSON (*.trace.json)")

    sub.add_parser("self-check", help="end-to-end smoke test of the "
                   "observability subsystem (CI)")

    p_exp = sub.add_parser("explain", help="narrate the run-time-stage "
                           "decisions for one problem shape")
    p_exp.add_argument("routine", choices=("gemm", "trsm"))
    p_exp.add_argument("--m", type=int, default=8)
    p_exp.add_argument("--n", type=int, default=8)
    p_exp.add_argument("--k", type=int, default=8,
                       help="GEMM inner dimension (ignored for trsm)")
    p_exp.add_argument("--dtype", choices=("s", "d", "c", "z"), default="d")
    p_exp.add_argument("--batch", type=int, default=16384)
    p_exp.add_argument("--mode", default="LLNN",
                       help="TRSM side/uplo/trans/diag letters "
                       "(BLAS order), e.g. LLNN or RUTU")
    p_exp.add_argument("--deep", action="store_true",
                       help="run the cycle model: pack-vs-nopack cost "
                       "comparison and TimingResult breakdown")
    p_exp.add_argument("--autotune", action="store_true")
    p_exp.add_argument("--force-pack", action="store_true")

    p_prof = sub.add_parser("profile", help="cycle/byte attribution and "
                            "%%-of-peak roofline report for one problem "
                            "shape (Figs. 11-12's metric)")
    p_prof.add_argument("routine", choices=("gemm", "trsm"))
    p_prof.add_argument("--m", type=int, default=8)
    p_prof.add_argument("--n", type=int, default=8)
    p_prof.add_argument("--k", type=int, default=8,
                        help="GEMM inner dimension (ignored for trsm)")
    p_prof.add_argument("--dtype", choices=("s", "d", "c", "z"), default="s")
    p_prof.add_argument("--batch", type=int, default=16384)
    p_prof.add_argument("--mode", default="LLNN",
                        help="TRSM side/uplo/trans/diag letters")
    p_prof.add_argument("--stream", choices=("raw", "fused", "megakernel"),
                        default="raw",
                        help="which compiled command stream to attribute "
                        "(raw and megakernel carry a per-kernel breakdown)")
    p_prof.add_argument("--json", dest="json_out", metavar="PATH",
                        help="also write the profile as JSON (the CI "
                        "artifact)")
    p_prof.add_argument("--flame", metavar="PATH",
                        help="also write collapsed-stack flamegraph lines "
                        "(flamegraph.pl / speedscope input)")
    p_prof.add_argument("--trace-out", metavar="PATH",
                        help="also write a Chrome trace merging recorded "
                        "spans with the modeled profile timeline")
    p_prof.add_argument("--drift", action="store_true",
                        help="cross-check the cycle model against wall-"
                        "clock replays per backend (runs real executions)")

    p_serve = sub.add_parser("serve", help="live telemetry endpoint: "
                             "/metrics (Prometheus), /snapshot.json, "
                             "/delta.json, /events, /healthz, /trajectory")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9109,
                         help="TCP port (0 picks an ephemeral one; "
                         "default 9109)")
    p_serve.add_argument("--demo", action="store_true",
                         help="also run the backend-showdown workload in "
                         "a background thread so the metrics move")
    p_serve.add_argument("--demo-batch", type=int, default=512,
                         help="batch size for the demo workload rounds")
    p_serve.add_argument("--trajectory", default="BENCH_backends.json",
                         metavar="PATH", help="trajectory file served "
                         "at /trajectory (default BENCH_backends.json)")
    p_serve.add_argument("--for-seconds", type=float, default=None,
                         metavar="S", help="shut down after S seconds "
                         "instead of serving forever (CI smoke)")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress the startup banner")

    p_watch = sub.add_parser("watch", help="bench-trajectory regression "
                             "watchdog: diff BENCH_*.json series, exit "
                             "nonzero on regressions (CI gate)")
    p_watch.add_argument("paths", nargs="*", default=["BENCH_backends.json"],
                         metavar="PATH", help="trajectory JSON files "
                         "(default: BENCH_backends.json)")
    p_watch.add_argument("--threshold", type=float, default=0.10,
                         help="modeled-GFLOPS regression threshold as a "
                         "fraction (default 0.10 = 10%%)")
    p_watch.add_argument("--wall-threshold", type=float, default=None,
                         help="opt-in wall-clock regression threshold "
                         "(host-dependent; pinned perf runners only)")
    p_watch.add_argument("--ratio-floor", type=float, default=None,
                         help="require wall(compiled)/wall(fused) >= floor "
                         "in the latest run (e.g. 0.90)")
    p_watch.add_argument("--mega-floor", type=float, default=None,
                         help="require wall(fused)/wall(megakernel) >= "
                         "floor in the latest run — the trace-compiled "
                         "backend must keep its measured speedup")
    p_watch.add_argument("--drift-threshold", type=float, default=None,
                         help="flag series whose wall/model ratio grew "
                         "past 1+T vs baseline (advisory: feeds online "
                         "re-tuning, never the exit code)")
    p_watch.add_argument("--slo", dest="slo_path", metavar="PATH",
                         default=None,
                         help="fold a saved /slo dump's warn/page "
                         "burn-rate verdicts into the report (advisory: "
                         "never the exit code)")

    p_flight = sub.add_parser("flight", help="flight-recorder post-"
                              "mortem: dump the recent-history rings of "
                              "a live service (--url) or of a local "
                              "demo run")
    p_flight.add_argument("--url", metavar="URL", default=None,
                          help="scrape a running service's /flight "
                          "endpoint (e.g. http://127.0.0.1:9110/flight)")
    p_flight.add_argument("--last", action="store_true",
                          help="with --url: fetch the most recent "
                          "*triggered* dump instead of a fresh one")
    p_flight.add_argument("-o", "--out", metavar="PATH", default=None,
                          help="write the dump JSON here instead of "
                          "stdout")

    args = parser.parse_args(argv)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "self-check":
        return _cmd_self_check(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "flight":
        return _cmd_flight(args)
    if args.command == "serve":
        from .serve import serve
        return serve(args.host, args.port, demo=args.demo,
                     demo_batch=args.demo_batch,
                     trajectory_path=args.trajectory,
                     for_seconds=args.for_seconds, quiet=args.quiet)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
