"""Command-line interface for the observability subsystem.

Usage::

    python -m repro.obs --self-check
    python -m repro.obs snapshot [--trace-out run.trace.json]
    python -m repro.obs explain gemm --m 9 --n 9 --k 9 --dtype d \\
        --batch 4096 [--deep] [--autotune] [--force-pack]
    python -m repro.obs explain trsm --m 8 --n 6 --dtype d --mode LLNN

``snapshot`` runs a small representative GEMM+TRSM workload with
instrumentation enabled, prints the registry report, and (with
``--trace-out``) converts the recorded spans to a Chrome-trace
``.trace.json``.  ``--self-check`` does the same end to end against a
temporary file, validates the trace schema, and asserts the expected
counters moved — the CI smoke test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from . import (chrome_trace, explain, scoped, validate_chrome_trace,
               write_chrome_trace)

__all__ = ["main"]


def _demo_workload():
    """A tiny but representative run: plan, execute, and time both
    routines so every instrumented layer records something."""
    import numpy as np

    from ..runtime.iatf import IATF
    from ..types import GemmProblem, TrsmProblem

    iatf = IATF()
    gp = GemmProblem(6, 6, 6, "d", batch=8)
    tp = TrsmProblem(4, 4, "d", batch=8)
    iatf.time_gemm(gp)
    iatf.time_gemm(gp)                       # plan-cache hit
    iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=8), autotune=True)
    iatf.time_trsm(tp)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((8, 6, 6))
    b = rng.standard_normal((8, 6, 6))
    iatf.gemm(a, b, np.zeros((8, 6, 6)), beta=0.0)
    t = np.tril(rng.standard_normal((8, 4, 4))) + 3 * np.eye(4)
    iatf.trsm(t, rng.standard_normal((8, 4, 4)))
    return iatf, gp, tp


def _cmd_snapshot(args) -> int:
    with scoped() as reg:
        _demo_workload()
        print(reg.report())
        if args.trace_out:
            path = write_chrome_trace(args.trace_out, registry=reg)
            print(f"wrote {len(reg.spans)} spans to {path}")
    return 0


def _cmd_self_check(args) -> int:
    problems = []
    with scoped() as reg:
        iatf, gp, tp = _demo_workload()
        snap = reg.snapshot()
        counters = snap["counters"]
        for want in ("plan_cache.misses", "plan_cache.hits",
                     "pack_selector.gemm.calls",
                     "pack_selector.trsm.calls",
                     "batch_counter.calls",
                     "codegen.generated",
                     "engine.timed_plans",
                     "autotune.candidates"):
            if counters.get(want, 0) <= 0:
                problems.append(f"counter {want} did not move")
        if snap["spans"] == 0:
            problems.append("no spans recorded")
        # trace export round-trips and validates
        fd, path = tempfile.mkstemp(suffix=".trace.json")
        os.close(fd)
        try:
            write_chrome_trace(path, registry=reg)
            with open(path) as f:
                validate_chrome_trace(json.load(f))
        except ValueError as e:
            problems.append(f"trace schema: {e}")
        finally:
            os.unlink(path)
        # explain covers both routines
        for plan in (iatf.plan_gemm(gp), iatf.plan_trsm(tp)):
            report = explain(plan, registry=iatf.registry, deep=True)
            text = report.render()
            for needle in ("batch counter", "pack selector",
                           "tile decomposition", "timing breakdown"):
                if needle not in text:
                    problems.append(
                        f"explain[{plan.kind}] missing section {needle!r}")
    if problems:
        print("obs self-check FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("obs self-check OK: counters, spans, trace schema, and "
          "explain reports all healthy")
    return 0


def _cmd_explain(args) -> int:
    from ..runtime.iatf import IATF
    from ..types import GemmProblem, TrsmProblem

    from ..errors import InvalidProblemError

    iatf = IATF()
    try:
        if args.routine == "gemm":
            problem = GemmProblem(args.m, args.n, args.k, args.dtype,
                                  batch=args.batch)
            report = iatf.explain_gemm(problem, force_pack=args.force_pack,
                                       autotune=args.autotune, deep=args.deep)
        else:
            mode = args.mode.upper()
            if len(mode) != 4:
                print(f"error: --mode wants 4 letters "
                      f"(side/uplo/trans/diag, e.g. LLNN), got {args.mode!r}")
                return 2
            side, uplo, trans, diag = mode
            problem = TrsmProblem(args.m, args.n, args.dtype, side, uplo,
                                  trans, diag, batch=args.batch)
            report = iatf.explain_trsm(problem, force_pack=args.force_pack,
                                       deep=args.deep)
    except InvalidProblemError as exc:
        print(f"error: {exc}")
        return 2
    print(report.render())
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro.obs``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--self-check" in argv:            # CI-friendly flag spelling
        argv = ["self-check"] + [a for a in argv if a != "--self-check"]

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect the IATF run-time stage: counters, spans, "
        "Chrome traces, and plan explain reports.")
    sub = parser.add_subparsers(dest="command")

    p_snap = sub.add_parser("snapshot", help="run a demo workload and "
                            "dump the registry snapshot")
    p_snap.add_argument("--trace-out", metavar="PATH",
                        help="also write recorded spans as Chrome trace "
                        "JSON (*.trace.json)")

    sub.add_parser("self-check", help="end-to-end smoke test of the "
                   "observability subsystem (CI)")

    p_exp = sub.add_parser("explain", help="narrate the run-time-stage "
                           "decisions for one problem shape")
    p_exp.add_argument("routine", choices=("gemm", "trsm"))
    p_exp.add_argument("--m", type=int, default=8)
    p_exp.add_argument("--n", type=int, default=8)
    p_exp.add_argument("--k", type=int, default=8,
                       help="GEMM inner dimension (ignored for trsm)")
    p_exp.add_argument("--dtype", choices=("s", "d", "c", "z"), default="d")
    p_exp.add_argument("--batch", type=int, default=16384)
    p_exp.add_argument("--mode", default="LLNN",
                       help="TRSM side/uplo/trans/diag letters "
                       "(BLAS order), e.g. LLNN or RUTU")
    p_exp.add_argument("--deep", action="store_true",
                       help="run the cycle model: pack-vs-nopack cost "
                       "comparison and TimingResult breakdown")
    p_exp.add_argument("--autotune", action="store_true")
    p_exp.add_argument("--force-pack", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "self-check":
        return _cmd_self_check(args)
    if args.command == "explain":
        return _cmd_explain(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
