"""Compact batched LU factorization (GETRF, unpivoted) and solve.

The flagship demonstration that the framework's pieces compose into a
complete solver stack:

* for orders within the register budget (d <= 5 real / 3 complex) a
  generated *in-register LU kernel* factors every matrix of the batch
  simultaneously — the whole matrix lives in vector registers, the
  pivot reciprocal is one FDIV per column, the rank-1 trailing update
  is FMLS, exactly the compact-kernel idiom of the paper;
* larger orders use the classic blocked right-looking algorithm where
  every building block is an existing public operation:

      A11 = L11 U11          in-register LU kernel
      L21 = A21 U11^{-1}     compact TRSM (side R, upper, non-unit)
      U12 = L11^{-1} A12     compact TRSM (side L, lower, unit)
      A22 -= L21 @ U12       compact GEMM (alpha = -1, beta = 1)

  with sub-blocks moved through :meth:`CompactBatch.extract_block` /
  :meth:`~CompactBatch.write_block`.

No pivoting: like all batched compact factorizations (and MKL's
``mkl_dgetrfnp_compact``), the routine targets well-conditioned blocks
(diagonally dominant preconditioner blocks, mass matrices).  The result
overwrites A with L (unit lower, diagonal implicit) and U (upper).

``solve`` finishes the story: two compact TRSMs turn the factored batch
into a batched linear solver, used by the block-Jacobi example.
"""

from __future__ import annotations

import numpy as np

from ..codegen import regs
from ..codegen.optimizer import schedule_program
from ..codegen.validate import assert_valid
from ..errors import CodegenError, InvalidProblemError
from ..layout.compact import CompactBatch
from ..machine.executor import VectorExecutor
from ..machine.isa import (fdiv, fimm, fmla, fmls, fmul, fmuli,
                           ldpv, ldrv, stpv, strv, vmov)
from ..machine.machines import KUNPENG_920, MachineConfig
from ..machine.memory import MemorySpace
from ..machine.program import Program
from ..runtime.iatf import IATF
from ..types import BlasDType, TrsmProblem, GemmProblem

__all__ = ["CompactGetrf", "max_lu_order", "generate_lu_kernel"]


def max_lu_order(dtype: "BlasDType | str", num_vregs: int = 32) -> int:
    """Largest order whose full matrix + temps fit the register file.

    Real: ``d^2 + 2`` registers (matrix, the constant one, the pivot
    reciprocal) — d <= 5.  Complex doubles the matrix and needs three
    temps — d <= 3.
    """
    dt = BlasDType.from_any(dtype)
    d = 0
    while True:
        need = (2 * (d + 1) * (d + 1) + 4 if dt.is_complex
                else (d + 1) * (d + 1) + 2)
        if need > num_vregs:
            return d
        d += 1


def generate_lu_kernel(d: int, dtype: "BlasDType | str",
                       machine: MachineConfig) -> Program:
    """In-register unpivoted LU of a ``d x d`` compact batch, in place.

    PA points at the matrix in compact (column-major) layout; the kernel
    loads all of it, runs Doolittle elimination with FDIV-derived pivot
    reciprocals, and stores L\\U back over the input.
    """
    dt = BlasDType.from_any(dtype)
    bound = max_lu_order(dt, machine.num_vregs)
    if not 1 <= d <= bound:
        raise CodegenError(f"LU kernel order {d} outside 1..{bound} "
                           f"for {dt.value}")
    lanes = machine.lanes(dt)
    ew = dt.real_itemsize
    vb = lanes * ew
    ncomp = 2 if dt.is_complex else 1

    def a_reg(i: int, j: int, comp: int = 0) -> int:
        return ncomp * (j * d + i) + comp

    one = ncomp * d * d
    rec = one + 1
    # complex scratch: denom and the reciprocal's imaginary part
    den = rec + 1
    rim = den + 1

    ins = []
    # load the whole matrix (column-major contiguous)
    nvec = ncomp * d * d
    t = 0
    while t < nvec:
        if t + 1 < nvec:
            ins.append(ldpv(t, t + 1, regs.PA, t * vb, ew=ew, tag="LOAD"))
            t += 2
        else:
            ins.append(ldrv(t, regs.PA, t * vb, ew=ew, tag="LOAD"))
            t += 1
    ins.append(fimm(one, 1.0, ew=ew, tag="CONST"))

    for j in range(d):
        tag = f"COL{j}"
        if ncomp == 1:
            ins.append(fdiv(rec, one, a_reg(j, j), ew=ew, tag=tag))
            for i in range(j + 1, d):
                ins.append(fmul(a_reg(i, j), a_reg(i, j), rec, ew=ew,
                                tag=tag))
            for kk in range(j + 1, d):
                for i in range(j + 1, d):
                    ins.append(fmls(a_reg(i, kk), a_reg(i, j),
                                    a_reg(j, kk), ew=ew, tag=tag))
        else:
            pr, pi = a_reg(j, j, 0), a_reg(j, j, 1)
            # 1/p = (pr - i pi) / |p|^2: den = |p|^2, rec = pr/den,
            # rim = -pi/den
            ins.append(fmul(den, pr, pr, ew=ew, tag=tag))
            ins.append(fmla(den, pi, pi, ew=ew, tag=tag))
            ins.append(fdiv(rec, pr, den, ew=ew, tag=tag))
            ins.append(fdiv(rim, pi, den, ew=ew, tag=tag))
            ins.append(fmuli(rim, rim, -1.0, ew=ew, tag=tag))
            for i in range(j + 1, d):
                ar, ai = a_reg(i, j, 0), a_reg(i, j, 1)
                # (ar + i ai) * (rec + i rim); den is free as a temp now
                ins.append(fmul(den, ar, rec, ew=ew, tag=tag))
                ins.append(fmls(den, ai, rim, ew=ew, tag=tag))
                ins.append(fmul(ai, ai, rec, ew=ew, tag=tag))
                ins.append(fmla(ai, ar, rim, ew=ew, tag=tag))
                ins.append(vmov(ar, den, ew=ew, tag=tag))
            for kk in range(j + 1, d):
                for i in range(j + 1, d):
                    lr, li = a_reg(i, j, 0), a_reg(i, j, 1)
                    ur, ui = a_reg(j, kk, 0), a_reg(j, kk, 1)
                    cr, ci = a_reg(i, kk, 0), a_reg(i, kk, 1)
                    ins.append(fmls(cr, lr, ur, ew=ew, tag=tag))
                    ins.append(fmla(cr, li, ui, ew=ew, tag=tag))
                    ins.append(fmls(ci, lr, ui, ew=ew, tag=tag))
                    ins.append(fmls(ci, li, ur, ew=ew, tag=tag))

    t = 0
    while t < nvec:
        if t + 1 < nvec:
            ins.append(stpv(t, t + 1, regs.PA, t * vb, ew=ew, tag="STORE"))
            t += 2
        else:
            ins.append(strv(t, regs.PA, t * vb, ew=ew, tag="STORE"))
            t += 1

    prog = Program(f"{dt.value}getrf_{d}", ins, ew=ew, lanes=lanes,
                   meta={"routine": "getrf", "d": d, "dtype": dt.value})
    return prog


class CompactGetrf:
    """Batched unpivoted LU: factor in place, then solve with two TRSMs."""

    BLOCK = 4

    def __init__(self, machine: MachineConfig = KUNPENG_920,
                 iatf: IATF | None = None) -> None:
        self.machine = machine
        self.iatf = iatf if iatf is not None else IATF(machine)
        self._kcache: dict[tuple, Program] = {}

    def _kernel(self, d: int, dt: BlasDType) -> Program:
        key = (d, dt.value)
        prog = self._kcache.get(key)
        if prog is None:
            prog = generate_lu_kernel(d, dt, self.machine)
            prog = schedule_program(prog, self.machine)
            assert_valid(prog, self.machine)
            self._kcache[key] = prog
        return prog

    def _factor_in_register(self, a: CompactBatch) -> None:
        prog = self._kernel(a.rows, a.dtype)
        mem = MemorySpace()
        mem.bind("A", a.buffer)
        ex = VectorExecutor(mem, groups=a.groups)
        ex.set_pointer(regs.PA, "A", a.group_base_offsets())
        ex.run(prog)

    def factor(self, a: CompactBatch) -> CompactBatch:
        """In-place LU of every matrix: A becomes L\\U (L unit lower)."""
        if a.rows != a.cols:
            raise InvalidProblemError(
                f"LU needs square matrices, got {a.rows}x{a.cols}")
        d = a.rows
        bound = max_lu_order(a.dtype, self.machine.num_vregs)
        if d <= bound:
            self._factor_in_register(a)
            return a
        nb = min(self.BLOCK, bound)
        pos = 0
        while pos < d:
            b = min(nb, d - pos)
            end = pos + b
            a11 = a.extract_block(pos, end, pos, end)
            self._factor_in_register(a11)
            a.write_block(pos, pos, a11)
            if end < d:
                a21 = a.extract_block(end, d, pos, end)
                a12 = a.extract_block(pos, end, end, d)
                a22 = a.extract_block(end, d, end, d)
                # L21 = A21 U11^{-1}
                self.iatf.trsm_compact(
                    TrsmProblem(d - end, b, a.dtype, "R", "U", "N", "N",
                                a.batch), a11, a21)
                # U12 = L11^{-1} A12
                self.iatf.trsm_compact(
                    TrsmProblem(b, d - end, a.dtype, "L", "L", "N", "U",
                                a.batch), a11, a12)
                # A22 -= L21 U12
                self.iatf.gemm_compact(
                    GemmProblem(d - end, d - end, b, a.dtype,
                                batch=a.batch, alpha=-1.0, beta=1.0),
                    a21, a12, a22)
                a.write_block(end, pos, a21)
                a.write_block(pos, end, a12)
                a.write_block(end, end, a22)
            pos = end
        return a

    def solve(self, lu: CompactBatch, b: CompactBatch) -> CompactBatch:
        """Solve ``A X = B`` given the factored batch; B becomes X."""
        d = lu.rows
        if b.rows != d:
            raise InvalidProblemError(
                f"rhs rows {b.rows} != factored order {d}")
        self.iatf.trsm_compact(
            TrsmProblem(d, b.cols, lu.dtype, "L", "L", "N", "U", b.batch),
            lu, b)
        self.iatf.trsm_compact(
            TrsmProblem(d, b.cols, lu.dtype, "L", "U", "N", "N", b.batch),
            lu, b)
        return b
