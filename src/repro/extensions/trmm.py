"""Compact batched TRMM: ``B := alpha * op(A) @ B`` with triangular A.

Built from existing parts:

* the same mode normalization as TRSM (all eight side/uplo/trans
  combinations map onto the canonical lower-left orientation by
  persymmetric flip and/or transposition of B);
* the Table 1 GEMM kernel family, invoked with a *variable K per row
  block*: canonical row block ``i`` (rows ``s_i .. s_i + t_i``) only
  multiplies columns ``0 .. s_i + t_i`` of the triangle, so its kernels
  run with ``K_i = s_i + t_i`` — the structure exploitation that makes
  this TRMM cost half the madds of a dense GEMM of the same order;
* A row panels are packed in the GEMM-A stream order with the strict
  upper part of the diagonal block zero-masked (and a unit diagonal
  materialized as ones), so the kernels stay oblivious to the
  triangular structure;
* B is Z-packed once per column tile over the full depth ``d``; a kernel
  with depth ``K_i`` simply consumes the panel's prefix;
* results land in a fresh column-major work panel (beta = 0 kernels)
  that is unpacked with the inverse mode transform — reusing
  :func:`repro.packing.trsm_pack.unpack_trsm_b` verbatim.
"""

from __future__ import annotations

import numpy as np

from ..codegen.registry import KernelRegistry
from ..codegen.tiling import decompose_dim, tile_starts
from ..layout.compact import CompactBatch
from ..machine.machines import KUNPENG_920, MachineConfig
from ..machine.memory import MemorySpace
from ..packing.cost import PackCost
from ..packing.trsm_pack import (NormalizedTrsm, _scale_planes,
                                 _stored_index, unpack_trsm_b)
from ..runtime.engine import Engine, PlanTiming
from ..runtime.lowering import CompiledPlan, lower_plan
from ..runtime.plan import BufferSpec, ExecutionPlan, KernelCall
from ..types import Diag, Side, Trans, TrmmProblem, TrsmProblem, UpLo

__all__ = ["CompactTrmm", "normalize_trmm_mode"]


def normalize_trmm_mode(problem: TrmmProblem) -> NormalizedTrsm:
    """TRMM transforms exactly like TRSM: reuse the TRSM normalizer."""
    from ..packing.trsm_pack import normalize_trsm_mode
    equivalent = TrsmProblem(problem.m, problem.n, problem.dtype,
                             problem.side, problem.uplo, problem.transa,
                             problem.diag, problem.batch, 1.0)
    norm = normalize_trsm_mode(equivalent)
    return NormalizedTrsm(norm.d, norm.n_rhs, norm.transpose_b, norm.flip,
                          norm.gather_trans, problem.diag is Diag.UNIT,
                          complex(problem.alpha))


def _pack_trmm_a(a: CompactBatch, norm: NormalizedTrsm,
                 row_tiles: list[int]) -> tuple[np.ndarray, list[int]]:
    """Masked canonical-lower row panels in GEMM-A stream order."""
    d = norm.d
    grid = a.as_grid()
    starts = tile_starts(row_tiles)
    esz = a.dtype.real_itemsize
    elem_bytes = a.elem_stride * esz
    panels: list[np.ndarray] = []
    offsets: list[int] = []
    pos = 0
    for size, start in zip(row_tiles, starts):
        depth = start + size
        # [l][r] with l < depth: element L[start + r, l]
        imap = np.add.outer(np.zeros(depth, dtype=int),
                            start + np.arange(size))
        jmap = np.add.outer(np.arange(depth), np.zeros(size, dtype=int))
        keep = imap >= jmap                       # the lower triangle
        diag = imap == jmap
        si, sj = _stored_index(norm, imap, jmap)
        panel = np.ascontiguousarray(grid[:, si, sj, :, :])
        panel[:, ~keep] = 0.0
        if norm.unit:
            dsel = np.where(diag.ravel())[0].reshape(-1)
            flat = panel.reshape(panel.shape[0], -1, *panel.shape[3:])
            flat[:, dsel, 0, :] = 1.0
            if a.ncomp == 2:
                flat[:, dsel, 1, :] = 0.0
        panels.append(panel)
        offsets.append(pos)
        pos += depth * size * elem_bytes
    flat = [np.ascontiguousarray(p).reshape(a.groups, -1) for p in panels]
    data = np.concatenate(flat, axis=1).reshape(-1).astype(
        a.dtype.real_dtype, copy=False)
    return data, offsets


def _pack_trmm_b_z(b: CompactBatch, norm: NormalizedTrsm,
                   col_tiles: list[int]) -> tuple[np.ndarray, list[int]]:
    """Canonical B, Z-packed per column tile over the full depth d."""
    grid = b.as_grid()
    if norm.transpose_b:
        grid = grid.transpose(0, 2, 1, 3, 4)
    if norm.flip:
        grid = grid[:, ::-1, :, :, :]
    grid = _scale_planes(grid, norm.alpha, b.dtype.is_complex)
    esz = b.dtype.real_itemsize
    elem_bytes = b.ncomp * b.lanes * esz
    d = norm.d
    starts = tile_starts(col_tiles)
    panels, offsets, pos = [], [], 0
    for size, start in zip(col_tiles, starts):
        panel = grid[:, :, start:start + size, :, :]   # (G, d, size, ...)
        panels.append(panel)
        offsets.append(pos)
        pos += d * size * elem_bytes
    flat = [np.ascontiguousarray(p).reshape(b.groups, -1) for p in panels]
    data = np.concatenate(flat, axis=1).reshape(-1).astype(
        b.dtype.real_dtype, copy=False)
    return data, offsets


class CompactTrmm:
    """Planner/executor/timer for the compact TRMM extension."""

    def __init__(self, machine: MachineConfig = KUNPENG_920,
                 registry: KernelRegistry | None = None,
                 backend: "str | None" = None) -> None:
        self.machine = machine
        self.registry = registry if registry is not None \
            else KernelRegistry(machine)
        self.engine = Engine(machine, backend=backend)
        self._plans: dict[TrmmProblem, ExecutionPlan] = {}
        self._compiled: dict[TrmmProblem, CompiledPlan] = {}

    # -- planning -------------------------------------------------------

    def plan(self, problem: TrmmProblem) -> ExecutionPlan:
        """Build (and cache) the TRMM command queue for a problem shape."""
        cached = self._plans.get(problem)
        if cached is not None:
            return cached
        p = problem
        dt = p.dtype
        norm = normalize_trmm_mode(p)
        d, n_rhs = norm.d, norm.n_rhs
        mc_main, nc_main = self.registry.main_gemm_kernel(dt)
        row_tiles = decompose_dim(d, mc_main)
        col_tiles = decompose_dim(n_rhs, nc_main)
        row_starts = tile_starts(row_tiles)
        col_starts = tile_starts(col_tiles)

        ncomp = 2 if dt.is_complex else 1
        eb = self.machine.lanes(dt) * ncomp * dt.real_itemsize
        lanes = self.machine.lanes(dt)
        groups = -(-p.batch // lanes)

        # analytic pack offsets (must mirror the pack functions)
        a_offs, pos = [], 0
        for size, start in zip(row_tiles, row_starts):
            a_offs.append(pos)
            pos += (start + size) * size * eb
        a_stride = pos
        b_offs, pos = [], 0
        for size in col_tiles:
            b_offs.append(pos)
            pos += d * size * eb
        b_stride = pos

        calls: list[KernelCall] = []
        for jt, (nt, ns) in enumerate(zip(col_tiles, col_starts)):
            for it, (mt, ms) in enumerate(zip(row_tiles, row_starts)):
                depth = ms + mt
                prog = self.registry.gemm_kernel(mt, nt, depth, dt,
                                                 alpha=1.0, beta=0.0)
                calls.append(KernelCall(
                    program=prog,
                    a_buf="packTA", a_off=a_offs[it],
                    b_buf="packBZ", b_off=b_offs[jt],
                    c_buf="workB",
                    c_offsets=tuple(((ns + j) * d + ms) * eb
                                    for j in range(nt)),
                ))

        work_stride = d * n_rhs * eb
        buffers = {
            "A": BufferSpec("A", p.a_dim * p.a_dim * eb, warm="cold"),
            "B": BufferSpec("B", p.m * p.n * eb, warm="cold"),
            "packTA": BufferSpec("packTA", a_stride, warm="l1"),
            "packBZ": BufferSpec("packBZ", b_stride, warm="l1"),
            "workB": BufferSpec("workB", work_stride, warm="l1"),
        }
        pack = PackCost(bytes_read=(a_stride + b_stride) * groups,
                        bytes_written=(a_stride + b_stride) * groups,
                        panels=(len(row_tiles) + len(col_tiles)) * groups,
                        ew=dt.real_itemsize)
        unpack = PackCost(bytes_read=work_stride * groups,
                          bytes_written=p.m * p.n * eb * groups,
                          panels=groups, ew=dt.real_itemsize)
        plan = ExecutionPlan(
            kind="trmm", problem=p, machine=self.machine, calls=calls,
            buffers=buffers, pack_cost=pack, unpack_cost=unpack,
            groups=groups, groups_per_round=max(
                1, self.machine.l1.size // max(a_stride + b_stride
                                               + work_stride, 1)),
            meta={"norm": norm, "row_tiles": row_tiles,
                  "col_tiles": col_tiles,
                  "madds_structured": sum((s + t) * t for s, t in
                                          zip(row_starts, row_tiles)) * n_rhs,
                  "madds_dense": d * d * n_rhs},
        )
        self._plans[problem] = plan
        return plan

    # -- execution ---------------------------------------------------------

    def execute(self, problem: TrmmProblem, a: CompactBatch,
                b: CompactBatch) -> CompactBatch:
        """In-place ``B := alpha op(A) B`` on compact operands."""
        plan = self.plan(problem)
        norm = plan.meta["norm"]
        pa, _ = _pack_trmm_a(a, norm, plan.meta["row_tiles"])
        pb, _ = _pack_trmm_b_z(b, norm, plan.meta["col_tiles"])
        work = np.zeros(plan.buffers["workB"].group_stride_bytes
                        // b.dtype.real_itemsize * b.groups,
                        dtype=b.dtype.real_dtype)
        mem = MemorySpace()
        mem.bind("packTA", pa)
        mem.bind("packBZ", pb)
        mem.bind("workB", work)
        strides = {name: plan.buffers[name].group_stride_bytes
                   for name in ("packTA", "packBZ", "workB")}
        compiled = None
        if self.engine.backend.needs_lowering:
            compiled = self._compiled.get(problem)
            if compiled is None:
                compiled = lower_plan(plan)
                self._compiled[problem] = compiled
        self.engine.run_plan(plan, mem, strides, b.groups, compiled=compiled)
        # n_pad == n_rhs here (column tiles cover n exactly)
        unpack_trsm_b(work, b, norm, pad_cols_to=1)
        return b

    # -- timing --------------------------------------------------------------

    def time(self, problem: TrmmProblem) -> PlanTiming:
        """Cycle-model timing of the planned TRMM."""
        return self.engine.time_plan(self.plan(problem))
