"""Extension routines beyond the paper's GEMM/TRSM (its stated future
work: "the kernel design and optimization of other BLAS functions under
the SIMD-friendly data layout").

* :mod:`repro.extensions.trmm` — compact batched TRMM built from the
  Table 1 GEMM kernel family with variable-K row panels.
* :mod:`repro.extensions.getrf` — compact batched unpivoted LU: an
  in-register factorization kernel for small orders plus a blocked
  right-looking algorithm whose building blocks are the framework's own
  compact TRSM and GEMM — a complete batched linear solver.
"""

from .getrf import CompactGetrf, generate_lu_kernel, max_lu_order
from .trmm import CompactTrmm

__all__ = ["CompactTrmm", "CompactGetrf", "generate_lu_kernel",
           "max_lu_order"]
