"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the public API derives from :class:`ReproError`, so
downstream users can catch one type.  Subsystems raise the more specific
subclasses below; internal invariant violations use plain ``AssertionError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidProblemError(ReproError, ValueError):
    """A BLAS problem descriptor is malformed (bad sizes, dtype, flags)."""


class LayoutError(ReproError, ValueError):
    """A compact-layout buffer does not match the expected shape/padding."""


class CodegenError(ReproError):
    """Kernel generation failed (unsupported size, register overflow...)."""


class RegisterAllocationError(CodegenError):
    """A kernel template requires more vector registers than the machine has."""


class MachineError(ReproError):
    """The simulated machine was misused (bad register, unmapped address...)."""


class ExecutionError(MachineError):
    """Functional execution of a program failed."""


class PlanError(ReproError):
    """The run-time stage could not build an execution plan."""


class LoweringError(PlanError):
    """A plan could not be lowered to a compiled command stream (or the
    one-time lower-time validation caught what would have been a
    run-time execution fault)."""


class UnsupportedModeError(PlanError, NotImplementedError):
    """The requested mode combination has no kernel in the registry."""


class ProfileError(ReproError):
    """The attribution profiler's conservation invariant failed, or a
    profile was requested over an empty/unknown command stream."""


class BudgetError(ReproError):
    """A request latency budget was misused (stage stamped out of
    order) or failed its conservation invariant (the stage sum must
    reproduce the end-to-end wall, exactly like the profiler's
    largest-remainder attribution must reproduce the modeled total)."""


class RejectedError(ReproError):
    """The service frontend refused a request for capacity reasons.

    Overload is not invalid input: a rejected request was *well-formed*
    (it passed :class:`InvalidProblemError` validation) but the service
    chose not to queue it — a tenant exceeded its in-flight limit, the
    global queue is full, or the service is not running.  Callers retry
    with backoff; they do not fix their arguments.
    """

    def __init__(self, reason: str, tenant: "str | None" = None) -> None:
        self.reason = reason
        self.tenant = tenant
        at = f" (tenant {tenant!r})" if tenant is not None else ""
        super().__init__(f"request rejected{at}: {reason}")
