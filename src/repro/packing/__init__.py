"""Data-packing kernels and their cost model (paper Section 4.4).

Packing re-arranges compact-layout operands into the exact streaming
order the computing kernels consume: A panels are N-shaped (down the
k-columns of each row tile), B panels are Z-shaped (across the n-row of
each k step), and TRSM triangles are packed row-major with the diagonal
replaced by its (complex) reciprocal so the solve kernel is
division-free.  A no-packing analysis skips the copy whenever the
compact layout already matches the kernel's access pattern.
"""

from .gemm_pack import PackedOperand, pack_gemm_a, pack_gemm_b
from .trsm_pack import (PackedTriangles, pack_trsm_a, pack_trsm_b,
                        unpack_trsm_b, normalize_trsm_mode)
from .nopack import gemm_a_nopack, gemm_b_nopack, trsm_b_nopack
from .cost import PackCost

__all__ = [
    "PackedOperand", "pack_gemm_a", "pack_gemm_b",
    "PackedTriangles", "pack_trsm_a", "pack_trsm_b", "unpack_trsm_b",
    "normalize_trsm_mode",
    "gemm_a_nopack", "gemm_b_nopack", "trsm_b_nopack",
    "PackCost",
]
