"""GEMM operand packing (paper Figure 6: N-shaped A, Z-shaped B).

The computing kernel consumes, per k-step, ``mc`` consecutive vectors of
A (one per row of the current row tile) followed by ``nc`` vectors of B
(one per column of the current column tile).  Packing therefore writes,
per tile, panels in ``[k][within-tile]`` order — which is the N shape
for A (walk down a column block, then right) and the Z shape for B
(walk across a row, then down).  Transposed operands are normalized
here, so every compute kernel sees the same order regardless of mode.

All gathers are pure NumPy slicing/transposition over the compact grid
view — one vectorized copy per tile panel, no per-matrix loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import LayoutError
from ..layout.compact import CompactBatch
from ..types import Trans
from .cost import PackCost

__all__ = ["PackedOperand", "pack_gemm_a", "pack_gemm_b"]


@dataclass
class PackedOperand:
    """A packed (or no-pack aliased) operand ready for kernel consumption.

    ``data`` is the flat real buffer when ``packed``; for the no-packing
    fast path ``data`` is None and the engine addresses the original
    compact buffer using the same offsets.
    """

    packed: bool
    data: np.ndarray | None
    group_stride_bytes: int
    tile_offsets: list[int]        # byte offset of each tile panel in a group
    tile_sizes: list[int]
    cost: PackCost

    @property
    def num_tiles(self) -> int:
        return len(self.tile_sizes)


def _flatten_panels(panels: list[np.ndarray], groups: int) -> np.ndarray:
    """Write per-tile panels straight into the packed buffer.

    One preallocated output and one strided copy per panel — the
    previous ``ascontiguousarray`` + ``concatenate`` route moved every
    byte twice.  A destination column slice reshapes to the panel's
    shape without copying (only the contiguous last axis is split), and
    when the trailing ``(ncomp, P)`` block is a whole number of 16-byte
    units both sides reinterpret as complex128, so the C-level copy
    loop moves 16 B per element instead of one real at a time.  Either
    way the bytes land in the same order as the old concatenation.
    """
    width = sum(p.size for p in panels) // groups
    out = np.empty((groups, width), dtype=panels[0].dtype)
    col = 0
    for p in panels:
        w = p.size // groups
        dst = out[:, col:col + w].reshape(p.shape)
        if (p.dtype.itemsize * p.shape[-1]) % 16 == 0:
            np.copyto(dst.view(np.complex128), p.view(np.complex128))
        else:
            np.copyto(dst, p)
        col += w
    return out.reshape(-1)


def pack_gemm_a(a: CompactBatch, transa: Trans, k: int,
                m_tiles: list[int]) -> PackedOperand:
    """Pack op(A) into N-shaped row-tile panels.

    ``a`` stores the pre-op matrix; its shape must be (m, k) for N or
    (k, m) for T, where m = sum(m_tiles).
    """
    m = sum(m_tiles)
    expect = (m, k) if transa is Trans.N else (k, m)
    if (a.rows, a.cols) != expect:
        raise LayoutError(
            f"A is {a.rows}x{a.cols}, expected {expect} for trans={transa.value}")
    grid = a.as_grid()                       # (G, rows, cols, ncomp, P)
    panels: list[np.ndarray] = []
    offsets: list[int] = []
    pos = 0
    esz = a.dtype.real_itemsize
    for size, start in zip(m_tiles, _starts(m_tiles)):
        if transa is Trans.N:
            # grid (G, m, k, ...) -> [l][i] panel
            panel = grid[:, start:start + size, :, :, :].transpose(0, 2, 1, 3, 4)
        else:
            # grid (G, k, m, ...) is already [l][i] for the sliced columns
            panel = grid[:, :, start:start + size, :, :]
        panels.append(panel)
        offsets.append(pos)
        pos += size * k * a.elem_stride * esz
    data = _flatten_panels(panels, a.groups).astype(a.dtype.real_dtype,
                                                    copy=False)
    nbytes = int(data.nbytes)
    cost = PackCost(bytes_read=nbytes, bytes_written=nbytes,
                    panels=len(m_tiles) * a.groups, ew=esz)
    return PackedOperand(True, data, pos, offsets, list(m_tiles), cost)


def pack_gemm_b(b: CompactBatch, transb: Trans, k: int,
                n_tiles: list[int]) -> PackedOperand:
    """Pack op(B) into Z-shaped column-tile panels (``[l][j]`` order)."""
    n = sum(n_tiles)
    expect = (k, n) if transb is Trans.N else (n, k)
    if (b.rows, b.cols) != expect:
        raise LayoutError(
            f"B is {b.rows}x{b.cols}, expected {expect} for trans={transb.value}")
    grid = b.as_grid()
    panels: list[np.ndarray] = []
    offsets: list[int] = []
    pos = 0
    esz = b.dtype.real_itemsize
    for size, start in zip(n_tiles, _starts(n_tiles)):
        if transb is Trans.N:
            # grid (G, k, n, ...): [l][j] = direct column slice
            panel = grid[:, :, start:start + size, :, :]
        else:
            # grid (G, n, k, ...): [l][j] = stored (start+j, l) -> transpose
            panel = grid[:, start:start + size, :, :, :].transpose(0, 2, 1, 3, 4)
        panels.append(panel)
        offsets.append(pos)
        pos += size * k * b.elem_stride * esz
    data = _flatten_panels(panels, b.groups).astype(b.dtype.real_dtype,
                                                    copy=False)
    nbytes = int(data.nbytes)
    cost = PackCost(bytes_read=nbytes, bytes_written=nbytes,
                    panels=len(n_tiles) * b.groups, ew=esz)
    return PackedOperand(True, data, pos, offsets, list(n_tiles), cost)


def _starts(tiles: list[int]) -> list[int]:
    out, pos = [], 0
    for t in tiles:
        out.append(pos)
        pos += t
    return out
