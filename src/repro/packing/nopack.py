"""No-packing opportunity analysis (paper Section 4.4, last paragraph).

Packing exists only to make kernel memory access contiguous; when the
compact layout already delivers the kernel's order, the pack selector
skips the copy.  Under column-major compact storage the exact
conditions are:

* **GEMM A**: non-transposed and covered by a *single* row tile — the
  whole stored column ``k`` is then precisely the ``mc`` vectors the
  kernel wants per k-step, and consecutive k-columns are adjacent.
  (The paper: "for GEMM under NN mode, when M does not exceed the size
  of the computing kernel design, matrix A is accessed rows by rows".)
* **GEMM B**: transposed and covered by a single column tile — stored
  B is (n x k) column-major, so walking a stored column yields the
  ``[l-step][j]`` order the kernel wants.
* **TRSM B**: the mode normalizes to lower/no-flip with unit alpha and
  the whole problem is solved by one in-register triangular kernel —
  then B's columns are consumed exactly as stored.  (The paper: "For
  TRSM under LNLN mode, when M does not exceed the size of the
  computing kernel design, the packing of matrix B can be skipped.")

Each helper returns a :class:`PackedOperand`-compatible aliasing
descriptor, or None when packing is required.
"""

from __future__ import annotations

from ..layout.compact import CompactBatch
from ..types import Trans
from .cost import PackCost
from .gemm_pack import PackedOperand

__all__ = ["gemm_a_nopack", "gemm_b_nopack", "trsm_b_nopack"]


def gemm_a_nopack(a: CompactBatch, transa: Trans,
                  m_tiles: list[int]) -> PackedOperand | None:
    if transa is not Trans.N or len(m_tiles) != 1:
        return None
    return PackedOperand(
        packed=False, data=None,
        group_stride_bytes=a.group_stride_bytes,
        tile_offsets=[0], tile_sizes=list(m_tiles),
        cost=PackCost(ew=a.dtype.real_itemsize),
    )


def gemm_b_nopack(b: CompactBatch, transb: Trans,
                  n_tiles: list[int]) -> PackedOperand | None:
    if transb is not Trans.T or len(n_tiles) != 1:
        return None
    return PackedOperand(
        packed=False, data=None,
        group_stride_bytes=b.group_stride_bytes,
        tile_offsets=[0], tile_sizes=list(n_tiles),
        cost=PackCost(ew=b.dtype.real_itemsize),
    )


def trsm_b_nopack(b: CompactBatch, needs_flip: bool, needs_transpose: bool,
                  alpha: complex, whole_problem_in_registers: bool
                  ) -> PackedOperand | None:
    if needs_flip or needs_transpose or alpha != 1 \
            or not whole_problem_in_registers:
        return None
    return PackedOperand(
        packed=False, data=None,
        group_stride_bytes=b.group_stride_bytes,
        tile_offsets=[0], tile_sizes=[b.rows],
        cost=PackCost(ew=b.dtype.real_itemsize),
    )
