"""Cycle-cost model for data packing.

Packing is a streaming copy (the paper: "the data copied each time is at
least the number of data that fills the length of the SIMD vector, so we
use the memcpy function"), so its cost is bandwidth-shaped, not
pipeline-shaped; we model it as bytes moved over the machine's sustained
copy throughput plus a small per-panel loop overhead, and — for TRSM —
the reciprocal divisions the triangle pack performs, which block the FP
divider (the paper's stated reason packing pre-inverts the diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machines import MachineConfig

__all__ = ["PackCost", "PER_PANEL_OVERHEAD_CYCLES"]

PER_PANEL_OVERHEAD_CYCLES = 12.0
"""Loop setup / address arithmetic per packed panel (per group)."""


@dataclass(frozen=True)
class PackCost:
    """Aggregate cost of one packing pass over the whole batch."""

    bytes_read: int = 0
    bytes_written: int = 0
    panels: int = 0                # panel copies performed (all groups)
    div_vectors: int = 0           # vectorized reciprocal ops (all groups)
    ew: int = 8

    def __add__(self, other: "PackCost") -> "PackCost":
        return PackCost(
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
            self.panels + other.panels,
            self.div_vectors + other.div_vectors,
            max(self.ew, other.ew),
        )

    def cycles(self, machine: MachineConfig) -> float:
        """Total packing cycles on the given machine."""
        moved = self.bytes_read + self.bytes_written
        c = moved / machine.copy_bytes_per_cycle
        c += self.panels * PER_PANEL_OVERHEAD_CYCLES
        c += self.div_vectors * machine.lat.div_block(self.ew)
        return c

    @property
    def is_free(self) -> bool:
        return (self.bytes_read == 0 and self.bytes_written == 0
                and self.div_vectors == 0)
