"""TRSM operand packing: mode normalization, triangle pack, B panel pack.

The pack selector maps all sixteen (side, trans, uplo, diag) mode
combinations onto ONE canonical kernel orientation — left side, lower
triangle, no transpose — so a single kernel family serves every mode
(paper Section 5.2: "It matches appropriate data packing kernels for
different modes to pack matrices into the same order, so that only one
computational kernel is needed to handle all modes").  The maps are:

* side RIGHT:  ``X op(A) = alpha B``  ==  ``op(A)^T X^T = alpha B^T`` —
  transpose B, toggle the transpose flag, solve order becomes n.
* effective upper triangle (uplo/trans combination): persymmetric flip
  — index ``(i, j) -> (d-1-i, d-1-j)`` turns upper into lower, with B's
  rows reversed on the way in and out.

The triangle pack stores blocks in solve order — for each diagonal
block ``d``: the rectangular ``L(d, e)`` panels for ``e < d`` (in the
GEMM-A streaming layout the FMLS kernel consumes) followed by block
``d``'s triangle (row-major, diagonal pre-reciprocated; the paper's
"the diagonal part is stored as its reciprocal" to avoid ARM's long
division latency inside the kernel).

The B pack produces a column-major working panel (rows flipped and/or
transposed per the normalization, scaled by alpha, columns zero-padded
to the rectangular kernel width); the solve overwrites it in place and
``unpack_trsm_b`` applies the inverse transform back into the user's
compact B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LayoutError
from ..layout.compact import CompactBatch
from ..layout.padding import padded_count
from ..types import Diag, Side, Trans, TrsmProblem, UpLo
from .cost import PackCost

__all__ = ["NormalizedTrsm", "normalize_trsm_mode", "PackedTriangles",
           "pack_trsm_a", "pack_trsm_b", "unpack_trsm_b"]


@dataclass(frozen=True)
class NormalizedTrsm:
    """Canonical-orientation view of a TRSM problem."""

    d: int                  # solve order (rows of the canonical system)
    n_rhs: int              # right-hand-side columns of the canonical system
    transpose_b: bool       # B enters/leaves as its transpose (side RIGHT)
    flip: bool              # persymmetric flip (effective upper triangle)
    gather_trans: bool      # op(A) element gather reads A[j, i]
    unit: bool
    alpha: complex


def normalize_trsm_mode(problem: TrsmProblem) -> NormalizedTrsm:
    p = problem
    if p.side is Side.RIGHT:
        trans_eff = Trans.T if p.transa is Trans.N else Trans.N
        d, n_rhs, transpose_b = p.n, p.m, True
    else:
        trans_eff = p.transa
        d, n_rhs, transpose_b = p.m, p.n, False
    lower_eff = (p.uplo is UpLo.LOWER) == (trans_eff is Trans.N)
    return NormalizedTrsm(
        d=d, n_rhs=n_rhs, transpose_b=transpose_b,
        flip=not lower_eff,
        gather_trans=trans_eff is Trans.T,
        unit=p.diag is Diag.UNIT,
        alpha=complex(p.alpha),
    )


def _stored_index(norm: NormalizedTrsm, imap: np.ndarray,
                  jmap: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map canonical (lower) indices to stored-A indices."""
    if norm.flip:
        imap = norm.d - 1 - imap
        jmap = norm.d - 1 - jmap
    if norm.gather_trans:
        imap, jmap = jmap, imap
    return imap, jmap


@dataclass
class PackedTriangles:
    """Packed A-side panels of a blocked TRSM, in solve order."""

    data: np.ndarray
    group_stride_bytes: int
    blocks: list[int]                          # diagonal block sizes
    tri_offsets: list[int]                     # per diagonal block
    rect_offsets: dict[tuple[int, int], int]   # (d_idx, e_idx) -> offset
    cost: PackCost


def _reciprocal(values: np.ndarray, is_complex: bool) -> np.ndarray:
    """Elementwise reciprocal on an (..., ncomp, P) slab of planes.

    Padding lanes hold zeros; they are forced to 1 before inverting so
    the padded solves stay finite (their results are never unpacked).
    """
    if not is_complex:
        safe = np.where(values == 0.0, 1.0, values)
        return 1.0 / safe
    re, im = values[..., 0, :], values[..., 1, :]
    denom = re * re + im * im
    denom = np.where(denom == 0.0, 1.0, denom)
    out = np.empty_like(values)
    out[..., 0, :] = re / denom
    out[..., 1, :] = -im / denom
    return out


def pack_trsm_a(a: CompactBatch, norm: NormalizedTrsm,
                blocks: list[int]) -> PackedTriangles:
    """Gather the canonical lower triangle into solve-order panels."""
    d = norm.d
    if (a.rows, a.cols) != (d, d):
        raise LayoutError(f"A is {a.rows}x{a.cols}, expected {d}x{d}")
    if sum(blocks) != d:
        raise LayoutError(f"blocks {blocks} do not cover order {d}")
    grid = a.as_grid()                   # (G, d, d, ncomp, P)
    esz = a.dtype.real_itemsize
    elem_bytes = a.elem_stride * esz     # bytes per gathered element
    is_c = a.dtype.is_complex
    starts: list[int] = []
    pos = 0
    for b in blocks:
        starts.append(pos)
        pos += b

    panels: list[np.ndarray] = []
    tri_offsets: list[int] = []
    rect_offsets: dict[tuple[int, int], int] = {}
    byte_pos = 0
    panel_count = 0
    for di, (dsz, dst) in enumerate(zip(blocks, starts)):
        for ei in range(di):
            eb, est = blocks[ei], starts[ei]
            # GEMM-A layout: [kstep within e][row within d]
            imap = np.add.outer(np.zeros(eb, dtype=int), dst + np.arange(dsz))
            jmap = np.add.outer(est + np.arange(eb), np.zeros(dsz, dtype=int))
            si, sj = _stored_index(norm, imap, jmap)
            panel = grid[:, si, sj, :, :]          # (G, eb, dsz, ncomp, P)
            panels.append(panel)
            rect_offsets[(di, ei)] = byte_pos
            byte_pos += eb * dsz * elem_bytes
            panel_count += 1
        # the diagonal triangle, row-major with reciprocal diagonal
        ij = [(dst + i, dst + j) for i in range(dsz) for j in range(i + 1)]
        imap = np.array([p[0] for p in ij])
        jmap = np.array([p[1] for p in ij])
        si, sj = _stored_index(norm, imap, jmap)
        panel = np.ascontiguousarray(grid[:, si, sj, :, :])  # (G, T, ncomp, P)
        if not norm.unit:
            diag_sel = np.array([t for t, (i, j) in enumerate(ij) if i == j])
            panel[:, diag_sel] = _reciprocal(panel[:, diag_sel], is_c)
        panels.append(panel)
        tri_offsets.append(byte_pos)
        byte_pos += len(ij) * elem_bytes
        panel_count += 1

    flat = [np.ascontiguousarray(p).reshape(a.groups, -1) for p in panels]
    data = np.concatenate(flat, axis=1).reshape(-1).astype(a.dtype.real_dtype,
                                                           copy=False)
    nbytes = int(data.nbytes)
    divs = 0 if norm.unit else d * (2 if is_c else 1)
    cost = PackCost(bytes_read=nbytes, bytes_written=nbytes,
                    panels=panel_count * a.groups,
                    div_vectors=divs * a.groups, ew=esz)
    return PackedTriangles(data, byte_pos, list(blocks), tri_offsets,
                           rect_offsets, cost)


def _scale_planes(grid: np.ndarray, alpha: complex,
                  is_complex: bool) -> np.ndarray:
    """Multiply an (..., ncomp, P) plane slab by alpha."""
    if alpha == 1:
        return grid
    if not is_complex:
        return grid * float(alpha.real)
    ar, ai = alpha.real, alpha.imag
    out = np.empty_like(grid)
    re, im = grid[..., 0, :], grid[..., 1, :]
    out[..., 0, :] = ar * re - ai * im
    out[..., 1, :] = ar * im + ai * re
    return out


def pack_trsm_b(b: CompactBatch, norm: NormalizedTrsm,
                pad_cols_to: int = 1) -> tuple[np.ndarray, PackCost]:
    """Build the canonical column-major working panel of B.

    Returns (flat work buffer of shape [G * d * n_pad * ncomp * P],
    cost).  The solve updates it in place; :func:`unpack_trsm_b`
    inverts the transform.
    """
    if (b.rows, b.cols) != ((norm.n_rhs, norm.d) if norm.transpose_b
                            else (norm.d, norm.n_rhs)):
        raise LayoutError(
            f"B is {b.rows}x{b.cols}, inconsistent with normalized "
            f"{norm.d}x{norm.n_rhs} (transpose_b={norm.transpose_b})")
    grid = b.as_grid()                    # (G, rows, cols, ncomp, P)
    if norm.transpose_b:
        grid = grid.transpose(0, 2, 1, 3, 4)
    if norm.flip:
        grid = grid[:, ::-1, :, :, :]
    grid = _scale_planes(grid, norm.alpha, b.dtype.is_complex)
    n_pad = padded_count(norm.n_rhs, pad_cols_to)
    G = b.groups
    work = np.zeros((G, n_pad, norm.d, b.ncomp, b.lanes),
                    dtype=b.dtype.real_dtype)
    # column-major: [col][row]
    work[:, :norm.n_rhs] = grid.transpose(0, 2, 1, 3, 4)
    flat = np.ascontiguousarray(work).reshape(-1)
    nbytes = int(flat.nbytes)
    cost = PackCost(bytes_read=int(b.nbytes), bytes_written=nbytes,
                    panels=G, ew=b.dtype.real_itemsize)
    return flat, cost


def unpack_trsm_b(work: np.ndarray, b: CompactBatch,
                  norm: NormalizedTrsm, pad_cols_to: int = 1) -> PackCost:
    """Write the solved panel back into the user's compact B."""
    n_pad = padded_count(norm.n_rhs, pad_cols_to)
    G = b.groups
    panel = work.reshape(G, n_pad, norm.d, b.ncomp, b.lanes)
    sol = panel[:, :norm.n_rhs].transpose(0, 2, 1, 3, 4)  # (G, d, n, ncomp, P)
    if norm.flip:
        sol = sol[:, ::-1, :, :, :]
    if norm.transpose_b:
        sol = sol.transpose(0, 2, 1, 3, 4)
    b.as_grid()[...] = sol
    nbytes = int(work.nbytes)
    return PackCost(bytes_read=nbytes, bytes_written=int(b.nbytes),
                    panels=G, ew=b.dtype.real_itemsize)
