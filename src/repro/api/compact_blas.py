"""Free-function compact BLAS interface.

Mirrors the shape of Intel MKL's compact API: explicit conversion
between standard batch arrays and the compact format, plus
``compact_gemm`` / ``compact_trsm`` operating on :class:`CompactBatch`
operands in place.  A process-wide default :class:`~repro.runtime.iatf.IATF`
instance (per machine) caches kernels and plans across calls, which is
how a downstream user gets install-time amortization without managing
framework objects.
"""

from __future__ import annotations

import threading

import numpy as np

from ..layout.compact import CompactBatch
from ..machine.machines import KUNPENG_920, MachineConfig
from ..runtime.backends import ExecutorBackend, backend_name
from ..runtime.iatf import IATF
from ..types import (BlasDType, Diag, GemmProblem, Side, Trans, TrsmProblem,
                     UpLo)

__all__ = ["compact_from_batch", "compact_to_batch", "compact_gemm",
           "compact_trsm", "default_framework"]

# keyed by (machine name, backend name); guarded by _FRAMEWORKS_LOCK so
# concurrent first calls cannot race to build two frameworks (each IATF
# builds a kernel registry — losing one would leak the warm-up cost)
_FRAMEWORKS: "dict[tuple[str, str], IATF]" = {}
_FRAMEWORKS_LOCK = threading.Lock()


def default_framework(machine: MachineConfig = KUNPENG_920,
                      backend: "str | ExecutorBackend | None" = None) -> IATF:
    """The shared per-machine (and per-backend) IATF instance used by
    the free functions."""
    key = (machine.name, backend_name(backend))
    with _FRAMEWORKS_LOCK:
        fw = _FRAMEWORKS.get(key)
        if fw is None:
            fw = IATF(machine, backend=backend)
            _FRAMEWORKS[key] = fw
        return fw


def compact_from_batch(matrices: np.ndarray,
                       machine: MachineConfig = KUNPENG_920,
                       dtype: "BlasDType | str | None" = None) -> CompactBatch:
    """Interleave a standard ``(batch, rows, cols)`` array for ``machine``."""
    dt = BlasDType.from_any(dtype if dtype is not None else matrices.dtype)
    return CompactBatch.from_matrices(matrices, machine.lanes(dt), dt)


def compact_to_batch(compact: CompactBatch) -> np.ndarray:
    """De-interleave back to a standard batch array."""
    return compact.to_matrices()


def compact_gemm(a: CompactBatch, b: CompactBatch, c: CompactBatch,
                 alpha: complex = 1.0, beta: complex = 1.0,
                 transa: "Trans | str" = "N", transb: "Trans | str" = "N",
                 machine: MachineConfig = KUNPENG_920,
                 backend: "str | ExecutorBackend | None" = None
                 ) -> CompactBatch:
    """``C = alpha op(A) op(B) + beta C`` on compact operands, in place."""
    ta, tb = Trans.from_any(transa), Trans.from_any(transb)
    m, n = c.rows, c.cols
    k = a.cols if ta is Trans.N else a.rows
    problem = GemmProblem(m, n, k, c.dtype, ta, tb, c.batch, alpha, beta)
    return default_framework(machine, backend).gemm_compact(problem, a, b, c)


def compact_trsm(a: CompactBatch, b: CompactBatch, alpha: complex = 1.0,
                 side: "Side | str" = "L", uplo: "UpLo | str" = "L",
                 transa: "Trans | str" = "N", diag: "Diag | str" = "N",
                 machine: MachineConfig = KUNPENG_920,
                 backend: "str | ExecutorBackend | None" = None
                 ) -> CompactBatch:
    """Solve in place on compact operands; B becomes X."""
    problem = TrsmProblem(b.rows, b.cols, b.dtype, Side.from_any(side),
                          UpLo.from_any(uplo), Trans.from_any(transa),
                          Diag.from_any(diag), b.batch, alpha)
    return default_framework(machine, backend).trsm_compact(problem, a, b)
