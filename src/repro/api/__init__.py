"""Functional convenience API (MKL-compact-style free functions)."""

from .compact_blas import (compact_from_batch, compact_gemm, compact_to_batch,
                           compact_trsm, default_framework)

__all__ = ["compact_gemm", "compact_trsm", "compact_from_batch",
           "compact_to_batch", "default_framework"]
