"""Core value types shared by every subsystem.

This module defines the BLAS data types (s/d/c/z), the standard BLAS mode
flags (transpose, side, triangle, diagonal), and immutable problem
descriptors for compact GEMM and TRSM.  Problem descriptors validate their
arguments eagerly so that malformed inputs fail at the API boundary, not
deep inside code generation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .errors import InvalidProblemError

__all__ = [
    "BlasDType",
    "Trans",
    "Side",
    "UpLo",
    "Diag",
    "GemmProblem",
    "TrsmProblem",
    "TrmmProblem",
    "gemm_flops",
    "trsm_flops",
    "trmm_flops",
]


class BlasDType(enum.Enum):
    """The four classic BLAS scalar types.

    ``value`` is the single-letter BLAS prefix.  The enum carries the
    mapping to NumPy dtypes plus the properties kernel generation needs:
    the *real element* width in bytes (for complex types the width of one
    of the two planes) and whether the type is complex.
    """

    S = "s"
    D = "d"
    C = "c"
    Z = "z"

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy dtype of user-facing matrices."""
        return {
            BlasDType.S: np.dtype(np.float32),
            BlasDType.D: np.dtype(np.float64),
            BlasDType.C: np.dtype(np.complex64),
            BlasDType.Z: np.dtype(np.complex128),
        }[self]

    @property
    def real_dtype(self) -> np.dtype:
        """NumPy dtype of one real plane (compact storage is split re/im)."""
        return {
            BlasDType.S: np.dtype(np.float32),
            BlasDType.D: np.dtype(np.float64),
            BlasDType.C: np.dtype(np.float32),
            BlasDType.Z: np.dtype(np.float64),
        }[self]

    @property
    def is_complex(self) -> bool:
        return self in (BlasDType.C, BlasDType.Z)

    @property
    def real_itemsize(self) -> int:
        """Bytes per real element (4 for s/c, 8 for d/z)."""
        return int(self.real_dtype.itemsize)

    @property
    def itemsize(self) -> int:
        """Bytes per full element as stored by the user (8 for c, 16 for z)."""
        return int(self.np_dtype.itemsize)

    @property
    def flops_per_madd(self) -> int:
        """Scalar flops in one multiply-add of this type (2 real, 8 complex)."""
        return 8 if self.is_complex else 2

    def lanes(self, vector_bytes: int) -> int:
        """Number of *matrices* interleaved per SIMD vector (the paper's P).

        One vector register holds ``vector_bytes / real_itemsize`` real
        elements; in split re/im compact storage each lane is one matrix
        regardless of complexity.
        """
        return vector_bytes // self.real_itemsize

    @classmethod
    def from_any(cls, value: "BlasDType | str | np.dtype | type") -> "BlasDType":
        """Coerce a prefix letter, NumPy dtype, or Python type to a BlasDType."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        try:
            dt = np.dtype(value)
        except TypeError as exc:  # pragma: no cover - defensive
            raise InvalidProblemError(f"cannot interpret {value!r} as a BLAS dtype") from exc
        for member in cls:
            if member.np_dtype == dt:
                return member
        raise InvalidProblemError(f"unsupported dtype {dt} (need float32/64 or complex64/128)")


class Trans(enum.Enum):
    """Transpose flag: N (no transpose) or T (transpose)."""

    N = "N"
    T = "T"

    @classmethod
    def from_any(cls, value: "Trans | str | bool") -> "Trans":
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            return cls.T if value else cls.N
        if isinstance(value, str) and value.upper() in ("N", "T"):
            return cls(value.upper())
        raise InvalidProblemError(f"invalid transpose flag {value!r}")


class Side(enum.Enum):
    """TRSM side: solve ``A X = alpha B`` (LEFT) or ``X A = alpha B`` (RIGHT)."""

    LEFT = "L"
    RIGHT = "R"

    @classmethod
    def from_any(cls, value: "Side | str") -> "Side":
        if isinstance(value, cls):
            return value
        if isinstance(value, str) and value.upper() in ("L", "R"):
            return cls(value.upper())
        raise InvalidProblemError(f"invalid side flag {value!r}")


class UpLo(enum.Enum):
    """Which triangle of A is referenced."""

    LOWER = "L"
    UPPER = "U"

    @classmethod
    def from_any(cls, value: "UpLo | str") -> "UpLo":
        if isinstance(value, cls):
            return value
        if isinstance(value, str) and value.upper() in ("L", "U"):
            return cls(value.upper())
        raise InvalidProblemError(f"invalid uplo flag {value!r}")


class Diag(enum.Enum):
    """Whether A's diagonal is assumed to be all ones."""

    NON_UNIT = "N"
    UNIT = "U"

    @classmethod
    def from_any(cls, value: "Diag | str") -> "Diag":
        if isinstance(value, cls):
            return value
        if isinstance(value, str) and value.upper() in ("N", "U"):
            return cls(value.upper())
        raise InvalidProblemError(f"invalid diag flag {value!r}")


def _check_dim(name: str, value: int, minimum: int = 1) -> int:
    if not isinstance(value, (int, np.integer)):
        raise InvalidProblemError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise InvalidProblemError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


@dataclass(frozen=True)
class GemmProblem:
    """Descriptor of a compact batched GEMM: ``C = alpha * op(A) op(B) + beta * C``.

    ``op(A)`` is ``m x k`` and ``op(B)`` is ``k x n`` for *every one* of the
    ``batch`` matrices (fixed-size batching, as in the paper).
    """

    m: int
    n: int
    k: int
    dtype: BlasDType
    transa: Trans = Trans.N
    transb: Trans = Trans.N
    batch: int = 1
    alpha: complex = 1.0
    beta: complex = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "m", _check_dim("m", self.m))
        object.__setattr__(self, "n", _check_dim("n", self.n))
        object.__setattr__(self, "k", _check_dim("k", self.k))
        object.__setattr__(self, "batch", _check_dim("batch", self.batch))
        object.__setattr__(self, "dtype", BlasDType.from_any(self.dtype))
        object.__setattr__(self, "transa", Trans.from_any(self.transa))
        object.__setattr__(self, "transb", Trans.from_any(self.transb))
        if not self.dtype.is_complex:
            for name in ("alpha", "beta"):
                v = getattr(self, name)
                if isinstance(v, complex) and v.imag != 0.0:
                    raise InvalidProblemError(f"{name} must be real for dtype {self.dtype.value}")
                object.__setattr__(self, name, float(np.real(v)))
        else:
            object.__setattr__(self, "alpha", complex(self.alpha))
            object.__setattr__(self, "beta", complex(self.beta))

    @property
    def mode(self) -> str:
        """Two-letter mode string, e.g. ``"NN"`` or ``"TT"``."""
        return self.transa.value + self.transb.value

    @property
    def a_shape(self) -> tuple[int, int]:
        """Stored (row, col) shape of one A matrix before op()."""
        return (self.m, self.k) if self.transa is Trans.N else (self.k, self.m)

    @property
    def b_shape(self) -> tuple[int, int]:
        return (self.k, self.n) if self.transb is Trans.N else (self.n, self.k)

    @property
    def c_shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    @property
    def flops(self) -> int:
        """Total scalar flops over the whole batch."""
        return gemm_flops(self.m, self.n, self.k, self.dtype, self.batch)

    def with_batch(self, batch: int) -> "GemmProblem":
        return GemmProblem(self.m, self.n, self.k, self.dtype, self.transa,
                           self.transb, batch, self.alpha, self.beta)


@dataclass(frozen=True)
class TrsmProblem:
    """Descriptor of a compact batched TRSM.

    Solves ``op(A) X = alpha B`` (side LEFT) or ``X op(A) = alpha B``
    (side RIGHT) in-place into B, for every matrix in the batch.  A is
    ``m x m`` for LEFT and ``n x n`` for RIGHT; B is ``m x n``.
    """

    m: int
    n: int
    dtype: BlasDType
    side: Side = Side.LEFT
    uplo: UpLo = UpLo.LOWER
    transa: Trans = Trans.N
    diag: Diag = Diag.NON_UNIT
    batch: int = 1
    alpha: complex = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "m", _check_dim("m", self.m))
        object.__setattr__(self, "n", _check_dim("n", self.n))
        object.__setattr__(self, "batch", _check_dim("batch", self.batch))
        object.__setattr__(self, "dtype", BlasDType.from_any(self.dtype))
        object.__setattr__(self, "side", Side.from_any(self.side))
        object.__setattr__(self, "uplo", UpLo.from_any(self.uplo))
        object.__setattr__(self, "transa", Trans.from_any(self.transa))
        object.__setattr__(self, "diag", Diag.from_any(self.diag))
        if not self.dtype.is_complex:
            if isinstance(self.alpha, complex) and self.alpha.imag != 0.0:
                raise InvalidProblemError(f"alpha must be real for dtype {self.dtype.value}")
            object.__setattr__(self, "alpha", float(np.real(self.alpha)))
        else:
            object.__setattr__(self, "alpha", complex(self.alpha))

    @property
    def mode(self) -> str:
        """Four-letter mode string, e.g. ``"LNLN"`` (side, trans, uplo, diag).

        Matches the paper's naming: LNLN = Left, Non-transpose, Lower,
        Non-unit.
        """
        return (self.side.value + self.transa.value
                + self.uplo.value + self.diag.value)

    @property
    def a_dim(self) -> int:
        """Order of the triangular matrix A."""
        return self.m if self.side is Side.LEFT else self.n

    @property
    def b_shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    @property
    def flops(self) -> int:
        return trsm_flops(self.m, self.n, self.dtype, self.side, self.batch)

    def with_batch(self, batch: int) -> "TrsmProblem":
        return TrsmProblem(self.m, self.n, self.dtype, self.side, self.uplo,
                           self.transa, self.diag, batch, self.alpha)


def gemm_flops(m: int, n: int, k: int,
               dtype: "BlasDType | str" = BlasDType.D, batch: int = 1) -> int:
    """Scalar flop count of a batched GEMM (the figure-of-merit denominator).

    Uses the conventional ``2 m n k`` for real types and ``8 m n k`` for
    complex types, times the batch count, matching how BLAS papers report
    GFLOPS.
    """
    dt = BlasDType.from_any(dtype)
    return dt.flops_per_madd * m * n * k * batch


def trsm_flops(m: int, n: int, dtype: "BlasDType | str" = BlasDType.D,
               side: "Side | str" = Side.LEFT, batch: int = 1) -> int:
    """Scalar flop count of a batched TRSM.

    Conventionally ``n m^2`` real flops for side LEFT and ``m n^2`` for
    side RIGHT (each multiply-add pair inside the solve counts as 2, the
    triangular structure halves the cube); complex types count 4x.
    """
    dt = BlasDType.from_any(dtype)
    sd = Side.from_any(side)
    base = n * m * m if sd is Side.LEFT else m * n * n
    scale = 4 if dt.is_complex else 1
    return scale * base * batch


@dataclass(frozen=True)
class TrmmProblem:
    """Descriptor of a compact batched TRMM (extension routine).

    Computes ``B := alpha * op(A) @ B`` (side LEFT) or
    ``B := alpha * B @ op(A)`` (side RIGHT) in place, with A triangular.
    Not part of the paper's evaluation; implemented as the future-work
    demonstration that the framework's layout, packing, and kernel
    machinery generalize to other level-3 routines.
    """

    m: int
    n: int
    dtype: BlasDType
    side: Side = Side.LEFT
    uplo: UpLo = UpLo.LOWER
    transa: Trans = Trans.N
    diag: Diag = Diag.NON_UNIT
    batch: int = 1
    alpha: complex = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "m", _check_dim("m", self.m))
        object.__setattr__(self, "n", _check_dim("n", self.n))
        object.__setattr__(self, "batch", _check_dim("batch", self.batch))
        object.__setattr__(self, "dtype", BlasDType.from_any(self.dtype))
        object.__setattr__(self, "side", Side.from_any(self.side))
        object.__setattr__(self, "uplo", UpLo.from_any(self.uplo))
        object.__setattr__(self, "transa", Trans.from_any(self.transa))
        object.__setattr__(self, "diag", Diag.from_any(self.diag))
        if not self.dtype.is_complex:
            if isinstance(self.alpha, complex) and self.alpha.imag != 0.0:
                raise InvalidProblemError(
                    f"alpha must be real for dtype {self.dtype.value}")
            object.__setattr__(self, "alpha", float(np.real(self.alpha)))
        else:
            object.__setattr__(self, "alpha", complex(self.alpha))

    @property
    def mode(self) -> str:
        return (self.side.value + self.transa.value
                + self.uplo.value + self.diag.value)

    @property
    def a_dim(self) -> int:
        return self.m if self.side is Side.LEFT else self.n

    @property
    def b_shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    @property
    def flops(self) -> int:
        return trmm_flops(self.m, self.n, self.dtype, self.side, self.batch)


def trmm_flops(m: int, n: int, dtype: "BlasDType | str" = BlasDType.D,
               side: "Side | str" = Side.LEFT, batch: int = 1) -> int:
    """Scalar flop count of a batched TRMM (same convention as TRSM)."""
    dt = BlasDType.from_any(dtype)
    sd = Side.from_any(side)
    base = n * m * m if sd is Side.LEFT else m * n * n
    scale = 4 if dt.is_complex else 1
    return scale * base * batch
