"""The install-time sweep: enumerate, measure, persist winners.

This is the paper's install-time stage made *empirical* (the IAAT
direction): instead of trusting the closed-form CMAR argmax alone, the
tuner times every register-feasible candidate plan on the machine model
and records the winner — with full provenance — in the
:class:`~repro.tuning.db.TuningDB` the run-time stage consults.

Selection invariant: the analytic candidate (CMAR-optimal main kernel,
analytic pack rule) is always measured, measured *first*, and only a
**strictly** cheaper candidate replaces it.  Ties keep the analytic
choice, so a tuned selection is never worse than the analytic one and
the sweep is deterministic (the cycle model is exact, candidate order
is fixed).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..machine.machines import MachineConfig
from ..types import GemmProblem, TrsmProblem
from .db import TUNER_VERSION, TuningDB, TuningKey, TuningRecord
from .evaluate import EVALUATOR_VERSION, Evaluator, Measurement
from .space import (Candidate, enumerate_gemm_space, enumerate_trsm_space,
                    full_space, rank_candidates, size_class)

__all__ = ["TuneOutcome", "tune_problem", "sweep",
           "DEFAULT_TUNED_BACKEND", "DEFAULT_TOP_K"]

DEFAULT_TUNED_BACKEND = "megakernel"
"""Backend recorded when the sweep did not measure wall clock: the
trace-compiled executor is bit-exact by construction (the equivalence
matrix enforces identity with ``interpret``) and guarded against
``fused`` by the perf smoke, so recommending it is safe without host
timing — and a constant keeps the cycle-model sweep byte-reproducible.
With ``wall_clock=True`` the tuner instead races the real backends on
the winning candidate and records the host-time winner.  Records
written by older DBs (``"fused"``/``"compiled"``) still resolve — the
registry never dropped a name."""

DEFAULT_TOP_K = 8
"""How many candidates the analytical-first sweep measures per shape:
the analytic (CMAR) candidate plus the ``top_k - 1`` best-ranked others
by :func:`repro.tuning.space.score_candidate`.  Eight keeps the sweep
at <= 25% of the full register-feasible space on the modeled machines
while (empirically, see tests/tuning/test_topk.py) always containing
the full-sweep winner.  Pass ``top_k=None`` for the exhaustive sweep."""


@dataclass(frozen=True)
class TuneOutcome:
    """The result of tuning one problem shape."""

    key: TuningKey
    record: TuningRecord
    sweep: "tuple[dict, ...]"      # every candidate with its measurement
    improved: bool                 # a non-analytic candidate won strictly

    @property
    def analytic_cycles(self) -> float:
        return self.sweep[0]["cycles"]

    def describe(self) -> str:
        head = (f"{self.key.op} {self.key.dtype} "
                f"{self.key.m}x{self.key.n}x{self.key.k} {self.key.mode}: ")
        win = self.record
        label = Candidate(win.main, win.force_pack, win.schedule).label
        if self.improved:
            gain = self.analytic_cycles / win.cycles
            return (head + f"tuned {label} wins "
                    f"({win.cycles:.0f} cycles, {gain:.3f}x vs analytic, "
                    f"{win.candidates} candidates)")
        return (head + f"analytic {label} holds "
                f"({win.cycles:.0f} cycles, {win.candidates} candidates)")


def _space_for(problem, machine: MachineConfig,
               schedule_variants: bool) -> "list[Candidate]":
    if isinstance(problem, GemmProblem):
        return enumerate_gemm_space(problem, machine, schedule_variants)
    if isinstance(problem, TrsmProblem):
        return enumerate_trsm_space(problem, machine, schedule_variants)
    raise TypeError(f"cannot tune {type(problem).__name__}")


def _key_for(problem, machine: MachineConfig) -> TuningKey:
    if isinstance(problem, GemmProblem):
        return TuningKey.for_gemm(machine, problem)
    return TuningKey.for_trsm(machine, problem)


def _select_top_k(problem, machine: MachineConfig,
                  candidates: "list[Candidate]",
                  top_k: int) -> "list[Candidate]":
    """The analytical-first cut: keep the analytic head unconditionally
    plus the ``top_k - 1`` best-ranked of the rest, in the original
    (analytic-first) measurement order.

    Keeping enumeration order — rather than rank order — preserves the
    exact tie-breaking semantics of the full sweep on the surviving
    candidates, so a top-k sweep that measures the same winner also
    records the same winner.
    """
    ranked = rank_candidates(problem, machine, candidates[1:])
    keep = {cand for cand, _score in ranked[:max(0, top_k - 1)]}
    return [candidates[0]] + [c for c in candidates[1:] if c in keep]


def tune_problem(problem, machine: MachineConfig, *,
                 evaluator: "Evaluator | None" = None,
                 repeats: int = 1, schedule_variants: bool = False,
                 wall_clock: bool = False,
                 top_k: "int | None" = DEFAULT_TOP_K,
                 sweep_label: "str | None" = None,
                 timestamp: float = 0.0) -> TuneOutcome:
    """Sweep one problem shape and return the winner + full sweep.

    With the default ``top_k`` the sweep is analytical-first: the full
    register-feasible space is *ranked* by the analytic machine model
    and only the analytic candidate plus the ``top_k - 1`` best-ranked
    others are measured.  ``top_k=None`` measures the whole (pruned)
    enumeration.  ``timestamp`` is provenance injected by the caller —
    the library never reads the clock, keeping sweeps
    byte-reproducible; ``sweep_label`` overrides the recorded sweep
    mode (the online re-tuning loop stamps ``"retune"``).
    """
    ev = evaluator or Evaluator(machine, repeats=repeats,
                                wall_clock=wall_clock)
    candidates = _space_for(problem, machine, schedule_variants)
    space_size = len(full_space(problem, machine))
    mode = "full"
    if top_k is not None and top_k >= 1 and len(candidates) > top_k:
        candidates = _select_top_k(problem, machine, candidates, top_k)
        mode = "topk"
    klass = size_class(problem.m, problem.n,
                       getattr(problem, "k", 0))
    sweep_rows: list[dict] = []
    best_cand: Candidate = candidates[0]
    best: "Measurement | None" = None
    with obs.span("tuning.tune_problem", op=_key_for(problem, machine).op,
                  size_class=klass, candidates=len(candidates)):
        for cand in candidates:
            meas = ev.evaluate(problem, cand)
            sweep_rows.append({"candidate": cand.label,
                               **cand.describe(),
                               "cycles": meas.cycles,
                               "gflops": meas.gflops,
                               "wall_seconds": meas.wall_seconds})
            # strict improvement only: ties keep the earlier (analytic-
            # first) candidate, making "tuned never worse" structural
            if best is None or meas.cycles < best.cycles:
                best, best_cand = meas, cand
    assert best is not None
    if ev.wall_clock:
        backend, _race = ev.race_backends(problem, best_cand)
    else:
        backend = DEFAULT_TUNED_BACKEND
    record = TuningRecord(
        main=best_cand.main,
        force_pack=best_cand.force_pack,
        schedule=best_cand.schedule,
        cycles=best.cycles,
        gflops=best.gflops,
        candidates=len(candidates),
        tuner_version=TUNER_VERSION,
        batch=problem.batch,
        repeats=ev.repeats,
        backend=backend,
        machine_id=machine.machine_id,
        sweep=sweep_label if sweep_label is not None else mode,
        evaluator_version=EVALUATOR_VERSION,
        timestamp=timestamp,
        space=space_size,
    )
    obs.count("tuning.sweep.problems")
    improved = best_cand != candidates[0]
    if improved:
        obs.count("tuning.sweep.improved")
    return TuneOutcome(key=_key_for(problem, machine), record=record,
                       sweep=tuple(sweep_rows), improved=improved)


def sweep(db: TuningDB, machine: MachineConfig, *,
          ops=("gemm", "trsm"), dtypes=("d",), sizes=(4, 8, 16),
          batch: int = 16384, repeats: int = 1,
          schedule_variants: bool = False, wall_clock: bool = False,
          top_k: "int | None" = DEFAULT_TOP_K, timestamp: float = 0.0,
          progress=None) -> "list[TuneOutcome]":
    """Tune square problems over a size grid and store winners in ``db``.

    This is the "Table 1 sweep" entry point: for each requested op and
    dtype it walks the square sizes (GEMM ``n x n x n`` NN, TRSM
    ``n x n`` LNLN — the paper's protocol shapes) and upserts one
    record per shape.  ``progress`` is an optional callable given each
    :class:`TuneOutcome` as it lands (the CLI prints them live).
    """
    ev = Evaluator(machine, repeats=repeats, wall_clock=wall_clock)
    outcomes: list[TuneOutcome] = []
    with obs.span("tuning.sweep", ops=",".join(ops),
                  dtypes=",".join(dtypes), sizes=len(sizes)):
        for op in ops:
            for dt in dtypes:
                for n in sizes:
                    if op == "gemm":
                        problem = GemmProblem(n, n, n, dt, batch=batch)
                    elif op == "trsm":
                        problem = TrsmProblem(n, n, dt, batch=batch)
                    else:
                        raise ValueError(f"unknown op {op!r}")
                    outcome = tune_problem(
                        problem, machine, evaluator=ev,
                        schedule_variants=schedule_variants,
                        top_k=top_k, timestamp=timestamp)
                    db.put(outcome.key, outcome.record)
                    outcomes.append(outcome)
                    if progress is not None:
                        progress(outcome)
    obs.count("tuning.sweeps")
    return outcomes
