"""Candidate-space enumeration for the install-time sweep.

A *candidate* is one complete configuration of the run-time stage's
tunable choices for a problem shape:

* the main-kernel preference ``(mc, nc)``, drawn from the
  register-feasible sizes the CMAR budget (:mod:`repro.codegen.cmar`)
  allows and the tile decomposer supports;
* the pack-selector override (``force_pack``: sweep the packed variant
  even where the analytic rule would take the no-pack fast path);
* the kernel-optimizer schedule variant (scheduled vs template order,
  :mod:`repro.codegen.optimizer`) — optional, off by default because
  the scheduled kernels win essentially always and the unscheduled
  registry doubles generation cost;
* the executor backend the optional wall-clock measurement replays on
  (cycle-model measurements are backend-independent by construction).

The first candidate returned is always the **analytic choice** — the
CMAR-optimal main kernel with the analytic pack rule — and the tuner
only replaces it on a *strictly* better measurement, which is what
makes the tuned selection never worse than the analytic one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..codegen.cmar import (cmar_complex, cmar_real, fits_registers,
                            register_cost)
from ..machine.machines import MachineConfig
from ..types import BlasDType, GemmProblem, TrsmProblem

__all__ = ["Candidate", "AnalyticScore", "size_class",
           "feasible_gemm_mains", "enumerate_gemm_space",
           "enumerate_trsm_space", "full_gemm_space", "full_trsm_space",
           "full_space", "score_candidate", "rank_candidates"]

DECOMPOSABLE_MAINS = (2, 3, 4)
"""Main-kernel sizes the tile decomposer accepts per dimension."""


@dataclass(frozen=True)
class Candidate:
    """One point of the tuning space (see module docstring)."""

    main: "tuple[int, int] | None"    # None for TRSM (fixed family)
    force_pack: bool = False
    schedule: bool = True
    backend: str = "compiled"

    @property
    def label(self) -> str:
        parts = []
        if self.main is not None:
            parts.append(f"{self.main[0]}x{self.main[1]}")
        parts.append("pack" if self.force_pack else "auto")
        if not self.schedule:
            parts.append("unscheduled")
        return "/".join(parts)

    def describe(self) -> dict:
        return {"main": self.main, "force_pack": self.force_pack,
                "schedule": self.schedule, "backend": self.backend}


def size_class(m: int, n: int, k: int = 0) -> str:
    """Coarse shape bucket the sweep reports per entry.

    The buckets track where each run-time decision can still move the
    needle: ``micro`` problems are single-tile (packing and tiling are
    mostly settled), ``small``/``medium`` have real tiling freedom, and
    ``large`` shapes exceed the paper's 1..33 sweep where per-call
    overheads vanish into the kernels.
    """
    top = max(m, n, k)
    if top <= 4:
        return "micro"
    if top <= 12:
        return "small"
    if top <= 33:
        return "medium"
    return "large"


def feasible_gemm_mains(dtype: "BlasDType | str",
                        num_vregs: int = 32) -> "list[tuple[int, int]]":
    """Register-feasible main-kernel preferences, best CMAR first.

    Reuses the CMAR budget: a ping-ponged ``(mc, nc)`` kernel must fit
    the register file, and both dimensions must be sizes the tile
    decomposer can use as a main.  Sorting is by the dtype's CMAR
    metric, tie-breaking toward the taller kernel exactly like
    :func:`repro.codegen.cmar.optimal_gemm_kernel`, so the head of this
    list *is* the analytic optimum whenever it lies on the grid.
    """
    dt = BlasDType.from_any(dtype)
    metric = cmar_complex if dt.is_complex else cmar_real
    mains = [(mc, nc)
             for mc in DECOMPOSABLE_MAINS for nc in DECOMPOSABLE_MAINS
             if fits_registers(mc, nc, dt, num_vregs)]
    mains.sort(key=lambda p: (metric(*p), p[0], p[1]), reverse=True)
    return mains


def enumerate_gemm_space(problem: GemmProblem, machine: MachineConfig,
                         schedule_variants: bool = False
                         ) -> "list[Candidate]":
    """All candidates the sweep measures for one GEMM shape.

    Pack variants are pruned where they cannot change the plan: the
    ``force_pack`` candidate only exists for mains whose analytic
    decision leaves at least one operand on the no-pack fast path
    (otherwise the two plans are identical and would waste a
    measurement).  Schedule variants double the space and are opt-in.
    """
    from ..codegen.tiling import decompose_dim
    from ..runtime.pack_selector import select_gemm_packing

    out: list[Candidate] = []
    for main in feasible_gemm_mains(problem.dtype, machine.num_vregs):
        base = Candidate(main=main)
        out.append(base)
        decision = select_gemm_packing(
            problem,
            decompose_dim(problem.m, main[0]),
            decompose_dim(problem.n, main[1]))
        if not (decision.pack_a and decision.pack_b):
            out.append(replace(base, force_pack=True))
    if schedule_variants:
        out.extend(replace(c, schedule=False) for c in list(out))
    return out


def enumerate_trsm_space(problem: TrsmProblem, machine: MachineConfig,
                         schedule_variants: bool = False
                         ) -> "list[Candidate]":
    """Candidates for one TRSM shape.

    The triangular/rectangular kernel family is fixed by the register
    budget (Table 1), so the TRSM space is the pack-selector choice —
    the analytic rule vs the forced panel pack — times the optional
    schedule variants.
    """
    out = [Candidate(main=None), Candidate(main=None, force_pack=True)]
    if schedule_variants:
        out.extend(replace(c, schedule=False) for c in list(out))
    return out


# ---------------------------------------------------------------------------
# The full candidate space and the analytic ranker
# ---------------------------------------------------------------------------

def full_gemm_space(problem: GemmProblem,
                    machine: MachineConfig) -> "list[Candidate]":
    """Every register-feasible GEMM candidate, **unpruned**: feasible
    mains x {analytic pack, forced pack} x {scheduled, unscheduled}.

    This is the space the analytic ranker scores and the denominator of
    the top-k sweep's coverage fraction — what a naive exhaustive
    install-time sweep would have to measure.  (The measured
    enumeration in :func:`enumerate_gemm_space` additionally prunes
    pack/schedule variants that provably cannot change the plan.)
    """
    return [Candidate(main=main, force_pack=fp, schedule=sched)
            for main in feasible_gemm_mains(problem.dtype, machine.num_vregs)
            for fp in (False, True)
            for sched in (True, False)]


def full_trsm_space(problem: TrsmProblem,
                    machine: MachineConfig) -> "list[Candidate]":
    """Every TRSM candidate: pack choice x schedule variant."""
    return [Candidate(main=None, force_pack=fp, schedule=sched)
            for fp in (False, True)
            for sched in (True, False)]


def full_space(problem, machine: MachineConfig) -> "list[Candidate]":
    """Dispatch to the op's full (unpruned) candidate space."""
    if isinstance(problem, GemmProblem):
        return full_gemm_space(problem, machine)
    if isinstance(problem, TrsmProblem):
        return full_trsm_space(problem, machine)
    raise TypeError(f"no tuning space for {type(problem).__name__}")


@dataclass(frozen=True)
class AnalyticScore:
    """Why the ranker placed a candidate where it did.

    ``score`` is the ranking key (higher is better); the remaining
    fields are the diagnostic decomposition: the issue-slot estimate of
    achieved flops/cycle, the register-file occupancy of the main
    kernel, how balanced the FP and memory issue slots are (1.0 =
    perfectly overlapped), and the cache-residency factor of the
    group's working set.
    """

    score: float
    est_flops_per_cycle: float
    occupancy: float
    balance: float
    residency: float

    def describe(self) -> dict:
        return {"score": self.score,
                "est_flops_per_cycle": self.est_flops_per_cycle,
                "occupancy": self.occupancy,
                "balance": self.balance,
                "residency": self.residency}


_UNSCHEDULED_PENALTY = 0.95
"""Unscheduled variants rank slightly below their scheduled twins:
the list scheduler usually wins by hiding FP latency, but the margin
is machine-dependent (a wide issue window needs no help), so the
penalty must be mild enough that an unscheduled winner still makes
the top-k cut."""

_TRSM_FORCE_PACK_PENALTY = 0.99
"""TRSM's analytic pack rule is almost always right; the forced-pack
variant ranks marginally below it so the analytic choice leads."""


def _residency(working_bytes: int, machine: MachineConfig) -> float:
    """Cache-residency factor for one group's working set.

    1.0 while the group round-trips in L1; decays through an
    L2-resident band (the streaming kernels still run near issue rate,
    but reuse costs L2 latency); falls off proportionally once even L2
    cannot hold a group.  Piecewise and monotonic — the ranker only
    needs ordering, not absolute accuracy.
    """
    l1, l2 = machine.l1.size, machine.l2.size
    if working_bytes <= l1:
        return 1.0
    if working_bytes <= l2:
        return 0.75 + 0.25 * (l1 / working_bytes)
    return 0.75 * (l2 / working_bytes)


def _score_gemm(problem: GemmProblem, machine: MachineConfig,
                cand: Candidate) -> AnalyticScore:
    from ..codegen.tiling import decompose_dim
    from ..runtime.pack_selector import select_gemm_packing

    dt = problem.dtype
    ew = dt.real_itemsize
    lanes = machine.lanes(dt)
    ncomp = 2 if dt.is_complex else 1
    per_elem = lanes * ncomp * ew
    # vector-op multipliers: a complex multiply-add lowers to 4 real
    # FMLA/FMLS ops, and every complex operand access touches 2 planes
    cf = 4 if dt.is_complex else 1
    lf = ncomp

    mc, nc = cand.main
    m_tiles = decompose_dim(problem.m, mc)
    n_tiles = decompose_dim(problem.n, nc)
    fp_slots = machine.rules.max_fp(ew)
    mem_slots = machine.rules.max_mem
    k = problem.k

    # Issue-slot model, per group (one vector lane set of matrices):
    # each (mt, nt) tile pair runs k steps of mt*nt vector FMAs fed by
    # mt + nt vector loads, then writes its mt*nt C tile back.  The
    # tile's cycles are whichever issue slot saturates first — the same
    # dual-issue rule the cycle model enforces exactly.
    compute_cycles = 0.0
    mem_cycles = 0.0
    total_cycles = 0.0
    for mt in m_tiles:
        for nt in n_tiles:
            fp_ops = k * mt * nt * cf
            mem_ops = (k * (mt + nt) + mt * nt) * lf
            c = fp_ops / fp_slots
            m = mem_ops / mem_slots
            compute_cycles += c
            mem_cycles += m
            total_cycles += max(c, m)

    # Packing cost and working set: the analytic pack rule (or the
    # forced override) decides which operands get packed copies; packed
    # bytes stream once through the copy engine and stay live in cache.
    decision = select_gemm_packing(problem, m_tiles, n_tiles,
                                   force_pack=cand.force_pack)
    pack_bytes = 0
    if decision.pack_a:
        pack_bytes += problem.m * problem.k * per_elem
    if decision.pack_b:
        pack_bytes += problem.k * problem.n * per_elem
    total_cycles += pack_bytes / machine.copy_bytes_per_cycle
    working = ((problem.m * problem.k + problem.k * problem.n
                + problem.m * problem.n) * per_elem + pack_bytes)

    group_flops = 2.0 * problem.m * problem.n * k * cf * lanes
    est = group_flops / total_cycles if total_cycles > 0 else 0.0
    occupancy = register_cost(mc, nc, dt) / machine.num_vregs
    balance = (min(compute_cycles, mem_cycles)
               / max(compute_cycles, mem_cycles))
    residency = _residency(working, machine)

    score = est * residency * (0.8 + 0.2 * occupancy)
    if not cand.schedule:
        score *= _UNSCHEDULED_PENALTY
    return AnalyticScore(score=score, est_flops_per_cycle=est,
                         occupancy=occupancy, balance=balance,
                         residency=residency)


def _score_trsm(problem: TrsmProblem, machine: MachineConfig,
                cand: Candidate) -> AnalyticScore:
    from ..runtime.batch_counter import trsm_group_working_bytes

    dt = problem.dtype
    ew = dt.real_itemsize
    residency = _residency(trsm_group_working_bytes(problem, machine),
                           machine)
    # The kernel family is fixed, so the only ranking signal is cache
    # residency and the pack/schedule preference ordering.
    est = machine.rules.max_fp(ew) * machine.fp_lanes(ew) * 2.0 * residency
    score = est
    if cand.force_pack:
        score *= _TRSM_FORCE_PACK_PENALTY
    if not cand.schedule:
        score *= _UNSCHEDULED_PENALTY
    return AnalyticScore(score=score, est_flops_per_cycle=est,
                         occupancy=1.0, balance=1.0, residency=residency)


def score_candidate(problem, machine: MachineConfig,
                    cand: Candidate) -> AnalyticScore:
    """Rank one candidate analytically — no plan built, no measurement.

    The model reuses the machine description end to end: the cycle
    model's issue rules bound FP vs memory slot pressure per tile pair,
    the CMAR register-cost formula gives occupancy, and the cache
    hierarchy sizes give the group's residency factor.  It is a
    *ranking* model: orderings are meaningful, absolute cycle counts
    are not (the exact scoreboard is what the top-k measurement is
    for).
    """
    if isinstance(problem, GemmProblem):
        return _score_gemm(problem, machine, cand)
    if isinstance(problem, TrsmProblem):
        return _score_trsm(problem, machine, cand)
    raise TypeError(f"cannot score {type(problem).__name__}")


def rank_candidates(problem, machine: MachineConfig, candidates=None
                    ) -> "list[tuple[Candidate, AnalyticScore]]":
    """Candidates best-score-first, deterministically.

    Ties break on the candidate label, so equal-scoring candidates have
    a fixed, machine-independent order and the top-k cut is
    byte-reproducible run to run.
    """
    cands = list(candidates) if candidates is not None \
        else full_space(problem, machine)
    scored = [(c, score_candidate(problem, machine, c)) for c in cands]
    scored.sort(key=lambda cs: (-cs[1].score, cs[0].label))
    return scored
