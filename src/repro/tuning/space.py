"""Candidate-space enumeration for the install-time sweep.

A *candidate* is one complete configuration of the run-time stage's
tunable choices for a problem shape:

* the main-kernel preference ``(mc, nc)``, drawn from the
  register-feasible sizes the CMAR budget (:mod:`repro.codegen.cmar`)
  allows and the tile decomposer supports;
* the pack-selector override (``force_pack``: sweep the packed variant
  even where the analytic rule would take the no-pack fast path);
* the kernel-optimizer schedule variant (scheduled vs template order,
  :mod:`repro.codegen.optimizer`) — optional, off by default because
  the scheduled kernels win essentially always and the unscheduled
  registry doubles generation cost;
* the executor backend the optional wall-clock measurement replays on
  (cycle-model measurements are backend-independent by construction).

The first candidate returned is always the **analytic choice** — the
CMAR-optimal main kernel with the analytic pack rule — and the tuner
only replaces it on a *strictly* better measurement, which is what
makes the tuned selection never worse than the analytic one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..codegen.cmar import cmar_complex, cmar_real, fits_registers
from ..machine.machines import MachineConfig
from ..types import BlasDType, GemmProblem, TrsmProblem

__all__ = ["Candidate", "size_class", "feasible_gemm_mains",
           "enumerate_gemm_space", "enumerate_trsm_space"]

DECOMPOSABLE_MAINS = (2, 3, 4)
"""Main-kernel sizes the tile decomposer accepts per dimension."""


@dataclass(frozen=True)
class Candidate:
    """One point of the tuning space (see module docstring)."""

    main: "tuple[int, int] | None"    # None for TRSM (fixed family)
    force_pack: bool = False
    schedule: bool = True
    backend: str = "compiled"

    @property
    def label(self) -> str:
        parts = []
        if self.main is not None:
            parts.append(f"{self.main[0]}x{self.main[1]}")
        parts.append("pack" if self.force_pack else "auto")
        if not self.schedule:
            parts.append("unscheduled")
        return "/".join(parts)

    def describe(self) -> dict:
        return {"main": self.main, "force_pack": self.force_pack,
                "schedule": self.schedule, "backend": self.backend}


def size_class(m: int, n: int, k: int = 0) -> str:
    """Coarse shape bucket the sweep reports per entry.

    The buckets track where each run-time decision can still move the
    needle: ``micro`` problems are single-tile (packing and tiling are
    mostly settled), ``small``/``medium`` have real tiling freedom, and
    ``large`` shapes exceed the paper's 1..33 sweep where per-call
    overheads vanish into the kernels.
    """
    top = max(m, n, k)
    if top <= 4:
        return "micro"
    if top <= 12:
        return "small"
    if top <= 33:
        return "medium"
    return "large"


def feasible_gemm_mains(dtype: "BlasDType | str",
                        num_vregs: int = 32) -> "list[tuple[int, int]]":
    """Register-feasible main-kernel preferences, best CMAR first.

    Reuses the CMAR budget: a ping-ponged ``(mc, nc)`` kernel must fit
    the register file, and both dimensions must be sizes the tile
    decomposer can use as a main.  Sorting is by the dtype's CMAR
    metric, tie-breaking toward the taller kernel exactly like
    :func:`repro.codegen.cmar.optimal_gemm_kernel`, so the head of this
    list *is* the analytic optimum whenever it lies on the grid.
    """
    dt = BlasDType.from_any(dtype)
    metric = cmar_complex if dt.is_complex else cmar_real
    mains = [(mc, nc)
             for mc in DECOMPOSABLE_MAINS for nc in DECOMPOSABLE_MAINS
             if fits_registers(mc, nc, dt, num_vregs)]
    mains.sort(key=lambda p: (metric(*p), p[0], p[1]), reverse=True)
    return mains


def enumerate_gemm_space(problem: GemmProblem, machine: MachineConfig,
                         schedule_variants: bool = False
                         ) -> "list[Candidate]":
    """All candidates the sweep measures for one GEMM shape.

    Pack variants are pruned where they cannot change the plan: the
    ``force_pack`` candidate only exists for mains whose analytic
    decision leaves at least one operand on the no-pack fast path
    (otherwise the two plans are identical and would waste a
    measurement).  Schedule variants double the space and are opt-in.
    """
    from ..codegen.tiling import decompose_dim
    from ..runtime.pack_selector import select_gemm_packing

    out: list[Candidate] = []
    for main in feasible_gemm_mains(problem.dtype, machine.num_vregs):
        base = Candidate(main=main)
        out.append(base)
        decision = select_gemm_packing(
            problem,
            decompose_dim(problem.m, main[0]),
            decompose_dim(problem.n, main[1]))
        if not (decision.pack_a and decision.pack_b):
            out.append(replace(base, force_pack=True))
    if schedule_variants:
        out.extend(replace(c, schedule=False) for c in list(out))
    return out


def enumerate_trsm_space(problem: TrsmProblem, machine: MachineConfig,
                         schedule_variants: bool = False
                         ) -> "list[Candidate]":
    """Candidates for one TRSM shape.

    The triangular/rectangular kernel family is fixed by the register
    budget (Table 1), so the TRSM space is the pack-selector choice —
    the analytic rule vs the forced panel pack — times the optional
    schedule variants.
    """
    out = [Candidate(main=None), Candidate(main=None, force_pack=True)]
    if schedule_variants:
        out.extend(replace(c, schedule=False) for c in list(out))
    return out
