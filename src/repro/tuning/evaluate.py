"""Candidate measurement for the install-time sweep.

The primary metric is the machine simulator's cycle model
(:meth:`repro.runtime.engine.Engine.time_plan`): deterministic, exact,
and the same model the run-time stage's empirical autotune uses, so
tuned and analytic selections are compared on identical terms.
Optionally a candidate is *also* replayed for wall-clock time on a real
executor backend (the compiled command-stream replayer by default) over
a small random batch — host-time provenance for the DB, never the
selection metric (host timing is noisy; the cycle model is the
simulated silicon).

``repeats``/median controls exist for both paths.  They are a no-op for
the cycle model (every repeat returns the same number — asserted by the
self-check) and genuinely reduce variance for wall clock.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..codegen.registry import KernelRegistry
from ..machine.machines import MachineConfig
from ..runtime.engine import Engine
from ..runtime.plan import ExecutionPlan, build_gemm_plan, build_trsm_plan
from ..types import GemmProblem, TrsmProblem
from .space import Candidate

__all__ = ["Measurement", "Evaluator", "EVALUATOR_VERSION"]

EVALUATOR_VERSION = 1
"""Measurement-procedure version stamped into record provenance: bump
when the metric itself changes (what is timed, how repeats aggregate),
so fleet merges can tell records measured under different rules apart.
v1 = median cycle-model samples, best-of-repeats wall clock."""

WALL_CLOCK_BATCH_CAP = 512
"""Wall-clock replays cap the batch: host time scales linearly with
groups, so a small batch ranks candidates just as well."""


@dataclass(frozen=True)
class Measurement:
    """One candidate's measured cost."""

    cycles: float                 # simulated, whole batch (the metric)
    gflops: float
    repeats: int
    wall_seconds: "float | None" = None


class Evaluator:
    """Builds and measures candidate plans for one machine.

    Holds one :class:`KernelRegistry` per schedule variant so repeated
    evaluations share generated kernels, and one timing engine (timing
    is backend-independent, so a single engine serves every candidate).
    """

    def __init__(self, machine: MachineConfig, *, repeats: int = 1,
                 wall_clock: bool = False, rng_seed: int = 20220829) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.machine = machine
        self.repeats = repeats
        self.wall_clock = wall_clock
        self._registries: "dict[bool, KernelRegistry]" = {}
        self._engine = Engine(machine)
        self._rng_seed = rng_seed

    def registry(self, schedule: bool = True) -> KernelRegistry:
        reg = self._registries.get(schedule)
        if reg is None:
            reg = KernelRegistry(self.machine, optimize=schedule)
            self._registries[schedule] = reg
        return reg

    # -- plan construction ------------------------------------------------

    def build_plan(self, problem, cand: Candidate) -> ExecutionPlan:
        """The exact plan the run-time stage would build for this
        candidate's decisions — same builders, same arguments, which is
        what makes a reloaded DB reproduce decisions bit-identically."""
        reg = self.registry(cand.schedule)
        if isinstance(problem, GemmProblem):
            return build_gemm_plan(problem, self.machine, reg,
                                   force_pack=cand.force_pack,
                                   main_override=cand.main)
        if isinstance(problem, TrsmProblem):
            return build_trsm_plan(problem, self.machine, reg,
                                   force_pack=cand.force_pack)
        raise TypeError(f"cannot tune {type(problem).__name__}")

    # -- measurement ------------------------------------------------------

    def evaluate(self, problem, cand: Candidate) -> Measurement:
        """Measure one candidate; median over ``repeats``."""
        with obs.span("tuning.evaluate", candidate=cand.label):
            plan = self.build_plan(problem, cand)
            cycle_samples = [self._engine.time_plan(plan).total_cycles
                             for _ in range(self.repeats)]
            cycles = statistics.median(cycle_samples)
            gflops = self.machine.gflops(problem.flops, cycles)
            wall = (self._measure_wall_clock(problem, plan, cand)
                    if self.wall_clock else None)
        obs.count("tuning.eval.candidates")
        return Measurement(cycles=cycles, gflops=gflops,
                           repeats=self.repeats, wall_seconds=wall)

    def _measure_wall_clock(self, problem, plan: ExecutionPlan,
                            cand: Candidate) -> float:
        return self._wall_run(problem, cand, cand.backend)

    def race_backends(self, problem, cand: Candidate,
                      backends: "tuple[str, ...]" = ("compiled", "fused",
                                                     "megakernel")
                      ) -> "tuple[str, dict[str, float]]":
        """Wall-clock race of executor backends on one candidate.

        Returns the winning backend name plus every contestant's
        best-of-``repeats`` seconds.  Ties go to the canonically
        (lexicographically) first backend *name* — not the listing
        order — so the race stays deterministic, and reproducible
        across call sites, even when two backends measure identically.
        This is host-time territory — the tuner only runs it when the
        sweep was asked for wall-clock measurements; the default
        (cycle-model) sweep must stay byte-reproducible.
        """
        times = {b: self._wall_run(problem, cand, b) for b in backends}
        winner = min(sorted(backends), key=lambda b: (times[b], b))
        obs.count("tuning.race.backends", len(backends))
        return winner, times

    def drift(self, problem, cand: "Candidate | None" = None,
              backends: "tuple[str, ...]" = ("compiled", "fused",
                                             "megakernel")
              ) -> "dict[str, dict]":
        """Cycle-model prediction vs wall-clock replay, per backend.

        Both sides run the *same* capped-batch problem the wall replay
        uses (host time scales linearly with groups, so capping keeps
        the check cheap without changing the ratio).  Returns
        ``{backend: {"predicted_seconds", "wall_seconds", "ratio"}}``;
        the ratio (wall / predicted) is the model-drift figure the
        profiler reports — host-dependent, so it is provenance, never a
        selection metric.
        """
        if cand is None:
            cand = Candidate(main=None)
        small = min(problem.batch, WALL_CLOCK_BATCH_CAP)
        if isinstance(problem, GemmProblem):
            p = problem.with_batch(small)
        else:
            p = TrsmProblem(problem.m, problem.n, problem.dtype,
                            problem.side, problem.uplo, problem.transa,
                            problem.diag, small, problem.alpha)
        predicted = self._engine.time_plan(self.build_plan(p, cand)).seconds
        out: "dict[str, dict]" = {}
        for backend in backends:
            wall = self._wall_run(problem, cand, backend)
            out[backend] = {"predicted_seconds": predicted,
                            "wall_seconds": wall,
                            "ratio": wall / predicted if predicted else 0.0}
        obs.count("tuning.drift.backends", len(backends))
        return out

    def _wall_run(self, problem, cand: Candidate, backend: str) -> float:
        """Best-of-``repeats`` host seconds executing the candidate's
        plan on ``backend`` over a capped random batch."""
        from ..layout.compact import CompactBatch

        dt = problem.dtype
        lanes = self.machine.lanes(dt)
        small = min(problem.batch, WALL_CLOCK_BATCH_CAP)
        rng = np.random.default_rng(self._rng_seed)

        def batch_of(rows: int, cols: int, spd: bool = False) -> CompactBatch:
            mats = rng.uniform(0.1, 1.0, (small, rows, cols))
            if dt.is_complex:
                mats = mats + 1j * rng.uniform(0.1, 1.0, mats.shape)
            if spd:                      # well-conditioned triangular A
                mats = np.tril(mats) + 3.0 * np.eye(rows)
            return CompactBatch.from_matrices(mats.astype(dt.np_dtype),
                                              lanes, dt)

        engine = Engine(self.machine, backend=backend)
        if isinstance(problem, GemmProblem):
            p = problem.with_batch(small)
            reg = self.registry(cand.schedule)
            small_plan = build_gemm_plan(p, self.machine, reg,
                                         force_pack=cand.force_pack,
                                         main_override=cand.main)
            a = batch_of(*p.a_shape)
            b = batch_of(*p.b_shape)
            c = batch_of(*p.c_shape)
            run = lambda: engine.execute_gemm(small_plan, a, b, c)
        else:
            p = TrsmProblem(problem.m, problem.n, dt, problem.side,
                            problem.uplo, problem.transa, problem.diag,
                            small, problem.alpha)
            reg = self.registry(cand.schedule)
            small_plan = build_trsm_plan(p, self.machine, reg,
                                         force_pack=cand.force_pack)
            a = batch_of(p.a_dim, p.a_dim, spd=True)
            b = batch_of(*p.b_shape)
            run = lambda: engine.execute_trsm(small_plan, a, b)

        run()                            # warm: lowering + allocations
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - t0)
        obs.observe("tuning.eval.wall_seconds", best)
        return best
