"""Command-line interface for the install-time autotuner.

Usage::

    python -m repro.tuning sweep --db kunpeng920.tuning.json \\
        --op gemm --op trsm --dtype d --sizes 1:16 [--top-k 8|--full] \\
        [--check]
    python -m repro.tuning show --db kunpeng920.tuning.json
    python -m repro.tuning export --db kunpeng920.tuning.json --format csv
    python -m repro.tuning merge --out fleet.json a.json b.json
    python -m repro.tuning diff a.json b.json
    python -m repro.tuning import --db fleet.json incoming.json
    python -m repro.tuning self-check

``sweep`` is the install-time entry point: the analytic machine model
ranks the full register-feasible candidate space and only the top-k
(default 8; ``--full`` for the exhaustive sweep) is measured per shape;
winners are upserted into the DB atomically.  ``--check`` re-runs the
identical sweep in-process afterwards and verifies the serialized DB is
bit-identical — the reproducibility guarantee CI leans on (the sweep
timestamp is taken once and reused, so provenance cannot break it).

``merge`` pools per-machine DBs into a fleet DB with deterministic,
order-independent conflict resolution; ``diff`` explains what separates
two DBs (exit 0 identical, 1 different, 2 unusable); ``import`` merges
incoming files into an existing DB in place.

``self-check`` exercises the whole subsystem end to end (sweep, save,
reload, re-sweep, corruption handling, the "tuned never worse" and
top-k rank-quality invariants, fleet merge/diff, the legacy-schema
shim, and the watchdog-driven retune drill) against temp files and
returns 0/1 for CI.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
import tempfile
import time

from . import TuningDB, TuningKey, sweep, tune_problem

__all__ = ["main"]

MACHINES = {
    "kunpeng920": "KUNPENG_920",
    "xeon6240": "XEON_GOLD_6240",
    "a64fx": "A64FX",
}


def _machine(name: str):
    from ..machine import machines

    return getattr(machines, MACHINES[name])


def _parse_sizes(text: str) -> "tuple[int, ...]":
    """``"1:16"`` (inclusive range) or ``"4,8,12"`` (explicit list)."""
    text = text.strip()
    if ":" in text:
        lo, hi = text.split(":", 1)
        lo_i, hi_i = int(lo), int(hi)
        if lo_i < 1 or hi_i < lo_i:
            raise ValueError(f"bad size range {text!r}")
        return tuple(range(lo_i, hi_i + 1))
    sizes = tuple(int(s) for s in text.split(",") if s.strip())
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"bad size list {text!r}")
    return sizes


def _cmd_sweep(args) -> int:
    machine = _machine(args.machine)
    try:
        sizes = _parse_sizes(args.sizes)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    db = TuningDB.load(args.db)
    if db.corrupt:
        print(f"note: existing DB was corrupt ({db.corrupt_reason}); "
              "starting fresh")
    ops = tuple(args.op) if args.op else ("gemm", "trsm")
    dtypes = tuple(args.dtype) if args.dtype else ("d",)

    def progress(outcome):
        if not args.quiet:
            print("  " + outcome.describe())

    top_k = None if args.full else args.top_k
    # one timestamp for the whole run, reused by --check's re-sweep so
    # provenance cannot break bit-reproducibility
    timestamp = float(int(time.time()))
    mode = "full sweep" if top_k is None else f"top-{top_k} analytical"
    print(f"sweeping {machine.name}: ops={','.join(ops)} "
          f"dtypes={','.join(dtypes)} sizes={sizes[0]}..{sizes[-1]} "
          f"({len(sizes)} shapes/op/dtype, batch={args.batch}, {mode})")
    outcomes = sweep(db, machine, ops=ops, dtypes=dtypes, sizes=sizes,
                     batch=args.batch, repeats=args.repeats,
                     schedule_variants=args.schedule_variants,
                     wall_clock=args.wall_clock, top_k=top_k,
                     timestamp=timestamp, progress=progress)
    improved = sum(1 for o in outcomes if o.improved)
    target = db.save(args.db)
    print(f"swept {len(outcomes)} shapes ({improved} improved over "
          f"analytic); {len(db)} entries -> {target}")

    if args.check:
        again = TuningDB.load(target)
        if again.corrupt or again.to_json() != db.to_json():
            print("reproducibility check FAILED: reloaded DB differs "
                  "from the in-memory sweep")
            return 1
        sweep(again, machine, ops=ops, dtypes=dtypes, sizes=sizes,
              batch=args.batch, repeats=args.repeats,
              schedule_variants=args.schedule_variants,
              top_k=top_k, timestamp=timestamp)
        if again.to_json() != db.to_json():
            print("reproducibility check FAILED: re-running the sweep "
                  "produced different records")
            return 1
        print("reproducibility check OK: reload + identical re-sweep "
              "are bit-identical")
    return 0


def _cmd_show(args) -> int:
    db = TuningDB.load(args.db)
    if db.corrupt:
        print(f"{args.db}: CORRUPT ({db.corrupt_reason}); runtime will "
              "fall back to analytic selection")
        return 1
    stats = db.stats()
    print(f"{args.db}: schema v{stats['schema']}, "
          f"{stats['entries']} entries")
    for bucket, count in sorted(stats["per_machine_op"].items()):
        print(f"  {bucket}: {count}")
    for key, rec in db.items():
        main = (f"{rec.main[0]}x{rec.main[1]}" if rec.main is not None
                else "fixed")
        pack = "pack" if rec.force_pack else "auto"
        sched = "" if rec.schedule else " unscheduled"
        cands = (f"{rec.candidates}/{rec.space} cands" if rec.space
                 else f"{rec.candidates} cands")
        print(f"  {key.op} {key.dtype} {key.m}x{key.n}x{key.k} "
              f"{key.mode}: {main}/{pack}{sched} "
              f"{rec.cycles:.0f}cy {rec.gflops:.2f}GF "
              f"(tuner v{rec.tuner_version}, {rec.sweep} {cands}, "
              f"batch {rec.batch}, run via {rec.backend})")
    return 0


def _cmd_export(args) -> int:
    db = TuningDB.load(args.db)
    if db.corrupt:
        print(f"error: {args.db} is corrupt ({db.corrupt_reason})")
        return 1
    if args.format == "json":
        text = db.to_json() + "\n"
    else:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["machine", "op", "dtype", "m", "n", "k", "mode",
                         "main", "force_pack", "schedule", "cycles",
                         "gflops", "candidates", "space", "tuner_version",
                         "evaluator_version", "batch", "repeats", "backend",
                         "machine_id", "sweep", "timestamp"])
        for key, rec in db.items():
            writer.writerow([
                key.machine, key.op, key.dtype, key.m, key.n, key.k,
                key.mode,
                (f"{rec.main[0]}x{rec.main[1]}" if rec.main is not None
                 else ""),
                int(rec.force_pack), int(rec.schedule), rec.cycles,
                rec.gflops, rec.candidates, rec.space, rec.tuner_version,
                rec.evaluator_version, rec.batch, rec.repeats, rec.backend,
                rec.machine_id, rec.sweep, rec.timestamp])
        text = out.getvalue()
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"exported {len(db)} entries -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _load_for_fleet(path: str) -> "TuningDB | None":
    """Load one fleet-operation input; ``None`` (with a message) when
    the file cannot be trusted — fleet merges must not silently absorb
    a corrupt artifact."""
    db = TuningDB.load(path)
    if db.corrupt:
        print(f"error: {path} is corrupt ({db.corrupt_reason})")
        return None
    return db


def _cmd_merge(args) -> int:
    dbs = []
    for path in args.inputs:
        db = _load_for_fleet(path)
        if db is None:
            return 2
        dbs.append(db)
    merged = TuningDB.merge(dbs)
    merged.save(args.out)
    print(f"merged {len(dbs)} DBs ({sum(len(d) for d in dbs)} records) "
          f"-> {len(merged)} entries in {args.out}")
    return 0


def _cmd_diff(args) -> int:
    a = _load_for_fleet(args.a)
    b = _load_for_fleet(args.b)
    if a is None or b is None:
        return 2
    d = TuningDB.diff(a, b)
    print(f"{args.a} vs {args.b}: {d['identical']} identical, "
          f"{len(d['only_a'])} only in A, {len(d['only_b'])} only in B, "
          f"{len(d['conflicts'])} conflicts")
    for k in d["only_a"]:
        print(f"  only A: {k}")
    for k in d["only_b"]:
        print(f"  only B: {k}")
    for c in d["conflicts"]:
        print(f"  conflict: {c['key']} "
              f"(A {c['a']['gflops']:.2f}GF vs B {c['b']['gflops']:.2f}GF "
              f"-> merge keeps {c['winner'].upper()})")
    return 0 if not (d["only_a"] or d["only_b"] or d["conflicts"]) else 1


def _cmd_import(args) -> int:
    dst = TuningDB.load(args.db)
    if dst.corrupt:
        print(f"note: destination {args.db} was corrupt "
              f"({dst.corrupt_reason}); starting fresh")
        dst.reset()
    incoming = []
    for path in args.inputs:
        db = _load_for_fleet(path)
        if db is None:
            return 2
        incoming.append(db)
    before = len(dst)
    merged = TuningDB.merge([dst] + incoming)
    merged.save(args.db)
    print(f"imported {len(incoming)} DBs into {args.db}: "
          f"{before} -> {len(merged)} entries")
    return 0


def _cmd_self_check(args) -> int:
    from .. import obs
    from ..machine.machines import KUNPENG_920
    from ..types import GemmProblem

    problems: list[str] = []
    machine = KUNPENG_920
    with obs.scoped() as reg, tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "self-check.tuning.json")

        # sweep -> save -> reload must round-trip bit-identically
        db = TuningDB.load(path)                  # missing file: healthy
        if db.corrupt or len(db):
            problems.append("missing DB file did not load empty/healthy")
        outcomes = sweep(db, machine, ops=("gemm", "trsm"), dtypes=("d",),
                         sizes=(3, 6, 9), batch=512)
        db.save()
        reloaded = TuningDB.load(path)
        if reloaded.corrupt:
            problems.append(f"reload marked corrupt: "
                            f"{reloaded.corrupt_reason}")
        if reloaded.to_json() != db.to_json():
            problems.append("save/load round-trip not bit-identical")

        # re-sweeping the same grid must reproduce every record exactly
        sweep(reloaded, machine, ops=("gemm", "trsm"), dtypes=("d",),
              sizes=(3, 6, 9), batch=512)
        if reloaded.to_json() != db.to_json():
            problems.append("identical re-sweep changed records "
                            "(determinism broken)")

        # "tuned never worse": winner cycles <= analytic candidate's
        for outcome in outcomes:
            if outcome.record.cycles > outcome.analytic_cycles:
                problems.append(
                    f"{outcome.key.encode()}: tuned "
                    f"{outcome.record.cycles} cycles worse than analytic "
                    f"{outcome.analytic_cycles}")

        # a complex-dtype single-shape tune exercises the other budget
        z = tune_problem(GemmProblem(6, 6, 6, "z", batch=256), machine)
        if z.record.cycles > z.analytic_cycles:
            problems.append("complex tune worse than analytic")

        # corruption must degrade, never raise
        bad = os.path.join(tmp, "bad.tuning.json")
        with open(bad, "w") as f:
            f.write("{ this is not json")
        broken = TuningDB.load(bad)
        if not broken.corrupt or len(broken):
            problems.append("truncated JSON not flagged corrupt+empty")
        with open(bad, "w") as f:
            json.dump({"schema": 999, "entries": {}}, f)
        future = TuningDB.load(bad)
        if not future.corrupt:
            problems.append("future schema not flagged corrupt")

        # the runtime consults the DB and falls back gracefully
        from ..runtime.iatf import IATF

        iatf = IATF(machine, tuning_db=path)
        iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=512))   # hit
        iatf.plan_gemm(GemmProblem(31, 31, 31, "d", batch=512))  # miss
        broken_iatf = IATF(machine, tuning_db=bad)
        broken_iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=512))
        counters = reg.snapshot()["counters"]
        for want in ("tuning.sweep.problems", "tuning.eval.candidates",
                     "tuning.db.saves", "tuning.db.loads",
                     "tuning.hit", "tuning.miss", "tuning.fallback"):
            if counters.get(want, 0) <= 0:
                problems.append(f"counter {want} did not move")

        # top-k rank quality: the analytical cut must keep the
        # full-sweep winner while measuring <= 25% of the full space
        problems.extend(_check_topk(machine))

        # fleet drill: merge commutativity, conflict resolution, empty
        # self-diff, legacy-schema loading
        problems.extend(_check_fleet(tmp, machine))

        # drift -> retune drill: watchdog verdict triggers a bounded
        # re-sweep that swaps the record and invalidates cached plans
        problems.extend(_check_retune(reg, tmp, machine))

    if problems:
        print("tuning self-check FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("tuning self-check OK: sweep determinism, DB round-trip, "
          "corruption fallback, runtime hit/miss/fallback, top-k rank "
          "quality, fleet merge/diff, and the drift-retune loop all "
          "healthy")
    return 0


def _check_topk(machine) -> "list[str]":
    """Self-check drill: top-k keeps the exhaustive winner, cheaply."""
    from ..types import GemmProblem
    from .evaluate import Evaluator

    problems: list[str] = []
    ev = Evaluator(machine)
    for n in (3, 6, 9, 12):
        p = GemmProblem(n, n, n, "d", batch=512)
        full = tune_problem(p, machine, evaluator=ev, top_k=None,
                            schedule_variants=True)
        topk = tune_problem(p, machine, evaluator=ev,
                            schedule_variants=True)
        same = (full.record.main == topk.record.main
                and full.record.force_pack == topk.record.force_pack
                and full.record.schedule == topk.record.schedule)
        if not same:
            problems.append(
                f"top-k sweep missed the full-sweep winner at n={n}: "
                f"{full.record.main} vs {topk.record.main}")
        if topk.record.space and \
                topk.record.candidates > 0.25 * topk.record.space:
            problems.append(
                f"top-k sweep measured {topk.record.candidates} of "
                f"{topk.record.space} candidates at n={n} (> 25%)")
        if topk.record.sweep != "topk":
            problems.append(f"top-k record not stamped 'topk' at n={n}")
    return problems


def _check_fleet(tmp: str, machine) -> "list[str]":
    """Self-check drill: fleet merge/diff semantics + the legacy shim."""
    import dataclasses

    from ..machine.machines import A64FX

    problems: list[str] = []
    db_a = TuningDB(path=os.path.join(tmp, "fleet-a.json"))
    db_b = TuningDB(path=os.path.join(tmp, "fleet-b.json"))
    sweep(db_a, machine, ops=("gemm",), dtypes=("d",), sizes=(3, 6),
          batch=512)
    sweep(db_b, A64FX, ops=("gemm",), dtypes=("d",), sizes=(3, 6),
          batch=512)
    # one overlapping key with conflicting records: resolution must be
    # order-independent (higher gflops wins)
    shared_key, shared_rec = db_a.items()[0]
    db_b.put(shared_key,
             dataclasses.replace(shared_rec, gflops=shared_rec.gflops + 1.0,
                                 cycles=shared_rec.cycles / 2.0))
    ab = TuningDB.merge([db_a, db_b])
    ba = TuningDB.merge([db_b, db_a])
    if ab.to_json() != ba.to_json():
        problems.append("merge is not commutative (A,B != B,A)")
    if ab.get(shared_key).gflops != shared_rec.gflops + 1.0:
        problems.append("merge conflict did not keep the higher-gflops "
                        "record")
    self_diff = TuningDB.diff(ab, ab)
    if self_diff["only_a"] or self_diff["only_b"] or self_diff["conflicts"]:
        problems.append("self-diff of a merged DB is not empty")
    cross = TuningDB.diff(db_a, db_b)
    if len(cross["conflicts"]) != 1:
        problems.append("diff did not report exactly the planted conflict")

    # legacy v1 files (display-name keys, no provenance) must load
    # through the shim onto this machine's tuning id
    legacy_path = os.path.join(tmp, "legacy.json")
    legacy_rec = {k: v for k, v in shared_rec.to_dict().items()
                  if k in ("main", "force_pack", "schedule", "cycles",
                           "gflops", "candidates", "tuner_version",
                           "batch", "repeats")}
    old_key = shared_key.encode().replace(shared_key.machine, machine.name)
    with open(legacy_path, "w") as f:
        json.dump({"schema": 1, "tuner_version": 1,
                   "entries": {old_key: legacy_rec}}, f)
    legacy = TuningDB.load(legacy_path)
    if legacy.corrupt:
        problems.append(f"legacy v1 file flagged corrupt: "
                        f"{legacy.corrupt_reason}")
    elif legacy.get(shared_key) is None:
        problems.append("legacy v1 key did not upgrade to the stock "
                        "machine's tuning id")
    elif legacy.get(shared_key).sweep != "legacy":
        problems.append("legacy record not stamped sweep='legacy'")
    return problems


def _check_retune(reg, tmp: str, machine) -> "list[str]":
    """Self-check drill: a synthetic drifting trajectory must drive
    ``IATF.retune_from_watch`` to swap the record and invalidate the
    cached plan."""
    from ..obs.watch import check_trajectory
    from ..runtime.iatf import IATF
    from ..types import GemmProblem

    problems: list[str] = []
    path = os.path.join(tmp, "retune.tuning.json")
    db = TuningDB(path=path)
    problem = GemmProblem(6, 6, 6, "d", batch=512)
    out = tune_problem(problem, machine)
    db.put(out.key, out.record)
    db.save()

    iatf = IATF(machine, tuning_db=path)
    iatf.plan_gemm(problem)                    # populate the plan cache
    if iatf.plan_cache_stats["size"] < 1:
        problems.append("retune drill: plan cache did not populate")

    def point(ts: float, wall: float) -> dict:
        return {"schema": 2, "machine": machine.name,
                "machine_id": machine.machine_id, "routine": "gemm",
                "backend": "fused", "dtype": "d", "shape": [6, 6, 6],
                "batch": 512, "gflops": 8.0, "percent_peak": 75.0,
                "wall_seconds": wall, "repeats": 3, "timestamp": ts}

    result = check_trajectory([point(1.0, 0.010), point(2.0, 0.025)],
                              drift_threshold=0.5)
    if not result.drifts:
        problems.append("retune drill: watchdog did not flag the "
                        "synthetic drift")
        return problems
    if result.exit_code != 0:
        problems.append("retune drill: drift affected the exit code "
                        "(must stay advisory)")
    outcomes = iatf.retune_from_watch(result.drifts, timestamp=123.0)
    if len(outcomes) != 1:
        problems.append(f"retune drill: expected 1 retune outcome, got "
                        f"{len(outcomes)}")
        return problems
    swapped = outcomes[0].record
    if swapped.sweep != "retune" or swapped.timestamp != 123.0:
        problems.append("retune drill: swapped record missing retune "
                        "provenance")
    reloaded = TuningDB.load(path)
    if reloaded.get(outcomes[0].key) != swapped:
        problems.append("retune drill: swapped record not persisted")
    if iatf.plan_cache_stats["invalidations"] < 1:
        problems.append("retune drill: stale cached plan was not "
                        "invalidated")
    counters = reg.snapshot()["counters"]
    for want in ("tuning.retune.scheduled", "tuning.retune.swapped",
                 "tuning.retune.plans_invalidated"):
        if counters.get(want, 0) <= 0:
            problems.append(f"retune drill: counter {want} did not move")
    names = [e["name"] for e in reg.events.tail(prefix="tuning.retune.")]
    for want in ("tuning.retune.scheduled", "tuning.retune.swapped"):
        if want not in names:
            problems.append(f"retune drill: event {want} not emitted")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro.tuning``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--self-check" in argv:            # CI-friendly flag spelling
        argv = ["self-check"] + [a for a in argv if a != "--self-check"]

    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning",
        description="Install-time autotuner: sweep candidate plans on "
        "the machine model and persist winners to a TuningDB.")
    sub = parser.add_subparsers(dest="command")

    p_sweep = sub.add_parser("sweep", help="tune a size grid and store "
                             "winners in the DB")
    p_sweep.add_argument("--db", required=True, metavar="PATH",
                         help="TuningDB file to update (created if absent)")
    p_sweep.add_argument("--machine", choices=sorted(MACHINES),
                         default="kunpeng920")
    p_sweep.add_argument("--op", action="append",
                         choices=("gemm", "trsm"),
                         help="repeatable; default both")
    p_sweep.add_argument("--dtype", action="append",
                         choices=("s", "d", "c", "z"),
                         help="repeatable; default d")
    p_sweep.add_argument("--sizes", default="1:16",
                         help="inclusive range 'LO:HI' or list 'a,b,c' "
                         "of square sizes (default 1:16)")
    p_sweep.add_argument("--batch", type=int, default=16384)
    p_sweep.add_argument("--repeats", type=int, default=1,
                         help="measurement repeats (median)")
    p_sweep.add_argument("--schedule-variants", action="store_true",
                         help="also sweep unscheduled-kernel variants")
    p_sweep.add_argument("--wall-clock", action="store_true",
                         help="record compiled-backend host time as "
                         "provenance (never the selection metric)")
    p_sweep.add_argument("--check", action="store_true",
                         help="verify reload + identical re-sweep are "
                         "bit-identical (CI)")
    p_sweep.add_argument("--top-k", type=int, default=None, metavar="K",
                         help="measure only the K best-ranked candidates "
                         "per shape (default: the tuner's top-8)")
    p_sweep.add_argument("--full", action="store_true",
                         help="exhaustive sweep: measure every pruned "
                         "candidate (overrides --top-k)")
    p_sweep.add_argument("--quiet", action="store_true")

    p_show = sub.add_parser("show", help="print DB stats and entries")
    p_show.add_argument("--db", required=True, metavar="PATH")

    p_exp = sub.add_parser("export", help="dump the DB as json or csv")
    p_exp.add_argument("--db", required=True, metavar="PATH")
    p_exp.add_argument("--format", choices=("json", "csv"), default="json")
    p_exp.add_argument("--out", metavar="PATH", default=None,
                       help="write to a file instead of stdout")

    p_merge = sub.add_parser("merge", help="pool per-machine DBs into one "
                             "fleet DB (deterministic, order-independent)")
    p_merge.add_argument("--out", required=True, metavar="PATH")
    p_merge.add_argument("inputs", nargs="+", metavar="DB")

    p_diff = sub.add_parser("diff", help="explain what separates two DBs "
                            "(exit 0 identical, 1 different)")
    p_diff.add_argument("a", metavar="A")
    p_diff.add_argument("b", metavar="B")

    p_imp = sub.add_parser("import", help="merge incoming DB files into "
                           "an existing DB in place")
    p_imp.add_argument("--db", required=True, metavar="PATH",
                       help="destination DB (updated atomically)")
    p_imp.add_argument("inputs", nargs="+", metavar="DB")

    sub.add_parser("self-check", help="end-to-end smoke test of the "
                   "tuning subsystem (CI)")

    args = parser.parse_args(argv)
    if args.command == "sweep":
        if args.top_k is None:
            from .tuner import DEFAULT_TOP_K

            args.top_k = DEFAULT_TOP_K
        elif args.top_k < 1:
            print("error: --top-k must be >= 1")
            return 2
        return _cmd_sweep(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "import":
        return _cmd_import(args)
    if args.command == "self-check":
        return _cmd_self_check(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
