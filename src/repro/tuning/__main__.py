"""Command-line interface for the install-time autotuner.

Usage::

    python -m repro.tuning sweep --db kunpeng920.tuning.json \\
        --op gemm --op trsm --dtype d --sizes 1:16 [--check]
    python -m repro.tuning show --db kunpeng920.tuning.json
    python -m repro.tuning export --db kunpeng920.tuning.json --format csv
    python -m repro.tuning self-check

``sweep`` is the install-time entry point: it measures every candidate
per shape and upserts the winners into the DB atomically.  ``--check``
re-runs the identical sweep in-process afterwards and verifies the
serialized DB is bit-identical — the reproducibility guarantee CI
leans on.  ``self-check`` exercises the whole subsystem end to end
(sweep, save, reload, re-sweep, corruption handling, the "tuned never
worse" invariant) against temp files and returns 0/1 for CI.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
import tempfile

from . import TuningDB, TuningKey, sweep, tune_problem

__all__ = ["main"]

MACHINES = {
    "kunpeng920": "KUNPENG_920",
    "xeon6240": "XEON_GOLD_6240",
    "a64fx": "A64FX",
}


def _machine(name: str):
    from ..machine import machines

    return getattr(machines, MACHINES[name])


def _parse_sizes(text: str) -> "tuple[int, ...]":
    """``"1:16"`` (inclusive range) or ``"4,8,12"`` (explicit list)."""
    text = text.strip()
    if ":" in text:
        lo, hi = text.split(":", 1)
        lo_i, hi_i = int(lo), int(hi)
        if lo_i < 1 or hi_i < lo_i:
            raise ValueError(f"bad size range {text!r}")
        return tuple(range(lo_i, hi_i + 1))
    sizes = tuple(int(s) for s in text.split(",") if s.strip())
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"bad size list {text!r}")
    return sizes


def _cmd_sweep(args) -> int:
    machine = _machine(args.machine)
    try:
        sizes = _parse_sizes(args.sizes)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    db = TuningDB.load(args.db)
    if db.corrupt:
        print(f"note: existing DB was corrupt ({db.corrupt_reason}); "
              "starting fresh")
    ops = tuple(args.op) if args.op else ("gemm", "trsm")
    dtypes = tuple(args.dtype) if args.dtype else ("d",)

    def progress(outcome):
        if not args.quiet:
            print("  " + outcome.describe())

    print(f"sweeping {machine.name}: ops={','.join(ops)} "
          f"dtypes={','.join(dtypes)} sizes={sizes[0]}..{sizes[-1]} "
          f"({len(sizes)} shapes/op/dtype, batch={args.batch})")
    outcomes = sweep(db, machine, ops=ops, dtypes=dtypes, sizes=sizes,
                     batch=args.batch, repeats=args.repeats,
                     schedule_variants=args.schedule_variants,
                     wall_clock=args.wall_clock, progress=progress)
    improved = sum(1 for o in outcomes if o.improved)
    target = db.save(args.db)
    print(f"swept {len(outcomes)} shapes ({improved} improved over "
          f"analytic); {len(db)} entries -> {target}")

    if args.check:
        again = TuningDB.load(target)
        if again.corrupt or again.to_json() != db.to_json():
            print("reproducibility check FAILED: reloaded DB differs "
                  "from the in-memory sweep")
            return 1
        sweep(again, machine, ops=ops, dtypes=dtypes, sizes=sizes,
              batch=args.batch, repeats=args.repeats,
              schedule_variants=args.schedule_variants)
        if again.to_json() != db.to_json():
            print("reproducibility check FAILED: re-running the sweep "
                  "produced different records")
            return 1
        print("reproducibility check OK: reload + identical re-sweep "
              "are bit-identical")
    return 0


def _cmd_show(args) -> int:
    db = TuningDB.load(args.db)
    if db.corrupt:
        print(f"{args.db}: CORRUPT ({db.corrupt_reason}); runtime will "
              "fall back to analytic selection")
        return 1
    stats = db.stats()
    print(f"{args.db}: schema v{stats['schema']}, "
          f"{stats['entries']} entries")
    for bucket, count in sorted(stats["per_machine_op"].items()):
        print(f"  {bucket}: {count}")
    for key, rec in db.items():
        main = (f"{rec.main[0]}x{rec.main[1]}" if rec.main is not None
                else "fixed")
        pack = "pack" if rec.force_pack else "auto"
        sched = "" if rec.schedule else " unscheduled"
        print(f"  {key.op} {key.dtype} {key.m}x{key.n}x{key.k} "
              f"{key.mode}: {main}/{pack}{sched} "
              f"{rec.cycles:.0f}cy {rec.gflops:.2f}GF "
              f"(tuner v{rec.tuner_version}, {rec.candidates} cands, "
              f"batch {rec.batch}, run via {rec.backend})")
    return 0


def _cmd_export(args) -> int:
    db = TuningDB.load(args.db)
    if db.corrupt:
        print(f"error: {args.db} is corrupt ({db.corrupt_reason})")
        return 1
    if args.format == "json":
        print(db.to_json())
        return 0
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["machine", "op", "dtype", "m", "n", "k", "mode",
                     "main", "force_pack", "schedule", "cycles", "gflops",
                     "candidates", "tuner_version", "batch", "repeats",
                     "backend"])
    for key, rec in db.items():
        writer.writerow([
            key.machine, key.op, key.dtype, key.m, key.n, key.k, key.mode,
            f"{rec.main[0]}x{rec.main[1]}" if rec.main is not None else "",
            int(rec.force_pack), int(rec.schedule), rec.cycles, rec.gflops,
            rec.candidates, rec.tuner_version, rec.batch, rec.repeats,
            rec.backend])
    sys.stdout.write(out.getvalue())
    return 0


def _cmd_self_check(args) -> int:
    from .. import obs
    from ..machine.machines import KUNPENG_920
    from ..types import GemmProblem

    problems: list[str] = []
    machine = KUNPENG_920
    with obs.scoped() as reg, tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "self-check.tuning.json")

        # sweep -> save -> reload must round-trip bit-identically
        db = TuningDB.load(path)                  # missing file: healthy
        if db.corrupt or len(db):
            problems.append("missing DB file did not load empty/healthy")
        outcomes = sweep(db, machine, ops=("gemm", "trsm"), dtypes=("d",),
                         sizes=(3, 6, 9), batch=512)
        db.save()
        reloaded = TuningDB.load(path)
        if reloaded.corrupt:
            problems.append(f"reload marked corrupt: "
                            f"{reloaded.corrupt_reason}")
        if reloaded.to_json() != db.to_json():
            problems.append("save/load round-trip not bit-identical")

        # re-sweeping the same grid must reproduce every record exactly
        sweep(reloaded, machine, ops=("gemm", "trsm"), dtypes=("d",),
              sizes=(3, 6, 9), batch=512)
        if reloaded.to_json() != db.to_json():
            problems.append("identical re-sweep changed records "
                            "(determinism broken)")

        # "tuned never worse": winner cycles <= analytic candidate's
        for outcome in outcomes:
            if outcome.record.cycles > outcome.analytic_cycles:
                problems.append(
                    f"{outcome.key.encode()}: tuned "
                    f"{outcome.record.cycles} cycles worse than analytic "
                    f"{outcome.analytic_cycles}")

        # a complex-dtype single-shape tune exercises the other budget
        z = tune_problem(GemmProblem(6, 6, 6, "z", batch=256), machine)
        if z.record.cycles > z.analytic_cycles:
            problems.append("complex tune worse than analytic")

        # corruption must degrade, never raise
        bad = os.path.join(tmp, "bad.tuning.json")
        with open(bad, "w") as f:
            f.write("{ this is not json")
        broken = TuningDB.load(bad)
        if not broken.corrupt or len(broken):
            problems.append("truncated JSON not flagged corrupt+empty")
        with open(bad, "w") as f:
            json.dump({"schema": 999, "entries": {}}, f)
        future = TuningDB.load(bad)
        if not future.corrupt:
            problems.append("future schema not flagged corrupt")

        # the runtime consults the DB and falls back gracefully
        from ..runtime.iatf import IATF

        iatf = IATF(machine, tuning_db=path)
        iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=512))   # hit
        iatf.plan_gemm(GemmProblem(31, 31, 31, "d", batch=512))  # miss
        broken_iatf = IATF(machine, tuning_db=bad)
        broken_iatf.plan_gemm(GemmProblem(6, 6, 6, "d", batch=512))
        counters = reg.snapshot()["counters"]
        for want in ("tuning.sweep.problems", "tuning.eval.candidates",
                     "tuning.db.saves", "tuning.db.loads",
                     "tuning.hit", "tuning.miss", "tuning.fallback"):
            if counters.get(want, 0) <= 0:
                problems.append(f"counter {want} did not move")

    if problems:
        print("tuning self-check FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("tuning self-check OK: sweep determinism, DB round-trip, "
          "corruption fallback, and runtime hit/miss/fallback all healthy")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro.tuning``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--self-check" in argv:            # CI-friendly flag spelling
        argv = ["self-check"] + [a for a in argv if a != "--self-check"]

    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning",
        description="Install-time autotuner: sweep candidate plans on "
        "the machine model and persist winners to a TuningDB.")
    sub = parser.add_subparsers(dest="command")

    p_sweep = sub.add_parser("sweep", help="tune a size grid and store "
                             "winners in the DB")
    p_sweep.add_argument("--db", required=True, metavar="PATH",
                         help="TuningDB file to update (created if absent)")
    p_sweep.add_argument("--machine", choices=sorted(MACHINES),
                         default="kunpeng920")
    p_sweep.add_argument("--op", action="append",
                         choices=("gemm", "trsm"),
                         help="repeatable; default both")
    p_sweep.add_argument("--dtype", action="append",
                         choices=("s", "d", "c", "z"),
                         help="repeatable; default d")
    p_sweep.add_argument("--sizes", default="1:16",
                         help="inclusive range 'LO:HI' or list 'a,b,c' "
                         "of square sizes (default 1:16)")
    p_sweep.add_argument("--batch", type=int, default=16384)
    p_sweep.add_argument("--repeats", type=int, default=1,
                         help="measurement repeats (median)")
    p_sweep.add_argument("--schedule-variants", action="store_true",
                         help="also sweep unscheduled-kernel variants")
    p_sweep.add_argument("--wall-clock", action="store_true",
                         help="record compiled-backend host time as "
                         "provenance (never the selection metric)")
    p_sweep.add_argument("--check", action="store_true",
                         help="verify reload + identical re-sweep are "
                         "bit-identical (CI)")
    p_sweep.add_argument("--quiet", action="store_true")

    p_show = sub.add_parser("show", help="print DB stats and entries")
    p_show.add_argument("--db", required=True, metavar="PATH")

    p_exp = sub.add_parser("export", help="dump the DB as json or csv")
    p_exp.add_argument("--db", required=True, metavar="PATH")
    p_exp.add_argument("--format", choices=("json", "csv"), default="json")

    sub.add_parser("self-check", help="end-to-end smoke test of the "
                   "tuning subsystem (CI)")

    args = parser.parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "self-check":
        return _cmd_self_check(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
