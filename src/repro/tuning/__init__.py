"""repro.tuning — the install-time autotuning subsystem.

The paper's install-time stage pre-builds kernels; this subsystem makes
it *input-aware* end to end by empirically searching the run-time
stage's decision space per machine and persisting the winners:

* :mod:`repro.tuning.space` — enumerate the candidate space per
  (op, dtype, size-class) — register-feasible main kernels under the
  CMAR budget, pack-vs-nopack, schedule variants, executor backend —
  and *rank* it analytically (:func:`score_candidate` /
  :func:`rank_candidates`: occupancy, cache residency, issue-slot
  balance from the machine model) so only a top-k needs measuring;
* :mod:`repro.tuning.evaluate` — measure candidates on the machine
  simulator's cycle model (optionally also compiled-backend wall
  clock), with repeat/median controls;
* :mod:`repro.tuning.db` — the schema-versioned, fleet-ready
  :class:`TuningDB` (atomic writes, corruption -> graceful fallback,
  per-record provenance, deterministic :meth:`TuningDB.merge` /
  :meth:`TuningDB.diff` across machines);
* :mod:`repro.tuning.tuner` — the analytical-first sweep orchestrator
  (top-k measurement, default :data:`DEFAULT_TOP_K`) with the
  "tuned is never worse than analytic" selection invariant;
* ``python -m repro.tuning`` — ``sweep`` / ``show`` / ``export`` /
  ``merge`` / ``diff`` / ``import`` / ``self-check`` CLI.

Quick start::

    from repro import IATF
    from repro.machine.machines import KUNPENG_920
    from repro.tuning import TuningDB, sweep

    db = TuningDB(path="kunpeng920.tuning.json")
    sweep(db, KUNPENG_920, ops=("gemm",), dtypes=("d",),
          sizes=range(1, 34))
    db.save()

    iatf = IATF(KUNPENG_920, tuning_db="kunpeng920.tuning.json")
    plan = iatf.plan_gemm(...)     # tuned decisions, analytic fallback

See ``docs/autotuning.md`` for the DB schema and design notes.
"""

from .db import (LEGACY_SCHEMAS, SCHEMA_VERSION, TUNER_VERSION, TuningDB,
                 TuningKey, TuningRecord)
from .evaluate import EVALUATOR_VERSION, Evaluator, Measurement
from .space import (AnalyticScore, Candidate, enumerate_gemm_space,
                    enumerate_trsm_space, feasible_gemm_mains, full_space,
                    rank_candidates, score_candidate, size_class)
from .tuner import (DEFAULT_TOP_K, DEFAULT_TUNED_BACKEND, TuneOutcome,
                    sweep, tune_problem)

__all__ = [
    "SCHEMA_VERSION", "LEGACY_SCHEMAS", "TUNER_VERSION",
    "EVALUATOR_VERSION",
    "TuningDB", "TuningKey", "TuningRecord",
    "Evaluator", "Measurement",
    "Candidate", "AnalyticScore", "enumerate_gemm_space",
    "enumerate_trsm_space", "feasible_gemm_mains", "full_space",
    "score_candidate", "rank_candidates", "size_class",
    "TuneOutcome", "sweep", "tune_problem",
    "DEFAULT_TOP_K", "DEFAULT_TUNED_BACKEND",
]
