"""The persistent, fleet-ready TuningDB.

The install-time sweep (:mod:`repro.tuning.tuner`) measures candidate
plans on the machine model and stores only the *winners* here; the
run-time stage (:class:`repro.runtime.iatf.IATF`) looks decisions up by
problem key and falls back to the analytic CMAR choice on a miss.
Design constraints, in order:

* **never crash the caller** — a missing, truncated, hand-edited, or
  future-schema file loads as an *empty* DB with ``corrupt`` set; the
  runtime sees only misses (plus a ``tuning.fallback`` counter) and
  keeps serving analytic plans;
* **atomic persistence** — ``save`` writes a sibling temp file and
  ``os.replace``\\ s it over the target, so a crashed sweep can never
  leave a half-written DB for the next process to trip over;
* **versioned schema** — the file carries ``schema`` (file format) and
  each record carries full provenance (``machine_id``, sweep mode,
  ``tuner_version``, ``evaluator_version``, a caller-injected
  timestamp), so a reader can tell *how*, *where* and *when* a decision
  was produced;
* **deterministic serialization** — keys are sorted and floats are
  written as-is, so sweep -> save -> load -> save is byte-stable and
  two identical sweeps produce identical files (the CI reproducibility
  check relies on this);
* **fleet mergeable** — per-machine DBs :meth:`~TuningDB.merge` with
  deterministic, commutative conflict resolution (higher measured
  GFLOPS wins, ties broken canonically) and :meth:`~TuningDB.diff`
  explains what separates two DBs, so a fleet can pool install-time
  sweeps and ship one artifact.

Schema history:

* **v1** — keys carried the machine's display *name* ("Kunpeng 920");
  records had no provenance beyond ``tuner_version``.
* **v2** — v1 plus the per-record ``backend`` column (PR 4).
* **v3** (current) — keys carry the machine's *tuning id*
  (``machine_id.fingerprint``, :attr:`MachineConfig.tuning_id`), and
  records carry full provenance.  Legacy v1/v2 files load through a
  shim: display names are slugified and, when the slug matches a stock
  machine, upgraded to that machine's tuning id — so a DB swept on a
  stock configuration keeps serving it, while a same-named machine with
  different clocks or caches can no longer be served stale schedules.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace

from .. import obs

__all__ = ["SCHEMA_VERSION", "LEGACY_SCHEMAS", "TUNER_VERSION",
           "TuningKey", "TuningRecord", "TuningDB"]

SCHEMA_VERSION = 3
"""Current file-format version (see the schema history above)."""

LEGACY_SCHEMAS = (1, 2)
"""File-format versions the legacy-load shim still understands."""

TUNER_VERSION = 2
"""Search-procedure version stamped into every record's provenance.
v1 swept the full pruned candidate space; v2 is the analytical-first
top-k sweep."""


def _known_tuning_ids() -> "dict[str, str]":
    """machine_id slug -> tuning id for the stock machine configs.

    Imported lazily: :mod:`repro.machine.machines` must stay importable
    without this module and vice versa.
    """
    from ..machine import machines

    stock = (machines.KUNPENG_920, machines.XEON_GOLD_6240, machines.A64FX)
    return {m.machine_id: m.tuning_id for m in stock}


@dataclass(frozen=True)
class TuningKey:
    """The lookup key: one problem configuration on one machine.

    ``machine`` is the machine's *tuning id* — the
    ``machine_id.fingerprint`` slug from
    :attr:`repro.machine.machines.MachineConfig.tuning_id` — so two
    same-named machines with different clocks or caches key separately.
    ``mode`` is the routine's full flag string ("NN".."TT" for GEMM;
    side/trans/uplo/diag e.g. "LNLN" for TRSM); ``k`` is 0 for TRSM.
    Batch size is deliberately *not* part of the key — decisions are
    shape-driven and the record stores the batch it was tuned at as
    provenance.
    """

    machine: str
    op: str                       # "gemm" | "trsm"
    dtype: str                    # "s" | "d" | "c" | "z"
    m: int
    n: int
    k: int
    mode: str

    SEP = "|"

    def encode(self) -> str:
        """The stable string form used as the JSON dict key."""
        return self.SEP.join((self.machine, self.op, self.dtype,
                              str(self.m), str(self.n), str(self.k),
                              self.mode))

    @classmethod
    def decode(cls, text: str) -> "TuningKey":
        parts = text.split(cls.SEP)
        # machine names may themselves contain the separator-free chars
        # only; reject anything that does not split into exactly 7
        if len(parts) != 7:
            raise ValueError(f"malformed tuning key {text!r}")
        machine, op, dtype, m, n, k, mode = parts
        return cls(machine, op, dtype, int(m), int(n), int(k), mode)

    @staticmethod
    def _machine_ref(machine) -> str:
        """Accept a :class:`MachineConfig` (keys by its tuning id) or a
        plain string (used verbatim — tests and legacy callers)."""
        if isinstance(machine, str):
            return machine
        return machine.tuning_id

    @classmethod
    def for_gemm(cls, machine, problem) -> "TuningKey":
        return cls(cls._machine_ref(machine), "gemm", problem.dtype.value,
                   problem.m, problem.n, problem.k, problem.mode)

    @classmethod
    def for_trsm(cls, machine, problem) -> "TuningKey":
        return cls(cls._machine_ref(machine), "trsm", problem.dtype.value,
                   problem.m, problem.n, 0, problem.mode)


@dataclass(frozen=True)
class TuningRecord:
    """One stored decision plus the provenance that justifies it.

    ``main`` is the winning main-kernel preference (``None`` for TRSM,
    whose kernel family is fixed); ``force_pack`` is the winning
    pack-selector override (``False`` means the analytic rule won).
    Everything else is provenance: the winner's simulated cycles, how
    big the measured sweep and the full register-feasible space were,
    which tuner/evaluator produced it, on which machine, under which
    sweep mode, and when (the timestamp is injected by the caller —
    the library never reads the clock itself, keeping sweeps
    byte-reproducible).
    """

    main: "tuple[int, int] | None"
    force_pack: bool
    schedule: bool
    cycles: float
    gflops: float
    candidates: int
    tuner_version: int
    batch: int
    repeats: int = 1
    backend: str = "compiled"
    """The executor backend the tuner recommends replaying this shape
    on (``fused`` by default; the wall-clock race winner when the sweep
    measured host time).  Pre-backend DB files load as ``compiled`` —
    the behaviour they were tuned under."""
    machine_id: str = ""
    """Slug of the machine the record was measured on (provenance; the
    key's tuning id adds the config fingerprint on top)."""
    sweep: str = "full"
    """How the winning candidate was found: ``full`` (every pruned
    candidate measured), ``topk`` (analytic ranking, top-k measured),
    ``retune`` (drift-triggered bounded online re-sweep), or
    ``legacy`` (loaded from a pre-provenance file)."""
    evaluator_version: int = 0
    """Version of the measurement procedure (0 = pre-provenance file)."""
    timestamp: float = 0.0
    """Caller-injected wall time of the sweep (0.0 = not stamped)."""
    space: int = 0
    """Size of the full register-feasible candidate space the analytic
    ranker scored (0 = pre-provenance file).  ``candidates`` of it were
    actually measured."""

    def to_dict(self) -> dict:
        return {
            "main": list(self.main) if self.main is not None else None,
            "force_pack": self.force_pack,
            "schedule": self.schedule,
            "cycles": self.cycles,
            "gflops": self.gflops,
            "candidates": self.candidates,
            "tuner_version": self.tuner_version,
            "batch": self.batch,
            "repeats": self.repeats,
            "backend": self.backend,
            "machine_id": self.machine_id,
            "sweep": self.sweep,
            "evaluator_version": self.evaluator_version,
            "timestamp": self.timestamp,
            "space": self.space,
        }

    def canonical(self) -> str:
        """Canonical JSON form — the deterministic tie-breaker for
        merge conflict resolution."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "TuningRecord":
        if not isinstance(d, dict):
            raise ValueError(f"tuning record must be an object, got {d!r}")
        try:
            main = d["main"]
            if main is not None:
                if (not isinstance(main, (list, tuple)) or len(main) != 2):
                    raise ValueError(f"bad main kernel {main!r}")
                main = (int(main[0]), int(main[1]))
            return cls(
                main=main,
                force_pack=bool(d["force_pack"]),
                schedule=bool(d["schedule"]),
                cycles=float(d["cycles"]),
                gflops=float(d["gflops"]),
                candidates=int(d["candidates"]),
                tuner_version=int(d["tuner_version"]),
                batch=int(d["batch"]),
                repeats=int(d.get("repeats", 1)),
                backend=str(d.get("backend", "compiled")),
                machine_id=str(d.get("machine_id", "")),
                sweep=str(d.get("sweep", "full")),
                evaluator_version=int(d.get("evaluator_version", 0)),
                timestamp=float(d.get("timestamp", 0.0)),
                space=int(d.get("space", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"invalid tuning record: {exc}") from exc


def _merge_winner(a: TuningRecord, b: TuningRecord) -> TuningRecord:
    """Deterministic, commutative conflict resolution: the higher
    measured GFLOPS wins; ties keep the record whose canonical JSON
    sorts first.  A total order, so merging any number of DBs in any
    order lands on the same winner."""
    if a == b:
        return a
    if a.gflops != b.gflops:
        return a if a.gflops > b.gflops else b
    return a if a.canonical() <= b.canonical() else b


@dataclass
class TuningDB:
    """Schema-versioned map from :class:`TuningKey` to the sweep winner."""

    path: "str | os.PathLike | None" = None
    corrupt: bool = False
    """True when ``load`` found a file it could not trust; the runtime
    treats every lookup against a corrupt DB as a fallback, never an
    error."""
    corrupt_reason: str = ""
    version: int = SCHEMA_VERSION
    loaded_schema: int = SCHEMA_VERSION
    """The schema version found on disk (before any legacy upgrade);
    ``save`` always writes the current :data:`SCHEMA_VERSION`."""
    _entries: "dict[str, TuningRecord]" = field(default_factory=dict)

    # -- lookup / mutation -----------------------------------------------

    def get(self, key: TuningKey) -> "TuningRecord | None":
        return self._entries.get(key.encode())

    def put(self, key: TuningKey, record: TuningRecord) -> None:
        self._entries[key.encode()] = record

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TuningKey) -> bool:
        return key.encode() in self._entries

    def items(self) -> "list[tuple[TuningKey, TuningRecord]]":
        """(key, record) pairs in sorted key order."""
        return [(TuningKey.decode(k), self._entries[k])
                for k in sorted(self._entries)]

    def stats(self) -> dict:
        """Summary counts per (machine, op) for `show`/explain output."""
        per: dict[str, int] = {}
        for k in self._entries:
            key = TuningKey.decode(k)
            bucket = f"{key.machine}/{key.op}"
            per[bucket] = per.get(bucket, 0) + 1
        return {"entries": len(self._entries), "schema": self.version,
                "corrupt": self.corrupt, "per_machine_op": per}

    def reset(self) -> None:
        """Drop every entry and clear the corrupt flag — the online
        re-tuning loop's self-heal for an unusable on-disk DB (the next
        ``save`` atomically replaces the bad file with fresh records)."""
        self._entries = {}
        self.corrupt = False
        self.corrupt_reason = ""

    # -- fleet operations --------------------------------------------------

    @classmethod
    def merge(cls, dbs) -> "TuningDB":
        """Pool per-machine DBs into one fleet DB.

        Conflicts (same key, different record) resolve deterministically
        via :func:`_merge_winner` — higher measured GFLOPS wins, ties
        break on canonical record JSON — so the merge is commutative
        and associative: ``merge([a, b])`` serializes bit-identically
        to ``merge([b, a])``.  Corrupt inputs contribute nothing (their
        entries were already dropped at load time).
        """
        out = cls()
        conflicts = 0
        for db in dbs:
            for k, rec in db._entries.items():
                cur = out._entries.get(k)
                if cur is None:
                    out._entries[k] = rec
                elif cur != rec:
                    conflicts += 1
                    out._entries[k] = _merge_winner(cur, rec)
        obs.count("tuning.db.merges")
        if conflicts:
            obs.count("tuning.db.merge_conflicts", conflicts)
        return out

    @staticmethod
    def diff(a: "TuningDB", b: "TuningDB") -> dict:
        """What separates two DBs, deterministically ordered.

        Returns ``only_a`` / ``only_b`` (sorted key strings),
        ``conflicts`` (both records plus which side merge would keep),
        and ``identical`` (count of keys with equal records).  An empty
        self-diff — ``diff(x, x)`` with no ``only_*`` or ``conflicts``
        — is the fleet drill's sanity check.
        """
        keys_a, keys_b = set(a._entries), set(b._entries)
        conflicts = []
        identical = 0
        for k in sorted(keys_a & keys_b):
            ra, rb = a._entries[k], b._entries[k]
            if ra == rb:
                identical += 1
            else:
                winner = _merge_winner(ra, rb)
                conflicts.append({
                    "key": k,
                    "a": ra.to_dict(),
                    "b": rb.to_dict(),
                    "winner": "a" if winner == ra else "b",
                })
        return {
            "only_a": sorted(keys_a - keys_b),
            "only_b": sorted(keys_b - keys_a),
            "conflicts": conflicts,
            "identical": identical,
        }

    # -- persistence ------------------------------------------------------

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys, stable floats)."""
        doc = {
            "schema": self.version,
            "tuner_version": TUNER_VERSION,
            "entries": {k: self._entries[k].to_dict()
                        for k in sorted(self._entries)},
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    def save(self, path: "str | os.PathLike | None" = None) -> str:
        """Atomically persist to ``path`` (or the path loaded from).

        Writes a temp file in the destination directory and
        ``os.replace``\\ s it into place so readers never observe a
        partial file, even across a crash mid-write.
        """
        target = os.fspath(path if path is not None else self.path)
        if target is None:
            raise ValueError("TuningDB has no path to save to")
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tuningdb.", suffix=".tmp",
                                   dir=directory)
        try:
            with os.fdopen(fd, "w") as f:
                f.write(self.to_json())
                f.write("\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.path = target
        obs.count("tuning.db.saves")
        return target

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "TuningDB":
        """Load a DB file; **never raises** on bad content.

        A missing file is an empty (healthy) DB — the natural state
        before the first install-time sweep.  Anything unparseable or
        schema-incompatible yields an empty DB flagged ``corrupt``;
        the runtime then counts ``tuning.fallback`` per lookup and
        keeps using analytic selection.  Legacy v1/v2 files load
        through the key-upgrade shim (module docstring).
        """
        db = cls(path=os.fspath(path))
        try:
            with open(path, "r") as f:
                raw = f.read()
        except FileNotFoundError:
            obs.count("tuning.db.missing")
            return db
        except OSError as exc:
            return db._mark_corrupt(f"unreadable: {exc}")
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            return db._mark_corrupt(f"invalid JSON: {exc}")
        if not isinstance(doc, dict):
            return db._mark_corrupt("top level is not an object")
        schema = doc.get("schema")
        if schema != SCHEMA_VERSION and schema not in LEGACY_SCHEMAS:
            return db._mark_corrupt(
                f"schema {schema!r} != supported {SCHEMA_VERSION} "
                f"(legacy: {', '.join(map(str, LEGACY_SCHEMAS))})")
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            return db._mark_corrupt("'entries' is not an object")
        loaded: dict[str, TuningRecord] = {}
        try:
            for k, v in entries.items():
                key = TuningKey.decode(k)        # validates the key shape
                rec = TuningRecord.from_dict(v)
                if schema in LEGACY_SCHEMAS:
                    key, rec = cls._upgrade_legacy(key, rec)
                loaded[key.encode()] = rec
        except ValueError as exc:
            return db._mark_corrupt(str(exc))
        db._entries = loaded
        db.loaded_schema = int(schema)
        if schema in LEGACY_SCHEMAS:
            obs.count("tuning.db.legacy_loads")
            obs.event("tuning.db.legacy_load", path=str(db.path),
                      schema=int(schema), entries=len(loaded))
        obs.count("tuning.db.loads")
        obs.gauge("tuning.db.entries", len(loaded))
        return db

    @staticmethod
    def _upgrade_legacy(key: TuningKey,
                        rec: TuningRecord) -> "tuple[TuningKey, TuningRecord]":
        """The v1/v2 shim: slugify the display name the old keys carried
        and, when the slug matches a stock machine, upgrade it to that
        machine's tuning id (old sweeps are assumed to have run on the
        stock configuration).  An unknown slug stays bare — preserved
        for merge/export, unreachable by any live machine, which is
        exactly the point: a reconfigured machine must re-tune."""
        from ..machine.machines import slugify

        slug = slugify(key.machine)
        machine_ref = _known_tuning_ids().get(slug, slug)
        key = replace(key, machine=machine_ref)
        rec = replace(rec, machine_id=rec.machine_id or slug,
                      sweep="legacy" if rec.sweep == "full" else rec.sweep)
        return key, rec

    def _mark_corrupt(self, reason: str) -> "TuningDB":
        self.corrupt = True
        self.corrupt_reason = reason
        self._entries = {}
        obs.count("tuning.db.corrupt")
        obs.event("tuning.db.corrupt", level="error",
                  path=str(self.path), reason=reason)
        return self
