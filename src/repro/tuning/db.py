"""The persistent, per-machine TuningDB.

The install-time sweep (:mod:`repro.tuning.tuner`) measures every
candidate plan on the machine model and stores only the *winners* here;
the run-time stage (:class:`repro.runtime.iatf.IATF`) looks decisions
up by problem key and falls back to the analytic CMAR choice on a miss.
Design constraints, in order:

* **never crash the caller** — a missing, truncated, hand-edited, or
  future-schema file loads as an *empty* DB with ``corrupt`` set; the
  runtime sees only misses (plus a ``tuning.fallback`` counter) and
  keeps serving analytic plans;
* **atomic persistence** — ``save`` writes a sibling temp file and
  ``os.replace``\\ s it over the target, so a crashed sweep can never
  leave a half-written DB for the next process to trip over;
* **versioned schema** — the file carries ``schema`` (file format) and
  each record carries ``tuner_version`` (search-procedure provenance),
  so a reader can tell *how* a decision was produced;
* **deterministic serialization** — keys are sorted and floats are
  written as-is, so sweep -> save -> load -> save is byte-stable and
  two identical sweeps produce identical files (the CI reproducibility
  check relies on this).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field

from .. import obs

__all__ = ["SCHEMA_VERSION", "TUNER_VERSION", "TuningKey", "TuningRecord",
           "TuningDB"]

SCHEMA_VERSION = 1
"""File-format version; a loader rejects files from a different major."""

TUNER_VERSION = 1
"""Search-procedure version stamped into every record's provenance."""


@dataclass(frozen=True)
class TuningKey:
    """The lookup key: one problem configuration on one machine.

    ``mode`` is the routine's full flag string ("NN".."TT" for GEMM;
    side/trans/uplo/diag e.g. "LNLN" for TRSM); ``k`` is 0 for TRSM.
    Batch size is deliberately *not* part of the key — decisions are
    shape-driven and the record stores the batch it was tuned at as
    provenance.
    """

    machine: str
    op: str                       # "gemm" | "trsm"
    dtype: str                    # "s" | "d" | "c" | "z"
    m: int
    n: int
    k: int
    mode: str

    SEP = "|"

    def encode(self) -> str:
        """The stable string form used as the JSON dict key."""
        return self.SEP.join((self.machine, self.op, self.dtype,
                              str(self.m), str(self.n), str(self.k),
                              self.mode))

    @classmethod
    def decode(cls, text: str) -> "TuningKey":
        parts = text.split(cls.SEP)
        # machine names may themselves contain the separator-free chars
        # only; reject anything that does not split into exactly 7
        if len(parts) != 7:
            raise ValueError(f"malformed tuning key {text!r}")
        machine, op, dtype, m, n, k, mode = parts
        return cls(machine, op, dtype, int(m), int(n), int(k), mode)

    @classmethod
    def for_gemm(cls, machine_name: str, problem) -> "TuningKey":
        return cls(machine_name, "gemm", problem.dtype.value,
                   problem.m, problem.n, problem.k, problem.mode)

    @classmethod
    def for_trsm(cls, machine_name: str, problem) -> "TuningKey":
        return cls(machine_name, "trsm", problem.dtype.value,
                   problem.m, problem.n, 0, problem.mode)


@dataclass(frozen=True)
class TuningRecord:
    """One stored decision plus the provenance that justifies it.

    ``main`` is the winning main-kernel preference (``None`` for TRSM,
    whose kernel family is fixed); ``force_pack`` is the winning
    pack-selector override (``False`` means the analytic rule won).
    Everything else is provenance: the winner's simulated cycles, how
    big the swept space was, which tuner produced it, and the batch /
    repeat settings it was measured under.
    """

    main: "tuple[int, int] | None"
    force_pack: bool
    schedule: bool
    cycles: float
    gflops: float
    candidates: int
    tuner_version: int
    batch: int
    repeats: int = 1
    backend: str = "compiled"
    """The executor backend the tuner recommends replaying this shape
    on (``fused`` by default; the wall-clock race winner when the sweep
    measured host time).  Pre-backend DB files load as ``compiled`` —
    the behaviour they were tuned under."""

    def to_dict(self) -> dict:
        return {
            "main": list(self.main) if self.main is not None else None,
            "force_pack": self.force_pack,
            "schedule": self.schedule,
            "cycles": self.cycles,
            "gflops": self.gflops,
            "candidates": self.candidates,
            "tuner_version": self.tuner_version,
            "batch": self.batch,
            "repeats": self.repeats,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuningRecord":
        if not isinstance(d, dict):
            raise ValueError(f"tuning record must be an object, got {d!r}")
        try:
            main = d["main"]
            if main is not None:
                if (not isinstance(main, (list, tuple)) or len(main) != 2):
                    raise ValueError(f"bad main kernel {main!r}")
                main = (int(main[0]), int(main[1]))
            return cls(
                main=main,
                force_pack=bool(d["force_pack"]),
                schedule=bool(d["schedule"]),
                cycles=float(d["cycles"]),
                gflops=float(d["gflops"]),
                candidates=int(d["candidates"]),
                tuner_version=int(d["tuner_version"]),
                batch=int(d["batch"]),
                repeats=int(d.get("repeats", 1)),
                backend=str(d.get("backend", "compiled")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"invalid tuning record: {exc}") from exc


@dataclass
class TuningDB:
    """Schema-versioned map from :class:`TuningKey` to the sweep winner."""

    path: "str | os.PathLike | None" = None
    corrupt: bool = False
    """True when ``load`` found a file it could not trust; the runtime
    treats every lookup against a corrupt DB as a fallback, never an
    error."""
    corrupt_reason: str = ""
    version: int = SCHEMA_VERSION
    _entries: "dict[str, TuningRecord]" = field(default_factory=dict)

    # -- lookup / mutation -----------------------------------------------

    def get(self, key: TuningKey) -> "TuningRecord | None":
        return self._entries.get(key.encode())

    def put(self, key: TuningKey, record: TuningRecord) -> None:
        self._entries[key.encode()] = record

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TuningKey) -> bool:
        return key.encode() in self._entries

    def items(self) -> "list[tuple[TuningKey, TuningRecord]]":
        """(key, record) pairs in sorted key order."""
        return [(TuningKey.decode(k), self._entries[k])
                for k in sorted(self._entries)]

    def stats(self) -> dict:
        """Summary counts per (machine, op) for `show`/explain output."""
        per: dict[str, int] = {}
        for k in self._entries:
            key = TuningKey.decode(k)
            bucket = f"{key.machine}/{key.op}"
            per[bucket] = per.get(bucket, 0) + 1
        return {"entries": len(self._entries), "schema": self.version,
                "corrupt": self.corrupt, "per_machine_op": per}

    # -- persistence ------------------------------------------------------

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys, stable floats)."""
        doc = {
            "schema": self.version,
            "tuner_version": TUNER_VERSION,
            "entries": {k: self._entries[k].to_dict()
                        for k in sorted(self._entries)},
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    def save(self, path: "str | os.PathLike | None" = None) -> str:
        """Atomically persist to ``path`` (or the path loaded from).

        Writes a temp file in the destination directory and
        ``os.replace``\\ s it into place so readers never observe a
        partial file, even across a crash mid-write.
        """
        target = os.fspath(path if path is not None else self.path)
        if target is None:
            raise ValueError("TuningDB has no path to save to")
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tuningdb.", suffix=".tmp",
                                   dir=directory)
        try:
            with os.fdopen(fd, "w") as f:
                f.write(self.to_json())
                f.write("\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.path = target
        obs.count("tuning.db.saves")
        return target

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "TuningDB":
        """Load a DB file; **never raises** on bad content.

        A missing file is an empty (healthy) DB — the natural state
        before the first install-time sweep.  Anything unparseable or
        schema-incompatible yields an empty DB flagged ``corrupt``;
        the runtime then counts ``tuning.fallback`` per lookup and
        keeps using analytic selection.
        """
        db = cls(path=os.fspath(path))
        try:
            with open(path, "r") as f:
                raw = f.read()
        except FileNotFoundError:
            obs.count("tuning.db.missing")
            return db
        except OSError as exc:
            return db._mark_corrupt(f"unreadable: {exc}")
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            return db._mark_corrupt(f"invalid JSON: {exc}")
        if not isinstance(doc, dict):
            return db._mark_corrupt("top level is not an object")
        schema = doc.get("schema")
        if schema != SCHEMA_VERSION:
            return db._mark_corrupt(
                f"schema {schema!r} != supported {SCHEMA_VERSION}")
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            return db._mark_corrupt("'entries' is not an object")
        loaded: dict[str, TuningRecord] = {}
        try:
            for k, v in entries.items():
                TuningKey.decode(k)          # validates the key shape
                loaded[k] = TuningRecord.from_dict(v)
        except ValueError as exc:
            return db._mark_corrupt(str(exc))
        db._entries = loaded
        obs.count("tuning.db.loads")
        obs.gauge("tuning.db.entries", len(loaded))
        return db

    def _mark_corrupt(self, reason: str) -> "TuningDB":
        self.corrupt = True
        self.corrupt_reason = reason
        self._entries = {}
        obs.count("tuning.db.corrupt")
        obs.event("tuning.db.corrupt", level="error",
                  path=str(self.path), reason=reason)
        return self
