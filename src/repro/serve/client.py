"""Client APIs for :class:`~repro.serve.service.BlasService`.

Three layers of convenience over ``service.submit``:

* :class:`ServiceClient` — synchronous: ``submit_gemm`` returns the
  request's :class:`~concurrent.futures.Future`; ``gemm`` blocks and
  returns the result matrix.
* :class:`AsyncServiceClient` — the same calls as coroutines, bridging
  the service's thread-side futures into the caller's event loop via
  :func:`asyncio.wrap_future` (no extra threads, no polling).
* :func:`run_traffic` — a deterministic mixed GEMM/TRSM load generator
  (seeded shapes, dtypes, and tenants) used by ``--demo``, the bench
  experiment, and the CI smoke step.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..errors import RejectedError
from .service import BlasService
from .types import Request

__all__ = ["ServiceClient", "AsyncServiceClient", "run_traffic",
           "TRAFFIC_SHAPES"]


class ServiceClient:
    """Synchronous convenience wrapper over one service instance."""

    def __init__(self, service: BlasService, tenant: str = "default",
                 timeout: "float | None" = 60.0) -> None:
        self.service = service
        self.tenant = tenant
        self.timeout = timeout

    # futures -----------------------------------------------------------

    def submit(self, request: Request):
        return self.service.submit(request)

    def submit_gemm(self, a, b, c=None, **kw):
        kw.setdefault("tenant", self.tenant)
        return self.service.submit(Request.gemm(a, b, c, **kw))

    def submit_trsm(self, a, b, **kw):
        kw.setdefault("tenant", self.tenant)
        return self.service.submit(Request.trsm(a, b, **kw))

    # blocking ----------------------------------------------------------

    def gemm(self, a, b, c=None, **kw) -> np.ndarray:
        """``alpha op(A) op(B) + beta C`` for one small problem —
        blocks until the coalesced flush delivers the result."""
        return self.submit_gemm(a, b, c, **kw).result(self.timeout)

    def trsm(self, a, b, **kw) -> np.ndarray:
        return self.submit_trsm(a, b, **kw).result(self.timeout)


class AsyncServiceClient:
    """The same API as coroutines, for asyncio callers."""

    def __init__(self, service: BlasService, tenant: str = "default") -> None:
        self.service = service
        self.tenant = tenant

    def _wrap(self, future) -> "asyncio.Future":
        return asyncio.wrap_future(future)

    async def gemm(self, a, b, c=None, **kw) -> np.ndarray:
        kw.setdefault("tenant", self.tenant)
        return await self._wrap(
            self.service.submit(Request.gemm(a, b, c, **kw)))

    async def trsm(self, a, b, **kw) -> np.ndarray:
        kw.setdefault("tenant", self.tenant)
        return await self._wrap(
            self.service.submit(Request.trsm(a, b, **kw)))

    async def submit(self, request: Request) -> np.ndarray:
        return await self._wrap(self.service.submit(request))


# a small-problem menu in the paper's regime (everything register- or
# L1-resident); (m, n, k) with k=None marking TRSM
TRAFFIC_SHAPES = ((4, 4, 4), (8, 8, 8), (8, 4, 16), (5, 5, None),
                  (4, 8, None))


def make_request(rng: np.random.Generator, i: int, *,
                 shapes=TRAFFIC_SHAPES, dtypes=("s", "d"),
                 tenants=("default",)) -> Request:
    """One deterministic pseudo-random request (index ``i`` only labels
    the stream; all randomness comes from ``rng``)."""
    from ..types import BlasDType

    m, n, k = shapes[int(rng.integers(len(shapes)))]
    dt = BlasDType.from_any(dtypes[int(rng.integers(len(dtypes)))])
    tenant = tenants[int(rng.integers(len(tenants)))]
    def rand(shape):
        real = rng.standard_normal(shape)
        if dt.is_complex:
            return (real + 1j * rng.standard_normal(shape)).astype(
                dt.np_dtype)
        return real.astype(dt.np_dtype)
    if k is None:
        a = rand((m, m))
        a = np.tril(a) + m * np.eye(m, dtype=dt.np_dtype)  # well-conditioned
        return Request.trsm(a, rand((m, n)), tenant=tenant)
    return Request.gemm(rand((m, k)), rand((k, n)), rand((m, n)),
                        beta=1.0, tenant=tenant)


def run_traffic(service: BlasService, *, n_requests: int = 256,
                seed: int = 0, rate: "float | None" = None,
                tenants=("default",), dtypes=("s", "d"),
                shapes=TRAFFIC_SHAPES, timeout: float = 120.0) -> dict:
    """Drive ``service`` with a deterministic mixed request stream.

    ``rate`` paces submissions (requests/second, roughly); ``None``
    submits as fast as the service admits.  Rejected submissions are
    counted, not retried — the stats tell the overload story.
    Returns totals plus wall-clock throughput.
    """
    rng = np.random.default_rng(seed)
    futures = []
    rejected = 0
    t0 = time.perf_counter()
    for i in range(n_requests):
        req = make_request(rng, i, shapes=shapes, dtypes=dtypes,
                           tenants=tenants)
        try:
            futures.append(service.submit(req))
        except RejectedError:
            rejected += 1
        if rate is not None and rate > 0:
            # pace against the ideal schedule, not the previous send
            next_at = t0 + (i + 1) / rate
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
    failed = 0
    for fut in futures:
        try:
            fut.result(timeout)
        except Exception:   # noqa: BLE001 - tallied, reported by caller
            failed += 1
    wall = time.perf_counter() - t0
    completed = len(futures) - failed
    return {"submitted": n_requests, "accepted": len(futures),
            "completed": completed, "failed": failed, "rejected": rejected,
            "wall_seconds": round(wall, 6),
            "throughput_rps": round(completed / wall, 3) if wall else 0.0}
