"""repro.serve — BLAS-as-a-service over the compact runtime.

The library answers "how fast can a pre-formed compact batch go"; this
subsystem answers the ROADMAP's service question: many independent
callers each bring *one* small GEMM/TRSM, and throughput depends on
turning those streams into exactly the compact batch groups the paper
optimizes.  Five pieces:

* :mod:`repro.serve.types` — :class:`Request`: one validated small
  problem (routine, dtype, mode, operands, tenant, deadline); the
  frozen batch-1 problem descriptor doubles as the coalescing key;
* :mod:`repro.serve.coalesce` — max-wait / max-batch bucketing of
  compatible requests into flushable compact groups;
* :mod:`repro.serve.admission` — per-tenant in-flight and global
  queue-depth limits; overload raises the typed
  :class:`~repro.errors.RejectedError`, never
  :class:`~repro.errors.InvalidProblemError`;
* :mod:`repro.serve.scheduler` — the single pump thread draining
  buckets through one **shared** :class:`~repro.runtime.iatf.IATF`
  (shared PlanCache/KernelRegistry/TuningDB) and scattering results to
  per-request futures, bit-identical to serial execution;
* :mod:`repro.serve.service` / :mod:`repro.serve.client` — the
  :class:`BlasService` facade plus sync (:class:`ServiceClient`) and
  asyncio (:class:`AsyncServiceClient`) submit APIs.

``python -m repro.serve --demo`` runs a self-driving instance with the
live ``/serve/stats`` endpoint mounted on the telemetry server.
"""

from .admission import AdmissionController
from .client import AsyncServiceClient, ServiceClient, run_traffic
from .coalesce import Bucket, Coalescer, PendingRequest
from .scheduler import Scheduler
from .service import BlasService
from .types import Request

__all__ = [
    "Request", "BlasService", "ServiceClient", "AsyncServiceClient",
    "run_traffic", "Coalescer", "Bucket", "PendingRequest",
    "AdmissionController", "Scheduler",
]
