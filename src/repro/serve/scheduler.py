"""The batching pump: drain coalesced buckets through one shared IATF.

A single daemon thread owns execution.  Callers (any number of threads)
``offer`` validated, admitted requests; the pump wakes when a bucket
fills (``max_batch``) or the earliest bucket timer expires
(``max_wait_ms``), stacks the bucket's operands into one
``(batch, rows, cols)`` array, interleaves it to the compact layout via
:func:`~repro.api.compact_blas.compact_from_batch`, executes it through
the **shared** :class:`~repro.runtime.iatf.IATF` instance — shared
PlanCache, shared KernelRegistry, shared TuningDB, whatever backend the
service was built with — and scatters the de-interleaved results back
to the per-request futures.

Why the results are bit-identical to serial per-request execution: the
generated kernels are elementwise across SIMD lanes (each lane is one
matrix), the plan's per-matrix arithmetic depends only on (shape,
dtype, mode) — batch size only changes the group count and round
structure — and padding lanes are zeros that no other lane reads.  The
concurrent-correctness suite pins this.

A bucket that fails (any exception from planning or execution) fails
*only its own* requests — every entry's future gets the exception, the
pump survives, and unrelated buckets keep flowing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import nullcontext

import numpy as np

from .. import obs
from ..errors import RejectedError
from .coalesce import Bucket, Coalescer, PendingRequest

__all__ = ["Scheduler"]


class Scheduler:
    """Single-threaded executor over a :class:`Coalescer`.

    ``on_done(entry, missed_deadline)`` fires for every request after
    its future resolves (the service hooks admission release and wait
    accounting here); ``on_flush(bucket, wall_seconds, error)`` fires
    once per executed bucket.
    """

    def __init__(self, iatf, coalescer: Coalescer, *,
                 on_done=None, on_flush=None) -> None:
        self._iatf = iatf
        self._coalescer = coalescer
        self._on_done = on_done
        self._on_flush = on_flush
        self._cond = threading.Condition()
        self._ready: "deque[Bucket]" = deque()
        self._running = False
        self._thread: "threading.Thread | None" = None

    @property
    def running(self) -> bool:
        with self._cond:
            return self._running

    @property
    def backlog(self) -> int:
        """Requests parked in the coalescer plus full buckets awaiting
        the pump (not those mid-execution)."""
        with self._cond:
            return (self._coalescer.pending
                    + sum(len(b) for b in self._ready))

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-pump",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting work and drain: every already-offered request
        still resolves (possibly in an under-full bucket)."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    # -- producer side --------------------------------------------------

    def offer(self, entry: PendingRequest) -> None:
        """Park one admitted request; wakes the pump."""
        with self._cond:
            if not self._running:
                raise RejectedError("service not running",
                                    entry.request.tenant)
            full = self._coalescer.add(entry, time.perf_counter())
            if full is not None:
                self._ready.append(full)
            self._cond.notify()

    # -- pump -----------------------------------------------------------

    def _loop(self) -> None:
        while True:
            buckets: "list[Bucket]" = []
            stopping = False
            with self._cond:
                while True:
                    while self._ready:
                        buckets.append(self._ready.popleft())
                    now = time.perf_counter()
                    buckets.extend(self._coalescer.pop_due(now))
                    if buckets:
                        break
                    if not self._running:
                        stopping = True
                        buckets.extend(self._coalescer.pop_all())
                        break
                    nd = self._coalescer.next_due()
                    timeout = (None if nd is None
                               else max(0.0, nd - time.perf_counter()))
                    self._cond.wait(timeout)
            for bucket in buckets:
                self._execute(bucket)
            if stopping:
                return

    def _execute(self, bucket: Bucket) -> None:
        entries = bucket.entries
        n = len(entries)
        key = bucket.key
        # the flush span joins the oldest request's trace, so a
        # submitter's timeline shows where its wall time actually went
        carrier = entries[0].carrier
        ctx = obs.attach(carrier) if carrier is not None else nullcontext()
        t0 = time.perf_counter()
        # every entry's budget shares the flush's absolute timestamps
        # for the batch stages — each request keeps its own admit /
        # coalesce_wait marks, so per-request conservation still holds
        for entry in entries:
            if entry.budget is not None:
                entry.budget.stamp("coalesce_wait", t0)
        marks: dict = {}
        error: "Exception | None" = None
        try:
            with ctx, obs.span("serve.flush", routine=bucket.routine,
                               dtype=key.dtype.value, requests=n,
                               mode=key.mode):
                outs = self._run_bucket(bucket, marks)
        except Exception as exc:   # noqa: BLE001 - scattered to futures
            error = exc
            t_err = time.perf_counter()
            for entry in entries:
                entry.future.set_exception(exc)
                if entry.budget is not None:
                    entry.budget.annotate(error=type(exc).__name__)
                    entry.budget.abort(t_err)
        else:
            for entry, out in zip(entries, outs):
                entry.future.set_result(out)
            t_scatter = time.perf_counter()
            plan_cache = marks.get("plan_cache")
            for entry in entries:
                budget = entry.budget
                if budget is None:
                    continue
                budget.stamp("stack", marks.get("stack"))
                budget.stamp("plan", marks.get("plan"))
                budget.stamp("execute", marks.get("execute"))
                budget.stamp("scatter", t_scatter)
                if plan_cache is not None:
                    budget.annotate(plan_cache=plan_cache)
        wall = time.perf_counter() - t0
        done_at = time.perf_counter()
        obs.count("serve.flush")
        obs.count("serve.flush.requests", n)
        obs.observe("serve.batch.occupancy",
                    n / self._coalescer.max_batch)
        obs.observe("serve.flush.ms", wall * 1000.0)
        if self._on_done is not None:
            for entry in entries:
                missed = (entry.deadline_at is not None
                          and done_at > entry.deadline_at)
                self._on_done(entry, missed)
        if self._on_flush is not None:
            self._on_flush(bucket, wall, error)

    def _run_bucket(self, bucket: Bucket,
                    marks: "dict | None" = None) -> np.ndarray:
        from ..api.compact_blas import compact_from_batch

        if marks is None:
            marks = {}
        iatf = self._iatf
        entries = bucket.entries
        machine, dt = iatf.machine, bucket.key.dtype
        # Quantize the batch up to a lane multiple: the compact layout
        # zero-pads there anyway, and planning on the padded size means
        # every bucket with the same *group count* shares one PlanCache
        # entry — otherwise a trickle of 5-, 6-, 7-request flushes
        # builds a plan per size and the cache never hits.
        n = len(entries)
        lanes = machine.lanes(dt)
        padded = -(-n // lanes) * lanes
        problem = bucket.key.with_batch(padded)

        def stacked(pick) -> np.ndarray:
            arr = np.stack([pick(e) for e in entries])
            if padded != n:
                pad = np.zeros((padded - n,) + arr.shape[1:],
                               dtype=arr.dtype)
                arr = np.concatenate([arr, pad])
            return arr

        # planning is split from execution (prepare_* then the engine
        # directly — exactly what {gemm,trsm}_compact do internally) so
        # the budget can attribute "plan" (cache hit vs compile) and
        # "execute" as separate stages
        if bucket.routine == "gemm":
            ca = compact_from_batch(stacked(lambda e: e.request.a),
                                    machine, dt)
            cb = compact_from_batch(stacked(lambda e: e.request.b),
                                    machine, dt)
            cc = compact_from_batch(stacked(lambda e: e.request.c),
                                    machine, dt)
            marks["stack"] = time.perf_counter()
            plan, compiled, hit = iatf.prepare_gemm(problem)
            marks["plan"] = time.perf_counter()
            marks["plan_cache"] = "hit" if hit else "compile"
            iatf.engine.execute_gemm(plan, ca, cb, cc, compiled=compiled)
            marks["execute"] = time.perf_counter()
            return cc.to_matrices()[:n]
        ca = compact_from_batch(stacked(lambda e: e.request.a), machine, dt)
        cb = compact_from_batch(stacked(lambda e: e.request.b), machine, dt)
        marks["stack"] = time.perf_counter()
        plan, compiled, hit = iatf.prepare_trsm(problem)
        marks["plan"] = time.perf_counter()
        marks["plan_cache"] = "hit" if hit else "compile"
        iatf.engine.execute_trsm(plan, ca, cb, compiled=compiled)
        marks["execute"] = time.perf_counter()
        return cb.to_matrices()[:n]
