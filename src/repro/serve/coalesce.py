"""Request coalescing: turn independent small requests into compact
batch groups.

The whole point of the service layer is that the paper's speedups come
from *grouping*: P same-shaped matrices interleaved per SIMD vector.
A single request occupies one lane and wastes the other P-1; the
coalescer holds compatible requests (equal batch-1 problem descriptors
— same routine, dtype, mode, shape, scalars) in per-key buckets until
either the bucket reaches ``max_batch`` or its oldest request has
waited ``max_wait_ms``, then releases the bucket for one compact
execution.  Latency is therefore bounded: no request waits longer than
``max_wait_ms`` (or its own tighter deadline) for company that never
arrives.

Pure data structure — no threads, no locks.  The scheduler serializes
access under its own condition variable, which keeps this module
trivially testable with a fake clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PendingRequest", "Bucket", "Coalescer"]


@dataclass
class PendingRequest:
    """One admitted request riding through the scheduler.

    Carries the caller-visible future, the trace-context carrier
    captured at submit time (so the flush span on the scheduler thread
    joins the submitter's trace), and the clock readings the wait-time
    and deadline accounting need.
    """

    request: object                 # serve.types.Request
    future: object                  # concurrent.futures.Future
    carrier: object = None          # obs.carrier() snapshot
    t_submit: float = 0.0           # monotonic seconds at submit
    deadline_at: "float | None" = None   # monotonic seconds, or None
    budget: object = None           # obs.budget.Budget, stamped per stage


@dataclass
class Bucket:
    """All pending requests for one problem descriptor."""

    key: object                     # the frozen batch-1 problem
    routine: str
    entries: "list[PendingRequest]" = field(default_factory=list)
    t_open: float = 0.0
    due_at: float = 0.0

    def __len__(self) -> int:
        return len(self.entries)


class Coalescer:
    """Max-wait / max-batch bucketing of compatible requests.

    ``add`` returns a full bucket the moment it reaches ``max_batch``
    (the fast path under load — zero added latency); ``pop_due``
    returns every bucket whose timer expired (the bounded-latency path
    under trickle traffic).  A request deadline tighter than the bucket
    timer *accelerates* the flush; it never drops work.
    """

    def __init__(self, max_batch: int = 64,
                 max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0.0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self._buckets: "dict[object, Bucket]" = {}
        self._pending = 0

    @property
    def pending(self) -> int:
        """Requests currently parked in open buckets."""
        return self._pending

    def add(self, entry: PendingRequest, now: float) -> "Bucket | None":
        """Park ``entry``; return its bucket iff it just became full."""
        key = entry.request.key
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = Bucket(key=key, routine=entry.request.routine,
                            t_open=now, due_at=now + self.max_wait)
            self._buckets[key] = bucket
        bucket.entries.append(entry)
        self._pending += 1
        if entry.deadline_at is not None:
            bucket.due_at = min(bucket.due_at, entry.deadline_at)
        if len(bucket.entries) >= self.max_batch:
            del self._buckets[key]
            self._pending -= len(bucket.entries)
            return bucket
        return None

    def pop_due(self, now: float) -> "list[Bucket]":
        """Every bucket whose max-wait (or tightest deadline) expired."""
        due = [b for b in self._buckets.values() if b.due_at <= now]
        for bucket in due:
            del self._buckets[bucket.key]
            self._pending -= len(bucket.entries)
        return due

    def pop_all(self) -> "list[Bucket]":
        """Drain everything (service shutdown)."""
        buckets = list(self._buckets.values())
        self._buckets.clear()
        self._pending = 0
        return buckets

    def next_due(self) -> "float | None":
        """Earliest bucket timer, or None when nothing is parked."""
        if not self._buckets:
            return None
        return min(b.due_at for b in self._buckets.values())
