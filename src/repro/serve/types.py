"""Request model for the BLAS service frontend.

A :class:`Request` is **one** small problem from one caller: a single
``M x N x K`` GEMM or ``M x N`` TRSM with its numpy operands, a tenant
id, and an optional latency deadline.  Validation happens eagerly at
construction — the same :class:`~repro.errors.InvalidProblemError`
paths the library API uses — so the scheduler thread only ever sees
well-formed work and a malformed call fails in the *caller's* stack,
not inside a batch flush that would poison its neighbours.

The batch-1 problem descriptor built here does double duty: because
:class:`~repro.types.GemmProblem` / :class:`~repro.types.TrsmProblem`
are frozen (hashable) dataclasses carrying routine, dtype, mode, shape,
and scalars, the descriptor **is** the coalescing bucket key — two
requests land in the same compact group iff their descriptors are
equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import InvalidProblemError
from ..types import (BlasDType, Diag, GemmProblem, Side, Trans, TrsmProblem,
                     UpLo)

__all__ = ["Request"]


def _as_matrix(name: str, arr) -> np.ndarray:
    if not isinstance(arr, np.ndarray):
        raise InvalidProblemError(
            f"{name} must be a numpy array, got {type(arr).__name__}")
    if arr.ndim != 2:
        raise InvalidProblemError(
            f"{name} must be a single 2-D matrix (the service batches "
            f"requests itself), got {arr.ndim}-D")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise InvalidProblemError(f"{name} has an empty dimension: "
                                  f"{arr.shape[0]}x{arr.shape[1]}")
    return arr


def _check_deadline(deadline_ms) -> "float | None":
    if deadline_ms is None:
        return None
    try:
        deadline = float(deadline_ms)
    except (TypeError, ValueError):
        raise InvalidProblemError(
            f"deadline_ms must be a number of milliseconds, "
            f"got {deadline_ms!r}") from None
    if deadline <= 0.0:
        raise InvalidProblemError(
            f"deadline_ms must be positive, got {deadline}")
    return deadline


def _check_tenant(tenant) -> str:
    if not isinstance(tenant, str) or not tenant:
        raise InvalidProblemError(
            f"tenant must be a non-empty string, got {tenant!r}")
    return tenant


@dataclass(frozen=True)
class Request:
    """One validated small-BLAS request.

    Build via :meth:`Request.gemm` / :meth:`Request.trsm`, not the raw
    constructor.  ``problem`` is the batch-1 descriptor (also the
    coalescing key); operands are stored cast to the problem dtype so
    stacking a bucket needs no per-request conversion.
    """

    routine: str                       # "gemm" | "trsm"
    problem: object                    # GemmProblem | TrsmProblem, batch=1
    a: np.ndarray = field(repr=False)
    b: np.ndarray = field(repr=False)
    c: "np.ndarray | None" = field(default=None, repr=False)
    tenant: str = "default"
    deadline_ms: "float | None" = None

    @property
    def key(self):
        """The coalescing bucket key (the frozen batch-1 descriptor)."""
        return self.problem

    @property
    def out_shape(self) -> "tuple[int, int]":
        p = self.problem
        return p.c_shape if self.routine == "gemm" else p.b_shape

    @property
    def label(self) -> str:
        """Short problem-signature string (the input-aware grouping key
        for budget ledgers and SLO reports): routine, dtype, shape,
        mode — everything that decides the coalescing bucket except the
        scalars."""
        p = self.problem
        shape = (f"{p.m}x{p.n}x{p.k}" if self.routine == "gemm"
                 else f"{p.m}x{p.n}")
        return f"{self.routine}[{p.dtype.value}]{shape}:{p.mode}"

    # -- constructors ---------------------------------------------------

    @classmethod
    def gemm(cls, a: np.ndarray, b: np.ndarray,
             c: "np.ndarray | None" = None, *,
             alpha: complex = 1.0, beta: complex = 0.0,
             transa: "Trans | str" = "N", transb: "Trans | str" = "N",
             dtype: "BlasDType | str | None" = None,
             tenant: str = "default",
             deadline_ms: "float | None" = None) -> "Request":
        """``C = alpha op(A) op(B) + beta C`` for one small problem.

        ``c`` may be omitted when ``beta == 0`` (the common inference
        case): the service allocates the output.  The dtype defaults to
        C's (then A's) dtype, exactly as :meth:`IATF.gemm` resolves it.
        """
        a = _as_matrix("A", a)
        b = _as_matrix("B", b)
        ta, tb = Trans.from_any(transa), Trans.from_any(transb)
        dt = BlasDType.from_any(
            dtype if dtype is not None
            else (c.dtype if isinstance(c, np.ndarray) else a.dtype))
        m = a.shape[0] if ta is Trans.N else a.shape[1]
        k = a.shape[1] if ta is Trans.N else a.shape[0]
        n = b.shape[1] if tb is Trans.N else b.shape[0]
        problem = GemmProblem(m, n, k, dt, ta, tb, 1, alpha, beta)
        if b.shape != problem.b_shape:
            raise InvalidProblemError(
                f"B is {b.shape[0]}x{b.shape[1]} but transb={tb.value} "
                f"with k={k}, n={n} requires {problem.b_shape[0]}x"
                f"{problem.b_shape[1]}")
        if c is None:
            if problem.beta != 0.0:
                raise InvalidProblemError(
                    f"beta={problem.beta} reads C, so C must be supplied "
                    f"(omit it only with beta=0)")
            c = np.zeros(problem.c_shape, dtype=dt.np_dtype)
        else:
            c = _as_matrix("C", c)
            if c.shape != problem.c_shape:
                raise InvalidProblemError(
                    f"C is {c.shape[0]}x{c.shape[1]} but op(A) op(B) is "
                    f"{m}x{n}")
        return cls("gemm", problem,
                   np.ascontiguousarray(a, dtype=dt.np_dtype),
                   np.ascontiguousarray(b, dtype=dt.np_dtype),
                   np.ascontiguousarray(c, dtype=dt.np_dtype),
                   _check_tenant(tenant), _check_deadline(deadline_ms))

    @classmethod
    def trsm(cls, a: np.ndarray, b: np.ndarray, *,
             alpha: complex = 1.0,
             side: "Side | str" = "L", uplo: "UpLo | str" = "L",
             transa: "Trans | str" = "N", diag: "Diag | str" = "N",
             dtype: "BlasDType | str | None" = None,
             tenant: str = "default",
             deadline_ms: "float | None" = None) -> "Request":
        """Solve ``op(A) X = alpha B`` (or the RIGHT variant) for one
        small problem; the result X is returned, B is not mutated."""
        a = _as_matrix("A", a)
        b = _as_matrix("B", b)
        dt = BlasDType.from_any(dtype if dtype is not None else b.dtype)
        problem = TrsmProblem(b.shape[0], b.shape[1], dt,
                              Side.from_any(side), UpLo.from_any(uplo),
                              Trans.from_any(transa), Diag.from_any(diag),
                              1, alpha)
        if a.shape[0] != a.shape[1] or a.shape[0] != problem.a_dim:
            raise InvalidProblemError(
                f"A is {a.shape[0]}x{a.shape[1]} but side="
                f"{problem.side.value} with B {b.shape[0]}x{b.shape[1]} "
                f"requires {problem.a_dim}x{problem.a_dim}")
        return cls("trsm", problem,
                   np.ascontiguousarray(a, dtype=dt.np_dtype),
                   np.ascontiguousarray(b, dtype=dt.np_dtype),
                   None, _check_tenant(tenant), _check_deadline(deadline_ms))

    def __post_init__(self) -> None:
        if self.routine not in ("gemm", "trsm"):
            raise InvalidProblemError(
                f"unknown routine {self.routine!r} (gemm or trsm)")

    def describe(self) -> str:
        p = self.problem
        if self.routine == "gemm":
            shape = f"{p.m}x{p.n}x{p.k}"
        else:
            shape = f"{p.m}x{p.n}"
        return (f"{self.routine}[{p.dtype.value}] {shape} mode={p.mode} "
                f"tenant={self.tenant}")
