"""``python -m repro.serve`` — run a BLAS service with live stats.

Starts a :class:`~repro.serve.service.BlasService` plus the telemetry
HTTP plane from :mod:`repro.obs.serve`, with the service's
``/serve/stats`` route mounted alongside ``/metrics``, ``/events``
(now filterable: ``?prefix=serve.&level=warn``), and the rest.

``--demo`` enables instrumentation and drives the service with the
deterministic mixed GEMM/TRSM traffic generator, round after round, so
a fresh process has a live coalescing story to watch::

    python -m repro.serve --demo --port 0 --for-seconds 10

The startup line prints the bound host:port (``--port 0`` binds an
ephemeral port), which is how the CI smoke step finds the endpoint.
"""

from __future__ import annotations

import argparse
import sys
import threading

from .. import obs
from ..obs.serve import make_server
from .client import run_traffic
from .service import BlasService

__all__ = ["main"]

MACHINES = {
    "kunpeng920": "KUNPENG_920",
    "xeon6240": "XEON_GOLD_6240",
    "a64fx": "A64FX",
}


def _machine(name: str):
    from ..machine import machines

    return getattr(machines, MACHINES[name])


def _demo_loop(service: BlasService, stop: threading.Event,
               n_requests: int, rate: "float | None") -> None:
    round_no = 0
    while not stop.is_set():
        result = run_traffic(service, n_requests=n_requests,
                             seed=round_no, rate=rate,
                             tenants=("alice", "bob", "carol"))
        round_no += 1
        obs.gauge("serve.demo.rounds", round_no)
        obs.event("serve.demo.round", round=round_no, **result)
        stop.wait(0.2)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="BLAS-as-a-service: coalescing frontend + live "
                    "telemetry endpoint.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9110,
                        help="HTTP port (0 binds an ephemeral one)")
    parser.add_argument("--machine", choices=sorted(MACHINES),
                        default="kunpeng920")
    parser.add_argument("--backend", choices=["interpret", "compiled",
                                              "fused", "megakernel",
                                              "parallel"],
                        default=None, help="executor backend (default: "
                        "the engine's default)")
    parser.add_argument("--tuning-db", metavar="PATH",
                        help="TuningDB consulted by the shared planner")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="flush a bucket at this many requests")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="flush a bucket after its oldest request "
                        "waited this long")
    parser.add_argument("--max-inflight", type=int, default=256,
                        help="per-tenant in-flight admission limit")
    parser.add_argument("--max-queue", type=int, default=4096,
                        help="global queue-depth admission limit")
    parser.add_argument("--demo", action="store_true",
                        help="enable obs and self-drive with mixed "
                        "GEMM/TRSM traffic")
    parser.add_argument("--demo-requests", type=int, default=256,
                        help="requests per demo round")
    parser.add_argument("--demo-rate", type=float, default=None,
                        help="pace demo submissions (requests/second; "
                        "default: as fast as admitted)")
    parser.add_argument("--for-seconds", type=float, default=None,
                        help="exit after this long (CI smoke)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.demo:
        obs.enable()
    slos = None
    if args.demo:
        # objectives for the demo traffic generator's tenants, so /slo
        # has verdicts to show out of the box
        from ..obs.slo import default_specs
        slos = [spec for tenant in ("alice", "bob", "carol")
                for spec in default_specs(tenant)]
    service = BlasService(_machine(args.machine), backend=args.backend,
                          tuning_db=args.tuning_db,
                          max_batch=args.max_batch,
                          max_wait_ms=args.max_wait_ms,
                          max_in_flight=args.max_inflight,
                          max_queue_depth=args.max_queue,
                          slos=slos)
    server = make_server(args.host, args.port)
    server.add_route("/serve/stats", service.stats_route)
    server.add_route("/slo", service.slo_route)
    server.add_route("/flight", service.flight_route)

    service.start()
    stop = threading.Event()
    if args.demo:
        worker = threading.Thread(
            target=_demo_loop,
            args=(service, stop, args.demo_requests, args.demo_rate),
            name="repro-serve-demo", daemon=True)
        worker.start()
    bound_host, bound_port = server.server_address[:2]
    if not args.quiet:
        print(f"repro.serve on http://{bound_host}:{bound_port} "
              f"(machine {service.machine.name}, max_batch "
              f"{args.max_batch}, max_wait {args.max_wait_ms}ms; "
              f"endpoints: {', '.join(sorted(server.routes))})"
              + (" [demo traffic running]" if args.demo else ""),
              flush=True)
    if args.for_seconds is not None:
        timer = threading.Timer(args.for_seconds, server.shutdown)
        timer.daemon = True
        timer.start()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
        service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
