"""The BLAS-as-a-service facade: submit small problems, get futures.

:class:`BlasService` wires the subsystem together — request validation
(:mod:`.types`), admission control (:mod:`.admission`), coalescing
(:mod:`.coalesce`), and the batching pump (:mod:`.scheduler`) over one
shared :class:`~repro.runtime.iatf.IATF` — and keeps its own always-on
statistics (plain locked counters plus a wait-time histogram) so
``stats()`` and the ``/serve/stats`` HTTP route work even when the
process-wide :mod:`repro.obs` instrumentation is disabled.

Usage::

    from repro.serve import BlasService, Request

    with BlasService(max_batch=32, max_wait_ms=2.0) as svc:
        fut = svc.submit(Request.gemm(a, b, tenant="alice"))
        c = fut.result()

``svc.stats()`` is the operator view: request totals, rejections per
reason, coalesce ratio (requests per flush), batch occupancy, wait-time
percentiles, and the shared PlanCache's hit rate.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future

from .. import obs
from ..errors import RejectedError
from ..obs.budget import STAGES, Budget, BudgetLedger
from ..obs.flight import FlightRecorder
from ..obs.slo import SLOMonitor
from ..machine.machines import KUNPENG_920, MachineConfig
from ..runtime.backends import backend_name
from ..runtime.iatf import IATF
from .admission import AdmissionController
from .coalesce import Coalescer, PendingRequest
from .scheduler import Scheduler
from .types import Request

__all__ = ["BlasService"]


class BlasService:
    """Coalescing frontend over one shared IATF instance."""

    def __init__(self, machine: MachineConfig = KUNPENG_920, *,
                 backend=None, tuning_db=None, iatf: "IATF | None" = None,
                 max_batch: int = 64, max_wait_ms: float = 2.0,
                 max_in_flight: int = 256,
                 max_queue_depth: int = 4096,
                 slos: "list | None" = None,
                 flight: "FlightRecorder | None" = None) -> None:
        self.iatf = iatf if iatf is not None else IATF(
            machine, backend=backend, tuning_db=tuning_db)
        self.machine = self.iatf.machine
        self.admission = AdmissionController(max_in_flight, max_queue_depth)
        self.coalescer = Coalescer(max_batch, max_wait_ms)
        self.scheduler = Scheduler(self.iatf, self.coalescer,
                                   on_done=self._on_done,
                                   on_flush=self._on_flush)
        self._lock = threading.Lock()
        self._t_start: "float | None" = None
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._deadline_missed = 0
        self._flushes = 0
        self._flush_errors = 0
        self._flushed_requests = 0
        self._max_occupancy = 0
        self._wait_ms = obs.Histogram("serve.wait_ms")
        self._routines: "dict[str, int]" = {}
        # request latency budgets, aggregated two ways: per tenant (the
        # operator view) and per coalescing-key label (the input-aware
        # view — where do *this shape's* milliseconds go?)
        self._budget_by_tenant = BudgetLedger()
        self._budget_by_key = BudgetLedger()
        # per-tenant objectives evaluated from registry snapshots on
        # every /slo scrape (obs must be enabled for the per-tenant
        # telemetry the monitor reads)
        self.slo = SLOMonitor(specs=slos)
        # post-mortem rings: attached to the process registry at
        # start() so spans/events mirror in; the service triggers
        # dumps on poisoned buckets and reject storms
        self.flight = flight if flight is not None else FlightRecorder()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "BlasService":
        with self._lock:
            if self._t_start is None:
                self._t_start = time.perf_counter()
        self.flight.attach()
        self.scheduler.start()
        obs.event("serve.start", machine=self.machine.name,
                  backend=backend_name(self.iatf.engine.backend),
                  max_batch=self.coalescer.max_batch,
                  max_wait_ms=self.coalescer.max_wait * 1000.0)
        return self

    def stop(self) -> None:
        """Drain and stop: every accepted request still resolves."""
        self.scheduler.stop()
        obs.event("serve.stop", submitted=self._submitted,
                  completed=self._completed)

    def __enter__(self) -> "BlasService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self.scheduler.running

    # -- submission -----------------------------------------------------

    def submit(self, request: Request) -> "Future":
        """Admit one validated request; the future resolves to the
        result matrix (or raises what the flush raised).

        Raises :class:`RejectedError` when the service is stopped, the
        tenant is over its in-flight limit, or the queue is full —
        *after* validation, so malformed input still surfaces as
        :class:`InvalidProblemError` regardless of load.
        """
        if not isinstance(request, Request):
            raise TypeError(
                f"submit takes a repro.serve.Request, got "
                f"{type(request).__name__}")
        budget = Budget()
        if not self.scheduler.running:
            self._note_reject(request.tenant)
            raise RejectedError("service not running", request.tenant)
        with obs.span("serve.request", routine=request.routine,
                      dtype=request.problem.dtype.value,
                      tenant=request.tenant):
            try:
                self.admission.admit(request.tenant)
            except RejectedError:
                self._note_reject(request.tenant)
                raise
            now = time.perf_counter()
            entry = PendingRequest(
                request=request, future=Future(), carrier=obs.carrier(),
                t_submit=now,
                deadline_at=(None if request.deadline_ms is None
                             else now + request.deadline_ms / 1000.0),
                budget=budget)
            # "admit" (validation + admission) must be stamped *before*
            # the entry becomes visible to the pump: a bucket the offer
            # fills can flush on the pump thread before this one
            # returns, and the pump's "coalesce_wait" stamp must find
            # "admit" already in place
            budget.stamp("admit")
            try:
                self.scheduler.offer(entry)
            except BaseException as exc:
                self.admission.release(request.tenant)
                if isinstance(exc, RejectedError):
                    self._note_reject(request.tenant)
                raise
        with self._lock:
            self._submitted += 1
            self._routines[request.routine] = \
                self._routines.get(request.routine, 0) + 1
        obs.count("serve.submitted")
        obs.count(f"serve.tenant.{request.tenant}.submitted")
        return entry.future

    def _note_reject(self, tenant: str) -> None:
        obs.count(f"serve.tenant.{tenant}.rejected")
        self.flight.note_reject(tenant)

    # -- scheduler callbacks --------------------------------------------

    def _on_done(self, entry: PendingRequest, missed: bool) -> None:
        tenant = entry.request.tenant
        self.admission.release(tenant)
        wait_ms = (time.perf_counter() - entry.t_submit) * 1000.0
        failed = entry.future.exception() is not None
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            if missed:
                self._deadline_missed += 1
            self._wait_ms.observe(wait_ms)
        obs.observe("serve.wait_ms", wait_ms)
        obs.observe(f"serve.tenant.{tenant}.wait_ms", wait_ms)
        obs.count(f"serve.tenant.{tenant}.completed")
        if missed:
            obs.count("serve.deadline.missed")
            obs.count(f"serve.tenant.{tenant}.deadline_missed")
        budget = entry.budget
        if budget is not None and budget.closed:
            self._budget_by_tenant.record(tenant, budget)
            self._budget_by_key.record(entry.request.label, budget)
            for stage, seconds in budget.stages().items():
                obs.observe(f"serve.budget.{stage}.ms", seconds * 1e3)

    def _on_flush(self, bucket, wall: float, error) -> None:
        with self._lock:
            self._flushes += 1
            self._flushed_requests += len(bucket)
            self._max_occupancy = max(self._max_occupancy, len(bucket))
            if error is not None:
                self._flush_errors += 1
            flushes, errors = self._flushes, self._flush_errors
        self.flight.note_pulse({
            "t": time.time(), "flushes": flushes, "flush_errors": errors,
            "requests": len(bucket), "wall_ms": wall * 1000.0,
            "routine": bucket.routine, "error": repr(error) if error
            else None,
        })
        if error is not None:
            obs.event("serve.flush.error", level="error",
                      routine=bucket.routine, requests=len(bucket),
                      error=repr(error))
            # a poisoned bucket failed every request in the batch:
            # freeze the flight rings while the evidence is fresh
            self.flight.trigger("flush_error", routine=bucket.routine,
                                requests=len(bucket), error=repr(error))

    # -- operator view --------------------------------------------------

    def stats(self) -> dict:
        """The ``/serve/stats`` payload (always available, obs on or
        off).  ``coalesce.ratio`` is requests per flush — the service's
        reason to exist; 1.0 means no coalescing happened."""
        with self._lock:
            flushes = self._flushes
            flushed = self._flushed_requests
            wait = self._wait_ms.summary()
            uptime = (0.0 if self._t_start is None
                      else time.perf_counter() - self._t_start)
            stats = {
                "running": self.scheduler.running,
                "uptime_seconds": round(uptime, 3),
                "machine": self.machine.name,
                "backend": backend_name(self.iatf.engine.backend),
                "requests": {
                    "submitted": self._submitted,
                    "completed": self._completed,
                    "failed": self._failed,
                    "deadline_missed": self._deadline_missed,
                    "by_routine": dict(sorted(self._routines.items())),
                },
                "coalesce": {
                    "max_batch": self.coalescer.max_batch,
                    "max_wait_ms": self.coalescer.max_wait * 1000.0,
                    "flushes": flushes,
                    "flush_errors": self._flush_errors,
                    "coalesced_requests": flushed,
                    "ratio": round(flushed / flushes, 3) if flushes else 0.0,
                    "max_occupancy": self._max_occupancy,
                },
                "wait_ms": wait,
            }
        stats["backlog"] = self.scheduler.backlog
        stats["admission"] = self.admission.stats()
        stats["plan_cache"] = self.iatf.plan_cache_stats
        stats["budget"] = {
            "stages": list(STAGES),
            "by_tenant": self._budget_by_tenant.summary(),
            "by_key": self._budget_by_key.summary(),
        }
        stats["flight"] = self.flight.stats()
        return stats

    def stats_route(self, query) -> "tuple[str, str]":
        """``(body, content_type)`` handler for
        :meth:`TelemetryServer.add_route` — a pure read."""
        return (json.dumps(self.stats(), sort_keys=True, indent=2) + "\n",
                "application/json")

    def slo_route(self, query) -> "tuple[str, str]":
        """``/slo`` handler: sample + evaluate the service's SLOs."""
        return self.slo.route(query)

    def flight_route(self, query) -> "tuple[str, str]":
        """``/flight`` handler: an on-demand flight-recorder dump."""
        return self.flight.route(query)
