"""Admission control: protect the service (and its tenants) from load.

Two limits, both checked before a request is allowed to park in the
coalescer:

* **per-tenant in-flight** — one caller hammering the service cannot
  starve everyone else's lanes;
* **global queue depth** — the coalescer's total parked+running work is
  bounded, so memory and tail latency stay bounded too.

Violations raise :class:`~repro.errors.RejectedError` — deliberately a
different type from :class:`~repro.errors.InvalidProblemError`, because
the remedies differ: overload means *retry with backoff*, invalid input
means *fix your arguments*.  Rejections are counted and published as
``serve.reject`` events so an operator can tell which tenant is being
shed.
"""

from __future__ import annotations

import threading

from .. import obs
from ..errors import RejectedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Per-tenant in-flight and global queue-depth limits."""

    def __init__(self, max_in_flight: int = 256,
                 max_queue_depth: int = 4096) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_in_flight = int(max_in_flight)
        self.max_queue_depth = int(max_queue_depth)
        self._lock = threading.Lock()
        self._in_flight: "dict[str, int]" = {}
        self._total = 0
        self.admitted = 0
        self.rejected = 0

    def admit(self, tenant: str) -> None:
        """Reserve a slot for ``tenant`` or raise :class:`RejectedError`.

        On success the slot is held until :meth:`release` — callers must
        pair the two even on failure paths, or the tenant leaks budget.
        """
        with self._lock:
            if self._total >= self.max_queue_depth:
                self.rejected += 1
                reason = (f"queue full ({self._total} in flight >= "
                          f"{self.max_queue_depth})")
                self._note_reject(tenant, reason)
                raise RejectedError(reason, tenant)
            held = self._in_flight.get(tenant, 0)
            if held >= self.max_in_flight:
                self.rejected += 1
                reason = (f"tenant at in-flight limit ({held} >= "
                          f"{self.max_in_flight})")
                self._note_reject(tenant, reason)
                raise RejectedError(reason, tenant)
            self._in_flight[tenant] = held + 1
            self._total += 1
            self.admitted += 1
        obs.count("serve.admitted")
        obs.gauge("serve.queue.depth", self._total)

    def release(self, tenant: str) -> None:
        """Return ``tenant``'s slot (request completed, failed, or was
        never enqueued after all)."""
        with self._lock:
            held = self._in_flight.get(tenant, 0)
            if held <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = held - 1
            if held > 0:
                self._total -= 1
        obs.gauge("serve.queue.depth", self._total)

    def _note_reject(self, tenant: str, reason: str) -> None:
        # called under the lock; obs calls are cheap no-ops when disabled
        obs.count("serve.rejected")
        obs.event("serve.reject", level="warn", tenant=tenant,
                  reason=reason)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._total

    def stats(self) -> dict:
        with self._lock:
            return {"in_flight": self._total,
                    "admitted": self.admitted,
                    "rejected": self.rejected,
                    "max_in_flight": self.max_in_flight,
                    "max_queue_depth": self.max_queue_depth,
                    "tenants": dict(sorted(self._in_flight.items()))}
