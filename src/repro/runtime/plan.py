"""Execution-plan generation (paper Section 5.3).

A plan is the input-independent command queue for one problem shape:
which kernels run, in what order, reading and writing which byte
offsets of which buffers.  Offsets depend only on shapes, so a plan is
generated once per problem configuration and reused for every batch —
the paper's "it only generates this execution plan at the beginning ...
these overheads are negligible when apportioned to each matrix".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.registry import KernelRegistry
from ..codegen.tiling import decompose_dim, tile_starts
from ..errors import PlanError
from ..layout.padding import padded_count
from ..machine.machines import MachineConfig
from ..machine.program import Program
from ..packing.cost import PackCost
from ..packing.trsm_pack import NormalizedTrsm
from ..types import BlasDType, GemmProblem, Trans, TrsmProblem
from .batch_counter import (gemm_group_working_bytes, groups_per_round,
                            trsm_group_working_bytes)
from .pack_selector import select_gemm_packing, select_trsm_packing

__all__ = ["BufferSpec", "KernelCall", "ExecutionPlan",
           "build_gemm_plan", "build_trsm_plan"]


@dataclass(frozen=True)
class BufferSpec:
    """One logical buffer the plan addresses.

    ``warm`` is the batch counter's residency verdict, consumed by the
    timing engine: packed buffers a round fits in L1 are simulated warm;
    origin C (and origin A/B on the no-pack path) start cold.
    """

    name: str
    group_stride_bytes: int
    warm: str = "cold"            # "l1" | "l2" | "cold"


@dataclass(frozen=True)
class KernelCall:
    """One kernel invocation: program + per-group byte offsets.

    ``c_offsets`` feeds the per-column output pointers PC(j); ``x_off``
    feeds the TRSM triangular kernel's in-place store alias PX.
    """

    program: Program
    a_buf: str
    a_off: int
    b_buf: str
    b_off: int
    c_buf: str = ""
    c_offsets: tuple[int, ...] = ()
    x_buf: str | None = None
    x_off: int = 0


@dataclass
class ExecutionPlan:
    """The full command queue plus the decisions that produced it."""

    kind: str                     # "gemm" | "trsm"
    problem: "GemmProblem | TrsmProblem"
    machine: MachineConfig
    calls: list[KernelCall]
    buffers: dict[str, BufferSpec]
    pack_cost: PackCost           # analytic, whole batch
    unpack_cost: PackCost
    groups: int
    groups_per_round: int
    meta: dict = field(default_factory=dict)

    @property
    def kernels_used(self) -> list[str]:
        return sorted({c.program.name for c in self.calls})

    def describe(self) -> str:
        """Human-readable plan summary (examples print this)."""
        lines = [f"ExecutionPlan[{self.kind}] for {self.problem}",
                 f"  machine: {self.machine.name}",
                 f"  groups: {self.groups} "
                 f"(batch rounds of {self.groups_per_round} groups)",
                 f"  packing: {self.meta.get('packing')}",
                 f"  kernel calls per group: {len(self.calls)}"]
        for name in self.kernels_used:
            lines.append(f"    - {name}")
        return "\n".join(lines)


def _elem_bytes(dtype: BlasDType, machine: MachineConfig) -> int:
    ncomp = 2 if dtype.is_complex else 1
    return machine.lanes(dtype) * ncomp * dtype.real_itemsize


def build_gemm_plan(problem: GemmProblem, machine: MachineConfig,
                    registry: KernelRegistry,
                    force_pack: bool = False,
                    main_override: tuple[int, int] | None = None,
                    tuned_pack: "bool | None" = None) -> ExecutionPlan:
    """Plan a compact GEMM.

    ``force_pack`` disables the no-pack fast path (ablation benchmark);
    ``main_override`` forces a different main kernel preference for the
    tile decomposition (the empirical autotuner and the install-time
    tuner sweep these); ``tuned_pack`` applies a TuningDB pack override.
    """
    p = problem
    dt = p.dtype
    eb = _elem_bytes(dt, machine)
    if main_override is not None:
        mc_main, nc_main = main_override
    else:
        mc_main, nc_main = registry.main_gemm_kernel(dt)
    m_tiles = decompose_dim(p.m, mc_main)
    n_tiles = decompose_dim(p.n, nc_main)
    m_starts = tile_starts(m_tiles)
    n_starts = tile_starts(n_tiles)

    decision = select_gemm_packing(p, m_tiles, n_tiles, force_pack,
                                   tuned_pack)
    a_nopack = not decision.pack_a
    b_nopack = not decision.pack_b

    # panel offsets within a packed group (prefix sums of tile panels)
    a_tile_offs, pos = [], 0
    for mt in m_tiles:
        a_tile_offs.append(pos)
        pos += mt * p.k * eb
    a_stride = pos
    b_tile_offs, pos = [], 0
    for nt in n_tiles:
        b_tile_offs.append(pos)
        pos += nt * p.k * eb
    b_stride = pos

    lanes = machine.lanes(dt)
    groups = padded_count(p.batch, lanes) // lanes
    work = gemm_group_working_bytes(p, machine)
    gpr = groups_per_round(work, machine, total_groups=groups)
    packed_warm = "l1" if work * min(gpr, groups) <= machine.l1.size else "l2"

    a_buf = "A" if a_nopack else "packA"
    b_buf = "B" if b_nopack else "packB"

    calls: list[KernelCall] = []
    for jb, (nt, ns) in enumerate(zip(n_tiles, n_starts)):
        for ib, (mt, ms) in enumerate(zip(m_tiles, m_starts)):
            prog = registry.gemm_kernel(mt, nt, p.k, dt, p.alpha, p.beta)
            c_offs = tuple(((ns + j) * p.m + ms) * eb for j in range(nt))
            calls.append(KernelCall(
                program=prog,
                a_buf=a_buf, a_off=a_tile_offs[ib],
                b_buf=b_buf, b_off=b_tile_offs[jb],
                c_buf="C", c_offsets=c_offs,
            ))

    # one BufferSpec per operand, built once with its final residency:
    # kernels stream straight from A/B only on the no-pack path, where
    # those buffers inherit the packed-buffer warmth verdict
    a_shape = p.a_shape
    b_shape = p.b_shape
    buffers = {
        "A": BufferSpec("A", a_shape[0] * a_shape[1] * eb,
                        warm=packed_warm if a_nopack else "cold"),
        "B": BufferSpec("B", b_shape[0] * b_shape[1] * eb,
                        warm=packed_warm if b_nopack else "cold"),
        "C": BufferSpec("C", p.m * p.n * eb, warm="cold"),
    }
    if not a_nopack:
        buffers["packA"] = BufferSpec("packA", a_stride, warm=packed_warm)
    if not b_nopack:
        buffers["packB"] = BufferSpec("packB", b_stride, warm=packed_warm)

    pack = PackCost(ew=dt.real_itemsize)
    if not a_nopack:
        nb = a_stride * groups
        pack = pack + PackCost(bytes_read=nb, bytes_written=nb,
                               panels=len(m_tiles) * groups,
                               ew=dt.real_itemsize)
    if not b_nopack:
        nb = b_stride * groups
        pack = pack + PackCost(bytes_read=nb, bytes_written=nb,
                               panels=len(n_tiles) * groups,
                               ew=dt.real_itemsize)

    return ExecutionPlan(
        kind="gemm", problem=p, machine=machine, calls=calls,
        buffers=buffers, pack_cost=pack,
        unpack_cost=PackCost(ew=dt.real_itemsize),
        groups=groups, groups_per_round=gpr,
        meta={
            "m_tiles": m_tiles, "n_tiles": n_tiles,
            "main_kernel": (mc_main, nc_main),
            "packing": decision.description,
            "pack_reasons": {"A": decision.reason_a,
                             "B": decision.reason_b},
        },
    )


def build_trsm_plan(problem: TrsmProblem, machine: MachineConfig,
                    registry: KernelRegistry,
                    force_pack: bool = False,
                    tuned_pack: "bool | None" = None) -> ExecutionPlan:
    """Plan a compact TRSM through the canonical lower-left orientation."""
    p = problem
    dt = p.dtype
    eb = _elem_bytes(dt, machine)
    decision = select_trsm_packing(p, registry, force_pack, tuned_pack)
    norm = decision.norm
    d, n_rhs = norm.d, norm.n_rhs
    lanes = machine.lanes(dt)
    groups = padded_count(p.batch, lanes) // lanes
    work = trsm_group_working_bytes(p, machine)
    gpr = groups_per_round(work, machine, total_groups=groups)
    packed_warm = "l1" if work * min(gpr, groups) <= machine.l1.size else "l2"

    whole_in_regs = decision.whole_in_regs
    b_nopack = not decision.pack_b
    b_buf = "B" if b_nopack else "workB"
    col_stride = d * eb

    calls: list[KernelCall] = []
    tri_bytes = d * (d + 1) // 2 * eb

    if whole_in_regs:
        blocks = [d]
        n_pad = n_rhs
        prog = registry.trsm_triangular(d, n_rhs, dt, norm.unit, col_stride)
        calls.append(KernelCall(
            program=prog, a_buf="packT", a_off=0,
            b_buf=b_buf, b_off=0, x_buf=b_buf, x_off=0,
        ))
        pack_a_bytes = tri_bytes * groups
    else:
        blocks = decompose_dim(d, registry.trsm_block_main(dt))
        starts = tile_starts(blocks)
        nc = registry.trsm_panel_width(dt)
        n_pad = padded_count(n_rhs, nc)
        # packT offsets mirror packing.trsm_pack.pack_trsm_a exactly
        tri_offs: list[int] = []
        rect_offs: dict[tuple[int, int], int] = {}
        pos = 0
        for di, dsz in enumerate(blocks):
            for ei in range(di):
                rect_offs[(di, ei)] = pos
                pos += blocks[ei] * dsz * eb
            tri_offs.append(pos)
            pos += dsz * (dsz + 1) // 2 * eb
        pack_a_bytes = pos * groups
        for q in range(n_pad // nc):
            col0 = q * nc
            for di, (dsz, dst) in enumerate(zip(blocks, starts)):
                for ei in range(di):
                    esz_blk, est = blocks[ei], starts[ei]
                    prog = registry.trsm_rect(dsz, nc, esz_blk, dt, col_stride)
                    calls.append(KernelCall(
                        program=prog,
                        a_buf="packT", a_off=rect_offs[(di, ei)],
                        b_buf=b_buf, b_off=(col0 * d + est) * eb,
                        c_buf=b_buf,
                        c_offsets=tuple(((col0 + j) * d + dst) * eb
                                        for j in range(nc)),
                    ))
                prog = registry.trsm_triangular(dsz, nc, dt, norm.unit,
                                                col_stride)
                calls.append(KernelCall(
                    program=prog, a_buf="packT", a_off=tri_offs[di],
                    b_buf=b_buf, b_off=(col0 * d + dst) * eb,
                    x_buf=b_buf, x_off=(col0 * d + dst) * eb,
                ))

    a_dim = p.a_dim
    buffers = {
        "A": BufferSpec("A", a_dim * a_dim * eb, warm="cold"),
        "B": BufferSpec("B", p.m * p.n * eb,
                        warm=packed_warm if b_nopack else "cold"),
        "packT": BufferSpec("packT", pack_a_bytes // groups,
                            warm=packed_warm),
    }
    if not b_nopack:
        buffers["workB"] = BufferSpec("workB", d * n_pad * eb,
                                      warm=packed_warm)

    divs = 0 if norm.unit else d * (2 if dt.is_complex else 1)
    pack = PackCost(bytes_read=pack_a_bytes, bytes_written=pack_a_bytes,
                    panels=(len(blocks) + sum(range(len(blocks)))) * groups,
                    div_vectors=divs * groups, ew=dt.real_itemsize)
    unpack = PackCost(ew=dt.real_itemsize)
    if not b_nopack:
        wb = d * n_pad * eb * groups
        ob = p.m * p.n * eb * groups
        pack = pack + PackCost(bytes_read=ob, bytes_written=wb,
                               panels=groups, ew=dt.real_itemsize)
        unpack = PackCost(bytes_read=wb, bytes_written=ob, panels=groups,
                          ew=dt.real_itemsize)

    return ExecutionPlan(
        kind="trsm", problem=p, machine=machine, calls=calls,
        buffers=buffers, pack_cost=pack, unpack_cost=unpack,
        groups=groups, groups_per_round=gpr,
        meta={
            "norm": norm, "blocks": blocks, "n_pad": n_pad,
            "whole_in_regs": whole_in_regs, "b_nopack": b_nopack,
            "packing": decision.description,
            "pack_reason_b": decision.reason_b,
        },
    )
