"""Pack selector (paper Section 5.2, the middle box of Figure 1).

Given the input matrix properties, chooses for each operand either a
data-packing kernel or the no-packing strategy, and — for TRSM — which
normalization transforms the packing must fold in.  The decisions are
pure functions of the problem shape (no data), so the plan generator
calls them once per problem configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..codegen.registry import KernelRegistry
from ..packing.trsm_pack import NormalizedTrsm, normalize_trsm_mode
from ..types import GemmProblem, Trans, TrsmProblem

__all__ = ["GemmPackDecision", "TrsmPackDecision", "select_gemm_packing",
           "select_trsm_packing"]


@dataclass(frozen=True)
class GemmPackDecision:
    """Which GEMM operands get packed, and why."""

    pack_a: bool
    pack_b: bool
    reason_a: str
    reason_b: str

    @property
    def description(self) -> dict[str, str]:
        return {"A": "N-shape" if self.pack_a else "no-pack",
                "B": "Z-shape" if self.pack_b else "no-pack"}


@dataclass(frozen=True)
class TrsmPackDecision:
    """TRSM packing decision plus the mode normalization it folds in."""

    norm: NormalizedTrsm
    whole_in_regs: bool
    pack_b: bool
    reason_b: str

    @property
    def description(self) -> dict[str, str]:
        a = ("triangle+reciprocal" if self.whole_in_regs
             else "blocked triangle+reciprocal")
        return {"A": a,
                "B": "panel" if self.pack_b else "no-pack"}


def select_gemm_packing(problem: GemmProblem, m_tiles: list[int],
                        n_tiles: list[int],
                        force_pack: bool = False,
                        tuned_pack: "bool | None" = None
                        ) -> GemmPackDecision:
    """The paper's rule: pack only when the kernel cannot already walk
    the operand contiguously in the compact layout.

    * A is contiguous when non-transposed and covered by a single row
      tile (its stored k-columns *are* the kernel's per-k-step loads);
    * B is contiguous when transposed and covered by a single column
      tile (stored columns deliver the ``[l][j]`` order).

    ``tuned_pack=True`` applies a TuningDB record that measured the
    packed variant as faster for this shape — same outcome as
    ``force_pack`` but attributed to the tuner, not the ablation flag.
    """
    obs.count("pack_selector.gemm.calls")
    if force_pack:
        obs.count("pack_selector.gemm.forced")
        return GemmPackDecision(True, True, "forced", "forced")
    if tuned_pack:
        obs.count("pack_selector.gemm.tuned")
        return GemmPackDecision(True, True, "tuned", "tuned")
    a_nopack = problem.transa is Trans.N and len(m_tiles) == 1
    b_nopack = problem.transb is Trans.T and len(n_tiles) == 1
    obs.count("pack_selector.gemm.a." + ("nopack" if a_nopack else "pack"))
    obs.count("pack_selector.gemm.b." + ("nopack" if b_nopack else "pack"))
    return GemmPackDecision(
        pack_a=not a_nopack,
        pack_b=not b_nopack,
        reason_a=("compact layout already streams per k-step" if a_nopack
                  else ("transposed operand" if problem.transa is Trans.T
                        else "multiple row tiles")),
        reason_b=("stored columns already deliver [l][j]" if b_nopack
                  else ("non-transposed operand" if problem.transb is Trans.N
                        else "multiple column tiles")),
    )


def select_trsm_packing(problem: TrsmProblem, registry: KernelRegistry,
                        force_pack: bool = False,
                        tuned_pack: "bool | None" = None
                        ) -> TrsmPackDecision:
    """The paper's example: LNLN with M within the in-register bound
    skips the B pack.  Generalized: any mode whose normalization needs
    neither a flip nor a transpose, with unit alpha, qualifies whenever
    the whole problem is solved by one triangular kernel (the blocked
    path needs the padded work panel regardless).

    ``tuned_pack=True`` applies a TuningDB record that measured the
    packed panel as faster for this shape."""
    obs.count("pack_selector.trsm.calls")
    norm = normalize_trsm_mode(problem)
    whole = norm.d <= registry.max_tri(problem.dtype)
    if force_pack:
        obs.count("pack_selector.trsm.forced")
        return TrsmPackDecision(norm, whole, True, "forced")
    if tuned_pack:
        obs.count("pack_selector.trsm.tuned")
        return TrsmPackDecision(norm, whole, True, "tuned")
    nopack = (whole and not norm.flip and not norm.transpose_b
              and norm.alpha == 1)
    obs.count("pack_selector.trsm.b." + ("nopack" if nopack else "pack"))
    if nopack:
        reason = "canonical orientation, unit alpha, in-register solve"
    elif not whole:
        reason = "blocked path needs the padded work panel"
    elif norm.flip or norm.transpose_b:
        reason = "mode normalization transforms B"
    else:
        reason = "alpha scaling folds into the pack"
    return TrsmPackDecision(norm, whole, not nopack, reason)
