"""The IATF framework object: install-time + run-time stages in one place.

This is the library's main entry point::

    from repro import IATF, machines
    iatf = IATF(machines.KUNPENG_920)
    iatf.install()                       # install-time stage (optional)
    C = iatf.gemm(A, B, C, alpha=1.0)    # run-time stage: plan + execute
    t = iatf.time_gemm(problem)          # cycle-model performance

Plans are cached per problem configuration, mirroring the paper's
run-time stage generating the execution plan once and amortizing it
over the batch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .. import obs
from ..codegen.registry import KernelRegistry
from ..errors import InvalidProblemError
from ..layout.compact import CompactBatch
from ..machine.machines import KUNPENG_920, MachineConfig
from ..types import BlasDType, Diag, GemmProblem, Side, Trans, TrsmProblem, UpLo
from .backends import ExecutorBackend
from .engine import Engine, PlanTiming
from .lowering import CompiledPlan, lower_plan
from .plan import ExecutionPlan, build_gemm_plan, build_trsm_plan

__all__ = ["IATF", "PlanCache"]


class PlanCache:
    """Bounded, thread-safe LRU map from problem-configuration keys to
    plans — and to their lowered :class:`CompiledPlan`, which rides in a
    side slot of the same entry so one eviction drops both.

    The paper amortizes plan generation over the batch, so hits are the
    common case; the bound exists so a long-lived service sweeping many
    shapes cannot grow without limit.  Hit/miss/eviction totals are
    kept unconditionally (plain ints, negligible cost) and mirrored
    into the obs registry when instrumentation is enabled.  All
    operations take one re-entrant lock, making concurrent planning
    from multiple threads safe (worst case: two threads race to build
    the same plan and the second ``put`` wins — wasted work, never a
    corrupt cache).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("plan cache needs room for at least one plan")
        self.maxsize = maxsize
        # key -> [plan, compiled-or-None]
        self._data: "OrderedDict[tuple, list]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: tuple) -> "ExecutionPlan | None":
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                obs.count("plan_cache.misses")
                obs.gauge("plan_cache.hit_rate", round(self.hit_rate, 6))
                return None
            self._data.move_to_end(key)
            self.hits += 1
            obs.count("plan_cache.hits")
            obs.gauge("plan_cache.hit_rate", round(self.hit_rate, 6))
            return entry[0]

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any
        lookup) — the one number a service operator watches to confirm
        plan reuse is happening.  Mirrored into the
        ``plan_cache.hit_rate`` gauge (and thus ``/snapshot.json`` and
        ``/metrics``) on every instrumented lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def put(self, key: tuple, plan: ExecutionPlan) -> None:
        with self._lock:
            # a fresh plan invalidates any lowering cached for the key
            self._data[key] = [plan, None]
            self._data.move_to_end(key)
            if len(self._data) > self.maxsize:
                old_key, _ = self._data.popitem(last=False)
                self.evictions += 1
                obs.count("plan_cache.evictions")
                obs.event("plan_cache.evict", key=str(old_key),
                          maxsize=self.maxsize)
            obs.gauge("plan_cache.size", len(self._data))

    def get_compiled(self, key: tuple) -> "CompiledPlan | None":
        """The cached lowering for ``key``, if the plan is still cached
        and has been lowered."""
        with self._lock:
            entry = self._data.get(key)
            return None if entry is None else entry[1]

    def put_compiled(self, key: tuple, compiled: "CompiledPlan") -> None:
        """Attach a lowering to an already-cached plan (no-op if the
        plan was evicted meanwhile)."""
        with self._lock:
            entry = self._data.get(key)
            if entry is not None:
                entry[1] = compiled

    def invalidate(self, match) -> int:
        """Drop every entry whose key satisfies ``match(key)``; returns
        how many were removed.  This is the online re-tuning hook: when
        a DB record is swapped, the plans built from the *old* record
        must go, or a long-lived service would keep replaying the stale
        decision until eviction happened to reach it."""
        with self._lock:
            doomed = [k for k in self._data if match(k)]
            for k in doomed:
                del self._data[k]
            if doomed:
                self.invalidations += len(doomed)
                obs.count("plan_cache.invalidations", len(doomed))
                obs.gauge("plan_cache.size", len(self._data))
        return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict:
        with self._lock:
            return {"size": len(self._data), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "hit_rate": self.hit_rate,
                    "evictions": self.evictions,
                    "invalidations": self.invalidations}


class IATF:
    """Input-aware tuning framework for compact batched GEMM/TRSM.

    **Concurrency contract** (the service frontend in
    :mod:`repro.serve` shares one instance across request streams):
    ``plan_gemm`` / ``plan_trsm`` → ``gemm_compact`` / ``trsm_compact``
    are safe to call from multiple threads concurrently, for mixed
    routines and dtypes.  The pieces that make this true: the
    :class:`PlanCache` serializes every operation under one lock (a
    planning race wastes one duplicate build, never corrupts), the
    :class:`~repro.codegen.registry.KernelRegistry` generates kernels
    under its own lock, the alternate-schedule registry is built under
    ``_alt_lock``, plans are immutable once cached (meta is complete
    before ``put``), and the engine binds a fresh
    :class:`~repro.machine.memory.MemorySpace` per execution so no
    run-time state is shared between concurrent ``run_plan`` calls.
    ``retune`` swaps DB records atomically and invalidates under the
    cache lock, so it may run concurrently with serving.
    """

    def __init__(self, machine: MachineConfig = KUNPENG_920, *,
                 backend: "str | ExecutorBackend | None" = None,
                 inner: "str | ExecutorBackend | None" = None,
                 workers: "int | None" = None,
                 mode: "str | None" = None,
                 optimize_kernels: bool = True,
                 plan_cache_size: int = 1024,
                 tuning_db=None) -> None:
        self.machine = machine
        self.registry = KernelRegistry(machine, optimize=optimize_kernels)
        self.engine = Engine(machine, backend=backend, inner=inner,
                             workers=workers, mode=mode)
        self._plan_cache = PlanCache(plan_cache_size)
        self._alt_registry: "KernelRegistry | None" = None
        self._alt_lock = threading.Lock()
        self._tuning_db = (self._load_tuning_db(tuning_db)
                           if tuning_db is not None else None)

    @staticmethod
    def _load_tuning_db(source):
        """Accept a path (loaded through the never-raises loader) or an
        already-constructed :class:`repro.tuning.db.TuningDB`."""
        # imported lazily: repro.tuning imports this module's siblings
        from ..tuning.db import TuningDB

        if isinstance(source, TuningDB):
            return source
        return TuningDB.load(source)

    @property
    def tuning_db(self):
        """The attached TuningDB, or ``None`` (analytic-only planning)."""
        return self._tuning_db

    @property
    def backend(self) -> ExecutorBackend:
        """The executor backend plans run on (``iatf.backend.name``)."""
        return self.engine.backend

    # -- install-time stage ---------------------------------------------

    def install(self, dtypes=("s", "d", "c", "z")) -> int:
        """Pre-generate the Table 1 kernel inventory; returns cache size."""
        return self.registry.install(dtypes=dtypes)

    # -- planning ---------------------------------------------------------

    #: candidate main-kernel preferences the empirical autotuner sweeps
    GEMM_TUNE_CANDIDATES_REAL = ((4, 4), (3, 3), (4, 3), (3, 4))
    GEMM_TUNE_CANDIDATES_CPLX = ((3, 2), (2, 2))

    def plan_gemm(self, problem: GemmProblem, force_pack: bool = False,
                  autotune: bool = False) -> ExecutionPlan:
        """Build (and cache) the execution plan for a problem shape.

        When a :class:`~repro.tuning.db.TuningDB` is attached, the
        install-time record for this shape (if any) drives the main
        kernel and pack decisions; a miss — or a corrupt DB — falls
        back to the analytic CMAR choice, so tuning can only ever
        *refine* planning, never break it.

        With ``autotune`` the run-time stage goes beyond the analytic
        CMAR choice: it builds a plan per candidate tile preference,
        *times each on the machine model*, and keeps the fastest — the
        "input-aware tuning" of the title made empirical.  Uniform
        decompositions (e.g. 9 = 3+3+3) occasionally beat the
        CMAR-greedy one (4+3+2); the ablation benchmark quantifies it.
        """
        return self._plan_gemm_keyed(problem, force_pack, autotune)[0]

    def _plan_gemm_keyed(self, problem: GemmProblem, force_pack: bool,
                         autotune: bool) -> "tuple[ExecutionPlan, tuple]":
        record = (None if (force_pack or autotune)
                  else self._tuned_record("gemm", problem))
        key = self._gemm_key(problem, force_pack, autotune, record)
        plan = self._plan_cache.get(key)
        if plan is not None:
            return plan, key
        with obs.span("plan.gemm", autotune=autotune,
                      tuned=record is not None):
            if autotune:
                plan = self._autotune_gemm(problem, force_pack)
            elif record is not None:
                plan = self._apply_tuned_gemm(problem, record)
            else:
                plan = build_gemm_plan(problem, self.machine, self.registry,
                                       force_pack)
                plan.meta["decision"] = {"source": "analytic"}
        # meta is complete before the plan becomes visible to other
        # callers through the cache
        self._plan_cache.put(key, plan)
        return plan, key

    # -- TuningDB consultation --------------------------------------------

    def _tuned_record(self, op: str, problem):
        """The install-time record for this shape, or ``None`` — with
        the ``tuning.hit`` / ``tuning.miss`` / ``tuning.fallback``
        counters narrating which way each lookup went."""
        db = self._tuning_db
        if db is None:
            return None
        if db.corrupt:
            obs.count("tuning.fallback")
            obs.event("tuning.fallback", level="warn", op=op,
                      reason=f"corrupt TuningDB: {db.corrupt_reason}")
            return None
        record = db.get(self._tuning_key(op, problem))
        obs.count("tuning.hit" if record is not None else "tuning.miss")
        return record

    def _tuning_key(self, op: str, problem):
        """The DB key for this shape on *this* machine configuration —
        keyed by ``tuning_id`` (id + physical fingerprint), so a
        same-named machine with different clocks or caches can never be
        served this machine's schedules."""
        from ..tuning.db import TuningKey

        if op == "gemm":
            return TuningKey.for_gemm(self.machine, problem)
        return TuningKey.for_trsm(self.machine, problem)

    # -- online re-tuning --------------------------------------------------

    def retune(self, problem, *, reason: str = "drift",
               top_k: "int | None" = None, save: bool = True,
               timestamp: float = 0.0):
        """Bounded re-sweep for one shape, swapping the DB record and
        invalidating the stale cached plans — the run-time half of the
        drift loop (``obs watch`` detects, ``retune`` corrects).

        The sweep is the analytical-first top-k one (``top_k=None``
        takes the tuner default), so a retune costs a handful of
        cycle-model measurements, never the exhaustive space.  The new
        record is swapped in atomically (``db.save`` is
        write-temp-then-rename) and every PlanCache entry whose shape
        maps to the retuned :class:`TuningKey` is dropped, so the next
        call re-plans from the fresh record.  A corrupt DB is reset
        (self-healed) first: re-tuning is exactly the moment fresh
        records replace untrustworthy ones.  Returns the
        :class:`~repro.tuning.tuner.TuneOutcome`, or ``None`` when no
        DB is attached (nothing to swap — counted and evented, never an
        error).
        """
        from ..tuning.tuner import DEFAULT_TOP_K, tune_problem

        op = "gemm" if isinstance(problem, GemmProblem) else "trsm"
        obs.count("tuning.retune.scheduled")
        obs.event("tuning.retune.scheduled", op=op, reason=reason,
                  m=problem.m, n=problem.n,
                  k=getattr(problem, "k", 0),
                  dtype=problem.dtype.value)
        db = self._tuning_db
        if db is None:
            obs.count("tuning.retune.skipped")
            obs.event("tuning.retune.skipped", level="warn", op=op,
                      reason="no TuningDB attached")
            return None
        if db.corrupt:
            obs.count("tuning.retune.db_reset")
            obs.event("tuning.retune.db_reset", level="warn",
                      reason=db.corrupt_reason)
            db.reset()
        key = self._tuning_key(op, problem)
        old = db.get(key)
        outcome = tune_problem(
            problem, self.machine,
            top_k=top_k if top_k is not None else DEFAULT_TOP_K,
            sweep_label="retune", timestamp=timestamp)
        db.put(outcome.key, outcome.record)
        if save and db.path is not None:
            db.save()
        invalidated = self._plan_cache.invalidate(
            lambda cache_key: self._cache_key_matches(cache_key, key))
        obs.count("tuning.retune.swapped")
        if invalidated:
            obs.count("tuning.retune.plans_invalidated", invalidated)
        obs.event("tuning.retune.swapped", op=op, reason=reason,
                  key=key.encode(), plans_invalidated=invalidated,
                  old_cycles=old.cycles if old is not None else None,
                  new_cycles=outcome.record.cycles,
                  candidates=outcome.record.candidates)
        return outcome

    def _cache_key_matches(self, cache_key: tuple,
                           tuning_key) -> bool:
        """Does a PlanCache key's problem map to ``tuning_key``?

        Rebuilds the TuningKey from the cached problem, so the match is
        batch-independent exactly like DB lookups are — a retune
        triggered at batch 512 invalidates the batch-16384 plan of the
        same shape."""
        op, problem = cache_key[0], cache_key[1]
        if op not in ("gemm", "trsm"):
            return False
        return self._tuning_key(op, problem) == tuning_key

    def retune_from_watch(self, drifts, *, top_k: "int | None" = None,
                          save: bool = True, timestamp: float = 0.0):
        """Act on ``obs watch`` drift verdicts: re-tune every drifting
        series that belongs to *this* machine.

        ``drifts`` is :attr:`repro.obs.watch.WatchResult.drifts` (or any
        iterable of such dicts).  Verdicts for other machines are
        ignored; verdicts whose routine/shape cannot be mapped to a
        tunable problem are counted (``tuning.retune.unmapped``) and
        skipped.  Returns the list of :class:`TuneOutcome`\\ s swapped
        in."""
        outcomes = []
        for d in drifts:
            if d.get("machine_id") != self.machine.machine_id:
                continue
            problem = self._problem_from_drift(d)
            if problem is None:
                obs.count("tuning.retune.unmapped")
                obs.event("tuning.retune.unmapped", level="warn",
                          routine=str(d.get("routine")),
                          shape=str(d.get("shape")))
                continue
            out = self.retune(
                problem, reason=f"drift x{float(d.get('ratio', 0.0)):.2f}",
                top_k=top_k, save=save, timestamp=timestamp)
            if out is not None:
                outcomes.append(out)
        return outcomes

    def _problem_from_drift(self, d: dict):
        """Map one watch drift verdict back to a tunable problem, or
        ``None`` when the point describes something we cannot tune."""
        try:
            shape = [int(x) for x in d["shape"]]
            dtype = BlasDType.from_any(d["dtype"])
            batch = int(d["batch"])
            routine = d["routine"]
        except (KeyError, TypeError, ValueError):
            return None
        if routine == "gemm" and len(shape) == 3:
            return GemmProblem(shape[0], shape[1], shape[2], dtype,
                               batch=batch)
        if routine == "trsm" and len(shape) == 2:
            return TrsmProblem(shape[0], shape[1], dtype, batch=batch)
        return None

    def _registry_for(self, schedule: bool) -> KernelRegistry:
        """The main registry, or the alternate-schedule one a tuned
        record may call for (built lazily under a lock — two threads
        planning tuned shapes concurrently must share one alternate
        registry, not warm two kernel caches)."""
        if schedule == self.registry.optimize:
            return self.registry
        if self._alt_registry is None:
            with self._alt_lock:
                if self._alt_registry is None:
                    self._alt_registry = KernelRegistry(self.machine,
                                                        optimize=schedule)
        return self._alt_registry

    def _decision_meta(self, record) -> dict:
        db = self._tuning_db
        return {
            "source": "tuned",
            "db_schema": db.version,
            "tuner_version": record.tuner_version,
            "candidates": record.candidates,
            "cycles": record.cycles,
            "batch": record.batch,
            "main": record.main,
            "force_pack": record.force_pack,
            "schedule": record.schedule,
            "backend": record.backend,
            # schema-v3 provenance (zero/empty on legacy records)
            "machine_id": record.machine_id,
            "sweep": record.sweep,
            "evaluator_version": record.evaluator_version,
            "timestamp": record.timestamp,
            "space": record.space,
        }

    def _apply_tuned_gemm(self, problem: GemmProblem,
                          record) -> ExecutionPlan:
        try:
            plan = build_gemm_plan(
                problem, self.machine, self._registry_for(record.schedule),
                main_override=record.main,
                tuned_pack=record.force_pack or None)
        except Exception as exc:
            # a hand-edited record can carry decisions the planner
            # rejects (e.g. a main size the decomposer cannot use);
            # degrade to analytic, never propagate
            obs.count("tuning.fallback")
            obs.event("tuning.fallback", level="warn", op="gemm",
                      reason=f"tuned record rejected: {exc}",
                      main=list(record.main))
            plan = build_gemm_plan(problem, self.machine, self.registry)
            plan.meta["decision"] = {"source": "analytic"}
            return plan
        plan.meta["decision"] = self._decision_meta(record)
        return plan

    def _autotune_gemm(self, problem: GemmProblem,
                       force_pack: bool) -> ExecutionPlan:
        """Sweep candidate main kernels, timing each on the machine
        model, and keep the fastest; the sweep results travel with the
        chosen plan (``meta["autotune_sweep"]``) for explain reports."""
        candidates = (self.GEMM_TUNE_CANDIDATES_CPLX
                      if problem.dtype.is_complex
                      else self.GEMM_TUNE_CANDIDATES_REAL)
        sweep: list[dict] = []
        best, best_cycles = None, None
        for main in candidates:
            with obs.span("plan.autotune_candidate", candidate=str(main)):
                cand = build_gemm_plan(problem, self.machine, self.registry,
                                       force_pack, main_override=main)
                cycles = self.engine.time_plan(cand).total_cycles
            obs.count("autotune.candidates")
            sweep.append({"candidate": main, "total_cycles": cycles})
            if best_cycles is None or cycles < best_cycles:
                best, best_cycles = cand, cycles
        obs.count("autotune.sweeps")
        best.meta["autotuned"] = True
        best.meta["autotune_sweep"] = sweep
        best.meta["decision"] = {"source": "runtime-autotune",
                                 "candidates": len(sweep)}
        return best

    def plan_trsm(self, problem: TrsmProblem,
                  force_pack: bool = False) -> ExecutionPlan:
        return self._plan_trsm_keyed(problem, force_pack)[0]

    def _plan_trsm_keyed(self, problem: TrsmProblem,
                         force_pack: bool) -> "tuple[ExecutionPlan, tuple]":
        record = (None if force_pack
                  else self._tuned_record("trsm", problem))
        key = self._trsm_key(problem, force_pack, record)
        plan = self._plan_cache.get(key)
        if plan is not None:
            return plan, key
        with obs.span("plan.trsm", tuned=record is not None):
            if record is not None:
                plan = build_trsm_plan(
                    problem, self.machine,
                    self._registry_for(record.schedule),
                    tuned_pack=record.force_pack or None)
                plan.meta["decision"] = self._decision_meta(record)
            else:
                plan = build_trsm_plan(problem, self.machine, self.registry,
                                       force_pack)
                plan.meta["decision"] = {"source": "analytic"}
        self._plan_cache.put(key, plan)
        return plan, key

    # -- lowering ---------------------------------------------------------

    @staticmethod
    def _record_sig(record) -> "tuple | None":
        # the cache key carries the applied record's decision triple, so
        # replacing the DB (or its entry for a shape) can never serve a
        # plan built from the old record
        if record is None:
            return None
        return (record.main, record.force_pack, record.schedule)

    @classmethod
    def _gemm_key(cls, problem: GemmProblem, force_pack: bool,
                  autotune: bool, record=None) -> tuple:
        return ("gemm", problem, force_pack, autotune,
                cls._record_sig(record))

    @classmethod
    def _trsm_key(cls, problem: TrsmProblem, force_pack: bool,
                  record=None) -> tuple:
        return ("trsm", problem, force_pack, cls._record_sig(record))

    def _compiled_for(self, key: tuple,
                      plan: ExecutionPlan) -> "CompiledPlan | None":
        """The plan's cached lowering, lowering (and caching) on first
        use.  ``None`` when the active backend executes plans directly.
        """
        if not self.engine.backend.needs_lowering:
            return None
        compiled = self._plan_cache.get_compiled(key)
        if compiled is None:
            compiled = lower_plan(plan)
            self._plan_cache.put_compiled(key, compiled)
        return compiled

    @property
    def plan_cache_stats(self) -> dict:
        """Plan-cache size/hit/miss/eviction totals (always tracked)."""
        return self._plan_cache.stats()

    # -- planning split out from execution (the serve scheduler uses
    # this to budget "plan" and "execute" as separate request stages) --

    def prepare_gemm(self, problem: GemmProblem
                     ) -> "tuple[ExecutionPlan, CompiledPlan | None, bool]":
        """Plan + lower for ``problem`` without executing.

        Returns ``(plan, compiled, cache_hit)``: everything
        :meth:`gemm_compact` would resolve before touching operand
        data, plus whether the plan came from the cache.  Execute with
        ``engine.execute_gemm(plan, a, b, c, compiled=compiled)``.
        """
        hits0 = self._plan_cache.hits
        plan, key = self._plan_gemm_keyed(problem, False, False)
        compiled = self._compiled_for(key, plan)
        return plan, compiled, self._plan_cache.hits > hits0

    def prepare_trsm(self, problem: TrsmProblem
                     ) -> "tuple[ExecutionPlan, CompiledPlan | None, bool]":
        """TRSM twin of :meth:`prepare_gemm`."""
        hits0 = self._plan_cache.hits
        plan, key = self._plan_trsm_keyed(problem, False)
        compiled = self._compiled_for(key, plan)
        return plan, compiled, self._plan_cache.hits > hits0

    # -- execution (compact-layout API) -----------------------------------

    def gemm_compact(self, problem: GemmProblem, a: CompactBatch,
                     b: CompactBatch, c: CompactBatch) -> CompactBatch:
        """``C = alpha op(A) op(B) + beta C`` on compact operands, in place."""
        plan, key = self._plan_gemm_keyed(problem, False, False)
        compiled = self._compiled_for(key, plan)
        return self.engine.execute_gemm(plan, a, b, c, compiled=compiled)

    def trsm_compact(self, problem: TrsmProblem, a: CompactBatch,
                     b: CompactBatch) -> CompactBatch:
        """Solve in place: B becomes X."""
        plan, key = self._plan_trsm_keyed(problem, False)
        compiled = self._compiled_for(key, plan)
        return self.engine.execute_trsm(plan, a, b, compiled=compiled)

    # -- execution (standard-layout convenience API) -----------------------

    def gemm(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
             alpha: complex = 1.0, beta: complex = 1.0,
             transa: "Trans | str" = "N",
             transb: "Trans | str" = "N") -> np.ndarray:
        """Batched GEMM on standard ``(batch, rows, cols)`` arrays.

        Interleaves to the compact layout, runs the planned kernels, and
        de-interleaves the result (a convenience wrapper; performance
        studies should hold data compact across many calls).
        """
        if a.ndim != 3 or b.ndim != 3 or c.ndim != 3:
            raise InvalidProblemError("gemm expects (batch, rows, cols) arrays")
        if not (a.shape[0] == b.shape[0] == c.shape[0]):
            raise InvalidProblemError("batch sizes differ between A, B, C")
        dt = BlasDType.from_any(c.dtype)
        ta, tb = Trans.from_any(transa), Trans.from_any(transb)
        m, n = c.shape[1], c.shape[2]
        k = a.shape[2] if ta is Trans.N else a.shape[1]
        problem = GemmProblem(m, n, k, dt, ta, tb, c.shape[0], alpha, beta)
        # every operand must match the shape the problem derives — a
        # wrong B under transb would otherwise fail deep in packing (or
        # not at all)
        if a.shape[1:] != problem.a_shape:
            raise InvalidProblemError(
                f"A is {a.shape[1]}x{a.shape[2]} but transa={ta.value} with "
                f"C {m}x{n} requires {problem.a_shape[0]}x"
                f"{problem.a_shape[1]}")
        if b.shape[1:] != problem.b_shape:
            raise InvalidProblemError(
                f"B is {b.shape[1]}x{b.shape[2]} but transb={tb.value} with "
                f"k={k}, n={n} requires {problem.b_shape[0]}x"
                f"{problem.b_shape[1]}")
        lanes = self.machine.lanes(dt)
        ca = CompactBatch.from_matrices(a, lanes, dt)
        cb = CompactBatch.from_matrices(b, lanes, dt)
        cc = CompactBatch.from_matrices(c, lanes, dt)
        self.gemm_compact(problem, ca, cb, cc)
        return cc.to_matrices()

    def trsm(self, a: np.ndarray, b: np.ndarray, alpha: complex = 1.0,
             side: "Side | str" = "L", uplo: "UpLo | str" = "L",
             transa: "Trans | str" = "N",
             diag: "Diag | str" = "N") -> np.ndarray:
        """Batched TRSM on standard ``(batch, rows, cols)`` arrays."""
        if a.ndim != 3 or b.ndim != 3:
            raise InvalidProblemError("trsm expects (batch, rows, cols) arrays")
        if a.shape[0] != b.shape[0]:
            raise InvalidProblemError("batch sizes differ between A and B")
        dt = BlasDType.from_any(b.dtype)
        problem = TrsmProblem(b.shape[1], b.shape[2], dt,
                              Side.from_any(side), UpLo.from_any(uplo),
                              Trans.from_any(transa), Diag.from_any(diag),
                              a.shape[0], alpha)
        # A must be the square the side dictates: m x m for L, n x n for R
        if a.shape[1] != a.shape[2] or a.shape[1] != problem.a_dim:
            raise InvalidProblemError(
                f"A is {a.shape[1]}x{a.shape[2]} but side="
                f"{problem.side.value} with B "
                f"{b.shape[1]}x{b.shape[2]} requires "
                f"{problem.a_dim}x{problem.a_dim}")
        lanes = self.machine.lanes(dt)
        ca = CompactBatch.from_matrices(a, lanes, dt)
        cb = CompactBatch.from_matrices(b, lanes, dt)
        self.trsm_compact(problem, ca, cb)
        return cb.to_matrices()

    # -- timing -------------------------------------------------------------

    def time_gemm(self, problem: GemmProblem, force_pack: bool = False,
                  autotune: bool = False) -> PlanTiming:
        return self.engine.time_plan(
            self.plan_gemm(problem, force_pack, autotune))

    def time_trsm(self, problem: TrsmProblem,
                  force_pack: bool = False) -> PlanTiming:
        return self.engine.time_plan(self.plan_trsm(problem, force_pack))

    # -- observability ------------------------------------------------------

    def explain_gemm(self, problem: GemmProblem, force_pack: bool = False,
                     autotune: bool = False, deep: bool = False):
        """Narrated run-time-stage decisions for one GEMM shape
        (:class:`repro.obs.ExplainReport`)."""
        plan, key = self._plan_gemm_keyed(problem, force_pack, autotune)
        compiled = self._compiled_for(key, plan)
        return obs.explain(plan, registry=self.registry, deep=deep,
                           backend=self.engine.backend, compiled=compiled,
                           plan_cache=self.plan_cache_stats)

    def explain_trsm(self, problem: TrsmProblem, force_pack: bool = False,
                     deep: bool = False):
        """Narrated run-time-stage decisions for one TRSM shape."""
        plan, key = self._plan_trsm_keyed(problem, force_pack)
        compiled = self._compiled_for(key, plan)
        return obs.explain(plan, registry=self.registry, deep=deep,
                           backend=self.engine.backend, compiled=compiled,
                           plan_cache=self.plan_cache_stats)
