"""The IATF framework object: install-time + run-time stages in one place.

This is the library's main entry point::

    from repro import IATF, machines
    iatf = IATF(machines.KUNPENG_920)
    iatf.install()                       # install-time stage (optional)
    C = iatf.gemm(A, B, C, alpha=1.0)    # run-time stage: plan + execute
    t = iatf.time_gemm(problem)          # cycle-model performance

Plans are cached per problem configuration, mirroring the paper's
run-time stage generating the execution plan once and amortizing it
over the batch.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .. import obs
from ..codegen.registry import KernelRegistry
from ..errors import InvalidProblemError
from ..layout.compact import CompactBatch
from ..machine.machines import KUNPENG_920, MachineConfig
from ..types import BlasDType, Diag, GemmProblem, Side, Trans, TrsmProblem, UpLo
from .engine import Engine, PlanTiming
from .plan import ExecutionPlan, build_gemm_plan, build_trsm_plan

__all__ = ["IATF", "PlanCache"]


class PlanCache:
    """Bounded LRU map from problem-configuration keys to plans.

    The paper amortizes plan generation over the batch, so hits are the
    common case; the bound exists so a long-lived service sweeping many
    shapes cannot grow without limit.  Hit/miss/eviction totals are
    kept unconditionally (plain ints, negligible cost) and mirrored
    into the obs registry when instrumentation is enabled.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("plan cache needs room for at least one plan")
        self.maxsize = maxsize
        self._data: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> "ExecutionPlan | None":
        plan = self._data.get(key)
        if plan is None:
            self.misses += 1
            obs.count("plan_cache.misses")
        else:
            self._data.move_to_end(key)
            self.hits += 1
            obs.count("plan_cache.hits")
        return plan

    def put(self, key: tuple, plan: ExecutionPlan) -> None:
        self._data[key] = plan
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            obs.count("plan_cache.evictions")
        obs.gauge("plan_cache.size", len(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict:
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class IATF:
    """Input-aware tuning framework for compact batched GEMM/TRSM."""

    def __init__(self, machine: MachineConfig = KUNPENG_920, *,
                 optimize_kernels: bool = True,
                 plan_cache_size: int = 1024) -> None:
        self.machine = machine
        self.registry = KernelRegistry(machine, optimize=optimize_kernels)
        self.engine = Engine(machine)
        self._plan_cache = PlanCache(plan_cache_size)

    # -- install-time stage ---------------------------------------------

    def install(self, dtypes=("s", "d", "c", "z")) -> int:
        """Pre-generate the Table 1 kernel inventory; returns cache size."""
        return self.registry.install(dtypes=dtypes)

    # -- planning ---------------------------------------------------------

    #: candidate main-kernel preferences the empirical autotuner sweeps
    GEMM_TUNE_CANDIDATES_REAL = ((4, 4), (3, 3), (4, 3), (3, 4))
    GEMM_TUNE_CANDIDATES_CPLX = ((3, 2), (2, 2))

    def plan_gemm(self, problem: GemmProblem, force_pack: bool = False,
                  autotune: bool = False) -> ExecutionPlan:
        """Build (and cache) the execution plan for a problem shape.

        With ``autotune`` the run-time stage goes beyond the analytic
        CMAR choice: it builds a plan per candidate tile preference,
        *times each on the machine model*, and keeps the fastest — the
        "input-aware tuning" of the title made empirical.  Uniform
        decompositions (e.g. 9 = 3+3+3) occasionally beat the
        CMAR-greedy one (4+3+2); the ablation benchmark quantifies it.
        """
        key = ("gemm", problem, force_pack, autotune)
        plan = self._plan_cache.get(key)
        if plan is not None:
            return plan
        with obs.span("plan.gemm", autotune=autotune):
            if not autotune:
                plan = build_gemm_plan(problem, self.machine, self.registry,
                                       force_pack)
            else:
                plan = self._autotune_gemm(problem, force_pack)
        # meta is complete before the plan becomes visible to other
        # callers through the cache
        self._plan_cache.put(key, plan)
        return plan

    def _autotune_gemm(self, problem: GemmProblem,
                       force_pack: bool) -> ExecutionPlan:
        """Sweep candidate main kernels, timing each on the machine
        model, and keep the fastest; the sweep results travel with the
        chosen plan (``meta["autotune_sweep"]``) for explain reports."""
        candidates = (self.GEMM_TUNE_CANDIDATES_CPLX
                      if problem.dtype.is_complex
                      else self.GEMM_TUNE_CANDIDATES_REAL)
        sweep: list[dict] = []
        best, best_cycles = None, None
        for main in candidates:
            with obs.span("plan.autotune_candidate", candidate=str(main)):
                cand = build_gemm_plan(problem, self.machine, self.registry,
                                       force_pack, main_override=main)
                cycles = self.engine.time_plan(cand).total_cycles
            obs.count("autotune.candidates")
            sweep.append({"candidate": main, "total_cycles": cycles})
            if best_cycles is None or cycles < best_cycles:
                best, best_cycles = cand, cycles
        obs.count("autotune.sweeps")
        best.meta["autotuned"] = True
        best.meta["autotune_sweep"] = sweep
        return best

    def plan_trsm(self, problem: TrsmProblem,
                  force_pack: bool = False) -> ExecutionPlan:
        key = ("trsm", problem, force_pack)
        plan = self._plan_cache.get(key)
        if plan is None:
            with obs.span("plan.trsm"):
                plan = build_trsm_plan(problem, self.machine, self.registry,
                                       force_pack)
            self._plan_cache.put(key, plan)
        return plan

    @property
    def plan_cache_stats(self) -> dict:
        """Plan-cache size/hit/miss/eviction totals (always tracked)."""
        return self._plan_cache.stats()

    # -- execution (compact-layout API) -----------------------------------

    def gemm_compact(self, problem: GemmProblem, a: CompactBatch,
                     b: CompactBatch, c: CompactBatch) -> CompactBatch:
        """``C = alpha op(A) op(B) + beta C`` on compact operands, in place."""
        plan = self.plan_gemm(problem)
        return self.engine.execute_gemm(plan, a, b, c)

    def trsm_compact(self, problem: TrsmProblem, a: CompactBatch,
                     b: CompactBatch) -> CompactBatch:
        """Solve in place: B becomes X."""
        plan = self.plan_trsm(problem)
        return self.engine.execute_trsm(plan, a, b)

    # -- execution (standard-layout convenience API) -----------------------

    def gemm(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
             alpha: complex = 1.0, beta: complex = 1.0,
             transa: "Trans | str" = "N",
             transb: "Trans | str" = "N") -> np.ndarray:
        """Batched GEMM on standard ``(batch, rows, cols)`` arrays.

        Interleaves to the compact layout, runs the planned kernels, and
        de-interleaves the result (a convenience wrapper; performance
        studies should hold data compact across many calls).
        """
        if a.ndim != 3 or b.ndim != 3 or c.ndim != 3:
            raise InvalidProblemError("gemm expects (batch, rows, cols) arrays")
        if not (a.shape[0] == b.shape[0] == c.shape[0]):
            raise InvalidProblemError("batch sizes differ between A, B, C")
        dt = BlasDType.from_any(c.dtype)
        ta, tb = Trans.from_any(transa), Trans.from_any(transb)
        m, n = c.shape[1], c.shape[2]
        k = a.shape[2] if ta is Trans.N else a.shape[1]
        problem = GemmProblem(m, n, k, dt, ta, tb, c.shape[0], alpha, beta)
        lanes = self.machine.lanes(dt)
        ca = CompactBatch.from_matrices(a, lanes, dt)
        cb = CompactBatch.from_matrices(b, lanes, dt)
        cc = CompactBatch.from_matrices(c, lanes, dt)
        self.gemm_compact(problem, ca, cb, cc)
        return cc.to_matrices()

    def trsm(self, a: np.ndarray, b: np.ndarray, alpha: complex = 1.0,
             side: "Side | str" = "L", uplo: "UpLo | str" = "L",
             transa: "Trans | str" = "N",
             diag: "Diag | str" = "N") -> np.ndarray:
        """Batched TRSM on standard ``(batch, rows, cols)`` arrays."""
        if a.ndim != 3 or b.ndim != 3:
            raise InvalidProblemError("trsm expects (batch, rows, cols) arrays")
        if a.shape[0] != b.shape[0]:
            raise InvalidProblemError("batch sizes differ between A and B")
        dt = BlasDType.from_any(b.dtype)
        problem = TrsmProblem(b.shape[1], b.shape[2], dt,
                              Side.from_any(side), UpLo.from_any(uplo),
                              Trans.from_any(transa), Diag.from_any(diag),
                              a.shape[0], alpha)
        lanes = self.machine.lanes(dt)
        ca = CompactBatch.from_matrices(a, lanes, dt)
        cb = CompactBatch.from_matrices(b, lanes, dt)
        self.trsm_compact(problem, ca, cb)
        return cb.to_matrices()

    # -- timing -------------------------------------------------------------

    def time_gemm(self, problem: GemmProblem, force_pack: bool = False,
                  autotune: bool = False) -> PlanTiming:
        return self.engine.time_plan(
            self.plan_gemm(problem, force_pack, autotune))

    def time_trsm(self, problem: TrsmProblem,
                  force_pack: bool = False) -> PlanTiming:
        return self.engine.time_plan(self.plan_trsm(problem, force_pack))

    # -- observability ------------------------------------------------------

    def explain_gemm(self, problem: GemmProblem, force_pack: bool = False,
                     autotune: bool = False, deep: bool = False):
        """Narrated run-time-stage decisions for one GEMM shape
        (:class:`repro.obs.ExplainReport`)."""
        plan = self.plan_gemm(problem, force_pack, autotune)
        return obs.explain(plan, registry=self.registry, deep=deep)

    def explain_trsm(self, problem: TrsmProblem, force_pack: bool = False,
                     deep: bool = False):
        """Narrated run-time-stage decisions for one TRSM shape."""
        plan = self.plan_trsm(problem, force_pack)
        return obs.explain(plan, registry=self.registry, deep=deep)
