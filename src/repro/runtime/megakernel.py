"""Trace-compiled "megakernel" executor backend.

Every other backend — including ``fused`` — replays the command stream
instruction by instruction in Python, so interpreter dispatch is the
wall-clock ceiling long before the machine model is.  This module
removes the dispatch entirely: the plan's trace is compiled *once* into
generated Python source of whole-group NumPy array ops (one module per
:class:`~repro.runtime.lowering.CompiledPlan`), byte-compiled with
``compile()``/``exec`` and cached in the plan's ``attachments`` side
slot, so a steady-state run executes a straight line of C-level ufunc
calls with zero per-instruction Python control flow.

The pipeline:

1. :func:`~repro.runtime.lowering.partition_trace` splits the raw
   stream into straight-line segments keyed by ``call_ranges`` (merged
   per kernel, pass-optimized per span) — one generated function per
   segment, so profiler attribution survives codegen.
2. A staging analysis finds buffers whose full-lane loads all precede
   any overlapping store.  Each such buffer is bulk-copied once per
   group block into a contiguous *stage bank* ``S``; the loads
   themselves then compile to nothing — registers become views into
   ``S`` via copy propagation — which removes both the per-load strided
   copies and their replay redundancy (packed panels are re-loaded by
   many calls).
3. ``K_MACC`` macro-ops with outer-product source structure, and runs
   of ``K_FMUL``/``K_FMAI``, compile to single broadcast ufuncs over
   ``(q, p, groups, lanes)`` reshapes.  Every batched form keeps the
   fused replay's exact operation set — per-member multiplies, then one
   elementwise accumulate — so results stay bit-identical to
   ``interpret`` (the equivalence suite enforces it across dtypes,
   modes, TRSM and pack paths).
4. Execution runs the generated functions per L2-sized group block,
   exactly like ``fused`` blocks its replay.

Compilation is observable (``megakernel.compile.*`` counters, one span
per compile) and idempotent: the program rides the lowered plan through
the engine's thread-safe ``PlanCache``, so the second run compiles
nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..errors import ExecutionError
from ..machine.isa import NUM_VREGS
from .lowering import (K_FADD, K_FDIV, K_FIMM, K_FMAI, K_FMLA, K_FMLS,
                       K_FMUL, K_FMULI, K_FSUB, K_LOAD, K_LOAD1R, K_LOAD2,
                       K_LOAD_PART, K_LOADPAIR, K_LOADW, K_MACC, K_STORE,
                       K_STORE2, K_STOREPAIR, K_STOREW, K_VMOV, K_VZERO,
                       CompiledPlan, TraceSegment, lower_plan,
                       partition_trace)

__all__ = ["MegakernelBackend", "MegakernelProgram", "ensure_program",
           "generate_source", "PROGRAM_KEY", "BATCH_MIN"]

PROGRAM_KEY = "megakernel"
"""Key under which the compiled program rides ``CompiledPlan.attachments``."""

BATCH_MIN = 4
"""Shortest FMUL/FMAI run worth collapsing into one broadcast ufunc."""


def _sel_list(sel) -> "list[int]":
    return (list(range(sel.start, sel.stop)) if type(sel) is slice
            else list(sel))


def _outer_product(aids, bids, n):
    """Detect ``aids = tile(inner, q)``, ``bids = repeat(outer, p)``
    with consecutive inner/outer registers — the microkernel broadcast
    structure every FMLA block lowers to.  Returns ``(p, a0, q, b0)``
    or None."""
    for p in range(1, n + 1):
        if n % p:
            continue
        q = n // p
        inner, outer = list(aids[:p]), list(bids[::p])
        if (all(aids[i] == inner[i % p] for i in range(n))
                and all(bids[i] == outer[i // p] for i in range(n))
                and all(inner[i + 1] == inner[i] + 1 for i in range(p - 1))
                and all(outer[i + 1] == outer[i] + 1 for i in range(q - 1))):
            return p, inner[0], q, outer[0]
    return None


@dataclass(frozen=True)
class _Staged:
    """Stage-bank placement of one buffer's loaded column range."""

    lo: int                       # first staged buffer column
    hi: int                       # one past the last staged column
    base: int                     # first slot in the shared stage bank
    slots: int                    # (hi - lo) // lanes


def _analyze_staging(compiled: CompiledPlan,
                     segments: "list[TraceSegment]"
                     ) -> "tuple[dict[str, _Staged], int]":
    """Decide which buffers can be bulk-staged at block start.

    A buffer qualifies when every full-lane load of it precedes the
    first store touching any of that load's columns (so the block-start
    snapshot equals what each load would have read), all loads sit on
    one lanes-aligned column lattice, and the loaded slots cover at
    least half the staged span (staging a mostly-dead range would cost
    more copy traffic than it saves).
    """
    lanes = compiled.lanes
    stores: "dict[str, list[tuple[int, int, int]]]" = {}
    loads: "dict[str, list[tuple[int, int, int]]]" = {}
    idx = 0
    for seg in segments:
        for cmd in seg.commands:
            k = cmd[0]
            if k == K_LOADW:
                _, _dsel, buf, first, n, count, _cf = cmd
                if n == lanes:
                    loads.setdefault(buf, []).append((idx, first, count * n))
            elif k == K_LOAD:
                _, _d, buf, first, n = cmd
                if n == lanes:
                    loads.setdefault(buf, []).append((idx, first, n))
            elif k == K_STORE:
                _, _s, buf, first, n = cmd
                stores.setdefault(buf, []).append((idx, first, first + n))
            elif k in (K_STOREPAIR, K_STORE2):
                _, _s1, _s2, buf, first, n = cmd
                stores.setdefault(buf, []).append((idx, first,
                                                   first + 2 * n))
            elif k == K_STOREW:
                _, _ssel, buf, first, n, count, _cf = cmd
                stores.setdefault(buf, []).append((idx, first,
                                                   first + count * n))
            idx += 1
    staged: "dict[str, _Staged]" = {}
    base = 0
    for name in compiled.buffers:
        cand = loads.get(name)
        if not cand:
            continue
        lo = min(f for _i, f, _c in cand)
        hi = max(f + c for _i, f, c in cand)
        if (hi - lo) % lanes or any((f - lo) % lanes for _i, f, _c in cand):
            continue
        sts = stores.get(name, ())
        if any(si < li and f < shi and slo < f + c
               for li, f, c in cand for si, slo, shi in sts):
            continue
        slots = (hi - lo) // lanes
        covered: "set[int]" = set()
        loaded = 0
        for _i, f, c in cand:
            s0 = (f - lo) // lanes
            covered.update(range(s0, s0 + c // lanes))
            loaded += c // lanes
        # staging pays one extra bank write + read per column, so it
        # only wins when columns are re-loaded (packed panels are read
        # by several calls; a once-read accumulator tile is not) and
        # when the span is mostly live
        if 2 * len(covered) < slots or 2 * loaded < 3 * slots:
            continue
        staged[name] = _Staged(lo=lo, hi=hi, base=base, slots=slots)
        base += slots
    return staged, base


class _Gen:
    """Deterministic source generator for one compiled plan."""

    def __init__(self, compiled: CompiledPlan,
                 segments: "list[TraceSegment]") -> None:
        self.c = compiled
        self.segments = segments
        self.lanes = compiled.lanes
        self.ew = compiled.ew
        self.vb = ((self.lanes * self.ew) // 16
                   if (self.lanes * self.ew) % 16 == 0 else 0)
        self.staged, self.stage_slots = _analyze_staging(compiled, segments)
        self.consts: list = []
        self.prop: "dict[int, int]" = {}      # register -> stage slot
        self.body: "list[str]" = []
        self.used: "set[str]" = set()
        self.stack_need = 0
        self.stats = {"prop_loads": 0, "batched_macc": 0,
                      "scalar_macc": 0, "batched_runs": 0}

    # -- emission helpers --------------------------------------------

    def K(self, v) -> str:
        self.consts.append(v)
        return f"C[{len(self.consts) - 1}]"

    def emit(self, line: str) -> None:
        self.body.append("    " + line)

    def stack(self, n: int) -> None:
        self.stack_need = max(self.stack_need, n)

    def m(self, buf: str) -> str:
        self.used.add("m:" + buf)
        return f"m_{buf}"

    def mc(self, buf: str) -> str:
        self.used.add("mc:" + buf)
        return f"mc_{buf}"

    def s0(self) -> str:
        self.used.add("s0")
        return "s0"

    def s1(self) -> str:
        self.used.add("s1")
        return "s1"

    def rc(self) -> str:
        self.used.add("Rc")
        return "Rc"

    def val(self, r: int) -> str:
        slot = self.prop.get(r)
        return f"R[{r}]" if slot is None else f"S[{slot}]"

    def kill(self, r: int) -> None:
        self.prop.pop(r, None)

    def block_expr(self, regs: "list[int]") -> "str | None":
        """Expression of shape ``(len(regs), g, lanes)`` reading the
        registers without a copy, or None when the mix of propagated
        and materialized registers (or non-consecutive storage) makes
        that impossible."""
        n = len(regs)
        slots = [self.prop.get(r) for r in regs]
        if all(s is None for s in slots):
            if all(regs[i + 1] == regs[i] + 1 for i in range(n - 1)):
                return f"R[{regs[0]}:{regs[0] + n}]"
            return None
        if (all(s is not None for s in slots)
                and all(slots[i + 1] == slots[i] + 1 for i in range(n - 1))):
            return f"S[{slots[0]}:{slots[0] + n}]"
        return None

    def _materialize(self, regs: "list[int]") -> None:
        """Copy propagated registers into the bank before an in-place
        update reads *and* writes them."""
        for r in regs:
            slot = self.prop.get(r)
            if slot is not None:
                self.emit(f"np.copyto(R[{r}], S[{slot}])")
                self.kill(r)

    # -- staged-load bookkeeping -------------------------------------

    def _slot(self, buf: str, first: int) -> "int | None":
        st = self.staged.get(buf)
        if st is None or first < st.lo or first + self.lanes > st.hi:
            return None
        if (first - st.lo) % self.lanes:
            return None
        return st.base + (first - st.lo) // self.lanes

    # -- per-command emission ----------------------------------------

    def _loadw(self, cmd) -> None:
        _, dsel, buf, first, n, count, cf = cmd
        lanes, vb = self.lanes, self.vb
        if n != lanes:
            raise ExecutionError(
                f"K_LOADW carries a partial vector (n={n}, lanes={lanes})")
        regs = _sel_list(dsel)
        if buf in self.staged:
            slot0 = self._slot(buf, first)
            if slot0 is not None:
                for j, r in enumerate(regs):
                    self.prop[r] = slot0 + j
                self.stats["prop_loads"] += 1
                return
        for r in regs:
            self.kill(r)
        if cf >= 0:
            mc = self.mc(buf)
            if count == 1:
                self.emit(f"np.copyto({self.rc()}[{regs[0]}], "
                          f"{mc}[:, {cf}:{cf + vb}])")
                return
            self.emit(f"t = {mc}[:, {cf}:{cf + count * vb}]"
                      f".reshape(-1, {count}, {vb}).transpose(1, 0, 2)")
            if type(dsel) is slice:
                self.emit(f"np.copyto({self.rc()}"
                          f"[{dsel.start}:{dsel.stop}], t)")
            else:
                sel = self.K(np.array(dsel, dtype=np.intp))
                self.emit(f"{self.rc()}[{sel}] = t")
            return
        mname = self.m(buf)
        self.emit(f"t = {mname}[:, {first}:{first + count * n}]"
                  f".reshape(-1, {count}, {n}).transpose(1, 0, 2)")
        if type(dsel) is slice:
            self.emit(f"np.copyto(R[{dsel.start}:{dsel.stop}], t)")
        else:
            sel = self.K(np.array(dsel, dtype=np.intp))
            self.emit(f"R[{sel}] = t")

    def _storew(self, cmd) -> None:
        _, ssel, buf, first, n, count, cf = cmd
        vb = self.vb
        regs = _sel_list(ssel)
        slots = [self.prop.get(r) for r in regs]
        if cf >= 0:
            mc = self.mc(buf)
            if count == 1:
                src = (f"{self.rc()}[{regs[0]}]" if slots[0] is None
                       else f"Sc[{slots[0]}]")
                self.emit(f"np.copyto({mc}[:, {cf}:{cf + vb}], {src})")
                return
            src = None
            if all(s is None for s in slots):
                if all(regs[i + 1] == regs[i] + 1
                       for i in range(count - 1)):
                    src = f"{self.rc()}[{regs[0]}:{regs[0] + count}]"
                else:
                    sel = self.K(np.array(regs, dtype=np.intp))
                    src = f"{self.rc()}[{sel}]"
            elif all(s is not None for s in slots):
                if all(slots[i + 1] == slots[i] + 1
                       for i in range(count - 1)):
                    src = f"Sc[{slots[0]}:{slots[0] + count}]"
                else:
                    sel = self.K(np.array(slots, dtype=np.intp))
                    src = f"Sc[{sel}]"
            if src is not None:
                self.emit(f"np.copyto({mc}[:, {cf}:{cf + count * vb}]"
                          f".reshape(-1, {count}, {vb}), "
                          f"{src}.transpose(1, 0, 2))")
                return
            for j, (r, s) in enumerate(zip(regs, slots)):
                src = f"{self.rc()}[{r}]" if s is None else f"Sc[{s}]"
                self.emit(f"np.copyto({mc}[:, {cf + j * vb}:"
                          f"{cf + (j + 1) * vb}], {src})")
            return
        mname = self.m(buf)
        gs = None
        if all(s is None for s in slots):
            if all(regs[i + 1] == regs[i] + 1 for i in range(count - 1)):
                gs = f"R[{regs[0]}:{regs[0] + count}]"
            else:
                sel = self.K(np.array(regs, dtype=np.intp))
                self.stack(count)
                self.emit(f"g = np.take(R, {sel}, axis=0, "
                          f"out={self.s0()}[:{count}])")
                gs = "g"
        elif all(s is not None for s in slots):
            if all(slots[i + 1] == slots[i] + 1 for i in range(count - 1)):
                gs = f"S[{slots[0]}:{slots[0] + count}]"
            else:
                sel = self.K(np.array(slots, dtype=np.intp))
                self.stack(count)
                self.emit(f"g = np.take(S, {sel}, axis=0, "
                          f"out={self.s0()}[:{count}])")
                gs = "g"
        if gs is not None:
            self.emit(f"np.copyto({mname}[:, {first}:{first + count * n}]"
                      f".reshape(-1, {count}, {n}), "
                      f"{gs}[:, :, :{n}].transpose(1, 0, 2))")
            return
        for j, r in enumerate(regs):
            self.emit(f"np.copyto({mname}[:, {first + j * n}:"
                      f"{first + j * n + n}], {self.val(r)}[:, :{n}])")

    def _macc(self, cmd) -> None:
        _, dsel, aids, bids, neg, n = cmd
        fn = "subtract" if neg else "add"
        is_slice = type(dsel) is slice
        op = _outer_product(aids, bids, n)
        batched = False
        if op is not None and is_slice:
            p, a0, q, b0 = op
            ablk = self.block_expr(list(range(a0, a0 + p)))
            bblk = self.block_expr(list(range(b0, b0 + q)))
            if ablk is not None and bblk is not None:
                self.stack(n)
                self.emit(f"prod = np.multiply(({ablk})[None], "
                          f"({bblk})[:, None], out={self.s0()}[:{n}]"
                          f".reshape({q}, {p}, *R.shape[1:]))")
                batched = True
                self.stats["batched_macc"] += 1
        if not batched:
            for x in range(n):
                self.emit(f"np.multiply({self.val(aids[x])}, "
                          f"{self.val(bids[x])}, out={self.s0()}[{x}])")
            self.stack(n)
            self.stats["scalar_macc"] += 1
        if is_slice:
            d0, d1 = dsel.start, dsel.stop
            regs = list(range(d0, d1))
            slots = [self.prop.get(r) for r in regs]
            if (all(s is not None for s in slots)
                    and all(slots[i + 1] == slots[i] + 1
                            for i in range(n - 1))):
                # accumulators still live in the stage bank: read the
                # snapshot, write the bank — same values as materialize
                # followed by an in-place add, one copy cheaper
                sblk = f"S[{slots[0]}:{slots[0] + n}]"
                if batched:
                    self.emit(f"np.{fn}({sblk}.reshape({q}, {p}, "
                              f"*R.shape[1:]), prod, out=R[{d0}:{d1}]"
                              f".reshape({q}, {p}, *R.shape[1:]))")
                else:
                    self.emit(f"np.{fn}({sblk}, {self.s0()}[:{n}], "
                              f"out=R[{d0}:{d1}])")
                for r in regs:
                    self.kill(r)
                return
            self._materialize(regs)
            if batched:
                self.emit(f"acc = R[{d0}:{d1}]"
                          f".reshape({q}, {p}, *R.shape[1:])")
                self.emit(f"np.{fn}(acc, prod, out=acc)")
            else:
                self.emit(f"acc = R[{d0}:{d1}]")
                self.emit(f"np.{fn}(acc, {self.s0()}[:{n}], out=acc)")
            return
        dlist = _sel_list(dsel)
        self._materialize(dlist)
        sel = self.K(np.array(dsel, dtype=np.intp))
        self.stack(n)
        self.emit(f"acc = np.take(R, {sel}, axis=0, "
                  f"out={self.s1()}[:{n}])")
        prod_expr = "prod" if batched else f"{self.s0()}[:{n}]"
        if batched:
            self.emit(f"np.{fn}(acc.reshape({q}, {p}, *R.shape[1:]), "
                      f"{prod_expr}, out=acc.reshape({q}, {p}, "
                      f"*R.shape[1:]))")
        else:
            self.emit(f"np.{fn}(acc, {prod_expr}, out=acc)")
        self.emit(f"R[{sel}] = acc")

    def _fmul_run(self, cmds: "list[tuple]", i: int) -> int:
        j = i
        while j < len(cmds) and cmds[j][0] == K_FMUL:
            j += 1
        run = cmds[i:j]
        n = len(run)
        dsts = [c[1] for c in run]
        aids = [c[2] for c in run]
        bids = [c[3] for c in run]
        if (n >= BATCH_MIN
                and all(dsts[x + 1] == dsts[x] + 1 for x in range(n - 1))
                and not (set(dsts) & (set(aids) | set(bids)))):
            op = _outer_product(aids, bids, n)
            if op is not None:
                p, a0, q, b0 = op
                ablk = self.block_expr(list(range(a0, a0 + p)))
                bblk = self.block_expr(list(range(b0, b0 + q)))
                if ablk is not None and bblk is not None:
                    for d in dsts:
                        self.kill(d)
                    self.emit(f"np.multiply(({ablk})[None], "
                              f"({bblk})[:, None], "
                              f"out=R[{dsts[0]}:{dsts[0] + n}]"
                              f".reshape({q}, {p}, *R.shape[1:]))")
                    self.stats["batched_runs"] += 1
                    return j
        _, d, a, b = cmds[i]
        av, bv = self.val(a), self.val(b)
        self.kill(d)
        self.emit(f"np.multiply({av}, {bv}, out=R[{d}])")
        return i + 1

    def _fmai_run(self, cmds: "list[tuple]", i: int) -> int:
        cmd = cmds[i]
        imm = cmd[3]
        j = i
        while (j < len(cmds) and cmds[j][0] == K_FMAI
               and cmds[j][3] == imm
               and cmds[j][1] == cmd[1] + (j - i)
               and cmds[j][2] == cmd[2] + (j - i)):
            j += 1
        n = j - i
        dsts = list(range(cmd[1], cmd[1] + n))
        srcs = list(range(cmd[2], cmd[2] + n))
        if n >= BATCH_MIN and not (set(dsts) & set(srcs)):
            sblk = self.block_expr(srcs)
            dblk = self.block_expr(dsts)
            if sblk is not None and dblk is not None:
                self.stack(n)
                self.emit(f"np.multiply({sblk}, {self.K(imm)}, "
                          f"out={self.s0()}[:{n}])")
                for d in dsts:
                    self.kill(d)
                self.emit(f"np.add({dblk}, {self.s0()}[:{n}], "
                          f"out=R[{dsts[0]}:{dsts[0] + n}])")
                self.stats["batched_runs"] += 1
                return j
        _, d, a, imm = cmd
        av, dv = self.val(a), self.val(d)
        self.kill(d)
        self.emit(f"np.multiply({av}, {self.K(imm)}, out=scratch)")
        self.emit(f"np.add({dv}, scratch, out=R[{d}])")
        return i + 1

    def _command(self, cmds: "list[tuple]", i: int) -> int:
        cmd = cmds[i]
        k = cmd[0]
        if k == K_MACC:
            self._macc(cmd)
        elif k == K_LOADW:
            self._loadw(cmd)
        elif k == K_STOREW:
            self._storew(cmd)
        elif k == K_FMUL:
            return self._fmul_run(cmds, i)
        elif k == K_FMAI:
            return self._fmai_run(cmds, i)
        elif k in (K_FMLA, K_FMLS):
            _, d, a, b = cmd
            fn = "add" if k == K_FMLA else "subtract"
            av, bv, dv = self.val(a), self.val(b), self.val(d)
            self.kill(d)
            self.emit(f"np.multiply({av}, {bv}, out=scratch)")
            self.emit(f"np.{fn}({dv}, scratch, out=R[{d}])")
        elif k == K_LOAD:
            _, d, buf, first, n = cmd
            slot = (self._slot(buf, first) if buf in self.staged
                    and n == self.lanes else None)
            if slot is not None:
                self.prop[d] = slot
                self.stats["prop_loads"] += 1
            else:
                self.kill(d)
                self.emit(f"np.copyto(R[{d}], "
                          f"{self.m(buf)}[:, {first}:{first + n}])")
        elif k == K_LOADPAIR:
            _, d1, d2, buf, first, n = cmd
            self.kill(d1)
            self.kill(d2)
            mname = self.m(buf)
            self.emit(f"v = {mname}[:, {first}:{first + 2 * n}]")
            self.emit(f"np.copyto(R[{d1}], v[:, :{n}])")
            self.emit(f"np.copyto(R[{d2}], v[:, {n}:])")
        elif k == K_STORE:
            _, s, buf, first, n = cmd
            self.emit(f"np.copyto({self.m(buf)}[:, {first}:{first + n}], "
                      f"{self.val(s)}[:, :{n}])")
        elif k == K_STOREPAIR:
            _, s1, s2, buf, first, n = cmd
            mname = self.m(buf)
            self.emit(f"v = {mname}[:, {first}:{first + 2 * n}]")
            self.emit(f"np.copyto(v[:, :{n}], {self.val(s1)})")
            self.emit(f"np.copyto(v[:, {n}:], {self.val(s2)})")
        elif k == K_LOAD1R:
            _, d, buf, first = cmd
            self.kill(d)
            self.emit(f"np.copyto(R[{d}], "
                      f"{self.m(buf)}[:, {first}:{first + 1}])")
        elif k == K_LOAD2:
            _, de, do, buf, first, n = cmd
            self.kill(de)
            self.kill(do)
            mname = self.m(buf)
            if n < self.lanes:
                self.emit(f"R[{de}][:, {n}:] = 0.0")
                self.emit(f"R[{do}][:, {n}:] = 0.0")
            self.emit(f"R[{de}][:, :{n}] = "
                      f"{mname}[:, {first}:{first + 2 * n}:2]")
            self.emit(f"R[{do}][:, :{n}] = "
                      f"{mname}[:, {first + 1}:{first + 1 + 2 * n}:2]")
        elif k == K_STORE2:
            _, se, so, buf, first, n = cmd
            mname = self.m(buf)
            self.emit(f"np.copyto({mname}[:, {first}:{first + 2 * n}:2], "
                      f"{self.val(se)}[:, :{n}])")
            self.emit(f"np.copyto({mname}"
                      f"[:, {first + 1}:{first + 1 + 2 * n}:2], "
                      f"{self.val(so)}[:, :{n}])")
        elif k == K_LOAD_PART:
            _, d, buf, first, n = cmd
            self.kill(d)
            self.emit(f"R[{d}][:, {n}:] = 0.0")
            self.emit(f"R[{d}][:, :{n}] = "
                      f"{self.m(buf)}[:, {first}:{first + n}]")
        elif k == K_FMULI:
            _, d, a, imm = cmd
            av = self.val(a)
            self.kill(d)
            self.emit(f"np.multiply({av}, {self.K(imm)}, out=R[{d}])")
        elif k in (K_FADD, K_FSUB, K_FDIV):
            _, d, a, b = cmd
            fn = {K_FADD: "add", K_FSUB: "subtract", K_FDIV: "divide"}[k]
            av, bv = self.val(a), self.val(b)
            self.kill(d)
            self.emit(f"np.{fn}({av}, {bv}, out=R[{d}])")
        elif k == K_VZERO:
            self.kill(cmd[1])
            self.emit(f"R[{cmd[1]}].fill(0.0)")
        elif k == K_VMOV:
            _, d, s = cmd
            slot = self.prop.get(s)
            self.kill(d)
            if slot is not None:
                self.prop[d] = slot
            else:
                self.emit(f"np.copyto(R[{d}], R[{s}])")
        elif k == K_FIMM:
            self.kill(cmd[1])
            self.emit(f"R[{cmd[1]}].fill({self.K(cmd[2])})")
        else:  # pragma: no cover - lowering emits only known kinds
            raise ExecutionError(f"unknown compiled command kind {k}")
        return i + 1

    # -- assembly ----------------------------------------------------

    def _finish_fn(self, name: str) -> "list[str]":
        lines = [f"def {name}(M, S, Sc, R, Rc, scratch, stk, C):"]
        for buf in self.c.buffers:
            if "m:" + buf in self.used:
                lines.append(f"    m_{buf} = M[{buf!r}]")
            if "mc:" + buf in self.used:
                lines.append(f"    mc_{buf} = M[{buf!r}]"
                             f".view(np.complex128)")
        if "s0" in self.used:
            lines.append("    s0 = stk[0]")
        if "s1" in self.used:
            lines.append("    s1 = stk[1]")
        if not self.body:
            lines.append("    pass")
        lines.extend(self.body)
        self.body = []
        self.used = set()
        return lines

    def _stage_fn(self) -> "list[str]":
        lanes, ew, vb = self.lanes, self.ew, self.vb
        lines = ["def _stage(M, S, Sc):"]
        for name, st in self.staged.items():
            lay = self.c.buffers[name]
            if (vb and (st.lo * ew) % 16 == 0
                    and lay.stride_bytes % 16 == 0):
                clo = st.lo * ew // 16
                lines.append(
                    f"    np.copyto(Sc[{st.base}:{st.base + st.slots}], "
                    f"M[{name!r}].view(np.complex128)"
                    f"[:, {clo}:{clo + st.slots * vb}]"
                    f".reshape(-1, {st.slots}, {vb}).transpose(1, 0, 2))")
            else:
                lines.append(
                    f"    np.copyto(S[{st.base}:{st.base + st.slots}], "
                    f"M[{name!r}][:, {st.lo}:{st.hi}]"
                    f".reshape(-1, {st.slots}, {lanes})"
                    f".transpose(1, 0, 2))")
        if not self.staged:
            lines.append("    pass")
        return lines

    def build(self) -> "tuple[str, list, dict]":
        c = self.c
        out = [f"# megakernel program: kind={c.kind} lanes={self.lanes} "
               f"ew={self.ew}",
               f"# segments={len(self.segments)} "
               f"stage_slots={self.stage_slots} "
               f"staged={list(self.staged)!r}"]
        out.extend(self._stage_fn())
        for i, seg in enumerate(self.segments):
            out.append(f"# segment {i}: kernel={seg.kernel} "
                       f"calls={seg.calls} commands={len(seg.commands)}")
            j = 0
            while j < len(seg.commands):
                j = self._command(seg.commands, j)
            out.extend(self._finish_fn(f"_seg{i}"))
        source = "\n".join(out) + "\n"
        meta = {"segments": self.segments, "staged": self.staged,
                "stage_slots": self.stage_slots,
                "stack_need": self.stack_need, "stats": dict(self.stats)}
        return source, self.consts, meta


def generate_source(compiled: CompiledPlan) -> "tuple[str, list, dict]":
    """Generate the megakernel module source for a lowered plan.

    Pure and deterministic: the same plan always yields byte-identical
    source (the determinism test relies on it).  Returns ``(source,
    consts, meta)`` where ``consts`` is the immediate/selector pool the
    generated code indexes as ``C[i]`` and ``meta`` carries the
    segment/staging layout the runner needs.
    """
    return _Gen(compiled, partition_trace(compiled)).build()


@dataclass
class MegakernelProgram:
    """One compiled plan's generated program plus its layout/stats."""

    source: str
    consts: tuple
    stage: "object"               # _stage(M, S, Sc)
    segs: "tuple"                 # _segN(M, S, Sc, R, Rc, scratch, stk, C)
    segments: "tuple[TraceSegment, ...]"
    staged: "dict[str, _Staged]"
    stage_slots: int
    stack_need: int
    stats: dict = field(default_factory=dict)


_COMPILE_LOCK = threading.Lock()


def compile_program(compiled: CompiledPlan) -> MegakernelProgram:
    """Generate + byte-compile a plan's megakernel (no caching)."""
    t0 = time.perf_counter()
    with obs.span("megakernel.compile", kind=compiled.kind):
        source, consts, meta = generate_source(compiled)
        code = compile(source, f"<megakernel:{compiled.kind}>", "exec")
        ns: dict = {"np": np}
        exec(code, ns)                  # noqa: S102 - our own codegen
        segs = tuple(ns[f"_seg{i}"] for i in range(len(meta["segments"])))
    ms = (time.perf_counter() - t0) * 1e3
    loc = source.count("\n")
    stats = dict(meta["stats"])
    stats.update(segments=len(meta["segments"]), loc=loc,
                 compile_ms=ms, stage_slots=meta["stage_slots"])
    obs.count("megakernel.compile.segments", len(meta["segments"]))
    obs.count("megakernel.compile.loc", loc)
    return MegakernelProgram(
        source=source, consts=tuple(consts), stage=ns["_stage"],
        segs=segs, segments=tuple(meta["segments"]),
        staged=meta["staged"], stage_slots=meta["stage_slots"],
        stack_need=meta["stack_need"], stats=stats)


def ensure_program(compiled: CompiledPlan) -> MegakernelProgram:
    """The plan's compiled program, building it at most once.

    The program rides ``CompiledPlan.attachments`` — the engine's
    thread-safe ``PlanCache`` keeps the lowered plan alive across runs,
    so the steady state is a dict lookup (``megakernel.compile.hit``)
    and only the first run pays codegen (``megakernel.compile.miss``).
    """
    prog = compiled.attachments.get(PROGRAM_KEY)
    if prog is not None:
        obs.count("megakernel.compile.hit")
        return prog
    with _COMPILE_LOCK:
        prog = compiled.attachments.get(PROGRAM_KEY)
        if prog is not None:
            obs.count("megakernel.compile.hit")
            return prog
        prog = compile_program(compiled)
        obs.count("megakernel.compile.miss")
        compiled.attachments[PROGRAM_KEY] = prog
    return prog


class MegakernelBackend:
    """Runs the generated straight-line program per L2 group block."""

    name = "megakernel"
    needs_lowering = True

    @staticmethod
    def stream(compiled: CompiledPlan) -> "tuple[list[tuple], int]":
        """What this backend executes, flattened back to a command
        stream (per-segment pass-optimized spans, concatenated) — the
        attribution profiler walks exactly this for
        ``stream="megakernel"``."""
        segments = partition_trace(compiled)
        cmds = [cmd for seg in segments for cmd in seg.commands]
        return cmds, max((s.max_stack for s in segments), default=0)

    @staticmethod
    def _block_groups(l2_bytes: int, lanes: int, itemsize: int,
                      stack_need: int) -> int:
        """Group-block size: large enough to amortize the per-block
        Python calls (the whole point of this backend), small enough
        that the *hot* working set — the macro-op product stack, read
        back immediately after being written — stays L2-resident.  The
        stage and register banks stream sequentially, so unlike
        ``fused`` they are deliberately not charged against L2 here;
        measurement (batch-16384 sgemm8) puts the optimum at the stack
        bound, not the bank bound."""
        hot = 2 * max(stack_need, NUM_VREGS // 4) * lanes * itemsize
        return max(64, min(4096, l2_bytes // hot))

    def run(self, plan, mem, strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        if compiled is None:
            compiled = lower_plan(plan)
        if groups != compiled.groups:
            raise ExecutionError(
                f"compiled plan covers {compiled.groups} groups, "
                f"execution asked for {groups}")
        prog = ensure_program(compiled)
        from .backends import CompiledBackend
        mats = CompiledBackend._bind(compiled, mem, strides, groups)
        if not prog.segs:
            return
        dtype = compiled.dtype
        lanes = compiled.lanes
        itemsize = np.dtype(dtype).itemsize
        cplx = (lanes * itemsize) % 16 == 0
        block = min(groups, self._block_groups(
            plan.machine.l2.size, lanes, itemsize, prog.stack_need))

        def alloc(g: int):
            R = np.empty((NUM_VREGS, g, lanes), dtype=dtype)
            S = np.empty((prog.stage_slots, g, lanes), dtype=dtype)
            scr = np.empty((g, lanes), dtype=dtype)
            stk = (np.empty((2, prog.stack_need, g, lanes), dtype=dtype)
                   if prog.stack_need else None)
            Rc = R.view(np.complex128) if cplx else None
            Sc = S.view(np.complex128) if cplx else None
            return R, S, scr, stk, Rc, Sc

        R, S, scr, stk, Rc, Sc = alloc(block)
        names = list(mats)
        consts = prog.consts
        with np.errstate(all="ignore"):
            for start in range(0, groups, block):
                nb = min(block, groups - start)
                bm = {name: mats[name][start:start + nb]
                      for name in names}
                if nb != block:
                    # a sliced bank cannot reshape contiguously; the
                    # tail block gets (small) fresh arrays instead
                    R, S, scr, stk, Rc, Sc = alloc(nb)
                prog.stage(bm, S, Sc)
                for fn in prog.segs:
                    fn(bm, S, Sc, R, Rc, scr, stk, consts)
