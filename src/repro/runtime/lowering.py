"""Lowering: compile an :class:`ExecutionPlan` into a flat command stream.

The plan layer produces a *command queue* — kernel calls whose programs
the interpreting executor walks instruction by instruction, resolving
every memory operand (pointer lookup, alignment check, bounds check,
per-group index construction) on every call of every batch.  That
per-instruction work is input-independent: offsets depend only on the
problem shape, exactly like the plan itself.  Lowering therefore runs
the whole resolution **once**, producing a :class:`CompiledPlan` the
``compiled`` executor backend can replay with nothing but NumPy slice
views and in-place ufuncs:

* ADDI pointer-bump chains are constant-folded through a symbolic
  scalar register file, so the compiled stream contains no address
  arithmetic at all (PRFM/NOP timing fillers are dropped too);
* every memory operand collapses to ``(buffer, first_element, count,
  step)`` — because group base offsets are affine (``group *
  stride``), the per-group element-index arrays the interpreter builds
  per instruction become column slices of one ``(groups,
  stride_elems)`` view per buffer (:meth:`CompiledCommand.gather_indices`
  reconstructs the explicit index array for parity tests);
* alignment, bounds, def-before-use, and dtype agreement are validated
  a single time here, at lower time, instead of per instruction at run
  time.

Lowering is pure analysis: it never touches matrix data, so a
``CompiledPlan`` is cached alongside its plan in the
:class:`~repro.runtime.iatf.PlanCache` and reused for every batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..codegen import regs
from ..codegen.templates_trsm import PX
from ..errors import LoweringError
from ..machine.isa import NUM_VREGS, Op
from .plan import ExecutionPlan, KernelCall

__all__ = ["CompiledPlan", "CompiledCommand", "BufferLayout", "lower_plan",
           "K_LOAD", "K_LOAD_PART", "K_LOADPAIR", "K_LOAD1R", "K_LOAD2",
           "K_STORE", "K_STOREPAIR", "K_STORE2", "K_FMLA", "K_FMLS",
           "K_FMUL", "K_FMAI", "K_FMULI", "K_FADD", "K_FSUB", "K_FDIV",
           "K_VZERO", "K_VMOV", "K_FIMM"]

# Command kinds.  Integers (not enums) so the replay loop dispatches on
# a plain ``==`` against the tuple head.
K_LOAD = 0        # (kind, dst, buf, first, n)           n == lanes
K_LOAD_PART = 1   # (kind, dst, buf, first, n)           n < lanes, zero tail
K_LOADPAIR = 2    # (kind, dst1, dst2, buf, first, n)    2n consecutive
K_LOAD1R = 3      # (kind, dst, buf, first)              broadcast one elem
K_LOAD2 = 4       # (kind, dste, dsto, buf, first, n)    deinterleave step 2
K_STORE = 5       # (kind, src, buf, first, n)
K_STOREPAIR = 6   # (kind, src1, src2, buf, first, n)
K_STORE2 = 7      # (kind, srce, srco, buf, first, n)    interleave step 2
K_FMLA = 8        # (kind, dst, a, b)                    dst += a * b
K_FMLS = 9        # (kind, dst, a, b)                    dst -= a * b
K_FMUL = 10       # (kind, dst, a, b)
K_FMAI = 11       # (kind, dst, a, imm)                  dst += a * imm
K_FMULI = 12      # (kind, dst, a, imm)
K_FADD = 13       # (kind, dst, a, b)
K_FSUB = 14       # (kind, dst, a, b)
K_FDIV = 15       # (kind, dst, a, b)
K_VZERO = 16      # (kind, dst)
K_VMOV = 17       # (kind, dst, src)
K_FIMM = 18       # (kind, dst, imm)

_MEM_KINDS = frozenset((K_LOAD, K_LOAD_PART, K_LOADPAIR, K_LOAD1R, K_LOAD2,
                        K_STORE, K_STOREPAIR, K_STORE2))


@dataclass(frozen=True)
class BufferLayout:
    """Per-buffer geometry the compiled backend binds against."""

    name: str
    stride_elems: int             # elements between consecutive groups
    itemsize: int                 # bytes per real element

    @property
    def stride_bytes(self) -> int:
        return self.stride_elems * self.itemsize


@dataclass(frozen=True)
class CompiledCommand:
    """Debug/reporting view of one lowered command (tests, explain)."""

    kind: int
    raw: tuple

    @property
    def is_mem(self) -> bool:
        return self.kind in _MEM_KINDS

    def access(self) -> "tuple[str, int, int, int]":
        """Memory footprint as (buffer, first_element, count, step)."""
        if not self.is_mem:
            raise LoweringError(f"command kind {self.kind} touches no memory")
        k = self.kind
        if k in (K_LOAD, K_LOAD_PART, K_STORE):
            _, _, buf, first, n = self.raw
            return buf, first, n, 1
        if k in (K_LOADPAIR, K_STOREPAIR):
            _, _, _, buf, first, n = self.raw
            return buf, first, 2 * n, 1
        if k == K_LOAD1R:
            _, _, buf, first = self.raw
            return buf, first, 1, 1
        # K_LOAD2 / K_STORE2: 2n elements at step 1, consumed pairwise
        _, _, _, buf, first, n = self.raw
        return buf, first, 2 * n, 1

    def gather_indices(self, groups: int, stride_elems: int) -> np.ndarray:
        """The explicit ``(groups, count)`` element-index array this
        command's slice view stands for — bit-for-bit what the
        interpreter's address resolution would build per call."""
        _, first, count, _ = self.access()
        base = np.arange(groups, dtype=np.int64) * stride_elems + first
        return base[:, None] + np.arange(count, dtype=np.int64)[None, :]


@dataclass
class CompiledPlan:
    """A plan lowered to a replayable flat command stream.

    ``commands`` is a list of plain tuples headed by a ``K_*`` kind;
    :class:`~repro.runtime.backends.CompiledBackend` replays them
    against one 2-D ``(groups, stride_elems)`` view per buffer with a
    preallocated vector-register file.  Everything input-dependent was
    resolved at lower time; replay performs zero address arithmetic.
    """

    kind: str                     # "gemm" | "trsm" | "trmm"
    groups: int
    lanes: int
    ew: int                       # element width in bytes (4 or 8)
    buffers: dict[str, BufferLayout]
    commands: list[tuple]
    stats: dict = field(default_factory=dict)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.ew == 4 else np.float64)

    @property
    def num_commands(self) -> int:
        return len(self.commands)

    def command(self, i: int) -> CompiledCommand:
        return CompiledCommand(self.commands[i][0], self.commands[i])

    def mem_commands(self) -> "list[CompiledCommand]":
        return [c for c in map(lambda t: CompiledCommand(t[0], t), self.commands)
                if c.is_mem]

    def describe(self) -> str:
        s = self.stats
        return (f"CompiledPlan[{self.kind}] {self.num_commands} commands "
                f"({s.get('mem_commands', 0)} mem, {s.get('fp_commands', 0)} fp) "
                f"from {s.get('calls', 0)} calls / "
                f"{s.get('instructions', 0)} instructions; "
                f"{s.get('folded_addi', 0)} ADDIs folded, "
                f"{s.get('dropped', 0)} PRFM/NOP dropped")


def _root_pointers(call: KernelCall) -> "dict[int, tuple[str, int]]":
    """Initial scalar-register bindings, in the engine's binding order
    (PX last, mirroring ``set_pointer`` overwrite semantics)."""
    roots = {regs.PA: (call.a_buf, call.a_off),
             regs.PB: (call.b_buf, call.b_off)}
    for j, off in enumerate(call.c_offsets):
        roots[regs.pc(j)] = (call.c_buf, off)
    if call.x_buf is not None:
        roots[PX] = (call.x_buf, call.x_off)
    return roots


def lower_plan(plan: ExecutionPlan) -> CompiledPlan:
    """Lower a plan once; the result replays for every batch.

    Raises :class:`LoweringError` on anything the interpreter would only
    catch at run time (misalignment, out-of-group-bounds access,
    register read-before-write) and on dtype/stride geometry the
    compiled backend cannot replay — the error surfaces at plan time,
    before any data is touched.
    """
    with obs.span("lower.plan", kind=plan.kind, calls=len(plan.calls)):
        compiled = _lower(plan)
    obs.count("lower.plans")
    obs.count("lower.commands", compiled.num_commands)
    obs.count("lower.folded_addi", compiled.stats["folded_addi"])
    return compiled


def _lower(plan: ExecutionPlan) -> CompiledPlan:
    if not plan.calls:
        raise LoweringError(f"{plan.kind} plan has no kernel calls")
    ew = plan.calls[0].program.ew
    lanes = plan.calls[0].program.lanes
    isz = ew

    layouts: dict[str, BufferLayout] = {}

    def layout(buf: str) -> BufferLayout:
        lay = layouts.get(buf)
        if lay is None:
            spec = plan.buffers.get(buf)
            if spec is None:
                raise LoweringError(f"plan addresses unknown buffer {buf!r}")
            if spec.group_stride_bytes % isz:
                raise LoweringError(
                    f"buffer {buf!r} group stride {spec.group_stride_bytes} B "
                    f"is not a multiple of the element width {isz}")
            lay = BufferLayout(buf, spec.group_stride_bytes // isz, isz)
            layouts[buf] = lay
        return lay

    commands: list[tuple] = []
    folded = dropped = instructions = 0

    for ci, call in enumerate(plan.calls):
        prog = call.program
        if prog.ew != ew or prog.lanes != lanes:
            raise LoweringError(
                f"{prog.name}: mixed element geometry in one plan "
                f"(ew={prog.ew}/{ew}, lanes={prog.lanes}/{lanes})")
        xstate = _root_pointers(call)
        written: set[int] = set()
        instructions += len(prog.instrs)

        def err(pc: int, msg: str) -> LoweringError:
            ins = prog.instrs[pc]
            return LoweringError(
                f"{prog.name} @pc={pc} ({ins.asm()}) [call {ci}]: {msg}")

        def resolve(pc: int, n_elems: int) -> "tuple[str, int]":
            """Fold the memory operand to (buffer, first element) and
            run the one-time alignment/bounds validation."""
            ins = prog.instrs[pc]
            root = xstate.get(ins.base)
            if root is None:
                raise err(pc, f"scalar register x{ins.base} read before write")
            buf, off = root
            lay = layout(buf)
            byte = off + ins.offset
            if byte % isz:
                raise err(pc, f"misaligned access into {buf!r} (offset "
                              f"{byte} not a multiple of {isz})")
            first = byte // isz
            if first < 0 or first + n_elems > lay.stride_elems:
                raise err(pc, f"access [{first}, {first + n_elems}) of "
                              f"{buf!r} leaves the group stride "
                              f"({lay.stride_elems} elements)")
            return buf, first

        def read_vregs(pc: int, vreg_ids: "tuple[int, ...]") -> None:
            for r in vreg_ids:
                if r not in written:
                    raise err(pc, f"vector register v{r} read before write")

        for pc, ins in enumerate(prog.instrs):
            op = ins.op
            if op is Op.ADDI:
                root = xstate.get(ins.xsrc)
                if root is None:
                    raise err(pc, f"scalar register x{ins.xsrc} read "
                                  f"before write")
                xstate[ins.xdst] = (root[0], root[1] + ins.ximm)
                folded += 1
            elif op in (Op.PRFM, Op.NOP):
                dropped += 1
            elif op is Op.LDRV:
                n = ins.nlanes if ins.nlanes is not None else lanes
                buf, first = resolve(pc, n)
                commands.append(((K_LOAD_PART if n < lanes else K_LOAD),
                                 ins.dst[0], buf, first, n))
                written.add(ins.dst[0])
            elif op is Op.LDPV:
                buf, first = resolve(pc, 2 * lanes)
                commands.append((K_LOADPAIR, ins.dst[0], ins.dst[1], buf,
                                 first, lanes))
                written.update(ins.dst)
            elif op is Op.LD1R:
                buf, first = resolve(pc, 1)
                commands.append((K_LOAD1R, ins.dst[0], buf, first))
                written.add(ins.dst[0])
            elif op is Op.LD2V:
                n = ins.nlanes if ins.nlanes is not None else lanes
                buf, first = resolve(pc, 2 * n)
                commands.append((K_LOAD2, ins.dst[0], ins.dst[1], buf,
                                 first, n))
                written.update(ins.dst)
            elif op is Op.ST2V:
                n = ins.nlanes if ins.nlanes is not None else lanes
                read_vregs(pc, ins.srcs)
                buf, first = resolve(pc, 2 * n)
                commands.append((K_STORE2, ins.srcs[0], ins.srcs[1], buf,
                                 first, n))
            elif op is Op.STRV:
                n = ins.nlanes if ins.nlanes is not None else lanes
                read_vregs(pc, ins.srcs)
                buf, first = resolve(pc, n)
                commands.append((K_STORE, ins.srcs[0], buf, first, n))
            elif op is Op.STPV:
                read_vregs(pc, ins.srcs)
                buf, first = resolve(pc, 2 * lanes)
                commands.append((K_STOREPAIR, ins.srcs[0], ins.srcs[1], buf,
                                 first, lanes))
            elif op is Op.FMLA:
                read_vregs(pc, ins.reads)
                commands.append((K_FMLA, ins.dst[0], ins.srcs[0], ins.srcs[1]))
            elif op is Op.FMLS:
                read_vregs(pc, ins.reads)
                commands.append((K_FMLS, ins.dst[0], ins.srcs[0], ins.srcs[1]))
            elif op is Op.FMUL:
                read_vregs(pc, ins.reads)
                commands.append((K_FMUL, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.FMAI:
                read_vregs(pc, ins.reads)
                commands.append((K_FMAI, ins.dst[0], ins.srcs[0],
                                 _imm(ins.imm, ew)))
            elif op is Op.FMULI:
                read_vregs(pc, ins.reads)
                commands.append((K_FMULI, ins.dst[0], ins.srcs[0],
                                 _imm(ins.imm, ew)))
                written.add(ins.dst[0])
            elif op is Op.FADD:
                read_vregs(pc, ins.reads)
                commands.append((K_FADD, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.FSUB:
                read_vregs(pc, ins.reads)
                commands.append((K_FSUB, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.FDIV:
                read_vregs(pc, ins.reads)
                commands.append((K_FDIV, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.VZERO:
                commands.append((K_VZERO, ins.dst[0]))
                written.add(ins.dst[0])
            elif op is Op.VMOV:
                read_vregs(pc, ins.srcs)
                commands.append((K_VMOV, ins.dst[0], ins.srcs[0]))
                written.add(ins.dst[0])
            elif op is Op.FIMM:
                commands.append((K_FIMM, ins.dst[0], _imm(ins.imm, ew)))
                written.add(ins.dst[0])
            else:  # pragma: no cover - exhaustive over the ISA
                raise err(pc, f"unimplemented opcode {op}")

    mem_commands = sum(1 for c in commands if c[0] in _MEM_KINDS)
    return CompiledPlan(
        kind=plan.kind, groups=plan.groups, lanes=lanes, ew=ew,
        buffers=layouts, commands=commands,
        stats={"calls": len(plan.calls), "instructions": instructions,
               "mem_commands": mem_commands,
               "fp_commands": len(commands) - mem_commands,
               "folded_addi": folded, "dropped": dropped})


def _imm(value: float, ew: int):
    """Immediates are pre-cast to the element dtype at lower time, so
    replay rounds exactly like the interpreter's ``dtype.type(imm)``."""
    return (np.float32 if ew == 4 else np.float64)(value)
