"""Lowering: compile an :class:`ExecutionPlan` into a flat command stream.

The plan layer produces a *command queue* — kernel calls whose programs
the interpreting executor walks instruction by instruction, resolving
every memory operand (pointer lookup, alignment check, bounds check,
per-group index construction) on every call of every batch.  That
per-instruction work is input-independent: offsets depend only on the
problem shape, exactly like the plan itself.  Lowering therefore runs
the whole resolution **once**, producing a :class:`CompiledPlan` the
``compiled`` executor backend can replay with nothing but NumPy slice
views and in-place ufuncs:

* ADDI pointer-bump chains are constant-folded through a symbolic
  scalar register file, so the compiled stream contains no address
  arithmetic at all (PRFM/NOP timing fillers are dropped too);
* every memory operand collapses to ``(buffer, first_element, count,
  step)`` — because group base offsets are affine (``group *
  stride``), the per-group element-index arrays the interpreter builds
  per instruction become column slices of one ``(groups,
  stride_elems)`` view per buffer (:meth:`CompiledCommand.gather_indices`
  reconstructs the explicit index array for parity tests);
* alignment, bounds, def-before-use, and dtype agreement are validated
  a single time here, at lower time, instead of per instruction at run
  time.

Lowering is pure analysis: it never touches matrix data, so a
``CompiledPlan`` is cached alongside its plan in the
:class:`~repro.runtime.iatf.PlanCache` and reused for every batch.

After validation an **optimizing pass pipeline** (:func:`optimize_commands`)
rewrites a second copy of the stream into macro-ops the ``fused``
backend replays with far fewer ufunc dispatches:

1. *dead-code elimination* — commands whose written registers are never
   read before being overwritten (or before the stream ends) are
   dropped; stores always survive (memory is the observable output);
2. *FMLA-chain fusion* — dependence-free runs of ``K_FMLA``/``K_FMLS``
   collapse into one ``K_MACC`` macro-op: a single stacked ``(chain,
   groups, lanes)`` multiply followed by accumulation that is bit-exact
   by construction (repeated accumulators keep the original
   left-to-right sequential ``add``/``subtract`` order; provably
   independent accumulators may accumulate as one vectorized op);
3. *load/store coalescing* — adjacent full-lane loads (stores) from
   contiguous memory merge into one wide ``K_LOADW`` (``K_STOREW``)
   strided copy.

Every pass preserves bit-identical memory effects, so the equivalence
contract (same bytes as ``interpret``) holds for the optimized stream
too.  The raw stream is kept alongside (``commands`` vs
``fused_commands``) so ``compiled`` and ``fused`` share one cached
lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..codegen import regs
from ..codegen.templates_trsm import PX
from ..errors import LoweringError
from ..machine.isa import NUM_VREGS, Op
from .plan import ExecutionPlan, KernelCall

__all__ = ["CompiledPlan", "CompiledCommand", "BufferLayout", "lower_plan",
           "optimize_commands", "FUSE_MIN_CHAIN",
           "TraceSegment", "partition_trace",
           "K_LOAD", "K_LOAD_PART", "K_LOADPAIR", "K_LOAD1R", "K_LOAD2",
           "K_STORE", "K_STOREPAIR", "K_STORE2", "K_FMLA", "K_FMLS",
           "K_FMUL", "K_FMAI", "K_FMULI", "K_FADD", "K_FSUB", "K_FDIV",
           "K_VZERO", "K_VMOV", "K_FIMM", "K_MACC", "K_LOADW", "K_STOREW"]

# Command kinds.  Integers (not enums) so the replay loop dispatches on
# a plain ``==`` against the tuple head.
K_LOAD = 0        # (kind, dst, buf, first, n)           n == lanes
K_LOAD_PART = 1   # (kind, dst, buf, first, n)           n < lanes, zero tail
K_LOADPAIR = 2    # (kind, dst1, dst2, buf, first, n)    2n consecutive
K_LOAD1R = 3      # (kind, dst, buf, first)              broadcast one elem
K_LOAD2 = 4       # (kind, dste, dsto, buf, first, n)    deinterleave step 2
K_STORE = 5       # (kind, src, buf, first, n)
K_STOREPAIR = 6   # (kind, src1, src2, buf, first, n)
K_STORE2 = 7      # (kind, srce, srco, buf, first, n)    interleave step 2
K_FMLA = 8        # (kind, dst, a, b)                    dst += a * b
K_FMLS = 9        # (kind, dst, a, b)                    dst -= a * b
K_FMUL = 10       # (kind, dst, a, b)
K_FMAI = 11       # (kind, dst, a, imm)                  dst += a * imm
K_FMULI = 12      # (kind, dst, a, imm)
K_FADD = 13       # (kind, dst, a, b)
K_FSUB = 14       # (kind, dst, a, b)
K_FDIV = 15       # (kind, dst, a, b)
K_VZERO = 16      # (kind, dst)
K_VMOV = 17       # (kind, dst, src)
K_FIMM = 18       # (kind, dst, imm)

# Macro-op kinds produced only by the pass pipeline (never by _lower);
# they appear in ``CompiledPlan.fused_commands`` exclusively.
K_MACC = 19       # (kind, dsel, aids, bids, neg, n)
#   n multiplies of (a, b) register pairs into a product stack, then ONE
#   vectorized add/subtract (neg=True for an FMLS chain) of the stack
#   into rbank[dsel] (slice or index array).  ``aids``/``bids`` are
#   plain int tuples: sources repeat across members (the microkernel
#   broadcast registers), so they can never form a slice — replaying
#   them as per-member multiplies out of the register file avoids the
#   full-bandwidth gather copy a stacked multiply would need.  Fusion
#   only emits chains whose accumulators are distinct with one uniform
#   sign, so the vectorized accumulate touches each element exactly
#   once — bit-identical to the raw left-to-right replay.
K_LOADW = 20      # (kind, dsel, buf, first, n, count, cfirst)
K_STOREW = 21     # (kind, ssel, buf, first, n, count, cfirst)
#   count registers of n consecutive columns each in one copy.  When
#   the geometry allows (vector, offset and group stride all multiples
#   of 16 bytes) ``cfirst`` holds the offset in 16-byte units and the
#   copy runs elementwise over a complex128 reinterpretation of both
#   sides: one C-level strided loop moving 16 B per element, instead of
#   a segmented float copy paying per-16-B-segment loop overhead — the
#   bytes moved are identical, so the result is too.  ``cfirst`` is -1
#   when the fallback float path must be used.

_MEM_KINDS = frozenset((K_LOAD, K_LOAD_PART, K_LOADPAIR, K_LOAD1R, K_LOAD2,
                        K_STORE, K_STOREPAIR, K_STORE2))

FUSE_MIN_CHAIN = 4
"""Shortest FMLA/FMLS segment worth fusing: ``c`` raw commands cost
``2c`` ufunc dispatches (multiply + accumulate each), the macro-op
``c + 1`` plus the accumulate's stack traffic — the crossover is at
about 4 members."""


@dataclass(frozen=True)
class BufferLayout:
    """Per-buffer geometry the compiled backend binds against."""

    name: str
    stride_elems: int             # elements between consecutive groups
    itemsize: int                 # bytes per real element

    @property
    def stride_bytes(self) -> int:
        return self.stride_elems * self.itemsize


@dataclass(frozen=True)
class CompiledCommand:
    """Debug/reporting view of one lowered command (tests, explain)."""

    kind: int
    raw: tuple

    @property
    def is_mem(self) -> bool:
        return self.kind in _MEM_KINDS

    def access(self) -> "tuple[str, int, int, int]":
        """Memory footprint as (buffer, first_element, count, step)."""
        if not self.is_mem:
            raise LoweringError(f"command kind {self.kind} touches no memory")
        k = self.kind
        if k in (K_LOAD, K_LOAD_PART, K_STORE):
            _, _, buf, first, n = self.raw
            return buf, first, n, 1
        if k in (K_LOADPAIR, K_STOREPAIR):
            _, _, _, buf, first, n = self.raw
            return buf, first, 2 * n, 1
        if k == K_LOAD1R:
            _, _, buf, first = self.raw
            return buf, first, 1, 1
        # K_LOAD2 / K_STORE2: 2n elements at step 1, consumed pairwise
        _, _, _, buf, first, n = self.raw
        return buf, first, 2 * n, 1

    def gather_indices(self, groups: int, stride_elems: int) -> np.ndarray:
        """The explicit ``(groups, count)`` element-index array this
        command's slice view stands for — bit-for-bit what the
        interpreter's address resolution would build per call."""
        _, first, count, _ = self.access()
        base = np.arange(groups, dtype=np.int64) * stride_elems + first
        return base[:, None] + np.arange(count, dtype=np.int64)[None, :]


@dataclass
class CompiledPlan:
    """A plan lowered to a replayable flat command stream.

    ``commands`` is a list of plain tuples headed by a ``K_*`` kind;
    :class:`~repro.runtime.backends.CompiledBackend` replays them
    against one 2-D ``(groups, stride_elems)`` view per buffer with a
    preallocated vector-register file.  Everything input-dependent was
    resolved at lower time; replay performs zero address arithmetic.
    """

    kind: str                     # "gemm" | "trsm" | "trmm"
    groups: int
    lanes: int
    ew: int                       # element width in bytes (4 or 8)
    buffers: dict[str, BufferLayout]
    commands: list[tuple]
    fused_commands: list = field(default_factory=list)
    """The pass-optimized stream (macro-ops allowed) the ``fused``
    backend replays; ``commands`` stays the validated raw stream."""
    call_ranges: "list[tuple[str, int, int]]" = field(default_factory=list)
    """``(kernel_name, start, stop)`` per plan call over ``commands`` —
    which slice of the raw stream each kernel invocation lowered to.
    The pass pipeline reorders and merges across these boundaries, so
    the ranges index the raw stream only (the profiler's per-kernel
    attribution is raw-stream territory)."""
    stats: dict = field(default_factory=dict)
    attachments: dict = field(default_factory=dict, compare=False,
                              repr=False)
    """Side slot for derived per-plan artifacts (e.g. the megakernel's
    compiled program).  Excluded from equality; shared — deliberately —
    by the shallow :meth:`for_groups` copies the ``parallel`` backend
    makes, so shards reuse the one compiled artifact.  Not pickled
    (artifacts hold code objects); see ``__getstate__``."""

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.ew == 4 else np.float64)

    @property
    def num_commands(self) -> int:
        return len(self.commands)

    def command(self, i: int) -> CompiledCommand:
        return CompiledCommand(self.commands[i][0], self.commands[i])

    def mem_commands(self) -> "list[CompiledCommand]":
        return [c for c in map(lambda t: CompiledCommand(t[0], t), self.commands)
                if c.is_mem]

    def __getstate__(self) -> dict:
        # attachments carry compiled code objects (unpicklable) and are
        # re-derivable from the plan; drop them when crossing a process
        # boundary (the parallel backend's process mode pickles plans)
        state = self.__dict__.copy()
        state["attachments"] = {}
        return state

    def for_groups(self, groups: int) -> "CompiledPlan":
        """A shallow copy covering a different group count.

        Commands and buffer layouts are group-independent (group base
        offsets are affine), so sharding the group axis — the
        ``parallel`` backend's whole job — only needs the count
        adjusted; the command streams are shared, never copied.
        """
        if groups == self.groups:
            return self
        from dataclasses import replace
        return replace(self, groups=groups)

    def describe(self) -> str:
        s = self.stats
        text = (f"CompiledPlan[{self.kind}] {self.num_commands} commands "
                f"({s.get('mem_commands', 0)} mem, {s.get('fp_commands', 0)} fp) "
                f"from {s.get('calls', 0)} calls / "
                f"{s.get('instructions', 0)} instructions; "
                f"{s.get('folded_addi', 0)} ADDIs folded, "
                f"{s.get('dropped', 0)} PRFM/NOP dropped")
        p = s.get("passes")
        if p:
            text += (f"; optimized {p['commands_before']} -> "
                     f"{p['commands_after']} ({p['fuse_chains']} fused "
                     f"chains, {p['coalesce_loads'] + p['coalesce_stores']} "
                     f"wide copies, {p['dce_removed']} dead)")
        return text


def _root_pointers(call: KernelCall) -> "dict[int, tuple[str, int]]":
    """Initial scalar-register bindings, in the engine's binding order
    (PX last, mirroring ``set_pointer`` overwrite semantics)."""
    roots = {regs.PA: (call.a_buf, call.a_off),
             regs.PB: (call.b_buf, call.b_off)}
    for j, off in enumerate(call.c_offsets):
        roots[regs.pc(j)] = (call.c_buf, off)
    if call.x_buf is not None:
        roots[PX] = (call.x_buf, call.x_off)
    return roots


def lower_plan(plan: ExecutionPlan) -> CompiledPlan:
    """Lower a plan once; the result replays for every batch.

    Raises :class:`LoweringError` on anything the interpreter would only
    catch at run time (misalignment, out-of-group-bounds access,
    register read-before-write) and on dtype/stride geometry the
    compiled backend cannot replay — the error surfaces at plan time,
    before any data is touched.
    """
    with obs.span("lower.plan", kind=plan.kind, calls=len(plan.calls)):
        compiled = _lower(plan)
    obs.count("lower.plans")
    obs.count("lower.commands", compiled.num_commands)
    obs.count("lower.folded_addi", compiled.stats["folded_addi"])
    passes = compiled.stats["passes"]
    obs.count("lower.dce.removed", passes["dce_removed"])
    obs.count("lower.fuse.chains", passes["fuse_chains"])
    obs.count("lower.fuse.commands", passes["fuse_commands"])
    obs.count("lower.coalesce.merged", passes["coalesce_commands"])
    return compiled


def _lower(plan: ExecutionPlan) -> CompiledPlan:
    if not plan.calls:
        raise LoweringError(f"{plan.kind} plan has no kernel calls")
    ew = plan.calls[0].program.ew
    lanes = plan.calls[0].program.lanes
    isz = ew

    layouts: dict[str, BufferLayout] = {}

    def layout(buf: str) -> BufferLayout:
        lay = layouts.get(buf)
        if lay is None:
            spec = plan.buffers.get(buf)
            if spec is None:
                raise LoweringError(f"plan addresses unknown buffer {buf!r}")
            if spec.group_stride_bytes % isz:
                raise LoweringError(
                    f"buffer {buf!r} group stride {spec.group_stride_bytes} B "
                    f"is not a multiple of the element width {isz}")
            lay = BufferLayout(buf, spec.group_stride_bytes // isz, isz)
            layouts[buf] = lay
        return lay

    commands: list[tuple] = []
    call_ranges: "list[tuple[str, int, int]]" = []
    folded = dropped = instructions = 0

    for ci, call in enumerate(plan.calls):
        call_start = len(commands)
        prog = call.program
        if prog.ew != ew or prog.lanes != lanes:
            raise LoweringError(
                f"{prog.name}: mixed element geometry in one plan "
                f"(ew={prog.ew}/{ew}, lanes={prog.lanes}/{lanes})")
        xstate = _root_pointers(call)
        written: set[int] = set()
        instructions += len(prog.instrs)

        def err(pc: int, msg: str) -> LoweringError:
            ins = prog.instrs[pc]
            return LoweringError(
                f"{prog.name} @pc={pc} ({ins.asm()}) [call {ci}]: {msg}")

        def resolve(pc: int, n_elems: int) -> "tuple[str, int]":
            """Fold the memory operand to (buffer, first element) and
            run the one-time alignment/bounds validation."""
            ins = prog.instrs[pc]
            root = xstate.get(ins.base)
            if root is None:
                raise err(pc, f"scalar register x{ins.base} read before write")
            buf, off = root
            lay = layout(buf)
            byte = off + ins.offset
            if byte % isz:
                raise err(pc, f"misaligned access into {buf!r} (offset "
                              f"{byte} not a multiple of {isz})")
            first = byte // isz
            if first < 0 or first + n_elems > lay.stride_elems:
                raise err(pc, f"access [{first}, {first + n_elems}) of "
                              f"{buf!r} leaves the group stride "
                              f"({lay.stride_elems} elements)")
            return buf, first

        def read_vregs(pc: int, vreg_ids: "tuple[int, ...]") -> None:
            for r in vreg_ids:
                if r not in written:
                    raise err(pc, f"vector register v{r} read before write")

        for pc, ins in enumerate(prog.instrs):
            op = ins.op
            if op is Op.ADDI:
                root = xstate.get(ins.xsrc)
                if root is None:
                    raise err(pc, f"scalar register x{ins.xsrc} read "
                                  f"before write")
                xstate[ins.xdst] = (root[0], root[1] + ins.ximm)
                folded += 1
            elif op in (Op.PRFM, Op.NOP):
                dropped += 1
            elif op is Op.LDRV:
                n = ins.nlanes if ins.nlanes is not None else lanes
                buf, first = resolve(pc, n)
                commands.append(((K_LOAD_PART if n < lanes else K_LOAD),
                                 ins.dst[0], buf, first, n))
                written.add(ins.dst[0])
            elif op is Op.LDPV:
                buf, first = resolve(pc, 2 * lanes)
                commands.append((K_LOADPAIR, ins.dst[0], ins.dst[1], buf,
                                 first, lanes))
                written.update(ins.dst)
            elif op is Op.LD1R:
                buf, first = resolve(pc, 1)
                commands.append((K_LOAD1R, ins.dst[0], buf, first))
                written.add(ins.dst[0])
            elif op is Op.LD2V:
                n = ins.nlanes if ins.nlanes is not None else lanes
                buf, first = resolve(pc, 2 * n)
                commands.append((K_LOAD2, ins.dst[0], ins.dst[1], buf,
                                 first, n))
                written.update(ins.dst)
            elif op is Op.ST2V:
                n = ins.nlanes if ins.nlanes is not None else lanes
                read_vregs(pc, ins.srcs)
                buf, first = resolve(pc, 2 * n)
                commands.append((K_STORE2, ins.srcs[0], ins.srcs[1], buf,
                                 first, n))
            elif op is Op.STRV:
                n = ins.nlanes if ins.nlanes is not None else lanes
                read_vregs(pc, ins.srcs)
                buf, first = resolve(pc, n)
                commands.append((K_STORE, ins.srcs[0], buf, first, n))
            elif op is Op.STPV:
                read_vregs(pc, ins.srcs)
                buf, first = resolve(pc, 2 * lanes)
                commands.append((K_STOREPAIR, ins.srcs[0], ins.srcs[1], buf,
                                 first, lanes))
            elif op is Op.FMLA:
                read_vregs(pc, ins.reads)
                commands.append((K_FMLA, ins.dst[0], ins.srcs[0], ins.srcs[1]))
            elif op is Op.FMLS:
                read_vregs(pc, ins.reads)
                commands.append((K_FMLS, ins.dst[0], ins.srcs[0], ins.srcs[1]))
            elif op is Op.FMUL:
                read_vregs(pc, ins.reads)
                commands.append((K_FMUL, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.FMAI:
                read_vregs(pc, ins.reads)
                commands.append((K_FMAI, ins.dst[0], ins.srcs[0],
                                 _imm(ins.imm, ew)))
            elif op is Op.FMULI:
                read_vregs(pc, ins.reads)
                commands.append((K_FMULI, ins.dst[0], ins.srcs[0],
                                 _imm(ins.imm, ew)))
                written.add(ins.dst[0])
            elif op is Op.FADD:
                read_vregs(pc, ins.reads)
                commands.append((K_FADD, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.FSUB:
                read_vregs(pc, ins.reads)
                commands.append((K_FSUB, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.FDIV:
                read_vregs(pc, ins.reads)
                commands.append((K_FDIV, ins.dst[0], ins.srcs[0], ins.srcs[1]))
                written.add(ins.dst[0])
            elif op is Op.VZERO:
                commands.append((K_VZERO, ins.dst[0]))
                written.add(ins.dst[0])
            elif op is Op.VMOV:
                read_vregs(pc, ins.srcs)
                commands.append((K_VMOV, ins.dst[0], ins.srcs[0]))
                written.add(ins.dst[0])
            elif op is Op.FIMM:
                commands.append((K_FIMM, ins.dst[0], _imm(ins.imm, ew)))
                written.add(ins.dst[0])
            else:  # pragma: no cover - exhaustive over the ISA
                raise err(pc, f"unimplemented opcode {op}")
        call_ranges.append((prog.name, call_start, len(commands)))

    mem_commands = sum(1 for c in commands if c[0] in _MEM_KINDS)
    fused_commands, passes = optimize_commands(
        commands, lanes, ew,
        {name: lay.stride_bytes for name, lay in layouts.items()})
    return CompiledPlan(
        kind=plan.kind, groups=plan.groups, lanes=lanes, ew=ew,
        buffers=layouts, commands=commands, fused_commands=fused_commands,
        call_ranges=call_ranges,
        stats={"calls": len(plan.calls), "instructions": instructions,
               "mem_commands": mem_commands,
               "fp_commands": len(commands) - mem_commands,
               "folded_addi": folded, "dropped": dropped,
               "passes": passes})


# ---------------------------------------------------------------------------
# the optimizing pass pipeline (raw stream -> fused stream)
# ---------------------------------------------------------------------------

def _rw(cmd: tuple) -> "tuple[tuple, tuple]":
    """(registers read, registers written) of one raw command.

    FMLA/FMLS/FMAI read their destination (read-modify-write), so DCE
    can never treat the accumulated-into value as dead.
    """
    k = cmd[0]
    if k in (K_LOAD, K_LOAD_PART, K_LOAD1R):
        return (), (cmd[1],)
    if k in (K_LOADPAIR, K_LOAD2):
        return (), (cmd[1], cmd[2])
    if k == K_STORE:
        return (cmd[1],), ()
    if k in (K_STOREPAIR, K_STORE2):
        return (cmd[1], cmd[2]), ()
    if k in (K_FMLA, K_FMLS):
        return (cmd[1], cmd[2], cmd[3]), (cmd[1],)
    if k == K_FMAI:
        return (cmd[1], cmd[2]), (cmd[1],)
    if k in (K_FMUL, K_FADD, K_FSUB, K_FDIV):
        return (cmd[2], cmd[3]), (cmd[1],)
    if k in (K_FMULI, K_VMOV):
        return (cmd[2],), (cmd[1],)
    if k in (K_VZERO, K_FIMM):
        return (), (cmd[1],)
    raise LoweringError(f"unknown command kind {k} in pass pipeline")


def _dce(commands: "list[tuple]") -> "tuple[list[tuple], int]":
    """Drop commands none of whose written registers are ever read
    again (before overwrite or stream end).  Memory writes are the
    stream's observable output, so stores are always live; every
    surviving command's memory effect is untouched — bit-exact."""
    live: set[int] = set()
    kept: list[tuple] = []
    removed = 0
    for cmd in reversed(commands):
        reads, writes = _rw(cmd)
        if writes and not (live & set(writes)):
            removed += 1
            continue
        live.difference_update(writes)
        live.update(reads)
        kept.append(cmd)
    kept.reverse()
    return kept, removed


def _sel(ids: "list[int]"):
    """Register selector: a slice when the ids are consecutive
    ascending (zero-copy view of the register bank), else an index
    array for one gather."""
    if all(ids[i + 1] == ids[i] + 1 for i in range(len(ids) - 1)):
        return slice(ids[0], ids[-1] + 1)
    return np.array(ids, dtype=np.intp)


def _make_macc(members: "list[tuple]") -> tuple:
    """Build one K_MACC from segment members ``(is_fmls, dst, a, b)``.

    Callers guarantee distinct accumulators and one uniform sign (see
    :func:`_segment_run`), so the accumulate is a single vectorized
    add/subtract: each element is touched exactly once, making the
    macro-op bit-identical to the raw left-to-right replay — never a
    tree reduction, never a reassociation.
    """
    n = len(members)
    dsel = _sel([d for _, d, _, _ in members])
    aids = tuple(a for _, _, a, _ in members)
    bids = tuple(b for _, _, _, b in members)
    return (K_MACC, dsel, aids, bids, members[0][0], n)


def _segment_run(members: "list[tuple]") -> "list[tuple[int, int]]":
    """Split one FMLA/FMLS run into maximal ``[start, stop)`` segments
    with all-distinct accumulators and a uniform sign.

    A chain that revisits an accumulator (a microkernel's next k-step)
    or flips between FMLA and FMLS cannot be one vectorized accumulate;
    cutting at exactly those points keeps every segment vectorizable
    while preserving the raw order segment-to-segment — the sequential
    dependency ``d += p1; d += p2`` lands in two consecutive macro-ops.
    """
    segments: list[tuple[int, int]] = []
    start = 0
    dsts: set[int] = set()
    for i, (is_fmls, d, _, _) in enumerate(members):
        if i > start and (d in dsts or is_fmls != members[start][0]):
            segments.append((start, i))
            start = i
            dsts = set()
        dsts.add(d)
    segments.append((start, len(members)))
    return segments


def _fuse_fmla_chains(commands: "list[tuple]") -> "tuple[list[tuple], dict]":
    """Collapse dependence-free FMLA/FMLS runs into K_MACC macro-ops.

    The generated kernels interleave one FMLA per accumulator per
    k-step with the next step's operand loads, so a run is formed
    *across* intervening commands: a non-FMLA command is hoisted ahead
    of the open run when it cannot conflict (its writes touch neither
    the run's sources nor its accumulators, its reads touch no
    accumulator); otherwise the run seals.  A new member seals the run
    first if one of its sources was accumulated into by the run (its
    product must see the pre-run value no longer available at macro-op
    time).  Hoisting is sound because the macro-op reads all sources
    and writes all accumulators at the seal point, and the checks
    guarantee no hoisted command reads or writes either set in between.
    """
    out: list[tuple] = []
    members: list[tuple] = []       # (is_fmls, dst, a, b)
    raw: list[tuple] = []
    accs: set[int] = set()
    srcs: set[int] = set()
    chains = fused_away = max_chain = 0

    def seal() -> None:
        nonlocal chains, fused_away, max_chain
        if len(members) >= FUSE_MIN_CHAIN:
            for start, stop in _segment_run(members):
                if stop - start >= FUSE_MIN_CHAIN:
                    out.append(_make_macc(members[start:stop]))
                    chains += 1
                    fused_away += (stop - start) - 1
                    max_chain = max(max_chain, stop - start)
                else:
                    out.extend(raw[start:stop])
        else:
            out.extend(raw)
        members.clear()
        raw.clear()
        accs.clear()
        srcs.clear()

    for cmd in commands:
        k = cmd[0]
        if k in (K_FMLA, K_FMLS):
            _, d, a, b = cmd
            if members and (a in accs or b in accs):
                seal()
            members.append((k == K_FMLS, d, a, b))
            raw.append(cmd)
            accs.add(d)
            srcs.update((a, b))
            continue
        if members:
            reads, writes = _rw(cmd)
            ws = set(writes)
            if (accs & ws) or (srcs & ws) or (accs & set(reads)):
                seal()
        out.append(cmd)
    seal()
    return out, {"chains": chains, "commands": fused_away,
                 "max_chain": max_chain}


def _coalesce_mem(commands: "list[tuple]", ew: int,
                  strides: "dict[str, int]") -> "tuple[list[tuple], dict]":
    """Merge adjacent contiguous column loads/stores into wide copies.

    A LOADPAIR/STOREPAIR counts as two full-lane pieces.  Loads merge
    only while destinations stay distinct (a repeated destination would
    make the single gather-assign order-ambiguous); stores merge while
    the memory runs on contiguously, which rules out overlap.

    ``ew``/``strides`` feed the 16-byte-unit eligibility check (see the
    K_LOADW layout note): an eligible run is emitted wide even when it
    is a single command — the complex128 replay beats the segmented
    float copy on its own — while ineligible singles stay raw.
    """
    out: list[tuple] = []
    run: "dict | None" = None
    merged_loads = merged_stores = removed = vectorized = 0

    def pieces_of(cmd: tuple):
        k = cmd[0]
        if k == K_LOAD:
            _, d, buf, first, n = cmd
            return "load", buf, n, [(d, first)]
        if k == K_LOADPAIR:
            _, d1, d2, buf, first, n = cmd
            return "load", buf, n, [(d1, first), (d2, first + n)]
        if k == K_STORE:
            _, s, buf, first, n = cmd
            return "store", buf, n, [(s, first)]
        if k == K_STOREPAIR:
            _, s1, s2, buf, first, n = cmd
            return "store", buf, n, [(s1, first), (s2, first + n)]
        return None

    def flush() -> None:
        nonlocal run, merged_loads, merged_stores, removed, vectorized
        if run is None:
            return
        pieces = run["pieces"]
        first = pieces[0][1]
        n = run["n"]
        eligible = ((n * ew) % 16 == 0 and (first * ew) % 16 == 0
                    and strides.get(run["buf"], 0) % 16 == 0)
        if len(run["raw"]) >= 2 or (eligible and len(pieces) >= 2):
            cfirst = first * ew // 16 if eligible else -1
            wide = (K_LOADW if run["op"] == "load" else K_STOREW,
                    _sel([r for r, _ in pieces]), run["buf"],
                    first, n, len(pieces), cfirst)
            out.append(wide)
            if run["op"] == "load":
                merged_loads += 1
            else:
                merged_stores += 1
            removed += len(run["raw"]) - 1
            vectorized += cfirst >= 0
        elif eligible:
            # a lone full-vector copy still wins as one 16-byte-unit
            # elementwise move (count=1 wide command)
            wide = (K_LOADW if run["op"] == "load" else K_STOREW,
                    _sel([r for r, _ in pieces]), run["buf"],
                    first, n, 1, first * ew // 16)
            out.append(wide)
            vectorized += 1
        else:
            out.extend(run["raw"])
        run = None

    for cmd in commands:
        p = pieces_of(cmd)
        if p is None:
            flush()
            out.append(cmd)
            continue
        op, buf, n, pieces = p
        if run is not None:
            contiguous = (run["op"] == op and run["buf"] == buf
                          and run["n"] == n
                          and pieces[0][1] == run["pieces"][-1][1] + n)
            conflict = (op == "load"
                        and any(r in run["regs"] for r, _ in pieces))
            if not contiguous or conflict:
                flush()
        if run is None:
            run = {"op": op, "buf": buf, "n": n, "pieces": [], "raw": [],
                   "regs": set()}
        run["pieces"].extend(pieces)
        run["raw"].append(cmd)
        run["regs"].update(r for r, _ in pieces)
    flush()
    return out, {"loads": merged_loads, "stores": merged_stores,
                 "commands": removed, "vectorized": vectorized}


def optimize_commands(commands: "list[tuple]", lanes: int, ew: int = 4,
                      strides: "dict[str, int] | None" = None
                      ) -> "tuple[list[tuple], dict]":
    """Run the DCE -> fuse -> coalesce pipeline over a raw stream.

    Returns the optimized stream plus per-pass statistics (surfaced in
    explain reports and the ``lower.fuse.*`` / ``lower.coalesce.*`` /
    ``lower.dce.*`` counters).  Fusion runs before coalescing because
    removing the FMLAs between operand loads is what makes the loads
    adjacent in the first place.  ``ew`` (element bytes) and ``strides``
    (buffer name -> group stride in bytes) drive the 16-byte-unit copy
    eligibility; omitting ``strides`` just disables that fast path.
    """
    del lanes  # geometry is uniform per stream; kept for signature clarity
    before = len(commands)
    cmds, dce_removed = _dce(commands)
    cmds, fuse = _fuse_fmla_chains(cmds)
    cmds, coal = _coalesce_mem(cmds, ew, strides or {})
    # K_LOADW scatters straight into the register bank and never needs
    # stack scratch; MACC (product stack) and STOREW (gather) do.
    max_stack = 0
    for c in cmds:
        if c[0] in (K_MACC, K_STOREW):
            max_stack = max(max_stack, c[5])
    passes = {
        "commands_before": before,
        "commands_after": len(cmds),
        "dce_removed": dce_removed,
        "fuse_chains": fuse["chains"],
        "fuse_commands": fuse["commands"],
        "fuse_max_chain": fuse["max_chain"],
        "coalesce_loads": coal["loads"],
        "coalesce_stores": coal["stores"],
        "coalesce_commands": coal["commands"],
        "coalesce_vectorized": coal["vectorized"],
        "max_stack": max_stack,
    }
    return cmds, passes


def _imm(value: float, ew: int):
    """Immediates are pre-cast to the element dtype at lower time, so
    replay rounds exactly like the interpreter's ``dtype.type(imm)``."""
    return (np.float32 if ew == 4 else np.float64)(value)


@dataclass(frozen=True)
class TraceSegment:
    """One straight-line span of the trace, ready for codegen.

    The megakernel compiler consumes the plan segment by segment: each
    segment covers one or more *consecutive same-kernel* entries of
    ``call_ranges``, so generated code keeps a kernel-level boundary the
    profiler can attribute time to (the Table-1 kernel mapping survives
    code generation).  ``commands`` is the span run through the full
    pass pipeline in isolation — safe, because registers are call-local
    (every call re-loads its pointers) and the pipeline already merges
    across call boundaries inside a span.
    """

    kernel: str                   # kernel name shared by the merged calls
    calls: int                    # how many raw call_ranges were merged
    start: int                    # raw-stream command index (inclusive)
    stop: int                     # raw-stream command index (exclusive)
    commands: "list[tuple]"       # pass-optimized stream for this span
    max_stack: int                # scratch stack depth codegen must allocate
    passes: dict                  # per-segment optimize_commands statistics


def partition_trace(compiled: CompiledPlan) -> "list[TraceSegment]":
    """Split a compiled plan's raw stream into codegen segments.

    Consecutive ``call_ranges`` entries naming the same kernel merge
    into one segment (a GEMM plan of 2048 identical microkernel calls
    becomes a single segment), then each merged span is optimized
    independently.  Concatenating the segments' raw spans reproduces
    ``compiled.commands`` exactly; a plan lowered with no call ranges
    degenerates to one anonymous segment covering the whole stream.
    """
    strides = {name: layout.stride_bytes
               for name, layout in compiled.buffers.items()}
    spans: "list[tuple[str, int, int, int]]" = []   # kernel, calls, start, stop
    for kernel, start, stop in compiled.call_ranges:
        if spans and spans[-1][0] == kernel and spans[-1][3] == start:
            prev = spans[-1]
            spans[-1] = (kernel, prev[1] + 1, prev[2], stop)
        else:
            spans.append((kernel, 1, start, stop))
    if not spans and compiled.commands:
        spans.append(("<trace>", 1, 0, len(compiled.commands)))
    segments = []
    for kernel, calls, start, stop in spans:
        cmds, passes = optimize_commands(compiled.commands[start:stop],
                                         compiled.lanes, compiled.ew, strides)
        segments.append(TraceSegment(kernel=kernel, calls=calls, start=start,
                                     stop=stop, commands=cmds,
                                     max_stack=passes["max_stack"],
                                     passes=passes))
    return segments
