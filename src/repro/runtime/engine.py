"""Plan execution: functional (NumPy-vectorized) and timed (pipeline model).

The engine is the run-time stage's backend, layered **plan → lower →
execute**.  ``execute_gemm`` / ``execute_trsm`` validate operands, bind
buffers (packing or aliasing the compact originals through one shared
path), and hand the plan — plus, for backends that want it, its
one-time :class:`~repro.runtime.lowering.CompiledPlan` — to the
configured :class:`~repro.runtime.backends.ExecutorBackend`.
``time_plan`` replays the same command queue for a single
representative group on the scoreboard pipeline with the cache hierarchy
initialized to the batch counter's residency verdicts, then scales by
the group count and adds the bandwidth-model packing cost — valid
because compact kernels are data-independent and each group touches its
own (identically laid out) data.  (Timing models the simulated silicon,
so it is backend-independent by construction.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..codegen import regs
from ..errors import PlanError
from ..layout.compact import CompactBatch
from ..machine.machines import MachineConfig
from ..machine.memory import MemorySpace
from ..machine.pipeline import AddressSpace, TimingResult
from ..codegen.templates_trsm import PX
from ..packing.gemm_pack import pack_gemm_a, pack_gemm_b
from ..packing.trsm_pack import pack_trsm_a, pack_trsm_b, unpack_trsm_b
from ..types import GemmProblem, TrsmProblem
from .backends import ExecutorBackend, resolve_backend
from .lowering import CompiledPlan, lower_plan
from .plan import ExecutionPlan, KernelCall

__all__ = ["Engine", "PlanTiming", "PLAN_GENERATION_OVERHEAD_CYCLES"]

PLAN_GENERATION_OVERHEAD_CYCLES = 2000.0
"""One-off run-time-stage cost per plan (paper: negligible once
apportioned over a large batch; charged once per timed problem)."""

PER_KERNEL_CALL_SETUP_CYCLES = 8
"""Host-side loop control and pointer materialization around each
branch-free kernel invocation (per group)."""


@dataclass
class PlanTiming:
    """Cycle breakdown of one planned problem over its whole batch."""

    plan: ExecutionPlan
    kernel_cycles_per_group: int
    pack_cycles: float
    unpack_cycles: float
    overhead_cycles: float
    detail: TimingResult

    @property
    def groups(self) -> int:
        return self.plan.groups

    @property
    def kernel_cycles(self) -> float:
        return float(self.kernel_cycles_per_group) * self.groups

    @property
    def total_cycles(self) -> float:
        return (self.kernel_cycles + self.pack_cycles + self.unpack_cycles
                + self.overhead_cycles)

    @property
    def seconds(self) -> float:
        return self.plan.machine.cycles_to_seconds(self.total_cycles)

    @property
    def gflops(self) -> float:
        return self.plan.machine.gflops(self.plan.problem.flops,
                                        self.total_cycles)

    @property
    def percent_of_peak(self) -> float:
        return 100.0 * self.gflops / self.plan.machine.peak_gflops(
            self.plan.problem.dtype)


def _check_compact(name: str, cb: CompactBatch, rows: int, cols: int,
                   plan: ExecutionPlan) -> None:
    p = plan.problem
    if (cb.rows, cb.cols) != (rows, cols):
        raise PlanError(f"{name} is {cb.rows}x{cb.cols}, plan expects "
                        f"{rows}x{cols}")
    if cb.batch != p.batch:
        raise PlanError(f"{name} batch {cb.batch} != plan batch {p.batch}")
    if cb.dtype != p.dtype:
        raise PlanError(f"{name} dtype {cb.dtype} != plan dtype {p.dtype}")
    if cb.lanes != plan.machine.lanes(p.dtype):
        raise PlanError(f"{name} lanes {cb.lanes} != machine lanes")


class Engine:
    """Executes and times execution plans on one machine.

    ``backend`` selects the functional-execution strategy: a name from
    :data:`repro.runtime.backends.BACKENDS` (``"interpret"``,
    ``"compiled"``, ``"fused"``, or ``"parallel"``), a ready
    :class:`ExecutorBackend` instance, or ``None`` for the default.
    ``inner``, ``workers``, and ``mode`` configure the ``parallel``
    wrapper (which backend runs each group shard, across how many
    workers, and whether those are threads or forked processes); they
    are rejected for any other backend.  Timing is backend-independent.
    """

    def __init__(self, machine: MachineConfig,
                 backend: "str | ExecutorBackend | None" = None, *,
                 inner: "str | ExecutorBackend | None" = None,
                 workers: "int | None" = None,
                 mode: "str | None" = None) -> None:
        self.machine = machine
        self.backend: ExecutorBackend = resolve_backend(
            backend, inner=inner, workers=workers, mode=mode)

    # ------------------------------------------------------------------
    # functional execution
    # ------------------------------------------------------------------

    def run_plan(self, plan: ExecutionPlan, mem: MemorySpace,
                 strides: dict[str, int], groups: int,
                 compiled: "CompiledPlan | None" = None) -> None:
        """Run every kernel call of a bound plan through the backend.

        ``compiled`` is the plan's cached lowering; when the backend
        needs one and none is supplied (direct engine use, extensions
        without their own cache) the plan is lowered on the spot.
        """
        backend = self.backend
        if backend.needs_lowering and compiled is None:
            compiled = lower_plan(plan)
        obs.count(f"backend.{backend.name}.runs")
        with obs.span("engine.kernels", calls=len(plan.calls),
                      backend=backend.name):
            backend.run(plan, mem, strides, groups, compiled)

    @staticmethod
    def _bind_operand(mem: MemorySpace, strides: dict[str, int],
                      plan: ExecutionPlan, origin_name: str,
                      origin: CompactBatch, packed_name: str,
                      pack_fn: "Callable[[], tuple[np.ndarray, int]]",
                      span_name: str) -> "np.ndarray | None":
        """Bind one operand the way the plan decided: pack it (returning
        the packed array) or alias the compact original (returning
        ``None``).  This is the single buffer-binding path shared by the
        GEMM and TRSM execute methods."""
        if packed_name in plan.buffers:
            with obs.span(span_name):
                arr, stride = pack_fn()
            mem.bind(packed_name, arr)
            strides[packed_name] = stride
            return arr
        mem.bind(origin_name, origin.buffer)
        strides[origin_name] = origin.group_stride_bytes
        return None

    def execute_gemm(self, plan: ExecutionPlan, a: CompactBatch,
                     b: CompactBatch, c: CompactBatch,
                     compiled: "CompiledPlan | None" = None) -> CompactBatch:
        """Run the plan; C is updated in place and returned."""
        if plan.kind != "gemm":
            raise PlanError(f"expected a gemm plan, got {plan.kind}")
        p: GemmProblem = plan.problem
        _check_compact("A", a, *p.a_shape, plan)
        _check_compact("B", b, *p.b_shape, plan)
        _check_compact("C", c, *p.c_shape, plan)
        obs.count("engine.execute.gemm")
        obs.count("engine.kernel_calls", len(plan.calls))

        with obs.span("engine.execute_gemm", groups=c.groups):
            mem = MemorySpace()
            strides = {"C": c.group_stride_bytes}
            mem.bind("C", c.buffer)
            m_tiles = plan.meta["m_tiles"]
            n_tiles = plan.meta["n_tiles"]

            def packed_a() -> "tuple[np.ndarray, int]":
                pa = pack_gemm_a(a, p.transa, p.k, m_tiles)
                return pa.data, pa.group_stride_bytes

            def packed_b() -> "tuple[np.ndarray, int]":
                pb = pack_gemm_b(b, p.transb, p.k, n_tiles)
                return pb.data, pb.group_stride_bytes

            self._bind_operand(mem, strides, plan, "A", a, "packA",
                               packed_a, "pack.A")
            self._bind_operand(mem, strides, plan, "B", b, "packB",
                               packed_b, "pack.B")
            self.run_plan(plan, mem, strides, c.groups, compiled)
        return c

    def execute_trsm(self, plan: ExecutionPlan, a: CompactBatch,
                     b: CompactBatch,
                     compiled: "CompiledPlan | None" = None) -> CompactBatch:
        """Run the plan; B is overwritten with X and returned."""
        if plan.kind != "trsm":
            raise PlanError(f"expected a trsm plan, got {plan.kind}")
        p: TrsmProblem = plan.problem
        _check_compact("A", a, p.a_dim, p.a_dim, plan)
        _check_compact("B", b, *p.b_shape, plan)
        norm = plan.meta["norm"]
        blocks = plan.meta["blocks"]
        obs.count("engine.execute.trsm")
        obs.count("engine.kernel_calls", len(plan.calls))

        with obs.span("engine.execute_trsm", groups=b.groups):
            mem = MemorySpace()
            strides: dict[str, int] = {}

            def packed_t() -> "tuple[np.ndarray, int]":
                packed = pack_trsm_a(a, norm, blocks)
                return packed.data, packed.group_stride_bytes

            def packed_b() -> "tuple[np.ndarray, int]":
                # pad_cols_to is the final padded width: padded_count(n,
                # n_pad) == n_pad whenever n_pad >= n, which the plan
                # guarantees
                work, _ = pack_trsm_b(b, norm,
                                      pad_cols_to=plan.meta["n_pad"])
                return work, plan.buffers["workB"].group_stride_bytes

            self._bind_operand(mem, strides, plan, "A", a, "packT",
                               packed_t, "pack.T")
            work = self._bind_operand(mem, strides, plan, "B", b, "workB",
                                      packed_b, "pack.B")
            self.run_plan(plan, mem, strides, b.groups, compiled)

            if work is not None:
                with obs.span("unpack.B"):
                    unpack_trsm_b(work, b, norm,
                                  pad_cols_to=plan.meta["n_pad"])
        return b

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------

    def time_plan(self, plan: ExecutionPlan) -> PlanTiming:
        """Cycle-model timing of one steady-state group, scaled out.

        Two consecutive groups are simulated: the first primes the cache
        and stream-prefetcher state the way the previous group's
        execution would have; the second is measured.  Each kernel call
        also pays a small host-side setup cost (pointer materialization
        and loop control around the branch-free kernels).
        """
        machine = plan.machine
        with obs.span("engine.time_plan", kind=plan.kind):
            caches = machine.make_caches()
            pipe = machine.make_pipeline(caches)
            asp = AddressSpace()
            for name, spec in plan.buffers.items():
                stride = max(spec.group_stride_bytes, 64)
                base = asp.place(name, 2 * stride)
                if spec.warm == "l1":
                    caches.warm_range(base, 2 * spec.group_stride_bytes, "l1")
                elif spec.warm == "l2":
                    caches.warm_range(base, 2 * spec.group_stride_bytes, "l2")

            total: TimingResult | None = None
            for group in (0, 1):
                group_total: TimingResult | None = None
                for call in plan.calls:
                    def addr(buf: str, off: int) -> int:
                        return (asp.base(buf)
                                + group * plan.buffers[buf].group_stride_bytes
                                + off)
                    init = {
                        regs.PA: addr(call.a_buf, call.a_off),
                        regs.PB: addr(call.b_buf, call.b_off),
                    }
                    for j, off in enumerate(call.c_offsets):
                        init[regs.pc(j)] = addr(call.c_buf, off)
                    if call.x_buf is not None:
                        init[PX] = addr(call.x_buf, call.x_off)
                    r = pipe.simulate(call.program, init)
                    group_total = (r if group_total is None
                                   else group_total + r)
                total = group_total
            assert total is not None, "plan has no kernel calls"
            setup = PER_KERNEL_CALL_SETUP_CYCLES * len(plan.calls)
            total = TimingResult(total.cycles + setup, total.drain_cycles,
                                 total.instructions, total.stall_cycles,
                                 total.fp_issued, total.mem_issued,
                                 total.l1_misses, total.l2_misses)

            timing = PlanTiming(
                plan=plan,
                kernel_cycles_per_group=total.cycles,
                pack_cycles=plan.pack_cost.cycles(machine),
                unpack_cycles=plan.unpack_cost.cycles(machine),
                overhead_cycles=PLAN_GENERATION_OVERHEAD_CYCLES,
                detail=total,
            )
        obs.count("engine.timed_plans")
        obs.count("engine.cycles.kernel", timing.kernel_cycles)
        obs.count("engine.cycles.pack", timing.pack_cycles)
        obs.count("engine.cycles.unpack", timing.unpack_cycles)
        obs.count("engine.cycles.overhead", timing.overhead_cycles)
        obs.count("engine.stall_cycles", total.stall_cycles)
        obs.count("engine.l1_misses", total.l1_misses)
        obs.count("engine.l2_misses", total.l2_misses)
        return timing
