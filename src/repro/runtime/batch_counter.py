"""Batch counter (paper Section 5.1).

Decides how many matrix groups each batch round processes so that the
round's packed working set stays in the L1 data cache throughout the
computation: "For GEMM, pack matrices A and B up to the size of L1
cache at a time and reserve space for matrix C.  For TRSM, pack
matrices B and the triangle part of matrices A up to the size of L1
cache at a time."
"""

from __future__ import annotations

from .. import obs
from ..machine.machines import MachineConfig
from ..types import GemmProblem, TrsmProblem

__all__ = ["groups_per_round", "gemm_group_working_bytes",
           "trsm_group_working_bytes"]


def gemm_group_working_bytes(problem: GemmProblem,
                             machine: MachineConfig) -> int:
    """Bytes one group (P matrices) keeps live: packed A, packed B, and
    the C tile region it updates."""
    p = problem
    lanes = machine.lanes(p.dtype)
    ncomp = 2 if p.dtype.is_complex else 1
    per_elem = lanes * ncomp * p.dtype.real_itemsize
    return (p.m * p.k + p.k * p.n + p.m * p.n) * per_elem


def trsm_group_working_bytes(problem: TrsmProblem,
                             machine: MachineConfig) -> int:
    """Bytes per group: the packed triangle of A plus the whole B panel."""
    p = problem
    lanes = machine.lanes(p.dtype)
    ncomp = 2 if p.dtype.is_complex else 1
    per_elem = lanes * ncomp * p.dtype.real_itemsize
    d = p.a_dim
    return (d * (d + 1) // 2 + p.m * p.n) * per_elem


def groups_per_round(working_bytes_per_group: int,
                     machine: MachineConfig,
                     total_groups: "int | None" = None) -> int:
    """Groups per batch round; always at least one.

    When even one group exceeds L1 the round degenerates to a single
    group and the cache model simply observes the L2 traffic — the same
    graceful degradation the paper's framework has for its largest
    sizes.

    ``total_groups``, when given, clamps the answer to the problem's
    actual group count: a tiny batch of tiny matrices would otherwise
    report a round of hundreds of groups that the batch can never fill,
    which skews the observed ``groups_per_round`` distribution and any
    capacity math derived from it.
    """
    if working_bytes_per_group <= 0:
        raise ValueError("working set must be positive")
    if total_groups is not None and total_groups < 1:
        raise ValueError("total_groups must be at least one round's group")
    g = max(1, machine.l1.size // working_bytes_per_group)
    if total_groups is not None and g > total_groups:
        g = total_groups
        obs.count("batch_counter.clamped")
    obs.count("batch_counter.calls")
    if working_bytes_per_group > machine.l1.size:
        obs.count("batch_counter.l1_overflow")
    else:
        obs.count("batch_counter.l1_fit")
    obs.observe("batch_counter.groups_per_round", g)
    return g
