"""Multicore scaling model (the paper's Section 7 future work).

The paper evaluates single-core performance and names multicore CPUs as
future work.  Fixed-size compact batches are embarrassingly parallel
across matrix groups — each core runs the same single-core plan on its
share of the batch with private L1/L2 (the Kunpeng 920's caches are
per-core) — so the first-order model is:

* kernel cycles scale perfectly (private working sets, no sharing);
* packing is a streaming copy through the *shared* memory system, so
  its effective per-core bandwidth saturates once enough cores stream
  concurrently (``bw_saturation_cores``, ~the point where a chip's
  memory controllers are maxed);
* the run-time stage's plan generation happens once, not per core.

The model predicts the classic behaviour: compute-bound sizes scale
nearly linearly, while tiny pack-dominated sizes flatten at the
bandwidth wall — the ablation benchmark records the predicted curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..machine.machines import MachineConfig
from ..types import GemmProblem, TrsmProblem
from .engine import PLAN_GENERATION_OVERHEAD_CYCLES, PlanTiming
from .iatf import IATF

__all__ = ["MulticoreModel", "MulticoreTiming"]


@dataclass
class MulticoreTiming:
    """Predicted whole-batch timing on ``cores`` cores."""

    cores: int
    single: PlanTiming
    cycles: float                 # wall-clock cycles (slowest core)

    @property
    def speedup(self) -> float:
        return self.single.total_cycles / self.cycles

    @property
    def efficiency(self) -> float:
        return self.speedup / self.cores

    @property
    def gflops(self) -> float:
        plan = self.single.plan
        return plan.machine.gflops(plan.problem.flops, self.cycles)


class MulticoreModel:
    """Scales single-core plan timings across cores."""

    def __init__(self, machine: MachineConfig, cores: int,
                 bw_saturation_cores: int = 8) -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.machine = machine
        self.cores = int(cores)
        self.bw_saturation_cores = int(bw_saturation_cores)
        self.iatf = IATF(machine)

    def _scale(self, t: PlanTiming) -> MulticoreTiming:
        cores = self.cores
        groups = t.groups
        # slowest core gets ceil(groups / cores) groups
        per_core_groups = -(-groups // cores)
        kernel = t.kernel_cycles_per_group * per_core_groups
        # packing: shared memory bandwidth saturates
        active = min(cores, groups)
        bw_scale = min(active, self.bw_saturation_cores)
        pack = (t.pack_cycles + t.unpack_cycles) / bw_scale \
            * (per_core_groups * cores / max(groups, 1))
        cycles = kernel + pack + PLAN_GENERATION_OVERHEAD_CYCLES
        timing = MulticoreTiming(cores=cores, single=t, cycles=cycles)
        obs.count("multicore.timings")
        obs.count("multicore.active_workers", active)
        obs.count("multicore.worker_groups", per_core_groups * active)
        obs.observe("multicore.efficiency", timing.efficiency)
        return timing

    def time_gemm(self, problem: GemmProblem) -> MulticoreTiming:
        return self._scale(self.iatf.time_gemm(problem))

    def time_trsm(self, problem: TrsmProblem) -> MulticoreTiming:
        return self._scale(self.iatf.time_trsm(problem))
