"""Pluggable executor backends: how a bound plan's kernels actually run.

The engine separates *what* to run (the plan), *how it was compiled*
(the lowered command stream), and *what executes it* (a backend):

``interpret``
    The original :class:`~repro.machine.executor.VectorExecutor` walking
    every program instruction by instruction.  It is the bit-exact
    reference: every other backend must produce identical
    :class:`~repro.layout.compact.CompactBatch` bytes.

``compiled``
    Replays a :class:`~repro.runtime.lowering.CompiledPlan`: one 2-D
    ``(groups, stride_elems)`` view per buffer, a preallocated vector
    register file, and a flat loop of slice copies and in-place ufuncs.
    No pointer resolution, no alignment/bounds checks, no per-op
    allocation — all of that happened once at lower time.

Adding a backend means implementing the :class:`ExecutorBackend`
protocol (``name``, ``needs_lowering``, ``run``) and registering it in
``BACKENDS``; see ``docs/architecture.md`` for the contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from .. import obs
from ..codegen import regs
from ..codegen.templates_trsm import PX
from ..errors import ExecutionError, PlanError
from ..machine.executor import VectorExecutor
from ..machine.isa import NUM_VREGS
from ..machine.memory import MemorySpace
from .lowering import (K_FADD, K_FDIV, K_FIMM, K_FMAI, K_FMLA, K_FMLS,
                       K_FMUL, K_FMULI, K_FSUB, K_LOAD, K_LOAD1R, K_LOAD2,
                       K_LOAD_PART, K_LOADPAIR, K_STORE, K_STORE2,
                       K_STOREPAIR, K_VMOV, K_VZERO, CompiledPlan, lower_plan)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import ExecutionPlan

__all__ = ["ExecutorBackend", "InterpretBackend", "CompiledBackend",
           "BACKENDS", "DEFAULT_BACKEND", "resolve_backend", "backend_name"]

DEFAULT_BACKEND = "compiled"


@runtime_checkable
class ExecutorBackend(Protocol):
    """What the engine needs from an execution strategy."""

    #: short identifier used in ``IATF(backend=...)``, obs counters, and
    #: explain reports
    name: str
    #: True if :meth:`run` consumes a :class:`CompiledPlan` (the engine
    #: lowers — or fetches the cached lowering — before calling)
    needs_lowering: bool

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        """Execute every kernel call of the plan against bound buffers."""
        ...


class InterpretBackend:
    """Per-instruction reference execution (the original engine path)."""

    name = "interpret"
    needs_lowering = False

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        ex = VectorExecutor(mem, groups=groups)
        garange = np.arange(groups, dtype=np.int64)
        bases = {name: garange * stride for name, stride in strides.items()}
        for call in plan.calls:
            ex.set_pointer(regs.PA, call.a_buf, bases[call.a_buf] + call.a_off)
            ex.set_pointer(regs.PB, call.b_buf, bases[call.b_buf] + call.b_off)
            for j, off in enumerate(call.c_offsets):
                ex.set_pointer(regs.pc(j), call.c_buf,
                               bases[call.c_buf] + off)
            if call.x_buf is not None:
                ex.set_pointer(PX, call.x_buf, bases[call.x_buf] + call.x_off)
            ex.run(call.program)


class CompiledBackend:
    """Replays a lowered command stream with no per-instruction address
    resolution — the compile-once / execute-many half of the paper's
    run-time stage, extended from kernel selection down to execution."""

    name = "compiled"
    needs_lowering = True

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        if compiled is None:
            compiled = lower_plan(plan)
        if groups != compiled.groups:
            raise ExecutionError(
                f"compiled plan covers {compiled.groups} groups, "
                f"execution asked for {groups}")
        mats = self._bind(compiled, mem, strides, groups)
        dtype = compiled.dtype
        lanes = compiled.lanes
        # one allocation for the whole register file; regs[i] are views
        rfile = list(np.empty((NUM_VREGS, groups, lanes), dtype=dtype))
        scratch = np.empty((groups, lanes), dtype=dtype)
        # padding lanes legitimately hold zeros/garbage (same rationale
        # as the interpreter)
        with np.errstate(all="ignore"):
            self._replay(compiled.commands, mats, rfile, scratch)

    # -- binding -------------------------------------------------------

    @staticmethod
    def _bind(compiled: CompiledPlan, mem: MemorySpace,
              strides: "dict[str, int]",
              groups: int) -> "dict[str, np.ndarray]":
        """One validated ``(groups, stride_elems)`` view per buffer.

        This is the entire per-execution address-resolution cost: every
        command's operand is a column slice of one of these views.
        """
        mats: dict[str, np.ndarray] = {}
        for name, lay in compiled.buffers.items():
            if name not in mem:
                raise ExecutionError(
                    f"compiled plan buffer {name!r} was not bound")
            actual = strides.get(name)
            if actual is not None and actual != lay.stride_bytes:
                raise PlanError(
                    f"buffer {name!r} stride {actual} B does not match the "
                    f"lowered stride {lay.stride_bytes} B — the plan was "
                    f"lowered for a different layout")
            mats[name] = mem.group_view(name, groups, lay.stride_elems)
        return mats

    # -- replay --------------------------------------------------------

    @staticmethod
    def _replay(commands: "list[tuple]", mats: "dict[str, np.ndarray]",
                rfile: "list[np.ndarray]", scratch: np.ndarray) -> None:
        # Ordered roughly by dynamic frequency in GEMM/TRSM kernels.
        for cmd in commands:
            k = cmd[0]
            if k == K_FMLA:
                _, d, a, b = cmd
                np.multiply(rfile[a], rfile[b], out=scratch)
                np.add(rfile[d], scratch, out=rfile[d])
            elif k == K_LOAD:
                _, d, buf, first, n = cmd
                np.copyto(rfile[d], mats[buf][:, first:first + n])
            elif k == K_LOADPAIR:
                _, d1, d2, buf, first, n = cmd
                view = mats[buf][:, first:first + 2 * n]
                np.copyto(rfile[d1], view[:, :n])
                np.copyto(rfile[d2], view[:, n:])
            elif k == K_STORE:
                _, s, buf, first, n = cmd
                np.copyto(mats[buf][:, first:first + n], rfile[s][:, :n])
            elif k == K_STOREPAIR:
                _, s1, s2, buf, first, n = cmd
                view = mats[buf][:, first:first + 2 * n]
                np.copyto(view[:, :n], rfile[s1])
                np.copyto(view[:, n:], rfile[s2])
            elif k == K_FMLS:
                _, d, a, b = cmd
                np.multiply(rfile[a], rfile[b], out=scratch)
                np.subtract(rfile[d], scratch, out=rfile[d])
            elif k == K_LOAD1R:
                _, d, buf, first = cmd
                np.copyto(rfile[d], mats[buf][:, first:first + 1])
            elif k == K_LOAD2:
                _, de, do, buf, first, n = cmd
                reg = rfile[de]
                reg[:, n:] = 0.0
                reg[:, :n] = mats[buf][:, first:first + 2 * n:2]
                reg = rfile[do]
                reg[:, n:] = 0.0
                reg[:, :n] = mats[buf][:, first + 1:first + 2 * n:2]
            elif k == K_STORE2:
                _, se, so, buf, first, n = cmd
                np.copyto(mats[buf][:, first:first + 2 * n:2],
                          rfile[se][:, :n])
                np.copyto(mats[buf][:, first + 1:first + 2 * n:2],
                          rfile[so][:, :n])
            elif k == K_LOAD_PART:
                _, d, buf, first, n = cmd
                reg = rfile[d]
                reg[:, n:] = 0.0
                reg[:, :n] = mats[buf][:, first:first + n]
            elif k == K_FMUL:
                _, d, a, b = cmd
                np.multiply(rfile[a], rfile[b], out=rfile[d])
            elif k == K_FMAI:
                _, d, a, imm = cmd
                np.multiply(rfile[a], imm, out=scratch)
                np.add(rfile[d], scratch, out=rfile[d])
            elif k == K_FMULI:
                _, d, a, imm = cmd
                np.multiply(rfile[a], imm, out=rfile[d])
            elif k == K_FADD:
                _, d, a, b = cmd
                np.add(rfile[a], rfile[b], out=rfile[d])
            elif k == K_FSUB:
                _, d, a, b = cmd
                np.subtract(rfile[a], rfile[b], out=rfile[d])
            elif k == K_FDIV:
                _, d, a, b = cmd
                np.divide(rfile[a], rfile[b], out=rfile[d])
            elif k == K_VZERO:
                rfile[cmd[1]].fill(0.0)
            elif k == K_VMOV:
                np.copyto(rfile[cmd[1]], rfile[cmd[2]])
            elif k == K_FIMM:
                rfile[cmd[1]].fill(cmd[2])
            else:  # pragma: no cover - lowering emits only known kinds
                raise ExecutionError(f"unknown compiled command kind {k}")


BACKENDS: "dict[str, type]" = {
    InterpretBackend.name: InterpretBackend,
    CompiledBackend.name: CompiledBackend,
}


def backend_name(backend: "str | ExecutorBackend | None") -> str:
    """Canonical name of a backend selector (None = the default)."""
    if backend is None:
        return DEFAULT_BACKEND
    if isinstance(backend, str):
        return backend
    return backend.name


def resolve_backend(backend: "str | ExecutorBackend | None" = None
                    ) -> ExecutorBackend:
    """Turn a backend name (or ready instance) into an instance."""
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        cls = BACKENDS.get(backend)
        if cls is None:
            raise PlanError(
                f"unknown executor backend {backend!r}; available: "
                f"{', '.join(sorted(BACKENDS))}")
        return cls()
    if not isinstance(backend, ExecutorBackend):
        raise PlanError(f"object {backend!r} does not implement the "
                        f"ExecutorBackend protocol")
    return backend
