"""Pluggable executor backends: how a bound plan's kernels actually run.

The engine separates *what* to run (the plan), *how it was compiled*
(the lowered command stream), and *what executes it* (a backend):

``interpret``
    The original :class:`~repro.machine.executor.VectorExecutor` walking
    every program instruction by instruction.  It is the bit-exact
    reference: every other backend must produce identical
    :class:`~repro.layout.compact.CompactBatch` bytes.

``compiled``
    Replays a :class:`~repro.runtime.lowering.CompiledPlan`: one 2-D
    ``(groups, stride_elems)`` view per buffer, a preallocated vector
    register file, and a flat loop of slice copies and in-place ufuncs.
    No pointer resolution, no alignment/bounds checks, no per-op
    allocation — all of that happened once at lower time.

``fused``
    The same replay loop over the pass-*optimized* stream
    (``CompiledPlan.fused_commands``): FMLA chains collapsed into
    stacked ``K_MACC`` macro-ops, adjacent loads/stores merged into
    wide copies, dead register writes eliminated.  Each macro-op is a
    handful of large ufuncs instead of dozens of tiny ones, so the
    dispatch-bound hot loop gets materially cheaper — with bit-exact
    results by pass construction.

``megakernel``
    The trace-compiled backend
    (:class:`~repro.runtime.megakernel.MegakernelBackend`): the fused
    stream is partitioned into straight-line segments and compiled
    *once* into generated Python source of whole-group NumPy ops, so
    the steady state executes zero per-instruction Python dispatch.
    The program is cached on the lowered plan and rides the engine's
    ``PlanCache``; results stay bit-identical to ``interpret``.

``parallel``
    A wrapper that shards the *group axis* across a
    ``ThreadPoolExecutor``, running an inner backend (``fused`` by
    default) on each contiguous shard.  Groups are fully independent
    and NumPy releases the GIL inside ufuncs, so sharding is bit-exact
    by construction and genuinely concurrent.  Configure via
    ``IATF(backend="parallel", inner="fused", workers=N)``; with
    ``mode="process"`` the shards run in a fork-based process pool
    over shared-memory buffer slices instead, sidestepping the GIL
    entirely for inner backends that do not release it.

Adding a backend means implementing the :class:`ExecutorBackend`
protocol (``name``, ``needs_lowering``, ``run``) and registering it in
``BACKENDS``; see ``docs/architecture.md`` for the contract.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from .. import obs
from ..codegen import regs
from ..codegen.templates_trsm import PX
from ..errors import ExecutionError, PlanError
from ..machine.executor import VectorExecutor
from ..machine.isa import NUM_VREGS
from ..machine.memory import MemorySpace
from .lowering import (K_FADD, K_FDIV, K_FIMM, K_FMAI, K_FMLA, K_FMLS,
                       K_FMUL, K_FMULI, K_FSUB, K_LOAD, K_LOAD1R, K_LOAD2,
                       K_LOAD_PART, K_LOADPAIR, K_LOADW, K_MACC, K_STORE,
                       K_STORE2, K_STOREPAIR, K_STOREW, K_VMOV, K_VZERO,
                       CompiledPlan, lower_plan)
from .megakernel import MegakernelBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import ExecutionPlan

__all__ = ["ExecutorBackend", "InterpretBackend", "CompiledBackend",
           "FusedBackend", "MegakernelBackend", "ParallelBackend",
           "BACKENDS", "DEFAULT_BACKEND", "DEFAULT_INNER",
           "resolve_backend", "backend_name"]

DEFAULT_BACKEND = "compiled"

DEFAULT_INNER = "fused"
"""The inner backend a ``parallel`` wrapper shards over when none is
named — the optimized replayer, so the two tentpole halves compose."""


@runtime_checkable
class ExecutorBackend(Protocol):
    """What the engine needs from an execution strategy."""

    #: short identifier used in ``IATF(backend=...)``, obs counters, and
    #: explain reports
    name: str
    #: True if :meth:`run` consumes a :class:`CompiledPlan` (the engine
    #: lowers — or fetches the cached lowering — before calling)
    needs_lowering: bool

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        """Execute every kernel call of the plan against bound buffers."""
        ...


class InterpretBackend:
    """Per-instruction reference execution (the original engine path)."""

    name = "interpret"
    needs_lowering = False

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        ex = VectorExecutor(mem, groups=groups)
        garange = np.arange(groups, dtype=np.int64)
        bases = {name: garange * stride for name, stride in strides.items()}
        for call in plan.calls:
            ex.set_pointer(regs.PA, call.a_buf, bases[call.a_buf] + call.a_off)
            ex.set_pointer(regs.PB, call.b_buf, bases[call.b_buf] + call.b_off)
            for j, off in enumerate(call.c_offsets):
                ex.set_pointer(regs.pc(j), call.c_buf,
                               bases[call.c_buf] + off)
            if call.x_buf is not None:
                ex.set_pointer(PX, call.x_buf, bases[call.x_buf] + call.x_off)
            ex.run(call.program)


class CompiledBackend:
    """Replays a lowered command stream with no per-instruction address
    resolution — the compile-once / execute-many half of the paper's
    run-time stage, extended from kernel selection down to execution."""

    name = "compiled"
    needs_lowering = True

    @staticmethod
    def stream(compiled: CompiledPlan) -> "tuple[list[tuple], int]":
        """The command stream this backend replays and the macro-op
        stack depth it needs (0 = no macro-ops, no stack scratch
        allocated).  Public so the attribution profiler
        (:mod:`repro.obs.profile`) can profile exactly what a backend
        would execute."""
        return compiled.commands, 0

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        if compiled is None:
            compiled = lower_plan(plan)
        if groups != compiled.groups:
            raise ExecutionError(
                f"compiled plan covers {compiled.groups} groups, "
                f"execution asked for {groups}")
        mats = self._bind(compiled, mem, strides, groups)
        dtype = compiled.dtype
        lanes = compiled.lanes
        commands, max_stack = self.stream(compiled)
        # one allocation for the whole register file; rfile[i] are views
        # of rbank, so macro-op selectors can slice/gather the bank
        rbank = np.empty((NUM_VREGS, groups, lanes), dtype=dtype)
        rfile = list(rbank)
        scratch = np.empty((groups, lanes), dtype=dtype)
        stacks = (np.empty((2, max_stack, groups, lanes), dtype=dtype)
                  if max_stack else None)
        # padding lanes legitimately hold zeros/garbage (same rationale
        # as the interpreter)
        with np.errstate(all="ignore"):
            self._replay(commands, mats, rfile, rbank, scratch, stacks,
                         None, None)

    # -- binding -------------------------------------------------------

    @staticmethod
    def _bind(compiled: CompiledPlan, mem: MemorySpace,
              strides: "dict[str, int]",
              groups: int) -> "dict[str, np.ndarray]":
        """One validated ``(groups, stride_elems)`` view per buffer.

        This is the entire per-execution address-resolution cost: every
        command's operand is a column slice of one of these views.
        """
        mats: dict[str, np.ndarray] = {}
        for name, lay in compiled.buffers.items():
            if name not in mem:
                raise ExecutionError(
                    f"compiled plan buffer {name!r} was not bound")
            actual = strides.get(name)
            if actual is not None and actual != lay.stride_bytes:
                raise PlanError(
                    f"buffer {name!r} stride {actual} B does not match the "
                    f"lowered stride {lay.stride_bytes} B — the plan was "
                    f"lowered for a different layout")
            mats[name] = mem.group_view(name, groups, lay.stride_elems)
        return mats

    # -- replay --------------------------------------------------------

    @staticmethod
    def _replay(commands: "list[tuple]", mats: "dict[str, np.ndarray]",
                rfile: "list[np.ndarray]", rbank: np.ndarray,
                scratch: np.ndarray, stacks: "np.ndarray | None",
                matsC: "dict | None", rbankC: "np.ndarray | None") -> None:
        # Ordered roughly by dynamic frequency in GEMM/TRSM kernels
        # (raw streams are FMLA-heavy; fused streams lead with macro-ops).
        for cmd in commands:
            k = cmd[0]
            if k == K_FMLA:
                _, d, a, b = cmd
                np.multiply(rfile[a], rfile[b], out=scratch)
                np.add(rfile[d], scratch, out=rfile[d])
            elif k == K_MACC:
                # per-member multiplies straight out of the register
                # file (sources repeat, a stacked multiply would need a
                # full gather copy), then ONE vectorized accumulate —
                # bit-exact because accumulators are distinct with a
                # uniform sign (see lowering.K_MACC)
                _, dsel, aids, bids, neg, n = cmd
                prod = stacks[0, :n]
                for i in range(n):
                    np.multiply(rfile[aids[i]], rfile[bids[i]],
                                out=prod[i])
                if type(dsel) is slice:
                    acc = rbank[dsel]
                    if neg:
                        np.subtract(acc, prod, out=acc)
                    else:
                        np.add(acc, prod, out=acc)
                else:
                    acc = np.take(rbank, dsel, axis=0, out=stacks[1, :n])
                    if neg:
                        np.subtract(acc, prod, out=acc)
                    else:
                        np.add(acc, prod, out=acc)
                    rbank[dsel] = acc
            elif k == K_LOADW:
                # count consecutive column slices -> count registers in
                # one copy; cfirst >= 0 means both sides reinterpret as
                # 16-byte units (complex128) so the copy is one C-level
                # elementwise loop instead of a segmented float copy
                _, dsel, buf, first, n, count, cfirst = cmd
                if cfirst >= 0:
                    vb = rbankC.shape[2]
                    src = matsC[buf][:, cfirst:cfirst + count * vb]
                    if count == 1:
                        d = dsel.start if type(dsel) is slice else dsel[0]
                        np.copyto(rbankC[d], src)
                    else:
                        src = src.reshape(-1, count, vb).transpose(1, 0, 2)
                        if type(dsel) is slice:
                            np.copyto(rbankC[dsel], src)
                        else:
                            rbankC[dsel] = src
                else:
                    src = mats[buf][:, first:first + count * n]
                    src = src.reshape(-1, count, n).transpose(1, 0, 2)
                    if type(dsel) is slice:
                        np.copyto(rbank[dsel], src)
                    else:
                        rbank[dsel] = src
            elif k == K_STOREW:
                _, ssel, buf, first, n, count, cfirst = cmd
                if cfirst >= 0:
                    vb = rbankC.shape[2]
                    dst = matsC[buf][:, cfirst:cfirst + count * vb]
                    if count == 1:
                        s = ssel.start if type(ssel) is slice else ssel[0]
                        np.copyto(dst, rbankC[s])
                    else:
                        gs = rbankC[ssel]   # fancy-index copy is fine: read-only
                        np.copyto(dst.reshape(-1, count, vb),
                                  gs.transpose(1, 0, 2))
                else:
                    if type(ssel) is slice:
                        gs = rbank[ssel]
                    else:
                        gs = np.take(rbank, ssel, axis=0,
                                     out=stacks[0, :count])
                    dst = mats[buf][:, first:first + count * n]
                    np.copyto(dst.reshape(-1, count, n),
                              gs[:, :, :n].transpose(1, 0, 2))
            elif k == K_LOAD:
                _, d, buf, first, n = cmd
                np.copyto(rfile[d], mats[buf][:, first:first + n])
            elif k == K_LOADPAIR:
                _, d1, d2, buf, first, n = cmd
                view = mats[buf][:, first:first + 2 * n]
                np.copyto(rfile[d1], view[:, :n])
                np.copyto(rfile[d2], view[:, n:])
            elif k == K_STORE:
                _, s, buf, first, n = cmd
                np.copyto(mats[buf][:, first:first + n], rfile[s][:, :n])
            elif k == K_STOREPAIR:
                _, s1, s2, buf, first, n = cmd
                view = mats[buf][:, first:first + 2 * n]
                np.copyto(view[:, :n], rfile[s1])
                np.copyto(view[:, n:], rfile[s2])
            elif k == K_FMLS:
                _, d, a, b = cmd
                np.multiply(rfile[a], rfile[b], out=scratch)
                np.subtract(rfile[d], scratch, out=rfile[d])
            elif k == K_LOAD1R:
                _, d, buf, first = cmd
                np.copyto(rfile[d], mats[buf][:, first:first + 1])
            elif k == K_LOAD2:
                _, de, do, buf, first, n = cmd
                reg = rfile[de]
                reg[:, n:] = 0.0
                reg[:, :n] = mats[buf][:, first:first + 2 * n:2]
                reg = rfile[do]
                reg[:, n:] = 0.0
                reg[:, :n] = mats[buf][:, first + 1:first + 2 * n:2]
            elif k == K_STORE2:
                _, se, so, buf, first, n = cmd
                np.copyto(mats[buf][:, first:first + 2 * n:2],
                          rfile[se][:, :n])
                np.copyto(mats[buf][:, first + 1:first + 2 * n:2],
                          rfile[so][:, :n])
            elif k == K_LOAD_PART:
                _, d, buf, first, n = cmd
                reg = rfile[d]
                reg[:, n:] = 0.0
                reg[:, :n] = mats[buf][:, first:first + n]
            elif k == K_FMUL:
                _, d, a, b = cmd
                np.multiply(rfile[a], rfile[b], out=rfile[d])
            elif k == K_FMAI:
                _, d, a, imm = cmd
                np.multiply(rfile[a], imm, out=scratch)
                np.add(rfile[d], scratch, out=rfile[d])
            elif k == K_FMULI:
                _, d, a, imm = cmd
                np.multiply(rfile[a], imm, out=rfile[d])
            elif k == K_FADD:
                _, d, a, b = cmd
                np.add(rfile[a], rfile[b], out=rfile[d])
            elif k == K_FSUB:
                _, d, a, b = cmd
                np.subtract(rfile[a], rfile[b], out=rfile[d])
            elif k == K_FDIV:
                _, d, a, b = cmd
                np.divide(rfile[a], rfile[b], out=rfile[d])
            elif k == K_VZERO:
                rfile[cmd[1]].fill(0.0)
            elif k == K_VMOV:
                np.copyto(rfile[cmd[1]], rfile[cmd[2]])
            elif k == K_FIMM:
                rfile[cmd[1]].fill(cmd[2])
            else:  # pragma: no cover - lowering emits only known kinds
                raise ExecutionError(f"unknown compiled command kind {k}")


class FusedBackend(CompiledBackend):
    """Replays the pass-optimized stream (``fused_commands``) in
    L2-resident group blocks.

    Two compounding effects versus ``compiled``: macro-ops (fused FMLA
    chains, coalesced wide copies, dead writes gone) cut the Python
    dispatches per block roughly in half, which is what makes small
    blocks affordable; and blocking keeps the whole register bank hot
    in L2, so the dispatches that remain run at cache speed instead of
    memory bandwidth.  Groups are independent, so blocking is bit-exact
    by construction — the equivalence suite enforces it.
    """

    name = "fused"

    @staticmethod
    def stream(compiled: CompiledPlan) -> "tuple[list[tuple], int]":
        fused = compiled.fused_commands
        if not fused:
            # a CompiledPlan built outside lower_plan (tests, tools) may
            # carry no optimized stream; the raw one is always valid
            return compiled.commands, 0
        return fused, compiled.stats.get("passes", {}).get("max_stack", 0)

    @staticmethod
    def _block_groups(l2_bytes: int, lanes: int, itemsize: int) -> int:
        """Largest group block whose register bank fits half of L2 (the
        other half is left to the operand panels streaming through);
        the floor keeps per-ufunc work from degenerating into pure
        dispatch overhead on machines modelled with tiny caches."""
        block = (l2_bytes // 2) // (NUM_VREGS * lanes * itemsize)
        return max(64, block)

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        if compiled is None:
            compiled = lower_plan(plan)
        if groups != compiled.groups:
            raise ExecutionError(
                f"compiled plan covers {compiled.groups} groups, "
                f"execution asked for {groups}")
        mats = self._bind(compiled, mem, strides, groups)
        dtype = compiled.dtype
        lanes = compiled.lanes
        commands, max_stack = self.stream(compiled)
        block = min(groups, self._block_groups(
            plan.machine.l2.size, lanes, np.dtype(dtype).itemsize))
        rbank = np.empty((NUM_VREGS, block, lanes), dtype=dtype)
        scratch = np.empty((block, lanes), dtype=dtype)
        stacks = (np.empty((2, max_stack, block, lanes), dtype=dtype)
                  if max_stack else None)
        # 16-byte-unit reinterpretations for the vectorized wide copies
        # (commands carry cfirst >= 0 only for buffers whose stride
        # passed the lower-time eligibility check)
        rbankC = (rbank.view(np.complex128)
                  if (lanes * rbank.itemsize) % 16 == 0 else None)
        matsC = {name: (v.view(np.complex128)
                        if (v.shape[1] * v.itemsize) % 16 == 0 else None)
                 for name, v in mats.items()}
        names = list(mats)
        with np.errstate(all="ignore"):
            for start in range(0, groups, block):
                n = min(block, groups - start)
                stop = start + n
                bmats = {name: mats[name][start:stop] for name in names}
                bmatsC = {name: (None if v is None else v[start:stop])
                          for name, v in matsC.items()}
                rb = rbank if n == block else rbank[:, :n]
                rbC = (None if rbankC is None
                       else (rbankC if n == block else rbankC[:, :n]))
                self._replay(commands, bmats, list(rb), rb, scratch[:n],
                             stacks[:, :, :n] if stacks is not None
                             else None, bmatsC, rbC)


def _default_workers() -> int:
    """Worker-count default: the host's cores, capped — oversubscribing
    tiny per-shard workloads with threads only adds overhead."""
    return max(1, min(8, os.cpu_count() or 1))


class ParallelBackend:
    """Shards the group axis across a thread pool, one inner-backend
    run per contiguous shard.

    Groups are independent by construction (each owns a disjoint
    ``stride_elems`` slice of every buffer), so per-shard
    :class:`MemorySpace` views over disjoint slices of the same arrays
    produce bit-identical bytes to a single whole-batch run — in any
    execution order.  NumPy releases the GIL inside ufuncs, so shards
    genuinely overlap.  The pool is created lazily and reused across
    runs; the inner backend must be shard-agnostic (every registered
    backend is — per-run state only).
    """

    name = "parallel"

    MODES = ("thread", "process")

    def __init__(self, inner: "str | ExecutorBackend | None" = None,
                 workers: "int | None" = None,
                 mode: "str | None" = None) -> None:
        self.inner = resolve_backend(DEFAULT_INNER if inner is None
                                     else inner)
        if self.inner.name == self.name:
            raise PlanError("parallel backend cannot wrap itself")
        self.workers = _default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise PlanError("parallel backend needs workers >= 1")
        self.mode = "thread" if mode is None else str(mode)
        if self.mode not in self.MODES:
            raise PlanError(f"parallel mode must be one of {self.MODES}, "
                            f"got {mode!r}")
        if (self.mode == "process"
                and "fork" not in multiprocessing.get_all_start_methods()):
            raise PlanError("parallel mode='process' needs the fork start "
                            "method, which this platform does not offer")
        self._pool: "ThreadPoolExecutor | None" = None
        self._pool_lock = threading.Lock()

    @property
    def needs_lowering(self) -> bool:
        return self.inner.needs_lowering

    @staticmethod
    def shard_ranges(groups: int, shards: int) -> "list[tuple[int, int]]":
        """Contiguous, balanced ``[start, stop)`` group ranges (never
        more shards than groups; sizes differ by at most one)."""
        shards = max(1, min(shards, groups))
        base, extra = divmod(groups, shards)
        ranges, start = [], 0
        for i in range(shards):
            count = base + (1 if i < extra else 0)
            ranges.append((start, start + count))
            start += count
        return ranges

    def _pool_get(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-parallel")
        return self._pool

    def run(self, plan: "ExecutionPlan", mem: MemorySpace,
            strides: "dict[str, int]", groups: int,
            compiled: "CompiledPlan | None" = None) -> None:
        if self.inner.needs_lowering and compiled is None:
            compiled = lower_plan(plan)
        ranges = self.shard_ranges(groups, self.workers)
        obs.count("backend.parallel.shards", len(ranges))
        if len(ranges) == 1:
            self.inner.run(plan, mem, strides, groups, compiled)
            return
        if self.mode == "process":
            self._run_process(plan, mem, strides, compiled, ranges)
            return
        # pool threads do not inherit the caller's trace context, so
        # capture it once and hand it to every shard explicitly — the
        # shard spans then join the plan-run's trace instead of
        # becoming orphaned roots
        car = obs.carrier()
        pool = self._pool_get()
        futures = []
        for idx, (start, stop) in enumerate(ranges):
            smem = self._shard_memory(mem, strides, start, stop)
            count = stop - start
            scompiled = (compiled.for_groups(count)
                         if compiled is not None else None)
            futures.append(pool.submit(self._run_shard, idx, start, plan,
                                       smem, strides, count, scompiled,
                                       car))
        for f in futures:
            f.result()          # re-raises any shard failure

    @staticmethod
    def _shard_memory(mem: MemorySpace, strides: "dict[str, int]",
                      start: int, stop: int) -> MemorySpace:
        """A MemorySpace whose buffers are zero-copy slices covering
        groups ``[start, stop)`` — writes land in the caller's arrays."""
        smem = MemorySpace()
        for name, stride_bytes in strides.items():
            arr = mem[name]
            se = stride_bytes // arr.dtype.itemsize
            smem.bind(name, arr[start * se:stop * se])
        return smem

    def _run_shard(self, idx: int, start: int, plan: "ExecutionPlan",
                   smem: MemorySpace, strides: "dict[str, int]",
                   count: int, compiled: "CompiledPlan | None",
                   car: "tuple | None" = None) -> None:
        if car is not None:
            obs.count("obs.overhead.trace.attach")
            with obs.attach(car):
                with obs.span("backend.parallel.shard", shard=idx,
                              start=start, groups=count,
                              inner=self.inner.name):
                    self.inner.run(plan, smem, strides, count, compiled)
            return
        with obs.span("backend.parallel.shard", shard=idx, start=start,
                      groups=count, inner=self.inner.name):
            self.inner.run(plan, smem, strides, count, compiled)

    # -- process mode --------------------------------------------------

    def _run_process(self, plan: "ExecutionPlan", mem: MemorySpace,
                     strides: "dict[str, int]",
                     compiled: "CompiledPlan | None",
                     ranges: "list[tuple[int, int]]") -> None:
        """Shards across fork()ed worker processes over shared memory.

        Every bound buffer is copied once into a
        :mod:`multiprocessing.shared_memory` block; forked children
        inherit the mappings (and the plan, the lowering, even an
        already-compiled megakernel program — fork never pickles), bind
        zero-copy slice views over their disjoint group ranges, and
        write results straight into the shared block, which the parent
        copies back after every child exits.  The two extra full-buffer
        passes buy a pool the GIL cannot serialize — worth it only for
        inner work that holds the GIL, which is why ``mode="process"``
        is opt-in rather than the wrapper default.

        When instrumentation is on, each child records into a fresh
        registry and ships it back over the same queue as errors (see
        :mod:`repro.obs.procagg`); the parent merges every shard's
        counters, histograms, spans, and events after the join, so a
        process-mode run is exactly as observable as a thread-mode one.
        """
        obs.count("backend.parallel.process.runs")
        telemetry = obs.enabled()
        # captured before the fork: the merge re-parents each shard's
        # span tree under the span that is open right here
        car = obs.carrier() if telemetry else None
        shms: "list[shared_memory.SharedMemory]" = []
        shared: "dict[str, np.ndarray]" = {}
        ctx = multiprocessing.get_context("fork")
        try:
            for name in strides:
                arr = mem[name]
                shm = shared_memory.SharedMemory(create=True,
                                                 size=max(1, arr.nbytes))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                np.copyto(view, arr)
                shms.append(shm)
                shared[name] = view
            errq = ctx.SimpleQueue()
            procs = []
            for idx, (start, stop) in enumerate(ranges):
                p = ctx.Process(target=self._process_shard,
                                args=(idx, start, stop, plan, strides,
                                      shared, compiled, errq),
                                daemon=True)
                p.start()
                procs.append(p)
            failures: "list[tuple[str, str]]" = []
            payloads: "list[dict]" = []

            def drain() -> None:
                while not errq.empty():
                    msg = errq.get()
                    if msg[0] == "telemetry":
                        payloads.append(msg[1])
                    else:
                        failures.append((msg[1], msg[2]))

            # drain while joining: a child blocked writing a large
            # telemetry payload into the queue's pipe cannot exit, and
            # a parent blocked in join() would never read — the classic
            # SimpleQueue deadlock
            for p in procs:
                while p.is_alive():
                    p.join(timeout=0.05)
                    drain()
                p.join()
            drain()
            for p, (start, stop) in zip(procs, ranges):
                if p.exitcode != 0 and not failures:
                    failures.append((f"groups [{start}, {stop})",
                                     f"exit code {p.exitcode}"))
            if telemetry and payloads:
                from ..obs import procagg
                for payload in sorted(
                        payloads, key=lambda d: d.get("shard") or 0):
                    procagg.merge_child(payload, carrier=car)
            if failures:
                detail = "; ".join(f"shard {who}: {why}"
                                   for who, why in failures)
                raise ExecutionError(
                    f"parallel process shard failed: {detail}")
            for name, view in shared.items():
                np.copyto(mem[name], view)
        finally:
            for shm in shms:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - double clean
                    pass

    def _process_shard(self, idx: int, start: int, stop: int,
                       plan: "ExecutionPlan", strides: "dict[str, int]",
                       shared: "dict[str, np.ndarray]",
                       compiled: "CompiledPlan | None", errq) -> None:
        """Body of one forked worker (child process only)."""
        telemetry = obs.enabled()
        if telemetry:
            # fresh registry: ship only what THIS child records (the
            # inherited pre-fork contents would double-count on merge)
            from ..obs import procagg
            procagg.child_begin()
        try:
            smem = MemorySpace()
            for name, stride_bytes in strides.items():
                arr = shared[name]
                se = stride_bytes // arr.dtype.itemsize
                smem.bind(name, arr[start * se:stop * se])
            count = stop - start
            scompiled = (compiled.for_groups(count)
                         if compiled is not None else None)
            with obs.span("backend.parallel.shard", shard=idx,
                          start=start, groups=count,
                          inner=self.inner.name):
                self.inner.run(plan, smem, strides, count, scompiled)
        except BaseException as exc:
            errq.put(("error", str(idx), f"{type(exc).__name__}: {exc}"))
            raise
        finally:
            # ships even for a failed shard — a crashed worker's
            # telemetry is exactly what the post-mortem wants
            if telemetry:
                errq.put(("telemetry", procagg.child_capture(shard=idx)))


BACKENDS: "dict[str, type]" = {
    InterpretBackend.name: InterpretBackend,
    CompiledBackend.name: CompiledBackend,
    FusedBackend.name: FusedBackend,
    MegakernelBackend.name: MegakernelBackend,
    ParallelBackend.name: ParallelBackend,
}


def backend_name(backend: "str | ExecutorBackend | None") -> str:
    """Canonical name of a backend selector (None = the default)."""
    if backend is None:
        return DEFAULT_BACKEND
    if isinstance(backend, str):
        return backend
    name = getattr(backend, "name", None)
    if not isinstance(name, str):
        raise PlanError(f"object {backend!r} does not implement the "
                        f"ExecutorBackend protocol (no 'name')")
    return name


#: shared instances per configuration — backends are stateless across
#: runs (the parallel pool is reused deliberately), so every
#: ``Engine``/``IATF`` resolving the same name shares one object
#: instead of constructing a fresh backend per resolution
_INSTANCES: "dict[tuple, ExecutorBackend]" = {}


def _conforms(backend: object) -> bool:
    """Structural protocol check usable *before* first use: the three
    members exist and ``run`` is callable (``isinstance`` against a
    runtime_checkable Protocol only probes attribute presence)."""
    return (isinstance(backend, ExecutorBackend)
            and callable(getattr(backend, "run", None)))


def resolve_backend(backend: "str | ExecutorBackend | None" = None, *,
                    inner: "str | ExecutorBackend | None" = None,
                    workers: "int | None" = None,
                    mode: "str | None" = None) -> ExecutorBackend:
    """Turn a backend name (or ready instance) into an instance.

    Named backends are cached per configuration, so repeated
    resolutions share one instance; an explicit instance passes through
    untouched (never cached, never reconfigured).  ``inner``,
    ``workers``, and ``mode`` configure the ``parallel`` wrapper and
    are rejected for anything else — a silently ignored option would
    read as applied.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        cls = BACKENDS.get(backend)
        if cls is None:
            raise PlanError(
                f"unknown executor backend {backend!r}; available: "
                f"{', '.join(sorted(BACKENDS))}")
        if backend == ParallelBackend.name:
            if inner is not None and not isinstance(inner, str):
                # instance-configured wrapper: build fresh, don't cache
                return ParallelBackend(inner=inner, workers=workers,
                                       mode=mode)
            # cache on the FULL parameterization, with omitted options
            # normalized to their defaults first — resolve(workers=None)
            # and resolve(workers=<host default>) must share one
            # instance (and one pool), not build two
            key = (backend, DEFAULT_INNER if inner is None else inner,
                   _default_workers() if workers is None else int(workers),
                   "thread" if mode is None else mode)
            instance = _INSTANCES.get(key)
            if instance is None:
                instance = _INSTANCES.setdefault(
                    key, ParallelBackend(inner=inner, workers=workers,
                                         mode=mode))
            return instance
        if inner is not None or workers is not None or mode is not None:
            raise PlanError(
                f"inner=/workers=/mode= configure the 'parallel' backend; "
                f"{backend!r} takes none of them")
        instance = _INSTANCES.get((backend,))
        if instance is None:
            instance = _INSTANCES.setdefault((backend,), cls())
        return instance
    if inner is not None or workers is not None or mode is not None:
        raise PlanError("inner=/workers=/mode= cannot reconfigure a ready "
                        "backend instance")
    if not _conforms(backend):
        raise PlanError(f"object {backend!r} does not implement the "
                        f"ExecutorBackend protocol (name, needs_lowering, "
                        f"run)")
    return backend
