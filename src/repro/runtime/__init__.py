"""Run-time stage: input-aware plan generation and execution (Section 5).

Given the input matrix properties, the batch counter sizes batch rounds
to keep working sets L1-resident, the pack selector picks packing or the
no-packing fast path, and the execution-plan generator binds packing and
compute kernels into a command queue.  Plans are then *lowered* once to
a flat command stream (:mod:`.lowering`) and executed by a pluggable
backend (:mod:`.backends`): the ``interpret`` reference interpreter,
the ``compiled`` replayer, the ``fused`` replayer over the
pass-optimized macro-op stream, or the ``parallel`` group-sharding
wrapper.  The engine drives any of them and times plans on the
pipeline model.
"""

from .batch_counter import groups_per_round
from .plan import ExecutionPlan, KernelCall, BufferSpec, build_gemm_plan, build_trsm_plan
from .lowering import CompiledPlan, CompiledCommand, BufferLayout, lower_plan
from .backends import (ExecutorBackend, InterpretBackend, CompiledBackend,
                       FusedBackend, ParallelBackend, BACKENDS,
                       DEFAULT_BACKEND, DEFAULT_INNER, resolve_backend)
from .engine import Engine, PlanTiming
from .iatf import IATF, PlanCache

__all__ = [
    "groups_per_round", "ExecutionPlan", "KernelCall", "BufferSpec",
    "build_gemm_plan", "build_trsm_plan", "Engine", "PlanTiming", "IATF",
    "PlanCache", "CompiledPlan", "CompiledCommand", "BufferLayout",
    "lower_plan", "ExecutorBackend", "InterpretBackend", "CompiledBackend",
    "FusedBackend", "ParallelBackend", "BACKENDS", "DEFAULT_BACKEND",
    "DEFAULT_INNER", "resolve_backend",
]
