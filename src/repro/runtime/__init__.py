"""Run-time stage: input-aware plan generation and execution (Section 5).

Given the input matrix properties, the batch counter sizes batch rounds
to keep working sets L1-resident, the pack selector picks packing or the
no-packing fast path, and the execution-plan generator binds packing and
compute kernels into a command queue.  The engine executes plans
functionally (NumPy-vectorized across the whole batch) and times them on
the pipeline model.
"""

from .batch_counter import groups_per_round
from .plan import ExecutionPlan, KernelCall, BufferSpec, build_gemm_plan, build_trsm_plan
from .engine import Engine, PlanTiming
from .iatf import IATF

__all__ = [
    "groups_per_round", "ExecutionPlan", "KernelCall", "BufferSpec",
    "build_gemm_plan", "build_trsm_plan", "Engine", "PlanTiming", "IATF",
]
