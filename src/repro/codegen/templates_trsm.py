"""Compact-TRSM kernel templates (paper Algorithm 4 and Eq. 4).

Two kernel families, both operating on the *canonical* orientation
(left side, lower triangle, no transpose) — the packing stage maps all
sixteen LLT/RUT/... mode combinations onto this orientation by
gathering/flipping operands, so one kernel family serves every mode,
exactly as the paper's pack selector arranges.

Triangular kernel (``generate_trsm_triangular`` builds on these):
    The whole M x M triangle of A sits in registers (reciprocal
    diagonal, so the kernel is division-free), and the B panel is
    processed column by column with ping-ponged register banks:

        real:     B bank b, elem i -> V[b*M + i]            (2M regs)
                  A elem (i,j)     -> V[2M + i(i+1)/2 + j]  (M(M+1)/2)
        complex:  B bank b, elem i -> V[2(b*M+i) + comp]    (4M regs)
                  A elem (i,j)     -> V[4M + 2 tri + comp]  (M(M+1))
                  one temp for the complex diagonal multiply

    The register budget bounds M at 5 (real) / 3 (complex) — the
    paper's Section 4.2.2 derivation, verified in tests against
    :func:`repro.codegen.cmar.max_triangular_order`.

Rectangular kernel:
    ``B_d -= L_de @ X_e`` over an (mc x nc) tile of B with k-depth equal
    to the source block size.  Structurally a GEMM kernel whose
    accumulators are *loaded from B* and whose multiply-adds are FMLS —
    the paper's Eq. 4 trick that saves the M*N explicit subtraction a
    plain GEMM call would need.  Registers follow
    :class:`~repro.codegen.templates_gemm.GemmRegMap`.
"""

from __future__ import annotations

from ..errors import RegisterAllocationError
from ..machine.isa import (Instr, fmla, fmls, fmul, ldpv, ldrv, stpv, strv,
                           vmov)
from ..types import BlasDType
from . import regs

__all__ = ["TrsmTriRegMap", "tri_load_a", "tri_solve_column",
           "tri_load_b_column", "tri_store_x_column", "PX"]

PX = 6  # store pointer of the triangular kernel (same value as PB; kept
        # separate so the scheduler may overlap next-column loads with
        # the previous column's store)


def tri_index(i: int, j: int) -> int:
    """Row-major index into the packed lower triangle (j <= i)."""
    return i * (i + 1) // 2 + j


class TrsmTriRegMap:
    """Register numbering and geometry of the triangular kernel."""

    def __init__(self, m: int, dtype: BlasDType, lanes: int,
                 num_vregs: int = 32) -> None:
        self.m = m
        self.dtype = BlasDType.from_any(dtype)
        self.lanes = lanes
        self.ew = self.dtype.real_itemsize
        self.vb = lanes * self.ew
        self.ncomp = 2 if self.dtype.is_complex else 1
        need = (2 * self.ncomp * m                      # two B banks
                + self.ncomp * m * (m + 1) // 2        # the A triangle
                + (1 if self.ncomp == 2 else 0))       # complex-diag temp
        if need > num_vregs:
            raise RegisterAllocationError(
                f"TRSM triangular kernel M={m} {self.dtype.value} needs "
                f"{need} vector registers (> {num_vregs})")

    @property
    def a_base(self) -> int:
        return 2 * self.ncomp * self.m

    def b_reg(self, bank: int, i: int, comp: int = 0) -> int:
        return self.ncomp * (bank * self.m + i) + comp

    def a_reg(self, i: int, j: int, comp: int = 0) -> int:
        return self.a_base + self.ncomp * tri_index(i, j) + comp

    @property
    def temp_reg(self) -> int:
        """Scratch register for the complex diagonal multiply."""
        return self.a_base + self.ncomp * self.m * (self.m + 1) // 2


def tri_load_a(ctx: TrsmTriRegMap) -> list[Instr]:
    """Load the whole packed triangle into registers (offset-addressed)."""
    out: list[Instr] = []
    nvec = ctx.ncomp * ctx.m * (ctx.m + 1) // 2
    t = 0
    while t < nvec:
        if t + 1 < nvec:
            out.append(ldpv(ctx.a_base + t, ctx.a_base + t + 1, regs.PA,
                            t * ctx.vb, ew=ctx.ew, tag="TRI_A"))
            t += 2
        else:
            out.append(ldrv(ctx.a_base + t, regs.PA, t * ctx.vb,
                            ew=ctx.ew, tag="TRI_A"))
            t += 1
    return out


def tri_load_b_column(ctx: TrsmTriRegMap, l: int, bank: int,
                      col_stride: int) -> list[Instr]:
    """Load B column ``l`` into bank ``bank`` (contiguous down the column)."""
    out: list[Instr] = []
    base_off = l * col_stride
    nvec = ctx.ncomp * ctx.m
    first = ctx.b_reg(bank, 0)
    t = 0
    while t < nvec:
        if t + 1 < nvec:
            out.append(ldpv(first + t, first + t + 1, regs.PB,
                            base_off + t * ctx.vb, ew=ctx.ew, tag=f"TRI_B{l}"))
            t += 2
        else:
            out.append(ldrv(first + t, regs.PB, base_off + t * ctx.vb,
                            ew=ctx.ew, tag=f"TRI_B{l}"))
            t += 1
    return out


def tri_store_x_column(ctx: TrsmTriRegMap, l: int, bank: int,
                       col_stride: int) -> list[Instr]:
    """Store the solved column back (in place, via the PX alias pointer)."""
    out: list[Instr] = []
    base_off = l * col_stride
    nvec = ctx.ncomp * ctx.m
    first = ctx.b_reg(bank, 0)
    t = 0
    while t < nvec:
        if t + 1 < nvec:
            out.append(stpv(first + t, first + t + 1, PX,
                            base_off + t * ctx.vb, ew=ctx.ew, tag=f"TRI_X{l}"))
            t += 2
        else:
            out.append(strv(first + t, PX, base_off + t * ctx.vb,
                            ew=ctx.ew, tag=f"TRI_X{l}"))
            t += 1
    return out


def tri_solve_column(ctx: TrsmTriRegMap, l: int, bank: int,
                     unit_diag: bool) -> list[Instr]:
    """Forward substitution on one in-register column (Algorithm 4 lines 6-9).

    The diagonal was reciprocated at pack time, so the diagonal step is a
    multiply (complex: a full complex multiply through one temp register).
    """
    out: list[Instr] = []
    ew = ctx.ew
    tag = f"TRI_S{l}"
    for i in range(ctx.m):
        if ctx.ncomp == 1:
            bi = ctx.b_reg(bank, i)
            for j in range(i):
                out.append(fmls(bi, ctx.b_reg(bank, j), ctx.a_reg(i, j),
                                ew=ew, tag=tag))
            if not unit_diag:
                out.append(fmul(bi, bi, ctx.a_reg(i, i), ew=ew, tag=tag))
        else:
            br, bim = ctx.b_reg(bank, i, 0), ctx.b_reg(bank, i, 1)
            for j in range(i):
                xr, xi = ctx.b_reg(bank, j, 0), ctx.b_reg(bank, j, 1)
                ar, ai = ctx.a_reg(i, j, 0), ctx.a_reg(i, j, 1)
                out.append(fmls(br, ar, xr, ew=ew, tag=tag))
                out.append(fmla(br, ai, xi, ew=ew, tag=tag))
                out.append(fmls(bim, ar, xi, ew=ew, tag=tag))
                out.append(fmls(bim, ai, xr, ew=ew, tag=tag))
            if not unit_diag:
                dr, di = ctx.a_reg(i, i, 0), ctx.a_reg(i, i, 1)
                t = ctx.temp_reg
                out.append(fmul(t, bim, dr, ew=ew, tag=tag))
                out.append(fmla(t, br, di, ew=ew, tag=tag))      # t = Xim
                out.append(fmul(br, br, dr, ew=ew, tag=tag))
                out.append(fmls(br, bim, di, ew=ew, tag=tag))    # br = Xre
                out.append(vmov(bim, t, ew=ew, tag=tag))
    return out
