"""Kernel registry: the install-time stage's output store.

Holds every generated-and-optimized kernel, keyed by its full parameter
tuple, and exposes the paper's Table 1 inventory for verification.  The
install-time stage (:meth:`KernelRegistry.install`) pre-generates the
whole Table 1 family; the run-time stage asks for kernels by exact
shape and gets cache hits for everything the inventory covers (and
transparent generation for anything else, e.g. stride-specialized TRSM
variants).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .. import obs
from ..machine.machines import MachineConfig
from ..machine.program import Program
from ..types import BlasDType
from .cmar import max_triangular_order, optimal_gemm_kernel
from .generator_gemm import generate_gemm_kernel
from .generator_trsm import generate_trsm_rect, generate_trsm_triangular
from .optimizer import schedule_program
from .validate import assert_valid

__all__ = ["KernelRegistry", "table1_inventory"]


def table1_inventory() -> dict[str, dict[str, list[tuple[int, int]]]]:
    """The paper's Table 1, as data.

    Keys are routine families; ``main`` is the CMAR-optimal kernel and
    ``edge`` the generated edge sizes.  TRSM rows are the rectangular
    kernels; the triangular kernels (``tri``) are "all triangular cases
    ... when matrix A can all be placed in registers".
    """
    real_gemm_edges = ([(4, n) for n in (1, 2, 3)]
                       + [(3, n) for n in (1, 2, 3, 4)]
                       + [(2, n) for n in (1, 2, 3, 4)]
                       + [(1, n) for n in (1, 2, 3, 4)])
    cplx_gemm_edges = [(3, 1), (2, 1), (2, 2), (1, 1), (1, 2)]
    return {
        "sgemm/dgemm": {"main": [(4, 4)], "edge": real_gemm_edges},
        "cgemm/zgemm": {"main": [(3, 2)], "edge": cplx_gemm_edges},
        "strsm/dtrsm": {"main": [(4, 4)],
                        "edge": [(3, 4), (2, 4), (1, 4)],
                        "tri": [(m, m) for m in range(1, 6)]},
        "ctrsm/ztrsm": {"main": [(2, 2)],
                        "edge": [(1, 2)],
                        "tri": [(m, m) for m in range(1, 4)]},
    }


@dataclass
class KernelRegistry:
    """Generated-kernel cache for one machine."""

    machine: MachineConfig
    optimize: bool = True
    """Run the instruction scheduler on every kernel (ablations disable)."""

    _cache: dict[tuple, Program] = field(default_factory=dict, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)
    """Serializes generation so concurrent callers (the serve scheduler
    shares one registry across threads) never race ``_cache`` writes or
    generate the same kernel twice.  RLock: ``install`` and the TRSM
    generators call back into ``_get`` for sub-kernels."""

    # -- derived configuration ----------------------------------------

    def main_gemm_kernel(self, dtype: "BlasDType | str") -> tuple[int, int]:
        """CMAR-optimal (mc, nc) for this machine's register file."""
        return optimal_gemm_kernel(dtype, self.machine.num_vregs)

    def max_tri(self, dtype: "BlasDType | str") -> int:
        """Largest in-register TRSM triangular order (paper: 5 / 3)."""
        return max_triangular_order(dtype, self.machine.num_vregs)

    def trsm_panel_width(self, dtype: "BlasDType | str") -> int:
        """Rectangular-kernel column count: Table 1's fixed nc."""
        return 2 if BlasDType.from_any(dtype).is_complex else 4

    def trsm_block_main(self, dtype: "BlasDType | str") -> int:
        """Main diagonal-block size of the blocked decomposition."""
        return 2 if BlasDType.from_any(dtype).is_complex else 4

    # -- kernel accessors ----------------------------------------------

    def _get(self, key: tuple, make) -> Program:
        prog = self._cache.get(key)
        if prog is None:
            with self._lock:
                prog = self._cache.get(key)  # lost the race: reuse theirs
                if prog is None:
                    t0 = obs.tick()
                    with obs.span("codegen.generate", kernel=str(key)):
                        prog = make()
                        if self.optimize:
                            with obs.span("codegen.optimize"):
                                prog = schedule_program(prog, self.machine)
                            obs.count("codegen.optimized")
                        assert_valid(prog, self.machine)
                    obs.count("codegen.generated")
                    obs.tock("codegen.generate_ms", t0)
                    self._cache[key] = prog
                    return prog
        obs.count("codegen.cache_hits")
        return prog

    def gemm_kernel(self, mc: int, nc: int, k: int, dtype: "BlasDType | str",
                    alpha: complex = 1.0, beta: complex = 1.0) -> Program:
        """The (mc x nc x K) compact GEMM kernel, generated on first use."""
        dt = BlasDType.from_any(dtype)
        key = ("gemm", dt.value, mc, nc, k, complex(alpha), complex(beta))
        return self._get(key, lambda: generate_gemm_kernel(
            mc, nc, k, dt, self.machine, alpha, beta))

    def trsm_triangular(self, m: int, n: int, dtype: "BlasDType | str",
                        unit_diag: bool = False,
                        col_stride_bytes: int | None = None) -> Program:
        """The order-m triangular solve kernel over an n-column panel."""
        dt = BlasDType.from_any(dtype)
        key = ("trsm_tri", dt.value, m, n, unit_diag, col_stride_bytes)
        return self._get(key, lambda: generate_trsm_triangular(
            m, n, dt, self.machine, unit_diag, col_stride_bytes))

    def trsm_rect(self, mc: int, nc: int, k: int, dtype: "BlasDType | str",
                  x_col_stride_bytes: int) -> Program:
        """The FMLS rectangular update kernel (Eq. 4)."""
        dt = BlasDType.from_any(dtype)
        key = ("trsm_rect", dt.value, mc, nc, k, x_col_stride_bytes)
        return self._get(key, lambda: generate_trsm_rect(
            mc, nc, k, dt, self.machine, x_col_stride_bytes))

    # -- install-time sweep ---------------------------------------------

    def install(self, dtypes=("s", "d", "c", "z"), k_values=(1, 2, 4, 8),
                alpha: complex = 1.0, beta: complex = 1.0) -> int:
        """Pre-generate the Table 1 kernel family.

        K is a free parameter of the GEMM family (the paper unrolls per
        input K at install time); callers pass the K values they expect.
        Returns the number of kernels now cached.
        """
        inv = table1_inventory()
        for dt in dtypes:
            bdt = BlasDType.from_any(dt)
            fam = "cgemm/zgemm" if bdt.is_complex else "sgemm/dgemm"
            for mc, nc in inv[fam]["main"] + inv[fam]["edge"]:
                for k in k_values:
                    self.gemm_kernel(mc, nc, k, bdt, alpha, beta)
            tfam = "ctrsm/ztrsm" if bdt.is_complex else "strsm/dtrsm"
            nc_panel = self.trsm_panel_width(bdt)
            for m in range(1, self.max_tri(bdt) + 1):
                self.trsm_triangular(m, nc_panel, bdt)
            for mc, nc in inv[tfam]["main"] + inv[tfam]["edge"]:
                for k in range(1, self.trsm_block_main(bdt) + 1):
                    # stride specialized per problem; install a canonical one
                    self.trsm_rect(mc, nc, k, bdt,
                                   x_col_stride_bytes=8 * self.machine.lanes(bdt)
                                   * bdt.real_itemsize)
        return len(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    # -- reporting -------------------------------------------------------

    def report(self) -> str:
        """Human-readable inventory of every cached kernel.

        Columns: name, instruction count, FP ops, memory ops, the
        achieved FP:mem ratio next to the CMAR bound — the quickest way
        to sanity-check a freshly generated family.
        """
        lines = [f"KernelRegistry[{self.machine.name}]: "
                 f"{len(self._cache)} kernels",
                 f"{'kernel':<44}{'instrs':>7}{'fp':>6}{'mem':>6}"
                 f"{'fp/mem':>8}"]
        for key in sorted(self._cache, key=str):
            prog = self._cache[key]
            fp, mem = prog.num_fp, prog.num_mem
            ratio = fp / mem if mem else float("inf")
            lines.append(f"{prog.name:<44}{len(prog):>7}{fp:>6}{mem:>6}"
                         f"{ratio:>8.2f}")
        return "\n".join(lines)
