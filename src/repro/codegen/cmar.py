"""Compute-to-memory-access-ratio analysis (paper Eqs. 2 and 3).

The optimal kernel size maximizes CMAR subject to the vector-register
budget, with registers reserved for the ping-pong double-buffering:

* real types:    ``2*mc`` regs for A, ``2*nc`` for B, ``mc*nc`` for C,
  budget ``2mc + 2nc + mc*nc <= 32``;  CMAR = ``mc*nc / (mc + nc)``.
* complex types: ``4*mc`` for A, ``4*nc`` for B, ``2*mc*nc`` for C,
  budget ``4mc + 4nc + 2mc*nc <= 32``; CMAR = ``4*mc*nc / (2*(mc+nc))``.

The paper's results — 4x4 for SGEMM/DGEMM, 3x2 (or 2x3) for CGEMM/ZGEMM —
fall out of the brute-force search below; tests assert both the closed
forms and the search agree.
"""

from __future__ import annotations

from ..types import BlasDType

__all__ = ["cmar_real", "cmar_complex", "register_cost", "fits_registers",
           "optimal_gemm_kernel", "max_triangular_order"]


def cmar_real(mc: int, nc: int) -> float:
    """Eq. 2: average compute-to-memory-access ratio of a real kernel."""
    return (mc * nc) / (mc + nc)


def cmar_complex(mc: int, nc: int) -> float:
    """Eq. 3: CMAR of a complex kernel (4 real FP ops per complex FMA,
    2 vector loads per complex element)."""
    return (4 * mc * nc) / (2 * (mc + nc))


def register_cost(mc: int, nc: int, dtype: "BlasDType | str") -> int:
    """Vector registers a ping-ponged GEMM kernel of this size needs."""
    dt = BlasDType.from_any(dtype)
    if dt.is_complex:
        return 4 * mc + 4 * nc + 2 * mc * nc
    return 2 * mc + 2 * nc + mc * nc


def fits_registers(mc: int, nc: int, dtype: "BlasDType | str",
                   num_vregs: int = 32) -> bool:
    """Whether a ping-ponged kernel of this size fits the register file."""
    return register_cost(mc, nc, dtype) <= num_vregs


def optimal_gemm_kernel(dtype: "BlasDType | str",
                        num_vregs: int = 32) -> tuple[int, int]:
    """Brute-force the CMAR-optimal kernel size under the register budget.

    Ties break toward larger ``mc`` (the paper picks 3x2 over 2x3: a
    taller kernel keeps the store pattern column-contiguous).
    """
    dt = BlasDType.from_any(dtype)
    metric = cmar_complex if dt.is_complex else cmar_real
    best: tuple[float, int, int] | None = None
    for mc in range(1, num_vregs + 1):
        for nc in range(1, num_vregs + 1):
            if not fits_registers(mc, nc, dt, num_vregs):
                continue
            key = (metric(mc, nc), mc, nc)
            if best is None or key > best:
                best = key
    assert best is not None
    return best[1], best[2]


def max_triangular_order(dtype: "BlasDType | str",
                         num_vregs: int = 32) -> int:
    """Largest TRSM order whose whole A triangle fits in registers.

    Real case (paper Section 4.2.2): A needs ``M(M+1)/2`` registers and
    the ping-ponged B columns need ``2M``, so ``2M + M(M+1)/2 <= 32``
    gives M = 5.  Complex doubles both terms (split re/im), giving M = 3.
    """
    dt = BlasDType.from_any(dtype)
    scale = 2 if dt.is_complex else 1
    m = 0
    while True:
        need = scale * (2 * (m + 1) + (m + 1) * (m + 2) // 2)
        if need > num_vregs:
            return m
        m += 1
