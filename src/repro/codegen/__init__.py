"""Install-time stage: kernel templates, generation, and optimization.

Mirrors the paper's Section 4: a computing-kernel designer instantiates
the six GEMM templates (Algorithm 2) and the TRSM triangular/rectangular
templates (Algorithm 4 / Eq. 4) for every kernel size in Table 1, a CMAR
analysis picks main kernel sizes (Eqs. 2-3), and a kernel optimizer
re-schedules instruction placement (Figure 5).
"""

from .cmar import (cmar_real, cmar_complex, optimal_gemm_kernel,
                   max_triangular_order)
from .tiling import decompose_dim, tile_starts
from .generator_gemm import generate_gemm_kernel
from .generator_trsm import generate_trsm_triangular, generate_trsm_rect
from .optimizer import schedule_program
from .registry import KernelRegistry, table1_inventory

__all__ = [
    "cmar_real", "cmar_complex", "optimal_gemm_kernel", "max_triangular_order",
    "decompose_dim", "tile_starts",
    "generate_gemm_kernel", "generate_trsm_triangular", "generate_trsm_rect",
    "schedule_program", "KernelRegistry", "table1_inventory",
]
