"""Compact-GEMM computing-kernel generator (paper Algorithm 3).

Assembles the six templates into a fully unrolled kernel for a given
(mc, nc, K, dtype).  The generated kernel updates one ``P x mc x nc``
C tile from packed ``P x mc x K`` A and ``P x K x nc`` B panels:

* ``x0`` (PA) walks the packed A panel (mc vectors per k-step),
* ``x1`` (PB) walks the packed B panel (nc vectors per k-step),
* ``x2 + j`` points at column ``j`` of the C tile in the compact C
  buffer (column elements are contiguous there, so SAVE uses ldp/stp).

The kernel embeds alpha and beta as immediates — the install-time stage
generates kernels per problem configuration, exactly as the paper's
framework does, and the registry caches them.
"""

from __future__ import annotations

from ..errors import CodegenError
from ..machine.machines import MachineConfig
from ..machine.program import Program
from ..types import BlasDType
from .templates_gemm import (GemmRegMap, t_e, t_i, t_m, t_prologue, t_save,
                             t_sub, t_zero_c)

__all__ = ["generate_gemm_kernel"]


def generate_gemm_kernel(mc: int, nc: int, k: int, dtype: "BlasDType | str",
                         machine: MachineConfig, alpha: complex = 1.0,
                         beta: complex = 1.0,
                         prefetch_c: bool = True) -> Program:
    """Generate the raw (pre-optimizer) kernel program.

    Raises :class:`CodegenError` for sizes outside the register budget.
    """
    dt = BlasDType.from_any(dtype)
    if mc < 1 or nc < 1 or k < 1:
        raise CodegenError(f"invalid kernel size {mc}x{nc}, K={k}")
    lanes = machine.lanes(dt)
    ctx = GemmRegMap(mc, nc, dt, lanes, machine.num_vregs)

    instrs = t_prologue(ctx) if prefetch_c else []
    if k < 4:
        if k == 3:
            instrs += t_i(ctx) + t_e(ctx, bank=1) + t_sub(ctx)
        elif k == 2:
            instrs += t_i(ctx) + t_e(ctx, bank=1)
        else:
            instrs += t_zero_c(ctx) + t_sub(ctx)
    else:
        instrs += t_i(ctx) + t_m(ctx, 2)
        kk = k - 2
        while kk > 2:
            instrs += t_m(ctx, 1) + t_m(ctx, 2)
            kk -= 2
        if kk == 2:
            instrs += t_m(ctx, 1) + t_e(ctx, bank=1)
        else:
            # Algorithm 3 writes SUB here, but the preceding M2 already
            # streamed the final k-step into bank 0; the correct tail is
            # a compute-only step on that bank (see templates_gemm.t_e).
            instrs += t_e(ctx, bank=0)
    instrs += t_save(ctx, complex(alpha), complex(beta))

    name = (f"{dt.value}gemm_{mc}x{nc}_k{k}"
            f"_a{alpha!r}_b{beta!r}".replace(" ", ""))
    return Program(name, instrs, ew=dt.real_itemsize, lanes=lanes, meta={
        "routine": "gemm",
        "mc": mc, "nc": nc, "k": k,
        "dtype": dt.value,
        "alpha": complex(alpha), "beta": complex(beta),
        "a_panel_bytes": mc * k * ctx.vb * ctx.ncomp,
        "b_panel_bytes": nc * k * ctx.vb * ctx.ncomp,
        "madds": mc * nc * k,
    })
