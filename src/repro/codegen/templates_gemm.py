"""The six compact-GEMM kernel templates (paper Algorithm 2).

Register layout follows the paper exactly.  For real types::

    A bank b, element i   -> V[b*mc + i]                  (2*mc regs)
    B bank b, element j   -> V[2*mc + b*nc + j]           (2*nc regs)
    C element (i, j)      -> V[2*(mc+nc) + j*mc + i]      (mc*nc regs)

and for complex types (split re/im, ``comp`` is 0=re, 1=im)::

    A bank b, elem i      -> V[2*(b*mc + i) + comp]       (4*mc regs)
    B bank b, elem j      -> V[4*mc + 2*(b*nc + j) + comp](4*nc regs)
    C element (i, j)      -> V[4*(mc+nc) + 2*(j*mc+i) + comp]

Two banks implement the "ping-pong": while one bank feeds the FMAs of
the current k-step, the other is being filled for the next, so a
template never computes on registers it just loaded.

The emitted instruction order is deliberately naive — all loads first,
then all FMAs, with a pointer ``add`` after every ``ldp`` — matching the
left column of the paper's Figure 5.  The kernel optimizer
(:mod:`repro.codegen.optimizer`) is what turns this into the interleaved
placement of the right column; keeping the raw order here makes the
Figure 5 ablation measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RegisterAllocationError
from ..machine.isa import (Instr, addi, fmai, fmla, fmls, fmul, fmuli, ldpv,
                           ldrv, prfm, stpv, strv, vzero)
from ..types import BlasDType
from . import regs

__all__ = ["GemmRegMap", "t_prologue", "t_i", "t_m", "t_e", "t_sub", "t_save"]


@dataclass
class GemmRegMap:
    """Kernel-size-specific register assignments and geometry."""

    mc: int
    nc: int
    dtype: BlasDType
    lanes: int
    num_vregs: int = 32

    def __post_init__(self) -> None:
        self.dtype = BlasDType.from_any(self.dtype)
        self.ew = self.dtype.real_itemsize
        self.vb = self.lanes * self.ew            # bytes per vector register
        self.ncomp = 2 if self.dtype.is_complex else 1
        need = self.c_base + self.ncomp * self.mc * self.nc
        if need > self.num_vregs:
            raise RegisterAllocationError(
                f"{self.mc}x{self.nc} {self.dtype.value} kernel needs {need} "
                f"vector registers (> {self.num_vregs})")

    # -- register numbering -------------------------------------------

    @property
    def b_base(self) -> int:
        return 2 * self.ncomp * self.mc

    @property
    def c_base(self) -> int:
        return 2 * self.ncomp * (self.mc + self.nc)

    def a_reg(self, bank: int, i: int, comp: int = 0) -> int:
        return self.ncomp * (bank * self.mc + i) + comp

    def b_reg(self, bank: int, j: int, comp: int = 0) -> int:
        return self.b_base + self.ncomp * (bank * self.nc + j) + comp

    def c_reg(self, i: int, j: int, comp: int = 0) -> int:
        return self.c_base + self.ncomp * (j * self.mc + i) + comp

    def a_bank_regs(self, bank: int) -> list[int]:
        return [self.a_reg(bank, i, c)
                for i in range(self.mc) for c in range(self.ncomp)]

    def b_bank_regs(self, bank: int) -> list[int]:
        return [self.b_reg(bank, j, c)
                for j in range(self.nc) for c in range(self.ncomp)]

    def c_regs(self) -> list[int]:
        return [self.c_reg(i, j, c) for j in range(self.nc)
                for i in range(self.mc) for c in range(self.ncomp)]


def _stream_loads(ctx: GemmRegMap, base: int, vregs: list[int],
                  tag: str) -> list[Instr]:
    """Sequential loads with a post-increment ``add`` after each access.

    This is the paper's generated style (Figure 5 left column): ``ldp``
    pairs walking a packed panel, odd counts finished with ``ldr``.
    """
    out: list[Instr] = []
    i = 0
    while i < len(vregs):
        if i + 1 < len(vregs):
            out.append(ldpv(vregs[i], vregs[i + 1], base, 0, ew=ctx.ew, tag=tag))
            out.append(addi(base, base, 2 * ctx.vb, tag=tag))
            i += 2
        else:
            out.append(ldrv(vregs[i], base, 0, ew=ctx.ew, tag=tag))
            out.append(addi(base, base, ctx.vb, tag=tag))
            i += 1
    return out


def _compute(ctx: GemmRegMap, bank: int, first: bool, tag: str) -> list[Instr]:
    """The mc*nc (complex: 4*mc*nc) FP ops of one k-step.

    ``first`` selects FMUL (fresh accumulators, TEMPLATE_I) vs FMA.
    Emission order is column-major over C, matching Figure 5's
    v16 = v0*v8, v17 = v1*v8, ... sequence.
    """
    out: list[Instr] = []
    ew = ctx.ew
    for j in range(ctx.nc):
        for i in range(ctx.mc):
            if ctx.ncomp == 1:
                a, b, c = ctx.a_reg(bank, i), ctx.b_reg(bank, j), ctx.c_reg(i, j)
                out.append((fmul if first else fmla)(c, a, b, ew=ew, tag=tag))
            else:
                ar, ai = ctx.a_reg(bank, i, 0), ctx.a_reg(bank, i, 1)
                br, bi = ctx.b_reg(bank, j, 0), ctx.b_reg(bank, j, 1)
                cr, ci = ctx.c_reg(i, j, 0), ctx.c_reg(i, j, 1)
                if first:
                    out.append(fmul(cr, ar, br, ew=ew, tag=tag))
                    out.append(fmul(ci, ar, bi, ew=ew, tag=tag))
                else:
                    out.append(fmla(cr, ar, br, ew=ew, tag=tag))
                    out.append(fmla(ci, ar, bi, ew=ew, tag=tag))
                out.append(fmls(cr, ai, bi, ew=ew, tag=tag))
                out.append(fmla(ci, ai, br, ew=ew, tag=tag))
    return out


def t_prologue(ctx: GemmRegMap) -> list[Instr]:
    """Prefetch the C tile columns (paper Section 4.3: A and B are in L1
    after packing; C still lives further out, so PRFM it up front)."""
    return [prfm(regs.pc(j), 0, tag="PROLOGUE") for j in range(ctx.nc)]


def t_i(ctx: GemmRegMap) -> list[Instr]:
    """TEMPLATE_I: kernel entry.  Loads both banks of A and B (its own
    k-step plus M2's), computes the first k-step with FMUL."""
    out = _stream_loads(ctx, regs.PA,
                        ctx.a_bank_regs(0) + ctx.a_bank_regs(1), "I")
    out += _stream_loads(ctx, regs.PB,
                         ctx.b_bank_regs(0) + ctx.b_bank_regs(1), "I")
    out += _compute(ctx, bank=0, first=True, tag="I")
    return out


def t_m(ctx: GemmRegMap, which: int) -> list[Instr]:
    """TEMPLATE_M1 (``which=1``) / TEMPLATE_M2 (``which=2``).

    M1 computes on bank 0 while loading bank 1; M2 the reverse.
    """
    load_bank = 1 if which == 1 else 0
    compute_bank = 0 if which == 1 else 1
    tag = f"M{which}"
    out = _stream_loads(ctx, regs.PA, ctx.a_bank_regs(load_bank), tag)
    out += _stream_loads(ctx, regs.PB, ctx.b_bank_regs(load_bank), tag)
    out += _compute(ctx, bank=compute_bank, first=False, tag=tag)
    return out


def t_e(ctx: GemmRegMap, bank: int = 1) -> list[Instr]:
    """TEMPLATE_E: kernel exit, compute-only, on the preloaded bank.

    The paper's Algorithm 3 writes the odd-K tail as SUB, but the
    preceding M2 has already streamed the final k-step into bank 0, so
    the semantically correct tail is E on bank 0; we emit that and keep
    SUB (load + compute) for the K < 4 entry paths where nothing was
    preloaded.
    """
    return _compute(ctx, bank=bank, first=False, tag="E")


def t_sub(ctx: GemmRegMap) -> list[Instr]:
    """TEMPLATE_SUB: single-k-step load + FMA, no ping-pong."""
    out = _stream_loads(ctx, regs.PA, ctx.a_bank_regs(0), "SUB")
    out += _stream_loads(ctx, regs.PB, ctx.b_bank_regs(0), "SUB")
    out += _compute(ctx, bank=0, first=False, tag="SUB")
    return out


def t_zero_c(ctx: GemmRegMap) -> list[Instr]:
    """Zero the C accumulators (K == 1 entry path of Algorithm 3)."""
    return [vzero(r, ew=ctx.ew, tag="ZERO") for r in ctx.c_regs()]


# ---------------------------------------------------------------------------
# TEMPLATE_SAVE
# ---------------------------------------------------------------------------

def _save_column_real(ctx: GemmRegMap, j: int, alpha: float,
                      beta: float) -> list[Instr]:
    out: list[Instr] = []
    ew, vb, mc = ctx.ew, ctx.vb, ctx.mc
    base = regs.pc(j)
    acc = [ctx.c_reg(i, j) for i in range(mc)]
    if beta == 0.0 and alpha == 1.0:
        return _store_run(ctx, base, acc, "SAVE")
    scratch = [(j % 2) * mc + i for i in range(mc)]   # an A-region bank
    if beta == 0.0:
        for s, c in zip(scratch, acc):
            out.append(fmuli(s, c, alpha, ew=ew, tag="SAVE"))
        out += _store_run(ctx, base, scratch, "SAVE")
        return out
    out += _load_run(ctx, base, scratch, "SAVE")
    if beta != 1.0:
        for s in scratch:
            out.append(fmuli(s, s, beta, ew=ew, tag="SAVE"))
    for s, c in zip(scratch, acc):
        out.append(fmai(s, c, alpha, ew=ew, tag="SAVE"))
    out += _store_run(ctx, base, scratch, "SAVE")
    return out


def _save_column_complex(ctx: GemmRegMap, j: int, alpha: complex,
                         beta: complex) -> list[Instr]:
    out: list[Instr] = []
    ew, mc = ctx.ew, ctx.mc
    base = regs.pc(j)
    ar, ai = alpha.real, alpha.imag
    br, bi = beta.real, beta.imag

    def acc(i: int) -> tuple[int, int]:
        return ctx.c_reg(i, j, 0), ctx.c_reg(i, j, 1)

    if beta == 0 and alpha == 1:
        pairs = [r for i in range(mc) for r in acc(i)]
        return _store_run(ctx, base, pairs, "SAVE")

    if beta == 0:
        # T = alpha * acc; scratch from the A region, rotated per column
        bank = (j % 2) * 2 * mc
        for i in range(mc):
            xr, xi = acc(i)
            tr, ti = bank + 2 * i, bank + 2 * i + 1
            out.append(fmuli(tr, xr, ar, ew=ew, tag="SAVE"))
            out.append(fmuli(ti, xi, ar, ew=ew, tag="SAVE"))
            if ai:
                out.append(fmai(tr, xi, -ai, ew=ew, tag="SAVE"))
                out.append(fmai(ti, xr, ai, ew=ew, tag="SAVE"))
            out.append(stpv(tr, ti, base, 2 * i * ctx.vb, ew=ew, tag="SAVE"))
        return out

    if beta == 1:
        # S = origC; S += alpha*acc in place
        bank = (j % 2) * 2 * mc
        scratch = [bank + t for t in range(2 * mc)]
        out += _load_run(ctx, base, scratch, "SAVE")
        for i in range(mc):
            xr, xi = acc(i)
            sr, si = scratch[2 * i], scratch[2 * i + 1]
            out.append(fmai(sr, xr, ar, ew=ew, tag="SAVE"))
            out.append(fmai(si, xi, ar, ew=ew, tag="SAVE"))
            if ai:
                out.append(fmai(sr, xi, -ai, ew=ew, tag="SAVE"))
                out.append(fmai(si, xr, ai, ew=ew, tag="SAVE"))
        out += _store_run(ctx, base, scratch, "SAVE")
        return out

    # general complex beta: serialized through four fixed scratch regs
    sr_, si_, tr_, ti_ = 0, 1, 2, 3
    for i in range(mc):
        xr, xi = acc(i)
        out.append(ldpv(sr_, si_, base, 2 * i * ctx.vb, ew=ew, tag="SAVE"))
        out.append(fmuli(tr_, sr_, br, ew=ew, tag="SAVE"))
        out.append(fmuli(ti_, si_, br, ew=ew, tag="SAVE"))
        if bi:
            out.append(fmai(tr_, si_, -bi, ew=ew, tag="SAVE"))
            out.append(fmai(ti_, sr_, bi, ew=ew, tag="SAVE"))
        out.append(fmai(tr_, xr, ar, ew=ew, tag="SAVE"))
        out.append(fmai(ti_, xi, ar, ew=ew, tag="SAVE"))
        if ai:
            out.append(fmai(tr_, xi, -ai, ew=ew, tag="SAVE"))
            out.append(fmai(ti_, xr, ai, ew=ew, tag="SAVE"))
        out.append(stpv(tr_, ti_, base, 2 * i * ctx.vb, ew=ew, tag="SAVE"))
    return out


def _load_run(ctx: GemmRegMap, base: int, vregs: list[int],
              tag: str) -> list[Instr]:
    """Offset-addressed loads of a contiguous run (no pointer bumps)."""
    out, i = [], 0
    while i < len(vregs):
        if i + 1 < len(vregs):
            out.append(ldpv(vregs[i], vregs[i + 1], base, i * ctx.vb,
                            ew=ctx.ew, tag=tag))
            i += 2
        else:
            out.append(ldrv(vregs[i], base, i * ctx.vb, ew=ctx.ew, tag=tag))
            i += 1
    return out


def _store_run(ctx: GemmRegMap, base: int, vregs: list[int],
               tag: str) -> list[Instr]:
    out, i = [], 0
    while i < len(vregs):
        if i + 1 < len(vregs):
            out.append(stpv(vregs[i], vregs[i + 1], base, i * ctx.vb,
                            ew=ctx.ew, tag=tag))
            i += 2
        else:
            out.append(strv(vregs[i], base, i * ctx.vb, ew=ctx.ew, tag=tag))
            i += 1
    return out


def t_save(ctx: GemmRegMap, alpha: complex, beta: complex) -> list[Instr]:
    """TEMPLATE_SAVE: ``originC = beta*originC + alpha*acc``, per column.

    Columns are processed in chunks through the (now free) A-region
    scratch registers — the whole-tile load of Algorithm 2 line 22 only
    fits registers at 4x4, so the generated kernels chunk by column,
    which is also what lets consecutive columns overlap after scheduling.
    """
    out: list[Instr] = []
    for j in range(ctx.nc):
        if ctx.ncomp == 1:
            out += _save_column_real(ctx, j, float(alpha.real), float(beta.real))
        else:
            out += _save_column_complex(ctx, j, complex(alpha), complex(beta))
    return out
