"""Compact-TRSM kernel generators.

``generate_trsm_triangular`` builds the in-register solve kernel of
Algorithm 4 for M up to the register bound (5 real / 3 complex); it
serves both the whole-problem case (small M) and the diagonal blocks of
the blocked decomposition (Eq. 1).

``generate_trsm_rect`` builds the rectangular update kernel of Eq. 4
(``B_d -= L_de @ X_e``) as a ping-ponged FMLS kernel whose accumulators
are loaded from, and stored back to, the B panel in place.

Pointer-register contract (set by the engine per invocation):

=============== ====================================================
triangular      PA = packed reciprocal triangle; PB = B panel base;
                PX (= x6) = same base, used for the in-place stores
rectangular     PA = packed L block (streamed, GEMM-A panel layout);
                PB = solved X_e panel base (offset-addressed, strided
                by ``x_col_stride``); PC(j) = B_d tile column j
=============== ====================================================
"""

from __future__ import annotations

from ..errors import CodegenError
from ..machine.isa import Instr, fmla, fmls, ldpv, ldrv
from ..machine.machines import MachineConfig
from ..machine.program import Program
from ..types import BlasDType
from . import regs
from .cmar import max_triangular_order
from .templates_gemm import GemmRegMap, _load_run, _store_run, _stream_loads
from .templates_trsm import (TrsmTriRegMap, tri_load_a, tri_load_b_column,
                             tri_solve_column, tri_store_x_column)

__all__ = ["generate_trsm_triangular", "generate_trsm_rect"]


def generate_trsm_triangular(m: int, n: int, dtype: "BlasDType | str",
                             machine: MachineConfig, unit_diag: bool = False,
                             col_stride_bytes: int | None = None) -> Program:
    """In-register triangular solve over an ``m x n`` panel.

    ``col_stride_bytes`` is the byte distance between consecutive panel
    columns; it defaults to the packed-panel value ``m * ncomp * vb``
    (which equals the compact-layout stride when the panel *is* the
    whole B matrix — the no-packing fast path).
    """
    dt = BlasDType.from_any(dtype)
    bound = max_triangular_order(dt, machine.num_vregs)
    if not 1 <= m <= bound:
        raise CodegenError(
            f"triangular kernel order {m} outside register bound "
            f"1..{bound} for {dt.value}")
    if n < 1:
        raise CodegenError(f"panel width must be >= 1, got {n}")
    lanes = machine.lanes(dt)
    ctx = TrsmTriRegMap(m, dt, lanes, machine.num_vregs)
    col_stride = (col_stride_bytes if col_stride_bytes is not None
                  else m * ctx.ncomp * ctx.vb)

    instrs: list[Instr] = tri_load_a(ctx)
    for l in range(n):
        bank = l % 2
        instrs += tri_load_b_column(ctx, l, bank, col_stride)
        instrs += tri_solve_column(ctx, l, bank, unit_diag)
        instrs += tri_store_x_column(ctx, l, bank, col_stride)

    name = f"{dt.value}trsm_tri_{m}x{n}_cs{col_stride}" + ("_u" if unit_diag else "")
    return Program(name, instrs, ew=dt.real_itemsize, lanes=lanes, meta={
        "routine": "trsm_tri",
        "m": m, "n": n, "dtype": dt.value,
        "unit_diag": unit_diag,
        "col_stride_bytes": col_stride,
        "a_panel_bytes": ctx.ncomp * m * (m + 1) // 2 * ctx.vb,
    })


def _rect_x_loads(ctx: GemmRegMap, bank: int, kstep: int,
                  x_col_stride: int, tag: str) -> list[Instr]:
    """Load X_e row ``kstep`` across the nc panel columns (strided)."""
    out: list[Instr] = []
    for j in range(ctx.nc):
        off = j * x_col_stride + kstep * ctx.ncomp * ctx.vb
        if ctx.ncomp == 1:
            out.append(ldrv(ctx.b_reg(bank, j), regs.PB, off, ew=ctx.ew,
                            tag=tag))
        else:
            out.append(ldpv(ctx.b_reg(bank, j, 0), ctx.b_reg(bank, j, 1),
                            regs.PB, off, ew=ctx.ew, tag=tag))
    return out


def _rect_compute(ctx: GemmRegMap, bank: int, tag: str) -> list[Instr]:
    """One k-step of ``acc -= A_bank * X_bank`` (Eq. 4's FMLS form)."""
    out: list[Instr] = []
    ew = ctx.ew
    for j in range(ctx.nc):
        for i in range(ctx.mc):
            if ctx.ncomp == 1:
                out.append(fmls(ctx.c_reg(i, j), ctx.a_reg(bank, i),
                                ctx.b_reg(bank, j), ew=ew, tag=tag))
            else:
                ar, ai = ctx.a_reg(bank, i, 0), ctx.a_reg(bank, i, 1)
                xr, xi = ctx.b_reg(bank, j, 0), ctx.b_reg(bank, j, 1)
                cr, ci = ctx.c_reg(i, j, 0), ctx.c_reg(i, j, 1)
                out.append(fmls(cr, ar, xr, ew=ew, tag=tag))
                out.append(fmla(cr, ai, xi, ew=ew, tag=tag))
                out.append(fmls(ci, ar, xi, ew=ew, tag=tag))
                out.append(fmls(ci, ai, xr, ew=ew, tag=tag))
    return out


def generate_trsm_rect(mc: int, nc: int, k: int, dtype: "BlasDType | str",
                       machine: MachineConfig,
                       x_col_stride_bytes: int) -> Program:
    """Rectangular TRSM update kernel: ``B_tile -= L_block @ X_panel``.

    Mirrors the GEMM generator's Algorithm-3 structure (I/M1/M2/E
    ping-pong over the k dimension) with three differences: the
    accumulators are preloaded from the B tile, every multiply-add is an
    FMLS, and the store is a plain store (no alpha/beta — scaling
    happened when B was packed).
    """
    dt = BlasDType.from_any(dtype)
    if mc < 1 or nc < 1 or k < 1:
        raise CodegenError(f"invalid rect kernel size {mc}x{nc}, k={k}")
    lanes = machine.lanes(dt)
    ctx = GemmRegMap(mc, nc, dt, lanes, machine.num_vregs)
    xcs = int(x_col_stride_bytes)

    instrs: list[Instr] = []
    # preload the B_d tile into the accumulator registers
    for j in range(ctx.nc):
        col = [ctx.c_reg(i, j, c) for i in range(ctx.mc)
               for c in range(ctx.ncomp)]
        instrs += _load_run(ctx, regs.pc(j), col, "RECT_LOAD")

    def a_loads(bank: int, tag: str) -> list[Instr]:
        return _stream_loads(ctx, regs.PA, ctx.a_bank_regs(bank), tag)

    if k < 4:
        if k == 1:
            instrs += a_loads(0, "SUB") + _rect_x_loads(ctx, 0, 0, xcs, "SUB")
            instrs += _rect_compute(ctx, 0, "SUB")
        else:
            instrs += a_loads(0, "I") + a_loads(1, "I")
            instrs += _rect_x_loads(ctx, 0, 0, xcs, "I")
            instrs += _rect_x_loads(ctx, 1, 1, xcs, "I")
            instrs += _rect_compute(ctx, 0, "I")
            instrs += _rect_compute(ctx, 1, "E")
            if k == 3:
                instrs += a_loads(0, "SUB") + _rect_x_loads(ctx, 0, 2, xcs, "SUB")
                instrs += _rect_compute(ctx, 0, "SUB")
    else:
        instrs += a_loads(0, "I") + a_loads(1, "I")
        instrs += _rect_x_loads(ctx, 0, 0, xcs, "I")
        instrs += _rect_x_loads(ctx, 1, 1, xcs, "I")
        instrs += _rect_compute(ctx, 0, "I")
        step = 2
        while step < k:
            bank = step % 2
            compute_bank = 1 - bank
            tag = "M1" if bank == 1 else "M2"
            instrs += a_loads(bank, tag)
            instrs += _rect_x_loads(ctx, bank, step, xcs, tag)
            instrs += _rect_compute(ctx, compute_bank, tag)
            step += 1
        instrs += _rect_compute(ctx, (k - 1) % 2, "E")

    for j in range(ctx.nc):
        col = [ctx.c_reg(i, j, c) for i in range(ctx.mc)
               for c in range(ctx.ncomp)]
        instrs += _store_run(ctx, regs.pc(j), col, "RECT_SAVE")

    name = f"{dt.value}trsm_rect_{mc}x{nc}_k{k}_xs{xcs}"
    return Program(name, instrs, ew=dt.real_itemsize, lanes=lanes, meta={
        "routine": "trsm_rect",
        "mc": mc, "nc": nc, "k": k, "dtype": dt.value,
        "x_col_stride_bytes": xcs,
        "a_panel_bytes": mc * k * ctx.ncomp * ctx.vb,
        "madds": mc * nc * k,
    })
