"""Register conventions shared by all generated kernels.

Scalar (pointer) registers:

========= =====================================================
``PA``    packed A panel pointer (advanced by post-increment ADDs)
``PB``    packed B panel pointer
``PC(j)`` pointer to column ``j`` of the current C/B output tile
          (the engine materializes one pointer per tile column so
          kernels stay independent of the matrix's column stride)
========= =====================================================

TRSM kernels reuse the same slots: ``PA`` for the packed triangle /
L block, ``PB`` for the B/X panel, and ``PC(j)`` for output columns.
"""

from __future__ import annotations

PA = 0
PB = 1
PC_BASE = 2


def pc(j: int) -> int:
    """Pointer register for output-tile column ``j``."""
    return PC_BASE + j
