"""Tile decomposition: cover a dimension with generated kernel sizes.

The paper's Figure 4(b) point: under the compact layout the main kernel
is small (4x4), and edge tiles come from the full kernel family of
Table 1, so a 15-wide dimension becomes 4+4+4+3 — no degenerate 1-wide
strips unless the dimension itself forces them.

``decompose_dim(d, main)`` returns tile sizes, largest first, using only
sizes ``main..1`` and avoiding tiles smaller than ``main - 1`` whenever
arithmetic allows:

* main=4 (real GEMM m/n, real TRSM panel rows): sizes {4, 3}, with
  {2, 1} only for d in {1, 2, 5}.
* main=3 (complex GEMM m): sizes {3, 2}, with 1 only for d == 1.
* main=2 (complex GEMM n, complex TRSM blocks): sizes {2}, 1 for odd d.
"""

from __future__ import annotations

__all__ = ["decompose_dim", "tile_starts"]


def decompose_dim(d: int, main: int) -> list[int]:
    """Split ``d`` into kernel-supported tile sizes, biggest first."""
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    if main not in (2, 3, 4):
        raise ValueError(f"main kernel size must be 2, 3 or 4, got {main}")
    tiles: list[int] = []
    rem = d
    if main == 4:
        while rem >= 8 or rem == 4:
            tiles.append(4)
            rem -= 4
        if rem == 7:
            tiles += [4, 3]
        elif rem == 6:
            tiles += [3, 3]
        elif rem == 5:
            tiles += [3, 2]
        elif rem > 0:
            tiles.append(rem)       # 3, 2 or 1
    elif main == 3:
        while rem >= 6 or rem == 3:
            tiles.append(3)
            rem -= 3
        if rem == 5:
            tiles += [3, 2]
        elif rem == 4:
            tiles += [2, 2]
        elif rem > 0:
            tiles.append(rem)       # 2 or 1
    else:  # main == 2
        tiles += [2] * (rem // 2)
        if rem % 2:
            tiles.append(1)
    assert sum(tiles) == d
    return tiles


def tile_starts(tiles: list[int]) -> list[int]:
    """Start offset of each tile (prefix sums)."""
    starts = []
    pos = 0
    for t in tiles:
        starts.append(pos)
        pos += t
    return starts
