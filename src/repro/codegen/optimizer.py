"""Kernel optimizer: dependence-aware instruction scheduling (Figure 5).

The kernel designer emits template-ordered code — all loads of a
template first, then its FMAs, with a pointer ``add`` after every
``ldp`` (the left column of Figure 5).  On an in-order dual-issue core
that order stalls: each FMA chain begins right after the loads that feed
it.  The optimizer re-schedules:

1. build the dependence DAG (RAW through vector and scalar registers,
   WAR/WAW to preserve register reuse, and memory-order edges between
   accesses through the same base pointer — different base pointers are
   guaranteed disjoint by the packing contract);
2. compute critical-path priorities with the machine's latencies;
3. greedily list-schedule under the machine's issue caps, which both
   separates dependent pairs ("reordering", Figure 5 middle) and
   interleaves loads between FMAs so compute hides load latency
   (Figure 5 right).

``resource_aware=False`` disables step 3's slot caps, yielding the
purely dependence-driven order — the middle column — which the
Figure 5 ablation benchmark compares against.

Scheduling never changes semantics: a property-based test executes the
original and scheduled programs on random memory images and asserts
identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.isa import Instr, Op, OpClass
from ..machine.machines import MachineConfig
from ..machine.program import Program

__all__ = ["schedule_program", "build_dag"]


@dataclass
class _Dag:
    succs: list[list[tuple[int, int]]]   # (succ index, latency weight)
    npreds: list[int]


def build_dag(instrs: list[Instr], machine: MachineConfig) -> _Dag:
    """Dependence DAG over a straight-line program.

    Edge weights are producer latencies for RAW edges and 0 for ordering
    (WAR/WAW/memory) edges.
    """
    lat = machine.lat
    n = len(instrs)
    edge_maps: list[dict[int, int]] = [dict() for _ in range(n)]

    def add_edge(src: int, dst: int, w: int) -> None:
        cur = edge_maps[src].get(dst)
        if cur is None or w > cur:
            edge_maps[src][dst] = w

    last_vwrite: dict[int, int] = {}
    vreads_since: dict[int, list[int]] = {}
    last_xwrite: dict[int, int] = {}
    xreads_since: dict[int, list[int]] = {}
    # memory ordering per base register: last store, loads since last store
    last_store: dict[int, int] = {}
    loads_since_store: dict[int, list[int]] = {}

    def result_latency(i: int) -> int:
        ins = instrs[i]
        if ins.is_load:
            return lat.load_use
        return lat.result_latency(ins)

    for i, ins in enumerate(instrs):
        # vector register RAW / WAR
        for r in ins.reads:
            if r in last_vwrite:
                add_edge(last_vwrite[r], i, result_latency(last_vwrite[r]))
            vreads_since.setdefault(r, []).append(i)
        # scalar register reads (memory base, ADDI source)
        xreads = []
        if ins.base is not None:
            xreads.append(ins.base)
        if ins.op is Op.ADDI and ins.xsrc is not None:
            xreads.append(ins.xsrc)
        for r in xreads:
            if r in last_xwrite:
                add_edge(last_xwrite[r], i, lat.int_alu)
            xreads_since.setdefault(r, []).append(i)
        # vector register WAW / WAR
        for r in ins.writes:
            for rd in vreads_since.get(r, ()):
                if rd != i:
                    add_edge(rd, i, 0)
            if r in last_vwrite and not vreads_since.get(r):
                add_edge(last_vwrite[r], i, 0)
            last_vwrite[r] = i
            vreads_since[r] = []
        # scalar register WAW / WAR (ADDI)
        if ins.op is Op.ADDI:
            r = ins.xdst
            for rd in xreads_since.get(r, ()):
                if rd != i:
                    add_edge(rd, i, 0)
            if r in last_xwrite and not xreads_since.get(r):
                add_edge(last_xwrite[r], i, 0)
            last_xwrite[r] = i
            xreads_since[r] = []
        # memory ordering within one base pointer
        if ins.is_load or ins.iclass is OpClass.PREFETCH:
            b = ins.base
            if b in last_store:
                add_edge(last_store[b], i, 1)
            loads_since_store.setdefault(b, []).append(i)
        elif ins.is_store:
            b = ins.base
            for ld in loads_since_store.get(b, ()):
                add_edge(ld, i, 0)
            if b in last_store:
                add_edge(last_store[b], i, 0)
            last_store[b] = i
            loads_since_store[b] = []

    succs = [list(m.items()) for m in edge_maps]
    npreds = [0] * n
    for m in edge_maps:
        for dst in m:
            npreds[dst] += 1
    return _Dag(succs, npreds)


def schedule_program(program: Program, machine: MachineConfig,
                     resource_aware: bool = True) -> Program:
    """Return a semantically equivalent program with optimized placement."""
    instrs = program.instrs
    # prefetches stay pinned at the front (their payoff is wall-clock
    # distance to the use, which the DAG cannot see)
    pinned = [ins for ins in instrs if ins.iclass is OpClass.PREFETCH]
    body = [ins for ins in instrs if ins.iclass is not OpClass.PREFETCH]

    dag = build_dag(body, machine)
    n = len(body)
    lat = machine.lat

    # critical-path priorities (reverse topological = reverse program order)
    cp = [0] * n
    for i in range(n - 1, -1, -1):
        best = lat.result_latency(body[i]) if not body[i].is_load else lat.load_use
        for dst, w in dag.succs[i]:
            cand = w + cp[dst]
            if cand > best:
                best = cand
        cp[i] = best

    rules = machine.rules
    npreds = list(dag.npreds)
    data_ready = [0] * n
    ready: list[int] = [i for i in range(n) if npreds[i] == 0]
    order: list[Instr] = []
    t = 0
    while len(order) < n:
        ready.sort(key=lambda i: (-cp[i], i))
        used_mem = used_fp = used_int = issued = 0
        issued_now: list[int] = []
        for i in ready:
            if data_ready[i] > t:
                continue
            ins = body[i]
            icls = ins.iclass
            is_mem = icls in (OpClass.MEM_LOAD, OpClass.MEM_STORE)
            is_fp = icls in (OpClass.FP, OpClass.FP_DIV)
            if resource_aware:
                if issued >= rules.width:
                    break
                if is_mem and used_mem >= rules.max_mem:
                    continue
                if is_fp and used_fp >= rules.max_fp(ins.ew):
                    continue
                if icls is OpClass.INT and used_int >= rules.max_int:
                    continue
            issued += 1
            used_mem += is_mem
            used_fp += is_fp
            used_int += icls is OpClass.INT
            issued_now.append(i)
            order.append(ins)
            for dst, w in dag.succs[i]:
                if t + w > data_ready[dst]:
                    data_ready[dst] = t + w
                npreds[dst] -= 1
                if npreds[dst] == 0:
                    ready.append(dst)
            if not resource_aware:
                break  # dependence-only mode: one instruction per step
        for i in issued_now:
            ready.remove(i)
        if not issued_now:
            pending = [data_ready[i] for i in ready]
            t = min(pending) if pending and min(pending) > t else t + 1
        else:
            t += 1

    out = pinned + order
    assert len(out) == len(instrs)
    mode = "opt" if resource_aware else "reord"
    sched = program.with_instrs(out, suffix=f"_{mode}")
    sched.meta["scheduled"] = mode
    return sched
