"""Static kernel validation: catch codegen bugs before execution.

Generated kernels are straight-line and self-contained, which makes
strong static checks cheap.  The registry runs these on every kernel it
caches, so a template bug surfaces as a loud `CodegenError` naming the
kernel and the defect rather than as garbage numerics three layers up.

Checks:

* **def-before-use** — every vector register read (including FMA
  accumulators) must have been written earlier in the program;
* **register budget** — no register index at or above the machine's
  file size;
* **pointer discipline** — memory ops only through pointer registers
  the engine initializes (PA, PB, the PC(j) family, and the TRSM store
  alias PX), and ADDI only rewrites a register it read;
* **dead stores of uninitialized data** never occur (implied by
  def-before-use on store sources);
* **immediate sanity** — FMAI/FMULI immediates are finite.
"""

from __future__ import annotations

import math

from ..errors import CodegenError
from ..machine.isa import Op, OpClass
from ..machine.machines import MachineConfig
from ..machine.program import Program
from . import regs
from .templates_trsm import PX

__all__ = ["validate_kernel", "KNOWN_POINTERS"]

KNOWN_POINTERS = frozenset(
    {regs.PA, regs.PB, PX} | {regs.pc(j) for j in range(8)})


def validate_kernel(program: Program, machine: MachineConfig) -> list[str]:
    """Return a list of defect descriptions (empty = kernel is valid)."""
    issues: list[str] = []
    written: set[int] = set()
    xinit: set[int] = set(KNOWN_POINTERS)
    for pc, ins in enumerate(program.instrs):
        where = f"@{pc} ({ins.asm()})"
        for r in ins.dst + ins.srcs:
            if r >= machine.num_vregs:
                issues.append(f"{where}: v{r} exceeds the machine's "
                              f"{machine.num_vregs}-register file")
        for r in ins.reads:
            if r not in written:
                issues.append(f"{where}: v{r} read before any write")
        if ins.base is not None and ins.base not in xinit:
            issues.append(f"{where}: memory access through unknown "
                          f"pointer x{ins.base}")
        if ins.op is Op.ADDI:
            if ins.xsrc not in xinit:
                issues.append(f"{where}: ADDI reads unknown x{ins.xsrc}")
            else:
                xinit.add(ins.xdst)
        if ins.op in (Op.FMAI, Op.FMULI) and not math.isfinite(ins.imm):
            issues.append(f"{where}: non-finite immediate {ins.imm}")
        written.update(ins.writes)
    return issues


def assert_valid(program: Program, machine: MachineConfig) -> Program:
    """Raise :class:`CodegenError` on the first validation failure."""
    issues = validate_kernel(program, machine)
    if issues:
        raise CodegenError(
            f"kernel {program.name} failed validation:\n  "
            + "\n  ".join(issues[:10]))
    return program
