"""Golden-model batched BLAS used to validate every simulated kernel."""

from .algorithm1 import compact_gemm_algorithm1
from .naive_blas import gemm_reference, trsm_reference

__all__ = ["gemm_reference", "trsm_reference", "compact_gemm_algorithm1"]
