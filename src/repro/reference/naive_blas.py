"""Reference batched GEMM/TRSM on standard-layout NumPy arrays.

These are the correctness oracles: straightforward, obviously-right
implementations using NumPy matmul and SciPy triangular solves.  Every
generated kernel, every baseline, and the full IATF pipeline are tested
against them.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..errors import InvalidProblemError
from ..types import Diag, GemmProblem, Side, Trans, TrsmProblem, UpLo

__all__ = ["gemm_reference", "trsm_reference"]


def _check_batch_shape(name: str, arr: np.ndarray, shape: tuple[int, int],
                       batch: int) -> None:
    if arr.ndim != 3 or arr.shape != (batch, *shape):
        raise InvalidProblemError(
            f"{name} must have shape ({batch}, {shape[0]}, {shape[1]}), "
            f"got {arr.shape}")


def gemm_reference(problem: GemmProblem, a: np.ndarray, b: np.ndarray,
                   c: np.ndarray) -> np.ndarray:
    """``C = alpha * op(A) @ op(B) + beta * C`` for every matrix in the batch.

    Arrays are standard ``(batch, rows, cols)`` layout; ``a`` and ``b``
    carry their *stored* (pre-op) shapes.  Returns a new array; inputs are
    not modified.
    """
    p = problem
    _check_batch_shape("A", a, p.a_shape, p.batch)
    _check_batch_shape("B", b, p.b_shape, p.batch)
    _check_batch_shape("C", c, p.c_shape, p.batch)
    opa = a if p.transa is Trans.N else a.transpose(0, 2, 1)
    opb = b if p.transb is Trans.N else b.transpose(0, 2, 1)
    acc = np.matmul(opa.astype(np.complex128 if p.dtype.is_complex else np.float64),
                    opb.astype(np.complex128 if p.dtype.is_complex else np.float64))
    out = p.alpha * acc + p.beta * c.astype(acc.dtype)
    return out.astype(p.dtype.np_dtype)


def trsm_reference(problem: TrsmProblem, a: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
    """Solve ``op(A) X = alpha B`` (LEFT) or ``X op(A) = alpha B`` (RIGHT).

    ``a`` is ``(batch, d, d)`` where ``d`` is :attr:`TrsmProblem.a_dim`;
    only the :attr:`~TrsmProblem.uplo` triangle is referenced, and the
    diagonal is taken as 1 when ``diag`` is UNIT.  Returns X with B's shape.
    """
    p = problem
    d = p.a_dim
    _check_batch_shape("A", a, (d, d), p.batch)
    _check_batch_shape("B", b, p.b_shape, p.batch)
    lower = p.uplo is UpLo.LOWER
    unit = p.diag is Diag.UNIT
    trans = 1 if p.transa is Trans.T else 0
    out = np.empty_like(b, dtype=p.dtype.np_dtype)
    work = b.astype(np.complex128 if p.dtype.is_complex else np.float64)
    for i in range(p.batch):
        ai = a[i].astype(work.dtype)
        if p.side is Side.LEFT:
            x = scipy.linalg.solve_triangular(
                ai, p.alpha * work[i], lower=lower, trans=trans,
                unit_diagonal=unit)
        else:
            # X op(A) = alpha B  <=>  op(A)^T X^T = alpha B^T
            x = scipy.linalg.solve_triangular(
                ai.T, p.alpha * work[i].T, lower=not lower,
                trans=trans, unit_diagonal=unit).T
        out[i] = x.astype(p.dtype.np_dtype)
    return out
