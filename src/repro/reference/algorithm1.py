"""Paper Algorithm 1: the simplified SIMD-friendly-layout GEMM, literally.

The paper introduces the compact idea with a four-deep loop nest whose
innermost body is "LOAD the element of P matrices into a vector, FMA,
STORE".  This module transcribes it: the loop over groups is line 1,
and each (i, j, l) body operates on a whole lane-vector at once —
exactly one NumPy slice per LOAD/FMA/STORE.  It is quadratically slower
than the generated kernels but serves as a second, structurally
independent oracle for the compact layout itself (the main reference
implementation works on de-interleaved standard arrays, so it would not
catch a layout-indexing bug that `to_matrices` shares; this one reads
the interleaved buffer directly).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidProblemError
from ..layout.compact import CompactBatch

__all__ = ["compact_gemm_algorithm1"]


def compact_gemm_algorithm1(a: CompactBatch, b: CompactBatch,
                            c: CompactBatch) -> CompactBatch:
    """``C += A @ B`` on compact operands, as in the paper's Algorithm 1.

    Operands must be non-transposed compatible shapes; complex batches
    work on their split planes with the usual 4-op multiply.
    """
    m, k = a.rows, a.cols
    n = b.cols
    if (b.rows, c.rows, c.cols) != (k, m, n):
        raise InvalidProblemError(
            f"shape mismatch: A {a.rows}x{a.cols}, B {b.rows}x{b.cols}, "
            f"C {c.rows}x{c.cols}")
    if not (a.lanes == b.lanes == c.lanes
            and a.groups == b.groups == c.groups
            and a.dtype == b.dtype == c.dtype):
        raise InvalidProblemError("operand batch properties differ")

    ga, gb, gc = a.as_grid(), b.as_grid(), c.as_grid()
    # line 1 of Algorithm 1 (the v loop over P-matrix groups) is the
    # leading grid axis; lines 5-9 are one vectorized statement per op
    for j in range(n):
        for i in range(m):
            if a.ncomp == 1:
                vc = gc[:, i, j, 0, :]
                for l in range(k):
                    va = ga[:, i, l, 0, :]
                    vb = gb[:, l, j, 0, :]
                    vc += va * vb                 # FMA(V_a, V_b)
            else:
                cr = gc[:, i, j, 0, :]
                ci = gc[:, i, j, 1, :]
                for l in range(k):
                    ar, ai = ga[:, i, l, 0, :], ga[:, i, l, 1, :]
                    br, bi = gb[:, l, j, 0, :], gb[:, l, j, 1, :]
                    cr += ar * br - ai * bi
                    ci += ar * bi + ai * br
    return c
