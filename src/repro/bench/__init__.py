"""Benchmark harness: regenerates every table and figure of the paper.

:mod:`repro.bench.harness` sweeps problem sizes across libraries and
returns structured series; :mod:`repro.bench.experiments` packages one
function per paper artifact (Figure 4, 5, 7-12, Table 1-2, the headline
speedups, and our ablations); :mod:`repro.bench.reporting` renders them
as the text tables recorded in EXPERIMENTS.md.
"""

from .harness import BenchHarness, Series
from . import experiments, reporting

__all__ = ["BenchHarness", "Series", "experiments", "reporting"]
