"""Text rendering of benchmark results (the EXPERIMENTS.md tables)."""

from __future__ import annotations

from .. import obs
from .harness import Series

__all__ = ["series_table", "ratio_summary", "markdown_table",
           "series_csv", "decision_stats"]

#: counter prefixes that narrate run-time-stage decisions
DECISION_PREFIXES = ("plan_cache.", "pack_selector.", "autotune.",
                     "batch_counter.")


def series_table(series: dict[str, Series], title: str = "",
                 fmt: str = "{:7.2f}") -> str:
    """Fixed-width table: one row per size, one column per library."""
    labels = list(series)
    sizes = series[labels[0]].sizes
    lines = []
    if title:
        lines.append(title)
    header = f"{'size':>5} " + " ".join(f"{l:>24}" for l in labels)
    lines.append(header)
    for i, size in enumerate(sizes):
        row = f"{size:>5} "
        row += " ".join(f"{fmt.format(s.points[i][1]):>24}"
                        for s in series.values())
        lines.append(row)
    return "\n".join(lines)


def markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    """GitHub-flavoured markdown table (EXPERIMENTS.md summaries)."""
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def ratio_summary(series: dict[str, Series], of: str = "IATF") -> str:
    """Max speedup of `of` over every other curve, with the size."""
    base = series[of]
    lines = []
    for label, s in series.items():
        if label == of:
            continue
        best, at = 0.0, 0
        for (sz, v1), (_, v2) in zip(base.points, s.points):
            if v2 > 0 and v1 / v2 > best:
                best, at = v1 / v2, sz
        lines.append(f"  {of} vs {label}: up to {best:.1f}x (at size {at})")
    return "\n".join(lines)


def decision_stats(registry: "obs.Registry | None" = None,
                   title: str = "decision statistics:") -> str:
    """Plan-cache / pack-selector / autotune counter snapshot as text.

    Appended to benchmark reports so ablation runs show the run-time
    stage's decisions alongside GFLOPS.  Returns "" when nothing was
    recorded (e.g. instrumentation disabled).
    """
    reg = registry if registry is not None else obs.get_registry()
    counters = {name: value for name, value in reg.counters().items()
                if name.startswith(DECISION_PREFIXES)}
    if not counters:
        return ""
    width = max(len(n) for n in counters)
    lines = [title]
    for name, value in counters.items():
        shown = int(value) if float(value).is_integer() else value
        lines.append(f"  {name:<{width}}  {shown}")
    return "\n".join(lines)


def series_csv(series: dict[str, Series]) -> str:
    """CSV rendering (size column + one column per library) for plotting."""
    labels = list(series)
    sizes = series[labels[0]].sizes
    lines = ["size," + ",".join(labels)]
    for i, size in enumerate(sizes):
        row = [str(size)] + [f"{s.points[i][1]:.4f}" for s in series.values()]
        lines.append(",".join(row))
    return "\n".join(lines)
