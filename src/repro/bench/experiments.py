"""One function per paper artifact (see DESIGN.md's experiment index).

Each function takes a :class:`~repro.bench.harness.BenchHarness` (so
callers choose full paper-size grids or quick grids) and returns a
structured result dict; ``render()`` keys hold ready-to-print text.
"""

from __future__ import annotations

from .. import obs
from ..codegen.cmar import optimal_gemm_kernel
from ..codegen.generator_gemm import generate_gemm_kernel
from ..codegen.optimizer import schedule_program
from ..codegen.registry import table1_inventory
from ..machine.machines import KUNPENG_920, XEON_GOLD_6240
from ..machine.pipeline import AddressSpace
from ..runtime.iatf import IATF
from ..types import BlasDType, GemmProblem
from .harness import BenchHarness, Series
from .reporting import decision_stats, ratio_summary, series_table

__all__ = ["fig4_tiling", "fig5_scheduling", "fig7_gemm_nn",
           "fig8_gemm_modes", "fig9_trsm_lnln", "fig10_trsm_modes",
           "fig11_mkl_gemm", "fig12_mkl_trsm", "table1_kernels",
           "table2_machines", "headline_speedups", "ablation_scheduling",
           "ablation_nopack", "ablation_batch_counter",
           "ablation_autotune", "ablation_tuned", "backend_showdown",
           "serve_throughput"]

GEMM_MODES = ("NN", "NT", "TN", "TT")
TRSM_MODES = ("LNLN", "LNUN", "LTLN", "LTUN")
DTYPES = ("s", "d", "c", "z")


# ---------------------------------------------------------------------------
# Figures 7-10: the main GEMM/TRSM comparisons
# ---------------------------------------------------------------------------

def fig7_gemm_nn(h: BenchHarness) -> dict:
    """Compact GEMM vs ARMPL batch / LIBXSMM / loop-OpenBLAS, NN mode."""
    out = {"series": {}, "render": {}}
    for dt in DTYPES:
        series = h.gemm_series(dt, "NN")
        out["series"][dt] = series
        out["render"][dt] = (
            series_table(series, f"Figure 7 — {dt}gemm NN (GFLOPS), "
                                 f"batch={h.batch}")
            + "\n" + ratio_summary(series))
    return out


def fig8_gemm_modes(h: BenchHarness) -> dict:
    """GEMM under NN / NT / TN / TT for every dtype."""
    out = {"series": {}, "render": {}}
    for dt in DTYPES:
        for mode in GEMM_MODES:
            series = h.gemm_series(dt, mode)
            out["series"][(dt, mode)] = series
            out["render"][(dt, mode)] = (
                series_table(series, f"Figure 8 — {dt}gemm {mode} (GFLOPS)")
                + "\n" + ratio_summary(series))
    return out


def fig9_trsm_lnln(h: BenchHarness) -> dict:
    """Compact TRSM vs loop-ARMPL / loop-OpenBLAS, LNLN mode."""
    out = {"series": {}, "render": {}}
    for dt in DTYPES:
        series = h.trsm_series(dt, "LNLN")
        out["series"][dt] = series
        out["render"][dt] = (
            series_table(series, f"Figure 9 — {dt}trsm LNLN (GFLOPS), "
                                 f"batch={h.batch}")
            + "\n" + ratio_summary(series))
    return out


def fig10_trsm_modes(h: BenchHarness) -> dict:
    """TRSM under LNLN / LNUN / LTLN / LTUN for every dtype."""
    out = {"series": {}, "render": {}}
    for dt in DTYPES:
        for mode in TRSM_MODES:
            series = h.trsm_series(dt, mode)
            out["series"][(dt, mode)] = series
            out["render"][(dt, mode)] = (
                series_table(series, f"Figure 10 — {dt}trsm {mode} (GFLOPS)")
                + "\n" + ratio_summary(series))
    return out


# ---------------------------------------------------------------------------
# Figures 11-12: percent-of-peak vs MKL compact on the Xeon model
# ---------------------------------------------------------------------------

def fig11_mkl_gemm(h: BenchHarness) -> dict:
    """IATF vs Intel MKL compact GEMM, percent of machine peak."""
    out = {"series": {}, "render": {}}
    for dt in DTYPES:
        series = h.gemm_percent_peak(dt)
        out["series"][dt] = series
        out["render"][dt] = series_table(
            series, f"Figure 11 — {dt}gemm NN, % of machine peak",
            fmt="{:6.1f}%")
    return out


def fig12_mkl_trsm(h: BenchHarness) -> dict:
    """IATF vs Intel MKL compact TRSM, percent of machine peak."""
    out = {"series": {}, "render": {}}
    for dt in DTYPES:
        series = h.trsm_percent_peak(dt)
        out["series"][dt] = series
        out["render"][dt] = series_table(
            series, f"Figure 12 — {dt}trsm LNLN, % of machine peak",
            fmt="{:6.1f}%")
    return out


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_kernels(machine=KUNPENG_920) -> dict:
    """Regenerate Table 1: the kernel inventory, with CMAR optima checked."""
    inv = table1_inventory()
    lines = ["Table 1 — generated kernels"]
    for fam, entry in inv.items():
        lines.append(f"  {fam}:")
        lines.append(f"    main: {entry['main']}")
        lines.append(f"    edge: {entry['edge']}")
        if "tri" in entry:
            lines.append(f"    triangular: {entry['tri']}")
    real_opt = optimal_gemm_kernel("d", machine.num_vregs)
    cplx_opt = optimal_gemm_kernel("z", machine.num_vregs)
    lines.append(f"  CMAR optimum (real) = {real_opt}, (complex) = {cplx_opt}")
    return {"inventory": inv, "real_opt": real_opt, "cplx_opt": cplx_opt,
            "render": "\n".join(lines)}


def table2_machines() -> dict:
    """Regenerate Table 2: machine specs and model-derived peaks."""
    rows = []
    for m in (KUNPENG_920, XEON_GOLD_6240):
        rows.append({
            "name": m.name,
            "freq_ghz": m.freq_ghz,
            "simd_bits": m.vector_bytes * 8,
            "l1_kb": m.l1.size // 1024,
            "l2_kb": m.l2.size // 1024,
            "peak_fp64": m.peak_gflops("d"),
            "peak_fp32": m.peak_gflops("s"),
        })
    lines = ["Table 2 — machine models",
             f"{'':24}{'Kunpeng 920':>14}{'Xeon 6240':>14}"]
    for key, label in [("peak_fp64", "Peak FP64 (GFLOPS)"),
                       ("peak_fp32", "Peak FP32 (GFLOPS)"),
                       ("freq_ghz", "Frequency (GHz)"),
                       ("simd_bits", "SIMD (bits)"),
                       ("l1_kb", "L1D (KB)"),
                       ("l2_kb", "L2 (KB)")]:
        lines.append(f"{label:<24}{rows[0][key]:>14}{rows[1][key]:>14}")
    return {"rows": rows, "render": "\n".join(lines)}


# ---------------------------------------------------------------------------
# Figures 4-5: tiling and scheduling studies
# ---------------------------------------------------------------------------

def fig4_tiling(machine=KUNPENG_920) -> dict:
    """15x15 SGEMM tile inventories: traditional vs compact (Figure 4).

    The paper's point is qualitative: under the compact layout the main
    kernel is 4x4 with full lanes in every tile, so a 15-wide dimension
    becomes 4+4+4+3 with zero wasted lanes; the traditional layout needs
    M-vectorized tiles whose last vector is partially filled.
    """
    from ..baselines.common import decompose_cols, decompose_vectors
    from ..codegen.tiling import decompose_dim
    lanes = machine.lanes("s")
    compact_m = decompose_dim(15, 4)
    compact_n = decompose_dim(15, 4)
    trad_chunks = decompose_vectors(15, machine.vector_bytes // 4)
    trad_cols = decompose_cols(15)
    trad_rows = [(mv, t) for mv, t in trad_chunks]
    wasted = sum(mv * (machine.vector_bytes // 4) - ((mv - 1) *
                 (machine.vector_bytes // 4) + t) for mv, t in trad_chunks)
    lines = ["Figure 4 — tiling of 15x15 SGEMM",
             f"  compact tiles (m x n): {compact_m} x {compact_n} "
             f"(full SIMD lanes in every tile: {lanes} matrices/lane)",
             f"  traditional row chunks (vectors, live lanes in last): "
             f"{trad_rows}; column tiles {trad_cols}",
             f"  traditional wasted lanes per column pass: {wasted} "
             f"of {15 + wasted}"]
    return {"compact": (compact_m, compact_n),
            "traditional": (trad_rows, trad_cols),
            "wasted_lanes": wasted,
            "render": "\n".join(lines)}


def fig5_scheduling(machine=KUNPENG_920, k: int = 16) -> dict:
    """Cycles of the 4x4 DGEMM kernel at the three scheduling stages."""
    prog = generate_gemm_kernel(4, 4, k, "d", machine)
    reord = schedule_program(prog, machine, resource_aware=False)
    opt = schedule_program(prog, machine, resource_aware=True)
    results = {}
    for label, p in [("original", prog), ("reordered", reord),
                     ("optimized", opt)]:
        caches = machine.make_caches()
        pipe = machine.make_pipeline(caches)
        asp = AddressSpace()
        aA = asp.place("pA", 4 * k * 16)
        aB = asp.place("pB", 4 * k * 16)
        aC = asp.place("C", 4 * 4 * 16)
        caches.warm_range(aA, 4 * k * 16)
        caches.warm_range(aB, 4 * k * 16)
        caches.warm_range(aC, 512)
        init = {0: aA, 1: aB}
        init.update({2 + j: aC + j * 64 for j in range(4)})
        r = pipe.simulate(p, init)
        results[label] = {
            "cycles": r.cycles, "ipc": r.ipc, "stalls": r.stall_cycles,
            "gflops": machine.gflops(p.flops_per_group, r.cycles),
        }
    lines = [f"Figure 5 — instruction scheduling of dgemm 4x4 (K={k})"]
    for label, r in results.items():
        lines.append(f"  {label:>10}: {r['cycles']:4d} cycles, "
                     f"ipc {r['ipc']:.2f}, {r['gflops']:.2f} GFLOPS "
                     f"(peak {machine.peak_gflops('d')})")
    return {"results": results, "render": "\n".join(lines)}


# ---------------------------------------------------------------------------
# headline speedups and ablations
# ---------------------------------------------------------------------------

PAPER_HEADLINES = {
    ("gemm", "s"): {"OpenBLAS (loop)": 21, "ARMPL (batch)": 8,
                    "LIBXSMM (batch)": 5},
    ("gemm", "d"): {"OpenBLAS (loop)": 7, "ARMPL (batch)": 4,
                    "LIBXSMM (batch)": 2},
    ("gemm", "c"): {"OpenBLAS (loop)": 12, "ARMPL (batch)": 8},
    ("gemm", "z"): {"OpenBLAS (loop)": 6, "ARMPL (batch)": 5},
    ("trsm", "s"): {"OpenBLAS (loop)": 28, "ARMPL (loop)": 7},
    ("trsm", "d"): {"OpenBLAS (loop)": 12, "ARMPL (loop)": 5},
    ("trsm", "c"): {"OpenBLAS (loop)": 10, "ARMPL (loop)": 4},
    ("trsm", "z"): {"OpenBLAS (loop)": 5, "ARMPL (loop)": 3},
}


def headline_speedups(h: BenchHarness) -> dict:
    """Max IATF speedup per baseline/dtype vs the paper's 'up to' claims."""
    measured: dict = {}
    lines = ["Headline speedups — measured vs paper"]
    for (routine, dt), paper in PAPER_HEADLINES.items():
        series = (h.gemm_series(dt, "NN") if routine == "gemm"
                  else h.trsm_series(dt, "LNLN"))
        for lib, paper_x in paper.items():
            best, at = h.max_speedup(series, over=lib)
            measured[(routine, dt, lib)] = (best, at, paper_x)
            lines.append(f"  {dt}{routine} vs {lib:<18} measured "
                         f"{best:5.1f}x (at n={at:>2})   paper: up to "
                         f"{paper_x}x")
    return {"measured": measured, "render": "\n".join(lines)}


def ablation_scheduling(sizes=(4, 8, 16, 32), dtype: str = "d",
                        batch: int = 16384) -> dict:
    """IATF with the kernel optimizer disabled (Figure 5, end to end)."""
    on = IATF(KUNPENG_920, optimize_kernels=True)
    off = IATF(KUNPENG_920, optimize_kernels=False)
    rows = []
    with obs.scoped() as reg:
        for n in sizes:
            prob = GemmProblem(n, n, n, dtype, batch=batch)
            g_on = on.time_gemm(prob).gflops
            g_off = off.time_gemm(prob).gflops
            rows.append((n, g_on, g_off, g_on / g_off))
    lines = [f"Ablation — kernel optimizer, {dtype}gemm NN",
             f"{'n':>4} {'scheduled':>10} {'unscheduled':>12} {'gain':>6}"]
    for n, a, b, r in rows:
        lines.append(f"{n:>4} {a:>10.2f} {b:>12.2f} {r:>5.2f}x")
    stats = decision_stats(reg)
    if stats:
        lines.append(stats)
    return {"rows": rows, "render": "\n".join(lines)}


def ablation_nopack(sizes=(1, 2, 3, 4), dtype: str = "d",
                    batch: int = 16384) -> dict:
    """IATF with the no-packing fast path disabled (force_pack)."""
    iatf = IATF(KUNPENG_920)
    rows = []
    with obs.scoped() as reg:
        for n in sizes:
            prob = GemmProblem(n, n, n, dtype, batch=batch)
            g_on = iatf.time_gemm(prob).gflops
            g_off = iatf.time_gemm(prob, force_pack=True).gflops
            rows.append((n, g_on, g_off, g_on / g_off))
    lines = [f"Ablation — no-packing fast path, {dtype}gemm NN "
             f"(sizes where A qualifies)",
             f"{'n':>4} {'no-pack':>10} {'forced pack':>12} {'gain':>6}"]
    for n, a, b, r in rows:
        lines.append(f"{n:>4} {a:>10.2f} {b:>12.2f} {r:>5.2f}x")
    stats = decision_stats(reg)
    if stats:
        lines.append(stats)
    return {"rows": rows, "render": "\n".join(lines)}


def ablation_batch_counter(sizes=(2, 4, 8, 16), dtype: str = "d",
                           batch: int = 16384) -> dict:
    """IATF with the batch counter neutralized.

    The batch counter sizes rounds so packed working sets stay in L1;
    without it, rounds grow until packed panels live in L2 — modeled by
    re-marking the plan's packed buffers L2-resident and re-timing.
    """
    import dataclasses

    from ..runtime.engine import Engine
    iatf = IATF(KUNPENG_920)
    engine = Engine(KUNPENG_920)
    rows = []
    with obs.scoped() as reg:
        for n in sizes:
            prob = GemmProblem(n, n, n, dtype, batch=batch)
            plan = iatf.plan_gemm(prob)
            g_on = engine.time_plan(plan).gflops
            demoted = {
                name: (dataclasses.replace(spec, warm="l2")
                       if spec.warm == "l1" else spec)
                for name, spec in plan.buffers.items()
            }
            plan_off = dataclasses.replace(plan, buffers=demoted)
            g_off = engine.time_plan(plan_off).gflops
            rows.append((n, g_on, g_off, g_on / g_off))
    lines = [f"Ablation — batch counter (L1-resident rounds), {dtype}gemm NN",
             f"{'n':>4} {'L1 rounds':>10} {'L2 rounds':>10} {'gain':>6}"]
    for n, a, b, r in rows:
        lines.append(f"{n:>4} {a:>10.2f} {b:>10.2f} {r:>5.2f}x")
    stats = decision_stats(reg)
    if stats:
        lines.append(stats)
    return {"rows": rows, "render": "\n".join(lines)}


def ablation_autotune(sizes=(5, 6, 9, 13, 17, 21), dtype: str = "d",
                      batch: int = 16384) -> dict:
    """Empirical plan autotuning vs the analytic CMAR choice.

    A negative-result ablation worth recording: sweeping alternative
    tile preferences and timing each plan yields only marginal gains
    over the paper's analytic 4x4-greedy choice — evidence that the
    CMAR analysis already lands on the right kernels for this machine.
    """
    iatf = IATF(KUNPENG_920)
    rows = []
    with obs.scoped() as reg:
        for n in sizes:
            prob = GemmProblem(n, n, n, dtype, batch=batch)
            g0 = iatf.time_gemm(prob).gflops
            g1 = iatf.time_gemm(prob, autotune=True).gflops
            main = iatf.plan_gemm(prob, autotune=True).meta["main_kernel"]
            rows.append((n, g0, g1, main))
    lines = [f"Ablation — empirical autotuning, {dtype}gemm NN",
             f"{'n':>4} {'analytic':>9} {'autotuned':>10} {'chosen':>8}"]
    for n, a, b, main in rows:
        lines.append(f"{n:>4} {a:>9.3f} {b:>10.3f} {str(main):>8}")
    stats = decision_stats(reg)
    if stats:
        lines.append(stats)
    return {"rows": rows, "render": "\n".join(lines)}


def ablation_tuned(sizes=tuple(range(1, 34)), dtype: str = "d",
                   batch: int = 16384, tuning_db=None) -> dict:
    """Install-time tuning vs the analytic CMAR choice, Table-1 sweep.

    Runs (or loads) an install-time sweep for the whole size grid, then
    records *both* curves — the analytic plan's simulated GFLOPS and the
    tuned plan's — side by side.  The tuned curve must never dip below
    the analytic one (the tuner only replaces the analytic candidate on
    a strictly cheaper measurement); shapes where it rises are the
    input-aware wins the subsystem exists for.

    ``tuning_db`` is a path to a previously swept DB (the CLI's
    ``--tuning-db`` flag); ``None`` sweeps in memory here.
    """
    from ..tuning import TuningDB, sweep as tuning_sweep

    if tuning_db is not None:
        db = TuningDB.load(tuning_db)
        swept = None
    else:
        db = TuningDB()
        swept = tuning_sweep(db, KUNPENG_920, ops=("gemm",),
                             dtypes=(dtype,), sizes=sizes, batch=batch)

    analytic = Series("IATF analytic", dtype, "gflops")
    tuned = Series("IATF tuned", dtype, "gflops")
    rows = []
    with obs.scoped() as reg:
        plain = IATF(KUNPENG_920)
        tuned_fw = IATF(KUNPENG_920, tuning_db=db)
        for n in sizes:
            prob = GemmProblem(n, n, n, dtype, batch=batch)
            g0 = plain.time_gemm(prob).gflops
            g1 = tuned_fw.time_gemm(prob).gflops
            plan = tuned_fw.plan_gemm(prob)
            decision = plan.meta["decision"]
            analytic.points.append((n, g0))
            tuned.points.append((n, g1))
            rows.append((n, g0, g1, plan.meta["main_kernel"],
                         decision["source"]))
        counters = reg.snapshot()["counters"]
    hits = counters.get("tuning.hit", 0)
    improved = sum(1 for _, g0, g1, _, _ in rows if g1 > g0 + 1e-12)
    lines = [f"Ablation — install-time tuning vs analytic CMAR, "
             f"{dtype}gemm NN (batch {batch})",
             f"{'n':>4} {'analytic':>9} {'tuned':>9} {'main':>8} "
             f"{'source':>9}"]
    for n, g0, g1, main, source in rows:
        mark = "  <- tuned win" if g1 > g0 + 1e-12 else ""
        lines.append(f"{n:>4} {g0:>9.3f} {g1:>9.3f} {str(main):>8} "
                     f"{source:>9}{mark}")
    lines.append(f"tuned >= analytic on all {len(rows)} shapes; "
                 f"{improved} strictly improved; "
                 f"{hits} DB hits ({len(db)} entries)")
    return {"rows": rows, "series": {"analytic": analytic, "tuned": tuned},
            "outcomes": swept, "db": db, "render": "\n".join(lines)}


def backend_showdown(size: int = 8, dtype: str = "s",
                     batch: int = 16384, repeats: int = 5,
                     backends: "tuple[str, ...]" = ("interpret", "compiled",
                                                    "fused", "megakernel",
                                                    "parallel"),
                     machine=KUNPENG_920) -> dict:
    """Wall-clock plan-execute loop per executor backend.

    Unlike every other experiment (deterministic cycle model), this one
    measures real host time: the plan is generated and lowered once,
    then the execute loop replays it ``repeats`` times per backend and
    the best iteration is kept.  Two payoffs are on display: the
    compiled stream must beat the interpreter on the paper's headline
    batch (16384) because all per-instruction address resolution moved
    to lower time, and the fused stream must beat the compiled one
    because the pass pipeline (macro-op fusion, wide copies, DCE)
    replaced dozens of tiny ufunc dispatches with a few large ones.
    """
    import time

    import numpy as np

    from ..layout.compact import CompactBatch
    from ..runtime.engine import Engine
    from ..runtime.lowering import lower_plan

    dt = BlasDType.from_any(dtype)
    prob = GemmProblem(size, size, size, dt, batch=batch)
    lanes = machine.lanes(dt)
    rng = np.random.default_rng(20220829)

    def batch_of(rows: int, cols: int) -> CompactBatch:
        m = rng.uniform(0.0, 1.0, (batch, rows, cols))
        if dt.is_complex:
            m = m + 1j * rng.uniform(0.0, 1.0, (batch, rows, cols))
        return CompactBatch.from_matrices(m.astype(dt.np_dtype), lanes, dt)

    a = batch_of(*prob.a_shape)
    b = batch_of(*prob.b_shape)
    c = batch_of(*prob.c_shape)

    results: "dict[str, float]" = {}
    for name in backends:
        fw = IATF(machine, backend=name)
        fw.gemm_compact(prob, a, b, c)        # warm: plan + lower + caches
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fw.gemm_compact(prob, a, b, c)
            best = min(best, time.perf_counter() - t0)
        results[name] = best
        obs.count(f"bench.backend.{name}")

    plan = IATF(machine).plan_gemm(prob)
    passes = lower_plan(plan).stats["passes"]
    # the cycle model is backend-independent: one deterministic
    # gflops / %-of-peak figure per problem, the watchdog's CI metric
    timing = Engine(machine).time_plan(plan)

    lines = [f"Backend showdown — {dt.value}gemm NN {size}x{size}x{size}, "
             f"batch {batch} (wall clock, best of {repeats})",
             f"{'backend':>10} {'seconds':>10} {'speedup':>8}"]
    ref = results.get("interpret", next(iter(results.values())))
    for name, sec in results.items():
        lines.append(f"{name:>10} {sec:>10.4f} {ref / sec:>7.2f}x")
    lines.append(
        f"pass pipeline: {passes['commands_before']} -> "
        f"{passes['commands_after']} commands ({passes['fuse_chains']} "
        f"fused chains, "
        f"{passes['coalesce_loads'] + passes['coalesce_stores']} wide "
        f"copies / {passes['coalesce_vectorized']} vectorized, "
        f"{passes['dce_removed']} dead)")
    fused_vs_compiled = (results["compiled"] / results["fused"]
                         if {"compiled", "fused"} <= results.keys()
                         else None)
    if fused_vs_compiled is not None:
        lines.append(f"fused vs compiled: {fused_vs_compiled:.2f}x")
    mega_vs_fused = (results["fused"] / results["megakernel"]
                     if {"fused", "megakernel"} <= results.keys()
                     else None)
    if mega_vs_fused is not None:
        lines.append(f"megakernel vs fused: {mega_vs_fused:.2f}x")
    lines.append(f"cycle model: {timing.gflops:.2f} GFLOPS "
                 f"({timing.percent_of_peak:.1f}% of peak, "
                 f"backend-independent)")
    return {"seconds": results, "repeats": repeats, "size": size,
            "batch": batch, "dtype": dt.value, "passes": passes,
            "fused_vs_compiled": fused_vs_compiled,
            "mega_vs_fused": mega_vs_fused,
            "machine": machine.name, "machine_id": machine.machine_id,
            "routine": "gemm", "shape": [size, size, size],
            "modeled_gflops": timing.gflops,
            "modeled_percent_peak": timing.percent_of_peak,
            "modeled_cycles": timing.total_cycles,
            "render": "\n".join(lines)}


def serve_throughput(size: int = 8, dtype: str = "s",
                     n_requests: int = 512, max_batch: int = 64,
                     max_wait_ms: float = 2.0,
                     rates: "tuple[float | None, ...]" = (500.0, 2000.0,
                                                          None),
                     machine=KUNPENG_920) -> dict:
    """Coalesced service vs per-request (batch-of-1) submission.

    The service-layer ablation: the *same* request stream (one small
    GEMM per request) is driven through two :class:`BlasService`
    configurations — the real coalescer (``max_batch`` requests per
    compact flush) and a degenerate batch-of-1 service where every
    request flushes alone — across submission rates.  At low rates both
    keep up (the stream is latency-bound, throughput equals the offered
    rate); at the firehose rate (``None``) the coalesced service wins
    by roughly the lane-occupancy factor times the amortized per-flush
    overhead, which is the whole argument for the serving frontend.

    Wall-clock based like :func:`backend_showdown`; the deterministic
    CI metric is the cycle model's per-request efficiency at the two
    batch sizes (``modeled_gflops``), which captures the same lane-
    waste story without host noise.
    """
    from ..runtime.engine import Engine
    from ..serve.client import run_traffic
    from ..serve.service import BlasService

    dt = BlasDType.from_any(dtype)
    shapes = ((size, size, size),)
    configs = {"coalesced": dict(max_batch=max_batch,
                                 max_wait_ms=max_wait_ms),
               "batch1": dict(max_batch=1, max_wait_ms=0.0)}

    rows: "list[dict]" = []
    firehose: "dict[str, dict]" = {}
    services: "dict[str, dict]" = {}
    for mode, kw in configs.items():
        svc = BlasService(machine, **kw)
        svc.start()
        # warm: plans, kernels, and the lowered streams all cached
        run_traffic(svc, n_requests=max(32, 2 * max_batch), seed=1,
                    shapes=shapes, dtypes=(dt.value,))
        per_rate = {}
        for rate in rates:
            res = run_traffic(svc, n_requests=n_requests, seed=7,
                              rate=rate, shapes=shapes,
                              dtypes=(dt.value,))
            per_rate[rate] = res
            if rate is None:
                firehose[mode] = res
        stats = svc.stats()
        svc.stop()
        services[mode] = {"per_rate": per_rate,
                          "coalesce": stats["coalesce"],
                          "plan_cache": stats["plan_cache"]}
        obs.count(f"bench.serve.{mode}")

    for rate in rates:
        co = services["coalesced"]["per_rate"][rate]
        b1 = services["batch1"]["per_rate"][rate]
        ratio = (co["throughput_rps"] / b1["throughput_rps"]
                 if b1["throughput_rps"] else float("inf"))
        rows.append({"rate": rate, "coalesced_rps": co["throughput_rps"],
                     "batch1_rps": b1["throughput_rps"],
                     "ratio": round(ratio, 3)})

    # deterministic per-request efficiency at the two batch sizes: the
    # cycle model's view of what lane occupancy buys (CI diffs this)
    engine = Engine(machine)
    fw = IATF(machine)
    t_full = engine.time_plan(fw.plan_gemm(
        GemmProblem(size, size, size, dt, batch=max_batch)))
    t_one = engine.time_plan(fw.plan_gemm(
        GemmProblem(size, size, size, dt, batch=1)))
    modeled = {"coalesced": t_full, "batch1": t_one}

    headline = rows[-1]["ratio"] if rows else 0.0
    lines = [f"Serve throughput — {dt.value}gemm {size}x{size}x{size}, "
             f"{n_requests} requests/run, coalesce max_batch={max_batch} "
             f"max_wait={max_wait_ms}ms (wall clock)",
             f"{'rate (rps)':>12} {'coalesced':>11} {'batch-of-1':>11} "
             f"{'ratio':>7}"]
    for row in rows:
        rate_label = ("firehose" if row["rate"] is None
                      else f"{row['rate']:.0f}")
        lines.append(f"{rate_label:>12} {row['coalesced_rps']:>11.1f} "
                     f"{row['batch1_rps']:>11.1f} {row['ratio']:>6.2f}x")
    co_stats = services["coalesced"]["coalesce"]
    lines.append(f"coalesced: {co_stats['flushes']} flushes, "
                 f"{co_stats['ratio']:.1f} requests/flush, max occupancy "
                 f"{co_stats['max_occupancy']}/{max_batch}; plan-cache "
                 f"hit rate "
                 f"{100 * services['coalesced']['plan_cache']['hit_rate']:.0f}%")
    lines.append(f"cycle model per request: batch {max_batch} = "
                 f"{t_full.gflops:.2f} GFLOPS "
                 f"({t_full.percent_of_peak:.1f}% peak) vs batch 1 = "
                 f"{t_one.gflops:.2f} GFLOPS "
                 f"({t_one.percent_of_peak:.1f}% peak)")
    lines.append(f"firehose speedup: {headline:.2f}x coalesced over "
                 f"batch-of-1")
    return {"rows": rows, "services": services,
            "firehose_ratio": headline,
            "machine": machine.name, "machine_id": machine.machine_id,
            "routine": "serve", "dtype": dt.value,
            "shape": [size, size, size], "n_requests": n_requests,
            "max_batch": max_batch,
            "wall_seconds": {m: firehose[m]["wall_seconds"]
                             for m in firehose},
            "modeled": {m: {"gflops": t.gflops,
                            "percent_peak": t.percent_of_peak}
                        for m, t in modeled.items()},
            "render": "\n".join(lines)}
