"""Sweep driver: time every library over the paper's size grid.

The paper's protocol: square sizes 1..33, batch 16384, random uniform
(0, 1) data, per-mode and per-dtype sweeps.  Timing here is the
deterministic cycle model, so the paper's 100-run geometric mean
collapses to a single exact evaluation per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..baselines.armpl_batch import ArmplBatch
from ..baselines.libxsmm_batch import LibxsmmBatch
from ..baselines.mkl_compact import MklCompact
from ..baselines.openblas_loop import OpenBlasLoop
from ..machine.machines import KUNPENG_920, XEON_GOLD_6240, MachineConfig
from ..runtime.iatf import IATF
from ..types import BlasDType, Diag, GemmProblem, Side, Trans, TrsmProblem, UpLo

__all__ = ["Series", "BenchHarness", "PAPER_SIZES", "PAPER_BATCH",
           "QUICK_SIZES"]

PAPER_SIZES = tuple(range(1, 34))
QUICK_SIZES = (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32)
PAPER_BATCH = 16384

GEMM_LIBS = ("IATF", "OpenBLAS (loop)", "ARMPL (batch)", "LIBXSMM (batch)")
TRSM_LIBS = ("IATF", "OpenBLAS (loop)", "ARMPL (loop)")


@dataclass
class Series:
    """One performance curve: (size, value) pairs plus identity."""

    label: str
    dtype: str
    metric: str                      # "gflops" | "percent_peak"
    points: list[tuple[int, float]] = field(default_factory=list)

    def value_at(self, size: int) -> float:
        """Value at one size (KeyError if the sweep skipped it)."""
        for s, v in self.points:
            if s == size:
                return v
        raise KeyError(f"size {size} not in series {self.label}")

    @property
    def sizes(self) -> list[int]:
        """The sweep's size grid."""
        return [s for s, _ in self.points]

    @property
    def max_value(self) -> float:
        """Peak of the curve."""
        return max(v for _, v in self.points)


class BenchHarness:
    """Times IATF and every baseline over a size grid, with caching."""

    def __init__(self, machine: MachineConfig = KUNPENG_920,
                 batch: int = PAPER_BATCH,
                 sizes: tuple[int, ...] = PAPER_SIZES,
                 backend: "str | None" = None,
                 tuning_db=None) -> None:
        self.machine = machine
        self.batch = batch
        self.sizes = tuple(sizes)
        # tuning_db (a path or TuningDB) makes the IATF curves use the
        # install-time tuned decisions wherever the DB has a record
        self.iatf = IATF(machine, backend=backend, tuning_db=tuning_db)
        self.openblas = OpenBlasLoop(machine)
        self.armpl = ArmplBatch(machine)
        self.libxsmm = LibxsmmBatch(machine)
        self.mkl = MklCompact(XEON_GOLD_6240)
        self._cache: dict[tuple, float] = {}

    # -- point measurement ----------------------------------------------

    def _cached(self, key: tuple, fn) -> float:
        val = self._cache.get(key)
        if val is None:
            with obs.span("bench.point", routine=key[0], lib=key[1],
                          size=key[2], dtype=key[3]):
                val = fn()
            obs.count("bench.points")
            obs.count(f"bench.points.{key[0]}")
            self._cache[key] = val
        else:
            obs.count("bench.cache_hits")
        return val

    def write_trace(self, path) -> str:
        """Export spans recorded so far as a Chrome-trace artifact.

        Run sweeps inside ``with obs.scoped(fresh=False):`` (or after
        ``obs.enable()``) so there are spans to export; the returned
        path loads in ``chrome://tracing`` / Perfetto.
        """
        return obs.write_chrome_trace(path)

    def gemm_gflops(self, lib: str, size: int, dtype: str,
                    mode: str = "NN") -> float:
        """One cached GEMM measurement (simulated GFLOPS)."""
        prob = GemmProblem(size, size, size, dtype, mode[0], mode[1],
                           self.batch)
        key = ("gemm", lib, size, dtype, mode, self.batch)

        def run() -> float:
            if lib == "IATF":
                return self.iatf.time_gemm(prob).gflops
            if lib == "OpenBLAS (loop)":
                return self.openblas.gemm.time(prob).gflops
            if lib == "ARMPL (batch)":
                return self.armpl.gemm.time(prob).gflops
            if lib == "LIBXSMM (batch)":
                return self.libxsmm.gemm.time(prob).gflops
            if lib == "MKL compact":
                return self.mkl.time_gemm(
                    prob.with_batch(self.batch)).gflops
            raise KeyError(lib)
        return self._cached(key, run)

    def trsm_gflops(self, lib: str, size: int, dtype: str,
                    mode: str = "LNLN") -> float:
        """One cached TRSM measurement (simulated GFLOPS)."""
        side, trans, uplo, diag = mode
        prob = TrsmProblem(size, size, dtype, side, uplo, trans, diag,
                           self.batch)
        key = ("trsm", lib, size, dtype, mode, self.batch)

        def run() -> float:
            if lib == "IATF":
                return self.iatf.time_trsm(prob).gflops
            if lib == "OpenBLAS (loop)":
                return self.openblas.trsm.time(prob).gflops
            if lib == "ARMPL (loop)":
                return self.armpl.trsm.time(prob).gflops
            if lib == "MKL compact":
                return self.mkl.time_trsm(prob).gflops
            raise KeyError(lib)
        return self._cached(key, run)

    # -- sweeps -----------------------------------------------------------

    def gemm_series(self, dtype: str, mode: str = "NN",
                    libs: tuple[str, ...] | None = None) -> dict[str, Series]:
        """GEMM curves for one dtype/mode across the library set."""
        dt = BlasDType.from_any(dtype)
        if libs is None:
            libs = GEMM_LIBS if not dt.is_complex else tuple(
                l for l in GEMM_LIBS if l != "LIBXSMM (batch)")
        out: dict[str, Series] = {}
        for lib in libs:
            s = Series(lib, dt.value, "gflops")
            for size in self.sizes:
                s.points.append((size, self.gemm_gflops(lib, size, dt.value,
                                                        mode)))
            out[lib] = s
        return out

    def trsm_series(self, dtype: str, mode: str = "LNLN",
                    libs: tuple[str, ...] = TRSM_LIBS) -> dict[str, Series]:
        """TRSM curves for one dtype/mode across the library set."""
        dt = BlasDType.from_any(dtype)
        out: dict[str, Series] = {}
        for lib in libs:
            s = Series(lib, dt.value, "gflops")
            for size in self.sizes:
                s.points.append((size, self.trsm_gflops(lib, size, dt.value,
                                                        mode)))
            out[lib] = s
        return out

    # -- percent-of-peak comparisons (Figures 11-12) -----------------------

    def gemm_percent_peak(self, dtype: str) -> dict[str, Series]:
        """Figure 11 series: IATF vs MKL compact, % of each machine's peak."""
        dt = BlasDType.from_any(dtype)
        iatf_peak = self.machine.peak_gflops(dt)
        mkl_peak = self.mkl.machine.peak_gflops(dt)
        out = {
            "IATF (Kunpeng 920)": Series("IATF (Kunpeng 920)", dt.value,
                                         "percent_peak"),
            "MKL compact (Xeon 6240)": Series("MKL compact (Xeon 6240)",
                                              dt.value, "percent_peak"),
        }
        for size in self.sizes:
            g = self.gemm_gflops("IATF", size, dt.value)
            out["IATF (Kunpeng 920)"].points.append(
                (size, 100.0 * g / iatf_peak))
            g = self.gemm_gflops("MKL compact", size, dt.value)
            out["MKL compact (Xeon 6240)"].points.append(
                (size, 100.0 * g / mkl_peak))
        return out

    def trsm_percent_peak(self, dtype: str) -> dict[str, Series]:
        """Figure 12 series: IATF vs MKL compact, % of each machine's peak."""
        dt = BlasDType.from_any(dtype)
        iatf_peak = self.machine.peak_gflops(dt)
        mkl_peak = self.mkl.machine.peak_gflops(dt)
        out = {
            "IATF (Kunpeng 920)": Series("IATF (Kunpeng 920)", dt.value,
                                         "percent_peak"),
            "MKL compact (Xeon 6240)": Series("MKL compact (Xeon 6240)",
                                              dt.value, "percent_peak"),
        }
        for size in self.sizes:
            g = self.trsm_gflops("IATF", size, dt.value)
            out["IATF (Kunpeng 920)"].points.append(
                (size, 100.0 * g / iatf_peak))
            g = self.trsm_gflops("MKL compact", size, dt.value)
            out["MKL compact (Xeon 6240)"].points.append(
                (size, 100.0 * g / mkl_peak))
        return out

    # -- speedup summaries -------------------------------------------------

    def max_speedup(self, series: dict[str, Series], over: str,
                    of: str = "IATF") -> tuple[float, int]:
        """(max ratio, size where it happens) of one curve over another."""
        best, best_size = 0.0, 0
        for (s1, v1), (s2, v2) in zip(series[of].points,
                                      series[over].points):
            assert s1 == s2
            if v2 > 0 and v1 / v2 > best:
                best, best_size = v1 / v2, s1
        return best, best_size
