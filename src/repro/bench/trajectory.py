"""Uniform-schema bench trajectory points (``BENCH_*.json``).

One trajectory file is a JSON list; every bench/CI run appends one
point per executor backend so performance becomes a *series* the
watchdog (:mod:`repro.obs.watch`) can diff, instead of a number each
run overwrites.  The schema (v2, :data:`SCHEMA_VERSION`) carries both
performance figures a point can have:

* ``gflops`` / ``percent_peak`` — the **cycle model's** numbers, from
  :meth:`Engine.time_plan` on the showdown's plan.  Deterministic pure
  Python, identical on every host — these are what CI diffs;
* ``wall_seconds`` — the backend's measured host time, best of
  ``repeats``.  Host-specific provenance; only pinned perf runners
  should threshold it.
"""

from __future__ import annotations

import json
import time

from .. import obs
from ..obs.watch import SCHEMA_VERSION

__all__ = ["SCHEMA_VERSION", "points_from_showdown", "append_points"]


def points_from_showdown(result: dict) -> "list[dict]":
    """One v2 trajectory point per backend of a
    :func:`~repro.bench.experiments.backend_showdown` result."""
    stamp = time.time()
    return [{
        "schema": SCHEMA_VERSION,
        "machine": result["machine"],
        "machine_id": result["machine_id"],
        "routine": result["routine"],
        "backend": backend,
        "dtype": result["dtype"],
        "shape": list(result["shape"]),
        "batch": result["batch"],
        "gflops": result["modeled_gflops"],
        "percent_peak": result["modeled_percent_peak"],
        "wall_seconds": wall,
        "repeats": result["repeats"],
        "timestamp": stamp,
    } for backend, wall in result["seconds"].items()]


def append_points(path: str, points: "list[dict]") -> str:
    """Append points to a JSON-list trajectory file.

    Existing points — including pre-schema v1 dicts, which the watchdog
    skips but history keeps — are preserved; an unreadable or non-list
    file is restarted rather than crashing the bench run.
    """
    try:
        with open(path) as f:
            existing = json.load(f)
        if not isinstance(existing, list):
            existing = []
    except (OSError, json.JSONDecodeError):
        existing = []
    existing.extend(points)
    with open(path, "w") as f:
        json.dump(existing, f, indent=2)
        f.write("\n")
    obs.event("bench.trajectory.append", path=str(path),
              points=len(points), total=len(existing))
    return path
