"""Uniform-schema bench trajectory points (``BENCH_*.json``).

One trajectory file is a JSON list; every bench/CI run appends one
point per executor backend so performance becomes a *series* the
watchdog (:mod:`repro.obs.watch`) can diff, instead of a number each
run overwrites.  The schema (v2, :data:`SCHEMA_VERSION`) carries both
performance figures a point can have:

* ``gflops`` / ``percent_peak`` — the **cycle model's** numbers, from
  :meth:`Engine.time_plan` on the showdown's plan.  Deterministic pure
  Python, identical on every host — these are what CI diffs;
* ``wall_seconds`` — the backend's measured host time, best of
  ``repeats``.  Host-specific provenance; only pinned perf runners
  should threshold it.
"""

from __future__ import annotations

import json
import time

from .. import obs
from ..obs.watch import SCHEMA_VERSION

__all__ = ["SCHEMA_VERSION", "points_from_showdown", "points_from_serve",
           "append_points"]


def points_from_showdown(result: dict) -> "list[dict]":
    """One v2 trajectory point per backend of a
    :func:`~repro.bench.experiments.backend_showdown` result."""
    stamp = time.time()
    return [{
        "schema": SCHEMA_VERSION,
        "machine": result["machine"],
        "machine_id": result["machine_id"],
        "routine": result["routine"],
        "backend": backend,
        "dtype": result["dtype"],
        "shape": list(result["shape"]),
        "batch": result["batch"],
        "gflops": result["modeled_gflops"],
        "percent_peak": result["modeled_percent_peak"],
        "wall_seconds": wall,
        "repeats": result["repeats"],
        "timestamp": stamp,
    } for backend, wall in result["seconds"].items()]


def points_from_serve(result: dict) -> "list[dict]":
    """One v2 trajectory point per service mode (``coalesced`` /
    ``batch1``) of a :func:`~repro.bench.experiments.serve_throughput`
    result.  ``routine`` is ``"serve"`` and the mode rides in the
    ``backend`` slot, so the watchdog keys the two series apart;
    ``gflops`` is the deterministic cycle-model per-request figure at
    that mode's batch size (batch ``max_batch`` vs 1), ``wall_seconds``
    the measured firehose run — same split as the showdown points."""
    stamp = time.time()
    batches = {"coalesced": result["max_batch"], "batch1": 1}
    return [{
        "schema": SCHEMA_VERSION,
        "machine": result["machine"],
        "machine_id": result["machine_id"],
        "routine": "serve",
        "backend": mode,
        "dtype": result["dtype"],
        "shape": list(result["shape"]),
        "batch": batches[mode],
        "gflops": modeled["gflops"],
        "percent_peak": modeled["percent_peak"],
        "wall_seconds": result["wall_seconds"].get(mode),
        "repeats": 1,
        "timestamp": stamp,
    } for mode, modeled in result["modeled"].items()]


def append_points(path: str, points: "list[dict]") -> str:
    """Append points to a JSON-list trajectory file.

    Existing points — including pre-schema v1 dicts, which the watchdog
    skips but history keeps — are preserved; an unreadable or non-list
    file is restarted rather than crashing the bench run.
    """
    try:
        with open(path) as f:
            existing = json.load(f)
        if not isinstance(existing, list):
            existing = []
    except (OSError, json.JSONDecodeError):
        existing = []
    existing.extend(points)
    with open(path, "w") as f:
        json.dump(existing, f, indent=2)
        f.write("\n")
    obs.event("bench.trajectory.append", path=str(path),
              points=len(points), total=len(existing))
    return path
