"""Command-line experiment runner.

Usage::

    python -m repro.bench list
    python -m repro.bench fig7 [--dtype d] [--full]
    python -m repro.bench fig9 --dtype s --full
    python -m repro.bench table1|table2|fig4|fig5|headline|ablation

Prints the same rows/series the paper's figures report.  ``--full``
uses the paper's complete 1..33 size grid (slower); the default grid is
the quick one the benchmark suite uses.
"""

from __future__ import annotations

import argparse
import sys

from . import experiments
from .harness import PAPER_SIZES, QUICK_SIZES, BenchHarness
from .reporting import ratio_summary, series_table
from .trajectory import append_points, points_from_serve, points_from_showdown

SWEEP_EXPERIMENTS = ("fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                     "headline")
LOCAL_EXPERIMENTS = ("table1", "table2", "fig4", "fig5", "ablation",
                     "backend", "backends", "tuned", "serve")


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.bench``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=("list",) + SWEEP_EXPERIMENTS
                        + LOCAL_EXPERIMENTS)
    parser.add_argument("--dtype", choices=["s", "d", "c", "z"],
                        help="restrict sweep experiments to one dtype")
    parser.add_argument("--mode", help="GEMM (NN/NT/TN/TT) or TRSM "
                        "(LNLN/...) mode for fig8/fig10")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full 1..33 size grid")
    parser.add_argument("--backend", choices=["interpret", "compiled",
                                              "fused", "megakernel",
                                              "parallel", "both"],
                        default="both",
                        help="executor backend(s): the 'backend'/"
                        "'backends' experiments compare them head to "
                        "head ('both' = every registered backend); "
                        "sweep experiments run on the selected one")
    parser.add_argument("--batch", type=int, default=16384,
                        help="batch size for the 'backends' showdown "
                        "(default: the paper's headline 16384)")
    parser.add_argument("--json", nargs="?", const="BENCH_backends.json",
                        metavar="PATH",
                        help="append the 'backends' showdown as uniform-"
                        "schema trajectory points (one per backend: machine "
                        "id, dtype, shape, modeled gflops / %% of peak, "
                        "wall seconds) to a JSON list file the watchdog "
                        "('python -m repro.obs watch') diffs (default "
                        "path: BENCH_backends.json)")
    parser.add_argument("--requests", type=int, default=512,
                        help="request count per run of the 'serve' "
                        "throughput experiment")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="coalescer flush size for the 'serve' "
                        "experiment")
    parser.add_argument("--tuning-db", metavar="PATH",
                        help="TuningDB file (from 'python -m repro.tuning "
                        "sweep'): IATF curves apply its install-time "
                        "decisions; the 'tuned' experiment compares "
                        "against it instead of sweeping in memory")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("sweep experiments:", ", ".join(SWEEP_EXPERIMENTS))
        print("local experiments:", ", ".join(LOCAL_EXPERIMENTS))
        return 0

    if args.experiment in LOCAL_EXPERIMENTS:
        if args.experiment == "table1":
            print(experiments.table1_kernels()["render"])
        elif args.experiment == "table2":
            print(experiments.table2_machines()["render"])
        elif args.experiment == "fig4":
            print(experiments.fig4_tiling()["render"])
        elif args.experiment == "fig5":
            print(experiments.fig5_scheduling()["render"])
        elif args.experiment in ("backend", "backends"):
            backends = (("interpret", "compiled", "fused", "megakernel",
                         "parallel")
                        if args.backend == "both" else (args.backend,))
            dt = args.dtype or "s"
            result = experiments.backend_showdown(dtype=dt,
                                                  backends=backends,
                                                  batch=args.batch)
            print(result["render"])
            if args.json:
                points = points_from_showdown(result)
                path = append_points(args.json, points)
                print(f"{len(points)} trajectory points (schema v"
                      f"{points[0]['schema']}) appended to {path}")
        elif args.experiment == "serve":
            dt = args.dtype or "s"
            result = experiments.serve_throughput(
                dtype=dt, n_requests=args.requests,
                max_batch=args.max_batch)
            print(result["render"])
            if args.json:
                points = points_from_serve(result)
                path = append_points(args.json, points)
                print(f"{len(points)} trajectory points (schema v"
                      f"{points[0]['schema']}) appended to {path}")
        elif args.experiment == "tuned":
            sizes = (PAPER_SIZES if args.full else QUICK_SIZES)
            dt = args.dtype or "d"
            print(experiments.ablation_tuned(
                sizes=sizes, dtype=dt,
                tuning_db=args.tuning_db)["render"])
        else:
            print(experiments.ablation_scheduling()["render"])
            print()
            print(experiments.ablation_nopack()["render"])
        return 0

    sizes = PAPER_SIZES if args.full else QUICK_SIZES
    h = BenchHarness(sizes=sizes,
                     backend=None if args.backend == "both"
                     else args.backend,
                     tuning_db=args.tuning_db)
    dtypes = [args.dtype] if args.dtype else ["s", "d", "c", "z"]

    if args.experiment == "headline":
        print(experiments.headline_speedups(h)["render"])
        return 0

    for dt in dtypes:
        if args.experiment == "fig7":
            series = h.gemm_series(dt, "NN")
            print(series_table(series, f"Figure 7 — {dt}gemm NN (GFLOPS)"))
            print(ratio_summary(series))
        elif args.experiment == "fig8":
            for mode in ([args.mode] if args.mode
                         else ["NN", "NT", "TN", "TT"]):
                series = h.gemm_series(dt, mode)
                print(series_table(series,
                                   f"Figure 8 — {dt}gemm {mode} (GFLOPS)"))
        elif args.experiment == "fig9":
            series = h.trsm_series(dt, "LNLN")
            print(series_table(series, f"Figure 9 — {dt}trsm LNLN (GFLOPS)"))
            print(ratio_summary(series))
        elif args.experiment == "fig10":
            for mode in ([args.mode] if args.mode
                         else ["LNLN", "LNUN", "LTLN", "LTUN"]):
                series = h.trsm_series(dt, mode)
                print(series_table(series,
                                   f"Figure 10 — {dt}trsm {mode} (GFLOPS)"))
        elif args.experiment == "fig11":
            print(series_table(h.gemm_percent_peak(dt),
                               f"Figure 11 — {dt}gemm % of peak",
                               fmt="{:6.1f}%"))
        elif args.experiment == "fig12":
            print(series_table(h.trsm_percent_peak(dt),
                               f"Figure 12 — {dt}trsm % of peak",
                               fmt="{:6.1f}%"))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
