"""Set-associative cache hierarchy simulator.

Timing in this reproduction is driven by an instruction-level pipeline
model; loads and stores ask this module how far down the hierarchy their
data lives.  The model is a classic two-level, write-allocate, LRU,
inclusive hierarchy with 64-byte lines, parameterized per machine to
match the paper's Table 2 (Kunpeng 920: 64 KB L1D + 512 KB L2; Xeon Gold
6240: 32 KB L1D + 1 MB L2).

Only *extra* latency is modeled here: an L1 hit costs 0 extra cycles (the
pipeline's load-use latency already covers it), an L1 miss that hits L2
costs the L2 penalty, and an L2 miss costs the memory penalty.  Writeback
traffic of dirty lines is not timed (the compact working sets are sized
by the batch counter to stay cache-resident, so writebacks overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheConfig", "Cache", "CacheHierarchy", "CacheStats"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and penalty of one cache level."""

    size: int               # total bytes
    assoc: int              # ways per set
    line: int = 64          # line size in bytes
    penalty: int = 0        # extra cycles when the *next lower* level must
                            # service the access (charged by the hierarchy)

    def __post_init__(self) -> None:
        if self.size % (self.assoc * self.line):
            raise ValueError(
                f"cache size {self.size} not divisible by assoc*line "
                f"({self.assoc}*{self.line})")

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line)


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One level: set-associative, LRU, allocating on both read and write.

    Per-set recency is kept in a dict (insertion-ordered), giving O(1)
    touch/evict — the simulator's innermost data structure, kept lean per
    the profiling guide.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[dict[int, None]] = [dict() for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._use_mask = (config.num_sets & (config.num_sets - 1)) == 0
        self.stats = CacheStats()

    def _set_index(self, line_addr: int) -> int:
        if self._use_mask:
            return line_addr & self._set_mask
        return line_addr % self.config.num_sets

    def lookup(self, line_addr: int) -> bool:
        """Touch a line; True if present (and refresh LRU), False if miss."""
        s = self._sets[self._set_index(line_addr)]
        self.stats.accesses += 1
        if line_addr in s:
            self.stats.hits += 1
            del s[line_addr]
            s[line_addr] = None
            return True
        return False

    def fill(self, line_addr: int) -> int | None:
        """Insert a line, evicting LRU if needed; returns the victim line."""
        s = self._sets[self._set_index(line_addr)]
        victim = None
        if line_addr in s:
            del s[line_addr]
        elif len(s) >= self.config.assoc:
            victim = next(iter(s))
            del s[victim]
        s[line_addr] = None
        return victim

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching LRU or stats."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def invalidate(self, line_addr: int) -> None:
        self._sets[self._set_index(line_addr)].pop(line_addr, None)

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """Two-level inclusive hierarchy plus flat memory behind it.

    A next-line *stream prefetcher* sits beside L1: when a miss lands
    adjacent to a recently missed line, the hierarchy treats it as part
    of a detected stream — charging the (much smaller) in-flight stream
    penalty instead of the full round trip, and pulling the following
    lines in.  Without this, every sequential operand walk in the
    simulator would be latency-bound per line, which real cores' L1/L2
    prefetchers long ago made untrue; with it, streaming is
    bandwidth-shaped for compact kernels and baselines alike.
    """

    STREAM_WINDOW = 64        # recent-miss lines remembered
    STREAM_AHEAD = 2          # lines pulled in ahead of a stream

    def __init__(self, l1: CacheConfig, l2: CacheConfig,
                 mem_penalty: int = 120, stream_penalty_mem: int = 10,
                 stream_penalty_l2: int = 4) -> None:
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)
        self.mem_penalty = int(mem_penalty)
        self.stream_penalty_mem = int(stream_penalty_mem)
        self.stream_penalty_l2 = int(stream_penalty_l2)
        if l1.line != l2.line:
            raise ValueError("L1 and L2 must share a line size")
        self.line = l1.line
        self._recent_misses: dict[int, None] = {}

    def _lines(self, addr: int, size: int) -> range:
        first = addr // self.line
        last = (addr + max(size, 1) - 1) // self.line
        return range(first, last + 1)

    def _note_miss(self, line: int) -> None:
        rm = self._recent_misses
        if line in rm:
            del rm[line]
        rm[line] = None
        if len(rm) > self.STREAM_WINDOW:
            del rm[next(iter(rm))]

    def _is_stream(self, line: int) -> bool:
        return (line - 1 in self._recent_misses
                or line - 2 in self._recent_misses)

    def access(self, addr: int, size: int, write: bool = False) -> int:
        """Charge one load/store touching ``size`` bytes at ``addr``.

        Returns the extra cycles beyond an L1 hit (max over the lines the
        access spans; adjacent-line penalties overlap in hardware).
        """
        extra = 0
        for line in self._lines(addr, size):
            if self.l1.lookup(line):
                continue
            streaming = self._is_stream(line)
            if self.l2.lookup(line):
                pen = self.stream_penalty_l2 if streaming \
                    else self.l1.config.penalty
            else:
                pen = self.stream_penalty_mem if streaming \
                    else self.mem_penalty
                self.l2.fill(line)
            extra = max(extra, pen)
            self._note_miss(line)
            victim = self.l1.fill(line)
            # inclusive hierarchy: L1 victims stay resident in L2
            if victim is not None and not self.l2.contains(victim):
                self.l2.fill(victim)
            if streaming:
                for ahead in range(1, self.STREAM_AHEAD + 1):
                    nxt = line + ahead
                    if not self.l1.contains(nxt):
                        if not self.l2.contains(nxt):
                            self.l2.fill(nxt)
                        self.l1.fill(nxt)
                        self._note_miss(nxt)
        return extra

    def prefetch(self, addr: int, size: int = 1) -> None:
        """Warm lines without charging latency (models PRFM far ahead of use)."""
        for line in self._lines(addr, size):
            if not self.l1.contains(line):
                if not self.l2.contains(line):
                    self.l2.fill(line)
                self.l1.fill(line)

    def warm_range(self, addr: int, size: int, level: str = "l1") -> None:
        """Mark a byte range resident (e.g. 'the packed buffers are in L1')."""
        for line in self._lines(addr, size):
            if level in ("l1", "l2"):
                self.l2.fill(line)
            if level == "l1":
                self.l1.fill(line)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
