"""In-order dual-issue scoreboard: the cycle-accurate-ish timing model.

This is the substitute for running kernels on silicon.  It models the
properties the paper's optimizations target:

* **issue-slot structure** — per cycle, a bounded number of instructions
  may issue, with per-class caps.  The Kunpeng 920 configuration encodes
  the paper's §6.3 statement verbatim: "Kunpeng 920 CPU can only issue
  one memory access instruction and one calculation instruction at the
  same time, or simultaneously issue two calculation instructions for
  single-precision floating-point numbers".
* **register dependencies** — an instruction cannot issue before its
  sources (including FMA accumulators) are ready; results become ready
  ``latency`` cycles after issue.  Issue is strictly in order, which is
  what makes the paper's instruction-scheduling pass (Figure 5)
  measurable: a dependent pair placed back-to-back stalls the front end.
* **memory latency** — loads ask the :class:`CacheHierarchy` where their
  line lives; PRFM warms lines without blocking.
* **division** — FDIV occupies the FP pipe for several cycles
  (unpipelined), reproducing the paper's remark that ARM division is
  expensive enough to justify reciprocal packing in TRSM.

The model is deliberately in-order.  The real TaiShan V110 core has some
out-of-order capacity, but the paper's entire install-time optimizer is
motivated by static instruction placement mattering; an in-order
scoreboard is the simplest machine on which that motivation is true, and
it reproduces the paper's peak rates by construction (see
:mod:`repro.machine.machines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheHierarchy
from .isa import Instr, Op, OpClass
from .program import Program

__all__ = ["IssueRules", "Latencies", "TimingResult", "PipelineModel",
           "AddressSpace"]


@dataclass(frozen=True)
class IssueRules:
    """Per-cycle issue caps."""

    width: int = 2           # total instructions per cycle
    max_mem: int = 1         # loads + stores + prefetches
    max_fp32: int = 2        # FP ops per cycle at 4-byte element width
    max_fp64: int = 1        # FP ops per cycle at 8-byte element width
    max_int: int = 2         # scalar ALU ops

    def max_fp(self, ew: int) -> int:
        return self.max_fp32 if ew == 4 else self.max_fp64


@dataclass(frozen=True)
class Latencies:
    """Result latencies (cycles from issue to readiness) and FDIV blocking."""

    load_use: int = 4        # L1-hit load-to-use
    fp_ma: int = 4           # FMLA/FMLS/FMAI
    fp_mul: int = 3          # FMUL/FMULI
    fp_add: int = 3          # FADD/FSUB
    fp_div32: int = 11       # FDIV float32 result latency
    fp_div64: int = 18       # FDIV float64 result latency
    div_block32: int = 8     # cycles FDIV occupies the FP pipe (fp32)
    div_block64: int = 14    # cycles FDIV occupies the FP pipe (fp64)
    int_alu: int = 1

    def result_latency(self, ins: Instr) -> int:
        op = ins.op
        if op in (Op.FMLA, Op.FMLS, Op.FMAI):
            return self.fp_ma
        if op in (Op.FMUL, Op.FMULI):
            return self.fp_mul
        if op in (Op.FADD, Op.FSUB, Op.VZERO, Op.VMOV, Op.FIMM):
            return self.fp_add
        if op is Op.FDIV:
            return self.fp_div32 if ins.ew == 4 else self.fp_div64
        if op is Op.ADDI:
            return self.int_alu
        return 1

    def div_block(self, ew: int) -> int:
        return self.div_block32 if ew == 4 else self.div_block64


@dataclass
class TimingResult:
    """Outcome of timing one program invocation."""

    cycles: int                     # issue span (throughput-relevant)
    drain_cycles: int               # extra cycles until last result is ready
    instructions: int
    stall_cycles: int               # cycles in the span with zero issues
    fp_issued: int
    mem_issued: int
    l1_misses: int
    l2_misses: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def __add__(self, other: "TimingResult") -> "TimingResult":
        return TimingResult(
            self.cycles + other.cycles,
            max(self.drain_cycles, other.drain_cycles),
            self.instructions + other.instructions,
            self.stall_cycles + other.stall_cycles,
            self.fp_issued + other.fp_issued,
            self.mem_issued + other.mem_issued,
            self.l1_misses + other.l1_misses,
            self.l2_misses + other.l2_misses,
        )

    def scaled(self, factor: int) -> "TimingResult":
        """Replicate this invocation ``factor`` times back-to-back."""
        return TimingResult(
            self.cycles * factor, self.drain_cycles,
            self.instructions * factor, self.stall_cycles * factor,
            self.fp_issued * factor, self.mem_issued * factor,
            self.l1_misses * factor, self.l2_misses * factor,
        )


class AddressSpace:
    """Flat address allocator used to place buffers for timing runs."""

    def __init__(self, base: int = 1 << 20) -> None:
        self._next = int(base)
        self._map: dict[str, tuple[int, int]] = {}

    def place(self, name: str, nbytes: int, align: int = 64) -> int:
        """Allocate ``nbytes`` for ``name``; returns the base address."""
        addr = (self._next + align - 1) // align * align
        self._map[name] = (addr, int(nbytes))
        self._next = addr + int(nbytes)
        return addr

    def base(self, name: str) -> int:
        return self._map[name][0]

    def extent(self, name: str) -> tuple[int, int]:
        return self._map[name]

    def __contains__(self, name: str) -> bool:
        return name in self._map


class PipelineModel:
    """Scoreboard simulator producing deterministic cycle counts."""

    def __init__(self, rules: IssueRules, lat: Latencies,
                 caches: CacheHierarchy, vector_bytes: int) -> None:
        self.rules = rules
        self.lat = lat
        self.caches = caches
        self.vector_bytes = int(vector_bytes)

    def _access_size(self, ins: Instr) -> int:
        if ins.op in (Op.LDPV, Op.STPV, Op.LD2V, Op.ST2V):
            return 2 * self.vector_bytes
        if ins.op is Op.LD1R:
            return ins.ew
        if ins.nlanes is not None:
            return ins.nlanes * ins.ew
        return self.vector_bytes

    def simulate(self, program: Program,
                 xreg_init: dict[int, int] | None = None,
                 start_cycle: int = 0,
                 trace: list | None = None) -> TimingResult:
        """Time one invocation.

        ``xreg_init`` maps scalar registers to flat byte addresses (from an
        :class:`AddressSpace`).  The cache hierarchy retains state across
        calls, so back-to-back invocations see realistic residency.
        ``trace``, if given, receives one ``(issue_cycle, instr)`` pair per
        instruction (see :mod:`repro.machine.trace`).
        """
        rules, lat = self.rules, self.lat
        vready = [0] * 32
        xval: dict[int, int] = dict(xreg_init or {})
        xready: dict[int, int] = {}
        # per-cycle issue bookkeeping: cycle -> [total, mem, fp, int]
        slots: dict[int, list[int]] = {}
        fp_blocked_until = start_cycle  # unpipelined FDIV occupancy

        l1_m0 = self.caches.l1.stats.misses
        l2_m0 = self.caches.l2.stats.misses

        cursor = start_cycle
        last_issue = start_cycle
        last_ready = start_cycle
        fp_issued = 0
        mem_issued = 0

        for ins in program.instrs:
            icls = ins.iclass
            # dependency readiness
            t = cursor
            for r in ins.reads:
                if vready[r] > t:
                    t = vready[r]
            if ins.base is not None:
                tr = xready.get(ins.base, 0)
                if tr > t:
                    t = tr
            if ins.op is Op.ADDI and ins.xsrc is not None:
                tr = xready.get(ins.xsrc, 0)
                if tr > t:
                    t = tr
            if icls in (OpClass.FP, OpClass.FP_DIV) and t < fp_blocked_until:
                t = fp_blocked_until

            # find an issue slot honouring per-class caps
            is_mem = icls in (OpClass.MEM_LOAD, OpClass.MEM_STORE,
                              OpClass.PREFETCH)
            is_fp = icls in (OpClass.FP, OpClass.FP_DIV)
            fp_cap = rules.max_fp(ins.ew)
            while True:
                c = slots.get(t)
                if c is None:
                    c = [0, 0, 0, 0]
                    slots[t] = c
                if (c[0] < rules.width
                        and (not is_mem or c[1] < rules.max_mem)
                        and (not is_fp or c[2] < fp_cap)
                        and (icls is not OpClass.INT or c[3] < rules.max_int)):
                    break
                t += 1
            c[0] += 1
            if is_mem:
                c[1] += 1
                mem_issued += 1
            if is_fp:
                c[2] += 1
                fp_issued += 1
            if icls is OpClass.INT:
                c[3] += 1

            # effects
            if icls is OpClass.MEM_LOAD:
                addr = xval.get(ins.base, 0) + ins.offset
                extra = self.caches.access(addr, self._access_size(ins))
                ready = t + lat.load_use + extra
                for d in ins.dst:
                    vready[d] = ready
            elif icls is OpClass.MEM_STORE:
                addr = xval.get(ins.base, 0) + ins.offset
                self.caches.access(addr, self._access_size(ins), write=True)
                ready = t + 1
            elif icls is OpClass.PREFETCH:
                addr = xval.get(ins.base, 0) + ins.offset
                self.caches.prefetch(addr, self.caches.line)
                ready = t + 1
            elif ins.op is Op.ADDI:
                xval[ins.xdst] = xval.get(ins.xsrc, 0) + ins.ximm
                ready = t + lat.int_alu
                xready[ins.xdst] = ready
            else:
                ready = t + lat.result_latency(ins)
                for d in ins.dst:
                    vready[d] = ready
                if ins.op is Op.FDIV:
                    fp_blocked_until = t + lat.div_block(ins.ew)

            if trace is not None:
                trace.append((t, ins))
            cursor = t  # in-order: next instruction issues at >= this cycle
            if t > last_issue:
                last_issue = t
            if ready > last_ready:
                last_ready = ready

        span = last_issue - start_cycle + 1
        stall = span - len(slots)
        return TimingResult(
            cycles=span,
            drain_cycles=max(0, last_ready - last_issue - 1),
            instructions=len(program.instrs),
            stall_cycles=max(0, stall),
            fp_issued=fp_issued,
            mem_issued=mem_issued,
            l1_misses=self.caches.l1.stats.misses - l1_m0,
            l2_misses=self.caches.l2.stats.misses - l2_m0,
        )
