"""Simulated ARMv8-like machine substrate.

The paper's kernels are hand-scheduled NEON assembly; Python cannot run
those natively, so this package provides the closest synthetic equivalent
that exercises the same code path:

* :mod:`repro.machine.isa` — a NEON-subset instruction set (vector loads
  and stores, fused multiply-add/subtract, pointer arithmetic, prefetch).
* :mod:`repro.machine.program` — straight-line kernel containers (the
  paper's kernels are fully unrolled; loops live in the host engine).
* :mod:`repro.machine.memory` / :mod:`executor` — functional execution of
  generated kernels, vectorized over the whole batch with NumPy.
* :mod:`repro.machine.cache` / :mod:`pipeline` — a set-associative cache
  hierarchy and an in-order dual-issue scoreboard that together produce
  deterministic cycle counts (the figure-of-merit for every experiment).
* :mod:`repro.machine.machines` — concrete configurations reproducing the
  paper's Table 2 (Kunpeng 920 and Intel Xeon Gold 6240).
"""

from .isa import Instr, Op, OpClass, iclass_of
from .program import Program
from .memory import MemorySpace
from .executor import VectorExecutor
from .cache import Cache, CacheHierarchy
from .pipeline import PipelineModel, TimingResult
from .machines import MachineConfig, KUNPENG_920, XEON_GOLD_6240

__all__ = [
    "Instr", "Op", "OpClass", "iclass_of",
    "Program", "MemorySpace", "VectorExecutor",
    "Cache", "CacheHierarchy", "PipelineModel", "TimingResult",
    "MachineConfig", "KUNPENG_920", "XEON_GOLD_6240",
]
