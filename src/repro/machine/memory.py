"""Functional memory model: named flat buffers.

Functional execution does not need a single flat address space (the
timing model builds one separately); it needs *buffers* that kernels
address as ``base_pointer + byte_offset``.  A pointer is therefore a
``(buffer_name, byte_offset)`` pair, where the offset may be a NumPy
integer array so that one simulated instruction operates on every batch
group at once — the vectorization idiom the HPC guides prescribe.
"""

from __future__ import annotations

import numpy as np

from ..errors import MachineError

__all__ = ["MemorySpace", "Pointer"]


class Pointer:
    """A typed pointer into a :class:`MemorySpace` buffer.

    ``offset`` is in bytes, either a Python int or an ``int64`` array of
    shape ``(groups,)`` for batch-vectorized execution.
    """

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: str, offset: "int | np.ndarray" = 0) -> None:
        self.buffer = buffer
        if isinstance(offset, np.ndarray):
            self.offset = offset.astype(np.int64, copy=False)
        else:
            self.offset = int(offset)

    def __add__(self, imm: int) -> "Pointer":
        return Pointer(self.buffer, self.offset + int(imm))

    @property
    def groups(self) -> int | None:
        """Number of batch groups this pointer fans out over (None = scalar)."""
        if isinstance(self.offset, np.ndarray):
            return int(self.offset.shape[0])
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pointer({self.buffer!r}, {self.offset!r})"


class MemorySpace:
    """A set of named 1-D real-typed buffers.

    Buffers are NumPy arrays of ``float32`` or ``float64``; complex data
    is stored as split re/im planes by the layout subsystem, so memory
    itself never sees complex dtypes.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def alloc(self, name: str, num_elements: int, ew: int) -> np.ndarray:
        """Allocate a zeroed buffer of ``num_elements`` real elements."""
        if name in self._buffers:
            raise MachineError(f"buffer {name!r} already allocated")
        dtype = np.float32 if ew == 4 else np.float64
        buf = np.zeros(int(num_elements), dtype=dtype)
        self._buffers[name] = buf
        return buf

    def bind(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register an existing 1-D real array as a buffer (no copy)."""
        if array.ndim != 1:
            raise MachineError(f"buffer {name!r} must be 1-D, got {array.ndim}-D")
        if array.dtype not in (np.float32, np.float64):
            raise MachineError(
                f"buffer {name!r} must be float32/float64, got {array.dtype}")
        if not array.flags["C_CONTIGUOUS"]:
            raise MachineError(f"buffer {name!r} must be C-contiguous")
        self._buffers[name] = array
        return array

    def group_view(self, name: str, groups: int,
                   stride_elems: int) -> np.ndarray:
        """A zero-copy ``(groups, stride_elems)`` view of a buffer.

        Group base offsets are affine (``group * stride``), so batched
        address resolution collapses to row indexing of this view; the
        compiled executor backend addresses every memory operand as a
        column slice of it.  Validates — once per buffer per execution,
        not per instruction — that the buffer actually covers all
        ``groups`` strides.
        """
        arr = self[name]
        if stride_elems < 1:
            raise MachineError(
                f"buffer {name!r}: group stride must be >= 1 element")
        need = groups * stride_elems
        if arr.shape[0] < need:
            raise MachineError(
                f"buffer {name!r} has {arr.shape[0]} elements, needs "
                f"{need} for {groups} groups of stride {stride_elems}")
        return arr[:need].reshape(groups, stride_elems)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._buffers[name]
        except KeyError:
            raise MachineError(f"unknown buffer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def names(self) -> list[str]:
        return sorted(self._buffers)

    def itemsize(self, name: str) -> int:
        return int(self[name].dtype.itemsize)

    def nbytes(self, name: str) -> int:
        return int(self[name].nbytes)
