"""Instruction set of the simulated machine.

This is the minimal AArch64/NEON-flavoured subset the paper's kernels
need.  Instructions are straight-line (no branches): the paper's kernel
generator emits fully unrolled micro-kernels, and all looping happens in
the host-level execution engine.

Vector registers are named ``v0..v31`` and hold ``vector_bytes`` bytes
(one *lane* per interleaved matrix in the compact layout).  Scalar
(general-purpose) registers ``x0..x30`` hold pointers; memory operands
are always ``[xN, #imm]`` with a byte offset, as in real AArch64 LDP/LDR
addressing.

Opcodes
-------

======== =========================================================
LDRV     load one vector register from ``[base + off]``
LDPV     load a register pair (models AArch64 ``ldp q,q``)
LD1R     load one scalar and replicate to all lanes (``ld1r``)
LD2V     deinterleaving pair load (``ld2``): even elements to the
         first register, odd to the second — complex re/im split
ST2V     interleaving pair store (``st2``)
STRV     store one vector register
STPV     store a register pair
ADDI     scalar add-immediate (pointer bump)
FMLA     ``vd += vn * vm`` elementwise
FMLS     ``vd -= vn * vm`` elementwise
FMUL     ``vd  = vn * vm`` elementwise
FMAI     ``vd += vn * imm`` (models indexed FMLA with a preloaded
         scalar lane, used for alpha/beta scaling)
FMULI    ``vd  = vn * imm``
FADD     ``vd  = vn + vm`` elementwise
FSUB     ``vd  = vn - vm`` elementwise
FDIV     ``vd  = vn / vm`` elementwise (long latency, partially
         pipelined — used by baselines that do not pre-reciprocate)
VZERO    ``vd = 0`` (models ``movi v.16b, #0``)
VMOV     ``vd = vn`` (register move)
FIMM     ``vd = imm`` broadcast to all lanes (``fmov v, #imm``)
PRFM     prefetch the cache line at ``[base + off]``
NOP      timing filler (used in scheduler tests)
======== =========================================================

``nlanes`` on memory ops allows partial-vector accesses: baselines use
them for scalar edge processing (1 lane) and the compact path uses full
vectors.  Timing does not distinguish partial from full accesses (a load
is a load); functional execution reads/writes only the named lanes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Op", "OpClass", "Instr", "iclass_of", "NUM_VREGS", "NUM_XREGS"]

NUM_VREGS = 32
NUM_XREGS = 31


class Op(enum.Enum):
    LDRV = "ldrv"
    LDPV = "ldpv"
    LD1R = "ld1r"
    LD2V = "ld2v"
    ST2V = "st2v"
    STRV = "strv"
    STPV = "stpv"
    ADDI = "addi"
    FMLA = "fmla"
    FMLS = "fmls"
    FMUL = "fmul"
    FMAI = "fmai"
    FMULI = "fmuli"
    FADD = "fadd"
    FSUB = "fsub"
    FDIV = "fdiv"
    VZERO = "vzero"
    VMOV = "vmov"
    FIMM = "fimm"
    PRFM = "prfm"
    NOP = "nop"


class OpClass(enum.Enum):
    """Issue-port class used by the pipeline model."""

    MEM_LOAD = "load"
    MEM_STORE = "store"
    FP = "fp"
    FP_DIV = "fpdiv"
    INT = "int"
    PREFETCH = "prefetch"
    NOP = "nop"


_OP_CLASS = {
    Op.LDRV: OpClass.MEM_LOAD,
    Op.LDPV: OpClass.MEM_LOAD,
    Op.LD1R: OpClass.MEM_LOAD,
    Op.LD2V: OpClass.MEM_LOAD,
    Op.ST2V: OpClass.MEM_STORE,
    Op.STRV: OpClass.MEM_STORE,
    Op.STPV: OpClass.MEM_STORE,
    Op.ADDI: OpClass.INT,
    Op.FMLA: OpClass.FP,
    Op.FMLS: OpClass.FP,
    Op.FMUL: OpClass.FP,
    Op.FMAI: OpClass.FP,
    Op.FMULI: OpClass.FP,
    Op.FADD: OpClass.FP,
    Op.FSUB: OpClass.FP,
    Op.FDIV: OpClass.FP_DIV,
    Op.VZERO: OpClass.FP,
    Op.VMOV: OpClass.FP,
    Op.FIMM: OpClass.FP,
    Op.PRFM: OpClass.PREFETCH,
    Op.NOP: OpClass.NOP,
}


def iclass_of(op: Op) -> OpClass:
    """Issue-port class of an opcode."""
    return _OP_CLASS[op]


@dataclass(frozen=True)
class Instr:
    """One straight-line instruction.

    Fields are a union across opcodes; unused ones stay at their defaults.

    ``dst``/``srcs``
        vector-register indices written / read.  For FMLA/FMLS/FMAI the
        destination is also an implicit source (accumulator); the executor
        and scoreboard both honour that.
    ``base``/``offset``
        scalar register index + byte offset for memory operands.
    ``xdst``/``xsrc``/``ximm``
        scalar-register operands of ADDI.
    ``imm``
        float immediate of FMAI/FMULI.
    ``nlanes``
        lanes touched by a memory op (None = full vector).
    ``ew``
        element width in bytes (4 or 8); the pipeline needs it because the
        Kunpeng 920 dual-issues FP only for 32-bit elements.
    ``tag``
        free-form annotation (template name) used by the scheduler and in
        disassembly; never semantically meaningful.
    """

    op: Op
    dst: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    base: Optional[int] = None
    offset: int = 0
    xdst: Optional[int] = None
    xsrc: Optional[int] = None
    ximm: int = 0
    imm: float = 0.0
    nlanes: Optional[int] = None
    ew: int = 8
    tag: str = ""

    def __post_init__(self) -> None:
        for r in self.dst + self.srcs:
            if not 0 <= r < NUM_VREGS:
                raise ValueError(f"vector register v{r} out of range")
        for r in (self.base, self.xdst, self.xsrc):
            if r is not None and not 0 <= r < NUM_XREGS:
                raise ValueError(f"scalar register x{r} out of range")
        if self.ew not in (4, 8):
            raise ValueError(f"element width must be 4 or 8, got {self.ew}")

    @property
    def iclass(self) -> OpClass:
        return _OP_CLASS[self.op]

    @property
    def is_load(self) -> bool:
        return self.iclass is OpClass.MEM_LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass is OpClass.MEM_STORE

    @property
    def is_fp(self) -> bool:
        return self.iclass in (OpClass.FP, OpClass.FP_DIV)

    @property
    def reads(self) -> tuple[int, ...]:
        """Vector registers read, including accumulator inputs."""
        if self.op in (Op.FMLA, Op.FMLS, Op.FMAI):
            return self.srcs + self.dst
        return self.srcs

    @property
    def writes(self) -> tuple[int, ...]:
        return self.dst

    @property
    def flops_per_lane(self) -> int:
        """Real flops per lane (FMA counts 2, MUL/ADD/SUB/DIV count 1)."""
        if self.op in (Op.FMLA, Op.FMLS, Op.FMAI):
            return 2
        if self.op in (Op.FMUL, Op.FMULI, Op.FADD, Op.FSUB, Op.FDIV):
            return 1
        return 0

    def asm(self) -> str:
        """AArch64-flavoured disassembly, for debugging and the docs."""
        sfx = ".4s" if self.ew == 4 else ".2d"
        o = self.op
        if o in (Op.LDRV, Op.LD1R):
            return f"{o.value:<6}v{self.dst[0]}{sfx}, [x{self.base}, #{self.offset}]"
        if o is Op.LD2V:
            return (f"ld2   {{v{self.dst[0]}{sfx}, v{self.dst[1]}{sfx}}}, "
                    f"[x{self.base}, #{self.offset}]")
        if o is Op.ST2V:
            return (f"st2   {{v{self.srcs[0]}{sfx}, v{self.srcs[1]}{sfx}}}, "
                    f"[x{self.base}, #{self.offset}]")
        if o is Op.LDPV:
            return (f"ldp   q{self.dst[0]}, q{self.dst[1]}, "
                    f"[x{self.base}, #{self.offset}]")
        if o is Op.STRV:
            return f"str   q{self.srcs[0]}, [x{self.base}, #{self.offset}]"
        if o is Op.STPV:
            return (f"stp   q{self.srcs[0]}, q{self.srcs[1]}, "
                    f"[x{self.base}, #{self.offset}]")
        if o is Op.ADDI:
            return f"add   x{self.xdst}, x{self.xsrc}, #{self.ximm}"
        if o in (Op.FMLA, Op.FMLS, Op.FMUL, Op.FADD, Op.FSUB, Op.FDIV):
            return (f"{o.value:<6}v{self.dst[0]}{sfx}, "
                    f"v{self.srcs[0]}{sfx}, v{self.srcs[1]}{sfx}")
        if o in (Op.FMAI, Op.FMULI):
            return f"{o.value:<6}v{self.dst[0]}{sfx}, v{self.srcs[0]}{sfx}, #{self.imm}"
        if o is Op.VZERO:
            return f"movi  v{self.dst[0]}.16b, #0"
        if o is Op.VMOV:
            return f"mov   v{self.dst[0]}.16b, v{self.srcs[0]}.16b"
        if o is Op.FIMM:
            return f"fmov  v{self.dst[0]}{sfx}, #{self.imm}"
        if o is Op.PRFM:
            return f"prfm  pldl1keep, [x{self.base}, #{self.offset}]"
        return "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.asm()


# ---------------------------------------------------------------------------
# Convenience constructors.  Code generation reads far better with these
# than with raw Instr(...) calls.
# ---------------------------------------------------------------------------

def ldrv(dst: int, base: int, offset: int = 0, *, ew: int = 8,
         nlanes: Optional[int] = None, tag: str = "") -> Instr:
    return Instr(Op.LDRV, dst=(dst,), base=base, offset=offset, ew=ew,
                 nlanes=nlanes, tag=tag)


def ldpv(dst1: int, dst2: int, base: int, offset: int = 0, *, ew: int = 8,
         tag: str = "") -> Instr:
    return Instr(Op.LDPV, dst=(dst1, dst2), base=base, offset=offset, ew=ew,
                 tag=tag)


def ld1r(dst: int, base: int, offset: int = 0, *, ew: int = 8,
         tag: str = "") -> Instr:
    return Instr(Op.LD1R, dst=(dst,), base=base, offset=offset, ew=ew, tag=tag)


def ld2v(dst_even: int, dst_odd: int, base: int, offset: int = 0, *,
         ew: int = 8, nlanes: "int | None" = None, tag: str = "") -> Instr:
    return Instr(Op.LD2V, dst=(dst_even, dst_odd), base=base, offset=offset,
                 ew=ew, nlanes=nlanes, tag=tag)


def st2v(src_even: int, src_odd: int, base: int, offset: int = 0, *,
         ew: int = 8, nlanes: "int | None" = None, tag: str = "") -> Instr:
    return Instr(Op.ST2V, srcs=(src_even, src_odd), base=base, offset=offset,
                 ew=ew, nlanes=nlanes, tag=tag)


def strv(src: int, base: int, offset: int = 0, *, ew: int = 8,
         nlanes: Optional[int] = None, tag: str = "") -> Instr:
    return Instr(Op.STRV, srcs=(src,), base=base, offset=offset, ew=ew,
                 nlanes=nlanes, tag=tag)


def stpv(src1: int, src2: int, base: int, offset: int = 0, *, ew: int = 8,
         tag: str = "") -> Instr:
    return Instr(Op.STPV, srcs=(src1, src2), base=base, offset=offset, ew=ew,
                 tag=tag)


def addi(xdst: int, xsrc: int, imm: int, *, tag: str = "") -> Instr:
    return Instr(Op.ADDI, xdst=xdst, xsrc=xsrc, ximm=imm, tag=tag)


def fmla(dst: int, a: int, b: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FMLA, dst=(dst,), srcs=(a, b), ew=ew, tag=tag)


def fmls(dst: int, a: int, b: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FMLS, dst=(dst,), srcs=(a, b), ew=ew, tag=tag)


def fmul(dst: int, a: int, b: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FMUL, dst=(dst,), srcs=(a, b), ew=ew, tag=tag)


def fmai(dst: int, src: int, imm: float, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FMAI, dst=(dst,), srcs=(src,), imm=imm, ew=ew, tag=tag)


def fmuli(dst: int, src: int, imm: float, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FMULI, dst=(dst,), srcs=(src,), imm=imm, ew=ew, tag=tag)


def fadd(dst: int, a: int, b: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FADD, dst=(dst,), srcs=(a, b), ew=ew, tag=tag)


def fsub(dst: int, a: int, b: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FSUB, dst=(dst,), srcs=(a, b), ew=ew, tag=tag)


def fdiv(dst: int, a: int, b: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FDIV, dst=(dst,), srcs=(a, b), ew=ew, tag=tag)


def vzero(dst: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.VZERO, dst=(dst,), ew=ew, tag=tag)


def vmov(dst: int, src: int, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.VMOV, dst=(dst,), srcs=(src,), ew=ew, tag=tag)


def fimm(dst: int, imm: float, *, ew: int = 8, tag: str = "") -> Instr:
    return Instr(Op.FIMM, dst=(dst,), imm=imm, ew=ew, tag=tag)


def prfm(base: int, offset: int = 0, *, tag: str = "") -> Instr:
    return Instr(Op.PRFM, base=base, offset=offset, tag=tag)


def nop(tag: str = "") -> Instr:
    return Instr(Op.NOP, tag=tag)
