"""Assembly text parser: the inverse of :meth:`Instr.asm`.

Lets kernels be written, inspected, and round-tripped as text — useful
for tooling, for regression-pinning generated code in tests, and for
hand-writing small programs in examples:

    prog = parse_program('''
        ldp   q0, q1, [x0, #0]
        fmul  v2.2d, v0.2d, v1.2d
        str   q2, [x1, #0]
    ''', name="handwritten", lanes=2)

The grammar is exactly what the disassembler emits (one instruction per
line, ``//`` comments, blank lines ignored); ``parse_instr`` raises
:class:`MachineError` with the offending line on any mismatch.
"""

from __future__ import annotations

import re

from ..errors import MachineError
from .isa import (Instr, Op, addi, fadd, fdiv, fmai, fmla, fmls, fmul,
                  fmuli, fsub, ld1r, ld2v, ldpv, ldrv, nop, prfm, st2v,
                  stpv, strv, vmov, vzero)
from .program import Program

__all__ = ["parse_instr", "parse_program"]

_EW = {"4s": 4, "2d": 8, "2s": 4, "1d": 8, "8h": 4, "16b": 8}

_MEM = r"\[x(?P<base>\d+), #(?P<off>-?\d+)\]"
_V = r"v(?P<{}>\d+)\.(?P<{}ew>[0-9]+[sd])"

_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(rf"ldrv\s+v(?P<d>\d+)\.(?P<ew>\d[sd]), {_MEM}$"), "ldrv"),
    (re.compile(rf"ld1r\s+v(?P<d>\d+)\.(?P<ew>\d[sd]), {_MEM}$"), "ld1r"),
    (re.compile(rf"ldp\s+q(?P<d1>\d+), q(?P<d2>\d+), {_MEM}$"), "ldp"),
    (re.compile(rf"ld2\s+\{{v(?P<d1>\d+)\.(?P<ew>\d[sd]), "
                rf"v(?P<d2>\d+)\.\d[sd]\}}, {_MEM}$"), "ld2"),
    (re.compile(rf"st2\s+\{{v(?P<s1>\d+)\.(?P<ew>\d[sd]), "
                rf"v(?P<s2>\d+)\.\d[sd]\}}, {_MEM}$"), "st2"),
    (re.compile(rf"str\s+q(?P<s>\d+), {_MEM}$"), "str"),
    (re.compile(rf"stp\s+q(?P<s1>\d+), q(?P<s2>\d+), {_MEM}$"), "stp"),
    (re.compile(r"add\s+x(?P<xd>\d+), x(?P<xs>\d+), #(?P<imm>-?\d+)$"),
     "add"),
    (re.compile(r"(?P<op>fmla|fmls|fmul|fadd|fsub|fdiv)\s+"
                r"v(?P<d>\d+)\.(?P<ew>\d[sd]), "
                r"v(?P<a>\d+)\.\d[sd], v(?P<b>\d+)\.\d[sd]$"), "fp3"),
    (re.compile(r"(?P<op>fmai|fmuli)\s+v(?P<d>\d+)\.(?P<ew>\d[sd]), "
                r"v(?P<a>\d+)\.\d[sd], #(?P<imm>[^\s]+)$"), "fpimm"),
    (re.compile(r"movi\s+v(?P<d>\d+)\.16b, #0$"), "vzero"),
    (re.compile(r"mov\s+v(?P<d>\d+)\.16b, v(?P<s>\d+)\.16b$"), "vmov"),
    (re.compile(rf"prfm\s+pldl1keep, {_MEM}$"), "prfm"),
    (re.compile(r"nop$"), "nop"),
]

_FP3 = {"fmla": fmla, "fmls": fmls, "fmul": fmul, "fadd": fadd,
        "fsub": fsub, "fdiv": fdiv}


def parse_instr(line: str, default_ew: int = 8) -> Instr:
    """Parse one disassembly line back into an :class:`Instr`."""
    text = line.split("//")[0].strip()
    text = re.sub(r"\s+", " ", text)
    if not text:
        raise MachineError("empty instruction line")
    for pattern, kind in _PATTERNS:
        m = pattern.match(text)
        if not m:
            continue
        g = m.groupdict()
        ew = _EW.get(g.get("ew", ""), default_ew)
        if kind == "ldrv":
            return ldrv(int(g["d"]), int(g["base"]), int(g["off"]), ew=ew)
        if kind == "ld1r":
            return ld1r(int(g["d"]), int(g["base"]), int(g["off"]), ew=ew)
        if kind == "ldp":
            return ldpv(int(g["d1"]), int(g["d2"]), int(g["base"]),
                        int(g["off"]), ew=default_ew)
        if kind == "ld2":
            return ld2v(int(g["d1"]), int(g["d2"]), int(g["base"]),
                        int(g["off"]), ew=ew)
        if kind == "st2":
            return st2v(int(g["s1"]), int(g["s2"]), int(g["base"]),
                        int(g["off"]), ew=ew)
        if kind == "str":
            return strv(int(g["s"]), int(g["base"]), int(g["off"]),
                        ew=default_ew)
        if kind == "stp":
            return stpv(int(g["s1"]), int(g["s2"]), int(g["base"]),
                        int(g["off"]), ew=default_ew)
        if kind == "add":
            return addi(int(g["xd"]), int(g["xs"]), int(g["imm"]))
        if kind == "fp3":
            return _FP3[g["op"]](int(g["d"]), int(g["a"]), int(g["b"]),
                                 ew=ew)
        if kind == "fpimm":
            ctor = fmai if g["op"] == "fmai" else fmuli
            return ctor(int(g["d"]), int(g["a"]), float(g["imm"]), ew=ew)
        if kind == "vzero":
            return vzero(int(g["d"]), ew=default_ew)
        if kind == "vmov":
            return vmov(int(g["d"]), int(g["s"]), ew=default_ew)
        if kind == "prfm":
            return prfm(int(g["base"]), int(g["off"]))
        if kind == "nop":
            return nop()
    raise MachineError(f"cannot parse instruction: {line.strip()!r}")


def parse_program(text: str, name: str = "parsed", ew: int = 8,
                  lanes: int = 2) -> Program:
    """Parse a multi-line listing (``//`` comments and blanks ignored)."""
    instrs = []
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.split("//")[0].strip()
        if not stripped:
            continue
        try:
            instrs.append(parse_instr(stripped, default_ew=ew))
        except MachineError as exc:
            raise MachineError(f"line {lineno}: {exc}") from None
    return Program(name, instrs, ew=ew, lanes=lanes)
