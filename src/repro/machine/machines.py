"""Concrete machine configurations (the paper's Table 2).

Two machines are modeled:

* ``KUNPENG_920`` — the ARMv8.2 evaluation platform.  128-bit NEON,
  32 vector registers, 64 KB L1D, 512 KB L2, 2.6 GHz.  The issue rules
  encode the paper's §6.3 description: one memory op plus one FP op per
  cycle, or two FP ops for 32-bit elements.  Those rules *derive* the
  paper's peak numbers: 2.6 GHz x 1 FMA x 2 lanes x 2 = 10.4 DP GFLOPS
  and 2.6 GHz x 2 FMA x 4 lanes x 2 = 41.6 SP GFLOPS.
* ``XEON_GOLD_6240`` — the Intel Cascade Lake reference used for the MKL
  compact comparison (Figures 11-12).  512-bit AVX-512 with two FMA
  pipes: 83.2 DP / 166.4 SP GFLOPS at the 2.6 GHz base frequency the
  paper pinned.

Latencies are representative core values (TaiShan V110 / Skylake-SP
class); the reproduction's claims are about *shape*, which depends on
the issue rules, register budget, SIMD width and cache sizes — all of
which match Table 2 exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace

from ..types import BlasDType
from .cache import CacheConfig, CacheHierarchy
from .pipeline import IssueRules, Latencies, PipelineModel

__all__ = ["MachineConfig", "slugify", "KUNPENG_920", "XEON_GOLD_6240",
           "A64FX"]


def slugify(name: str) -> str:
    """Lowercase ``name`` with non-alphanumeric runs collapsed to single
    dashes — the stable identifier form used in persisted artifacts."""
    out, dash = [], False
    for ch in name.lower():
        if ch.isalnum():
            out.append(ch)
            dash = False
        elif not dash:
            out.append("-")
            dash = True
    return "".join(out).strip("-")


@dataclass(frozen=True)
class MachineConfig:
    """Everything the code generator and timing engine need to know."""

    name: str
    freq_ghz: float
    vector_bytes: int
    num_vregs: int
    rules: IssueRules
    lat: Latencies
    l1: CacheConfig
    l2: CacheConfig
    mem_penalty: int
    copy_bytes_per_cycle: float
    """Sustained L1-resident memcpy throughput, used by the packing cost
    model (one load + one store stream sharing the memory issue slots)."""

    @property
    def machine_id(self) -> str:
        """Stable slug identifying this machine in persisted artifacts
        (tuning DBs, bench trajectories): lowercase, with
        non-alphanumeric runs collapsed to single dashes."""
        return slugify(self.name)

    @property
    def fingerprint(self) -> str:
        """Short digest of every *physical* parameter (clocks, vector
        width, register file, issue rules, latencies, caches, memory
        penalties) — everything except the display name.  Two machines
        that merely share a name hash differently, which is what lets
        the TuningDB refuse to serve one machine's schedules to a
        differently configured twin."""
        parts = [f"{f.name}={getattr(self, f.name)!r}"
                 for f in fields(self) if f.name != "name"]
        digest = hashlib.sha256(";".join(parts).encode("utf-8"))
        return digest.hexdigest()[:8]

    @property
    def tuning_id(self) -> str:
        """The TuningDB keying identity: ``machine_id.fingerprint``.
        Unlike the bare :attr:`machine_id` slug, this changes whenever
        any physical parameter does (e.g. an ``with_rules`` ablation),
        so tuning records can never leak between same-named machines
        with different clocks or caches."""
        return f"{self.machine_id}.{self.fingerprint}"

    def lanes(self, dtype: "BlasDType | str") -> int:
        """The paper's P: matrices interleaved per vector register."""
        return BlasDType.from_any(dtype).lanes(self.vector_bytes)

    def fp_lanes(self, ew: int) -> int:
        return self.vector_bytes // ew

    def fma_per_cycle(self, ew: int) -> int:
        return self.rules.max_fp(ew)

    def peak_gflops(self, dtype: "BlasDType | str") -> float:
        """Architectural peak for the given scalar type.

        Complex types peak at the same rate as their real plane type:
        complex math decomposes into real FMAs on the same pipes.
        """
        dt = BlasDType.from_any(dtype)
        ew = dt.real_itemsize
        flops_per_cycle = self.fma_per_cycle(ew) * self.fp_lanes(ew) * 2
        return self.freq_ghz * flops_per_cycle

    def peak_bytes_per_cycle(self) -> int:
        """Issue-limited load/store bandwidth: memory slots per cycle
        times the vector width.  This is the roofline's slanted roof —
        sustained streaming cannot beat the issue rules even when every
        access hits L1."""
        return self.rules.max_mem * self.vector_bytes

    def ridge_intensity(self, dtype: "BlasDType | str") -> float:
        """Roofline ridge point in flops/byte for one scalar type.

        Below this arithmetic intensity a kernel is bandwidth-bound
        (the memory issue slots saturate before the FP pipes); above
        it, compute-bound.  Derived purely from the issue rules, so it
        is exact for the modeled machine.
        """
        dt = BlasDType.from_any(dtype)
        ew = dt.real_itemsize
        flops_per_cycle = self.fma_per_cycle(ew) * self.fp_lanes(ew) * 2
        return flops_per_cycle / self.peak_bytes_per_cycle()

    def make_caches(self) -> CacheHierarchy:
        return CacheHierarchy(self.l1, self.l2, self.mem_penalty)

    def make_pipeline(self, caches: CacheHierarchy | None = None) -> PipelineModel:
        return PipelineModel(self.rules, self.lat,
                             caches if caches is not None else self.make_caches(),
                             self.vector_bytes)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.freq_ghz * 1e9)

    def gflops(self, flops: float, cycles: float) -> float:
        """GFLOPS achieved when `flops` scalar flops take `cycles` cycles."""
        if cycles <= 0:
            return 0.0
        return flops / cycles * self.freq_ghz

    def with_rules(self, **kwargs) -> "MachineConfig":
        """A variant with modified issue rules (used by ablations)."""
        return replace(self, rules=replace(self.rules, **kwargs))


KUNPENG_920 = MachineConfig(
    name="Kunpeng 920",
    freq_ghz=2.6,
    vector_bytes=16,
    num_vregs=32,
    rules=IssueRules(width=2, max_mem=1, max_fp32=2, max_fp64=1, max_int=2),
    lat=Latencies(load_use=4, fp_ma=5, fp_mul=4, fp_add=3,
                  fp_div32=13, fp_div64=22, div_block32=10, div_block64=18,
                  int_alu=1),
    l1=CacheConfig(size=64 * 1024, assoc=4, line=64, penalty=10),
    l2=CacheConfig(size=512 * 1024, assoc=8, line=64, penalty=0),
    mem_penalty=150,
    copy_bytes_per_cycle=16.0,
)

XEON_GOLD_6240 = MachineConfig(
    name="Intel Xeon Gold 6240",
    freq_ghz=2.6,
    vector_bytes=64,
    num_vregs=32,
    rules=IssueRules(width=4, max_mem=2, max_fp32=2, max_fp64=2, max_int=2),
    lat=Latencies(load_use=5, fp_ma=4, fp_mul=4, fp_add=4,
                  fp_div32=11, fp_div64=14, div_block32=5, div_block64=8,
                  int_alu=1),
    l1=CacheConfig(size=32 * 1024, assoc=8, line=64, penalty=8),
    l2=CacheConfig(size=1024 * 1024, assoc=16, line=64, penalty=0),
    mem_penalty=120,
    copy_bytes_per_cycle=64.0,
)


A64FX = MachineConfig(
    name="Fujitsu A64FX",
    freq_ghz=2.2,
    vector_bytes=64,          # 512-bit SVE
    num_vregs=32,
    rules=IssueRules(width=4, max_mem=2, max_fp32=2, max_fp64=2, max_int=2),
    lat=Latencies(load_use=5, fp_ma=9, fp_mul=9, fp_add=5,
                  fp_div32=29, fp_div64=43, div_block32=22, div_block64=36,
                  int_alu=1),
    l1=CacheConfig(size=64 * 1024, assoc=4, line=256, penalty=11),
    l2=CacheConfig(size=8 * 1024 * 1024, assoc=16, line=256, penalty=0),
    mem_penalty=130,
    copy_bytes_per_cycle=64.0,
)
"""A third machine, beyond the paper: the Fujitsu A64FX (Fugaku's
512-bit SVE ARM core).  Not part of any paper experiment — it exists to
demonstrate that the install-time stage *retargets*: the same CMAR
analysis, templates, scheduler, and run-time stage produce working,
validated kernels for a 4x-wider ARM vector unit (P = 16/8 matrices per
register, 2 FMA pipes -> 70.4 DP / 140.8 SP GFLOPS peaks, 256-byte
cache lines, painfully long FP latencies).  See
tests/machine/test_machines.py::TestA64FX and the portability test in
tests/runtime/test_portability.py."""
