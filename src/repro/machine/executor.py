"""Functional execution of kernel programs, vectorized over batch groups.

The executor interprets a :class:`~repro.machine.program.Program` exactly
once per kernel *invocation*, but each vector register holds a
``(groups, lanes)`` array: one simulated SIMD instruction becomes one
NumPy operation over the entire batch.  This keeps functional testing of
generated kernels fast (per the optimization guide: vectorize the inner
loop, touch memory contiguously) while still executing the *actual*
instruction stream the code generator produced — the same stream the
pipeline model times.

This interpreter is the ``interpret`` executor backend and the
**bit-exact reference semantics** for every other backend: the
run-time stage's lowering pass (:mod:`repro.runtime.lowering`)
constant-folds the address resolution :meth:`VectorExecutor.step`
performs per instruction, and the ``compiled`` backend must reproduce
this executor's results bit for bit (the backend-equivalence suite
enforces it).  Change execution semantics here first; lowering second.

Semantics notes
---------------
* Loads/stores move ``lanes`` consecutive real elements (the compact
  layout guarantees the P matrices' elements are contiguous); ``nlanes``
  restricts that for partial accesses used by baseline edge code.
* Reading an uninitialized vector register is an :class:`ExecutionError`
  (real hardware would happily read garbage; catching it here turns
  codegen bugs into loud failures).
* All arithmetic is done in the program's element dtype, so float32
  kernels round exactly like NEON float32 math would.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from .isa import NUM_VREGS, NUM_XREGS, Instr, Op
from .memory import MemorySpace, Pointer
from .program import Program

__all__ = ["VectorExecutor"]


class VectorExecutor:
    """Interprets straight-line programs against a :class:`MemorySpace`.

    Parameters
    ----------
    memory:
        The buffer set the program addresses.
    groups:
        Batch-group fan-out: every pointer register must either be scalar
        (applied to all groups) or carry a ``(groups,)`` offset array.
    """

    def __init__(self, memory: MemorySpace, groups: int = 1) -> None:
        if groups < 1:
            raise ExecutionError("groups must be >= 1")
        self.memory = memory
        self.groups = int(groups)
        self._vregs: list[np.ndarray | None] = [None] * NUM_VREGS
        self._xregs: list[Pointer | None] = [None] * NUM_XREGS

    # -- register file ------------------------------------------------

    def set_pointer(self, xreg: int, buffer: str,
                    offset: "int | np.ndarray" = 0) -> None:
        """Point scalar register ``xreg`` at ``buffer[offset bytes]``."""
        if buffer not in self.memory:
            raise ExecutionError(f"unknown buffer {buffer!r}")
        ptr = Pointer(buffer, offset)
        if ptr.groups is not None and ptr.groups != self.groups:
            raise ExecutionError(
                f"pointer fan-out {ptr.groups} != executor groups {self.groups}")
        self._xregs[xreg] = ptr

    def get_pointer(self, xreg: int) -> Pointer:
        ptr = self._xregs[xreg]
        if ptr is None:
            raise ExecutionError(f"scalar register x{xreg} read before write")
        return ptr

    def vreg(self, idx: int) -> np.ndarray:
        """Current value of vector register ``idx`` as a (groups, lanes) array."""
        val = self._vregs[idx]
        if val is None:
            raise ExecutionError(f"vector register v{idx} read before write")
        return val

    def vreg_snapshot(self) -> list[np.ndarray | None]:
        """Copies of all vector registers (scheduler-equivalence tests)."""
        return [None if v is None else v.copy() for v in self._vregs]

    def reset(self) -> None:
        self._vregs = [None] * NUM_VREGS
        self._xregs = [None] * NUM_XREGS

    # -- execution ----------------------------------------------------

    def run(self, program: Program) -> int:
        """Execute the program once; returns the instruction count."""
        lanes = program.lanes
        dtype = np.dtype(np.float32 if program.ew == 4 else np.float64)
        # padding lanes legitimately hold zeros/garbage; their inf/nan
        # arithmetic is by design and never unpacked
        with np.errstate(all="ignore"):
            for pc, ins in enumerate(program.instrs):
                try:
                    self.step(ins, lanes, dtype)
                except ExecutionError as exc:
                    raise ExecutionError(
                        f"{program.name} @pc={pc} ({ins.asm()}): "
                        f"{exc}") from None
        return len(program.instrs)

    # -- per-instruction dispatch --------------------------------------

    def _element_indices(self, ins: Instr, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a memory operand to (buffer_array, element index array).

        Returns the target buffer plus an integer index array of shape
        ``(groups, n)`` addressing ``n`` consecutive elements per group.
        """
        ptr = self.get_pointer(ins.base)
        buf = self.memory[ptr.buffer]
        isz = int(buf.dtype.itemsize)
        byte_off = ptr.offset + ins.offset
        if isinstance(byte_off, np.ndarray):
            base = byte_off
        else:
            base = np.full(self.groups, byte_off, dtype=np.int64)
        rem = base % isz
        if np.any(rem):
            raise ExecutionError(
                f"misaligned access into {ptr.buffer!r} (offset not a multiple "
                f"of {isz})")
        first = base // isz
        idx = first[:, None] + np.arange(n, dtype=np.int64)[None, :]
        if idx.min() < 0 or idx.max() >= buf.shape[0]:
            raise ExecutionError(
                f"out-of-bounds access into {ptr.buffer!r}: elements "
                f"[{int(idx.min())}, {int(idx.max())}] of {buf.shape[0]}")
        return buf, idx

    def _load_vec(self, ins: Instr, dst: int, lanes: int, dtype: np.dtype) -> None:
        n = ins.nlanes if ins.nlanes is not None else lanes
        buf, idx = self._element_indices(ins, n)
        vals = buf[idx].astype(dtype, copy=False)
        if n < lanes:
            out = np.zeros((self.groups, lanes), dtype=dtype)
            out[:, :n] = vals[:, :n]
            self._vregs[dst] = out
        else:
            self._vregs[dst] = np.ascontiguousarray(vals)

    def step(self, ins: Instr, lanes: int, dtype: np.dtype) -> None:
        """Execute one instruction (reference semantics for backends)."""
        op = ins.op
        if op is Op.LDRV:
            self._load_vec(ins, ins.dst[0], lanes, dtype)
        elif op is Op.LDPV:
            n = lanes
            buf, idx = self._element_indices(ins, 2 * n)
            vals = buf[idx].astype(dtype, copy=False)
            self._vregs[ins.dst[0]] = np.ascontiguousarray(vals[:, :n])
            self._vregs[ins.dst[1]] = np.ascontiguousarray(vals[:, n:])
        elif op is Op.LD1R:
            buf, idx = self._element_indices(ins, 1)
            scalar = buf[idx[:, 0]].astype(dtype, copy=False)
            self._vregs[ins.dst[0]] = np.repeat(scalar[:, None], lanes, axis=1)
        elif op is Op.LD2V:
            n = ins.nlanes if ins.nlanes is not None else lanes
            buf, idx = self._element_indices(ins, 2 * n)
            vals = buf[idx].astype(dtype, copy=False)
            even = np.zeros((self.groups, lanes), dtype=dtype)
            odd = np.zeros((self.groups, lanes), dtype=dtype)
            even[:, :n] = vals[:, 0::2]
            odd[:, :n] = vals[:, 1::2]
            self._vregs[ins.dst[0]] = even
            self._vregs[ins.dst[1]] = odd
        elif op is Op.ST2V:
            n = ins.nlanes if ins.nlanes is not None else lanes
            buf, idx = self._element_indices(ins, 2 * n)
            even = self.vreg(ins.srcs[0])
            odd = self.vreg(ins.srcs[1])
            buf[idx[:, 0::2]] = even[:, :n].astype(buf.dtype, copy=False)
            buf[idx[:, 1::2]] = odd[:, :n].astype(buf.dtype, copy=False)
        elif op is Op.STRV:
            n = ins.nlanes if ins.nlanes is not None else lanes
            buf, idx = self._element_indices(ins, n)
            val = self.vreg(ins.srcs[0])
            buf[idx] = val[:, :n].astype(buf.dtype, copy=False)
        elif op is Op.STPV:
            n = lanes
            buf, idx = self._element_indices(ins, 2 * n)
            v1 = self.vreg(ins.srcs[0])
            v2 = self.vreg(ins.srcs[1])
            buf[idx[:, :n]] = v1.astype(buf.dtype, copy=False)
            buf[idx[:, n:]] = v2.astype(buf.dtype, copy=False)
        elif op is Op.ADDI:
            src = self.get_pointer(ins.xsrc)
            self._xregs[ins.xdst] = src + ins.ximm
        elif op is Op.FMLA:
            a, b = self.vreg(ins.srcs[0]), self.vreg(ins.srcs[1])
            acc = self.vreg(ins.dst[0])
            self._vregs[ins.dst[0]] = acc + a * b
        elif op is Op.FMLS:
            a, b = self.vreg(ins.srcs[0]), self.vreg(ins.srcs[1])
            acc = self.vreg(ins.dst[0])
            self._vregs[ins.dst[0]] = acc - a * b
        elif op is Op.FMUL:
            a, b = self.vreg(ins.srcs[0]), self.vreg(ins.srcs[1])
            self._vregs[ins.dst[0]] = a * b
        elif op is Op.FMAI:
            a = self.vreg(ins.srcs[0])
            acc = self.vreg(ins.dst[0])
            self._vregs[ins.dst[0]] = acc + a * dtype.type(ins.imm)
        elif op is Op.FMULI:
            a = self.vreg(ins.srcs[0])
            self._vregs[ins.dst[0]] = a * dtype.type(ins.imm)
        elif op is Op.FADD:
            self._vregs[ins.dst[0]] = self.vreg(ins.srcs[0]) + self.vreg(ins.srcs[1])
        elif op is Op.FSUB:
            self._vregs[ins.dst[0]] = self.vreg(ins.srcs[0]) - self.vreg(ins.srcs[1])
        elif op is Op.FDIV:
            self._vregs[ins.dst[0]] = (self.vreg(ins.srcs[0])
                                       / self.vreg(ins.srcs[1]))
        elif op is Op.VZERO:
            self._vregs[ins.dst[0]] = np.zeros((self.groups, lanes), dtype=dtype)
        elif op is Op.VMOV:
            self._vregs[ins.dst[0]] = self.vreg(ins.srcs[0]).copy()
        elif op is Op.FIMM:
            self._vregs[ins.dst[0]] = np.full((self.groups, lanes),
                                              dtype.type(ins.imm),
                                              dtype=dtype)
        elif op in (Op.PRFM, Op.NOP):
            pass
        else:  # pragma: no cover - exhaustive
            raise ExecutionError(f"unimplemented opcode {op}")
