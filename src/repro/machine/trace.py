"""Pipeline trace: per-instruction issue schedule, rendered.

A debugging/teaching aid: shows exactly which cycle each instruction of
a kernel issues in, making stalls and co-issue visible — the picture
the paper's Figure 5 narrates.

    from repro.machine.trace import trace_program, format_trace
    entries = trace_program(KUNPENG_920, program, {0: a, 1: b})
    print(format_trace(entries))
"""

from __future__ import annotations

from .isa import Instr
from .machines import MachineConfig
from .pipeline import AddressSpace
from .program import Program

__all__ = ["trace_program", "format_trace", "issue_histogram"]


def trace_program(machine: MachineConfig, program: Program,
                  xreg_init: dict[int, int] | None = None,
                  warm: bool = True) -> list[tuple[int, Instr]]:
    """Simulate once and return (issue_cycle, instr) pairs.

    With ``warm`` (the default) all referenced buffers are presumed
    L1-resident, isolating the pipeline behaviour from memory effects.
    """
    caches = machine.make_caches()
    pipe = machine.make_pipeline(caches)
    init = dict(xreg_init or {})
    if not init:
        asp = AddressSpace()
        for x in sorted(program.xregs_used):
            init[x] = asp.place(f"x{x}", 4096)
    if warm:
        # modest per-pointer regions: warming more than L1's capacity
        # would evict earlier ranges and fake memory stalls
        for base in init.values():
            caches.warm_range(base, 4096)
    trace: list[tuple[int, Instr]] = []
    pipe.simulate(program, init, trace=trace)
    return trace


def issue_histogram(entries: list[tuple[int, Instr]]) -> dict[int, int]:
    """Instructions issued per cycle (gaps are stall cycles)."""
    hist: dict[int, int] = {}
    for cycle, _ in entries:
        hist[cycle] = hist.get(cycle, 0) + 1
    return hist


def format_trace(entries: list[tuple[int, Instr]],
                 max_rows: int | None = None) -> str:
    """Cycle-annotated listing; ``|`` marks instructions co-issued with
    the previous row, blank cycles between rows are stalls."""
    lines = [f"{'cycle':>6}  instruction"]
    prev = None
    for i, (cycle, ins) in enumerate(entries):
        if max_rows is not None and i >= max_rows:
            lines.append(f"... ({len(entries) - i} more)")
            break
        mark = "|" if cycle == prev else " "
        if prev is not None and cycle > prev + 1:
            lines.append(f"{'':>6}  <- {cycle - prev - 1} stall cycle(s)")
        lines.append(f"{cycle:>6} {mark} {ins.asm()}")
        prev = cycle
    return "\n".join(lines)
