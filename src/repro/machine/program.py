"""Straight-line kernel programs.

A :class:`Program` is an immutable-ish list of :class:`~repro.machine.isa.Instr`
plus metadata used by the runtime (register usage, flop accounting, element
width).  The paper's micro-kernels are branch-free and fully unrolled over
the K dimension, so a flat list is the complete representation; all outer
loops (tiles, batch groups) live in the host-level engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .isa import Instr, Op

__all__ = ["Program"]


@dataclass
class Program:
    """A named straight-line instruction sequence.

    Parameters
    ----------
    name:
        Unique, human-readable kernel name, e.g. ``"dgemm_nn_4x4_k16"``.
    instrs:
        The instruction list, in program order.
    ew:
        Element width in bytes of the kernel's data (4 or 8).
    lanes:
        SIMD lanes per vector (the paper's P for this dtype/machine).
    meta:
        Free-form metadata (kernel size, template structure...); used by
        the registry, the scheduler, and reporting, never by execution.
    """

    name: str
    instrs: list[Instr]
    ew: int = 8
    lanes: int = 2
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.instrs = list(self.instrs)
        if self.ew not in (4, 8):
            raise ValueError(f"element width must be 4 or 8, got {self.ew}")
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __getitem__(self, i: int) -> Instr:
        return self.instrs[i]

    @property
    def vregs_used(self) -> set[int]:
        regs: set[int] = set()
        for ins in self.instrs:
            regs.update(ins.dst)
            regs.update(ins.srcs)
        return regs

    @property
    def xregs_used(self) -> set[int]:
        regs: set[int] = set()
        for ins in self.instrs:
            for r in (ins.base, ins.xdst, ins.xsrc):
                if r is not None:
                    regs.add(r)
        return regs

    @property
    def max_vreg(self) -> int:
        used = self.vregs_used
        return max(used) if used else -1

    def count(self, op: Op) -> int:
        return sum(1 for ins in self.instrs if ins.op is op)

    @property
    def num_fp(self) -> int:
        return sum(1 for ins in self.instrs if ins.is_fp)

    @property
    def num_mem(self) -> int:
        return sum(1 for ins in self.instrs if ins.is_load or ins.is_store)

    @property
    def flops_per_group(self) -> int:
        """Real scalar flops one invocation performs across all lanes."""
        return sum(ins.flops_per_lane * (ins.nlanes or self.lanes)
                   for ins in self.instrs)

    def with_instrs(self, instrs: Iterable[Instr], suffix: str = "") -> "Program":
        """A copy with a different instruction list (used by the scheduler)."""
        return Program(self.name + suffix, list(instrs), self.ew, self.lanes,
                       dict(self.meta))

    def disassemble(self) -> str:
        """Full pretty-printed listing with template tags in the margin."""
        lines = [f"// {self.name}  (ew={self.ew}, lanes={self.lanes}, "
                 f"{len(self.instrs)} instrs, {self.num_fp} fp, {self.num_mem} mem)"]
        last_tag = None
        for ins in self.instrs:
            if ins.tag != last_tag:
                lines.append(f"// --- {ins.tag or 'untagged'} ---")
                last_tag = ins.tag
            lines.append("    " + ins.asm())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Program({self.name!r}, {len(self.instrs)} instrs, "
                f"ew={self.ew}, lanes={self.lanes})")
