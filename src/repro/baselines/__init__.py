"""Baseline libraries, modeled on the same simulated machine.

The paper compares against four comparators; each is reproduced as the
mechanism the paper attributes to it, running on the *same* pipeline and
cache models so measured ratios isolate the algorithmic differences:

* :mod:`openblas_loop` — loop over per-matrix GEMM/TRSM calls: GOTO-style
  traditional kernels (vectorized along M within one matrix), per-call
  dispatch overhead, per-call operand packing, scalar edge processing,
  unvectorized triangular solves with in-kernel division.
* :mod:`armpl_batch` — batched interface: the per-call overhead is
  amortized across the batch and small-size paths skip packing, but the
  kernels keep the standard (non-compact) layout.
* :mod:`libxsmm_batch` — JIT-specialized small-matrix kernels: minimal
  dispatch, no packing, scheduled code; still standard layout; real
  dtypes only (the paper: "it does not support a complex interface").
* :mod:`mkl_compact` — the compact-layout algorithm on the Xeon Gold
  6240 model, used for the percent-of-peak comparison of Figures 11-12.
"""

from .common import TraditionalGemm, BaselinePolicy
from .trsm_scalar import TraditionalTrsm
from .openblas_loop import OpenBlasLoop
from .armpl_batch import ArmplBatch
from .libxsmm_batch import LibxsmmBatch
from .mkl_compact import MklCompact

__all__ = ["TraditionalGemm", "TraditionalTrsm", "BaselinePolicy",
           "OpenBlasLoop", "ArmplBatch", "LibxsmmBatch", "MklCompact"]
