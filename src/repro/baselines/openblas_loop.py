"""OpenBLAS modeled as looped per-matrix calls (the paper's weakest baseline).

Model parameters (the library-distinguishing constants; everything else —
kernels, pipeline, caches — is shared machinery):

* **per-call overhead 150 cycles** — cblas interface entry, parameter
  validation, threading checks and kernel dispatch on every one of the
  16384 calls (~100 ns at 2.6 GHz, in line with measured one-off BLAS
  call costs);
* **packs operands on every call** — OpenBLAS's GOTO pipeline copies A
  and B into aligned panels even when the matrix already fits L1, which
  the paper names as pure overhead at these sizes;
* **scheduled kernels** — its hand-written assembly is well pipelined;
* **TRSM solves with in-loop division** and a scalar triangular part.
"""

from __future__ import annotations

from ..machine.machines import MachineConfig
from .common import BaselinePolicy, TraditionalGemm
from .trsm_scalar import TraditionalTrsm

__all__ = ["OpenBlasLoop", "OPENBLAS_POLICY"]

OPENBLAS_POLICY = BaselinePolicy(
    name="OpenBLAS (loop)",
    per_call_overhead_cycles=150.0,
    per_matrix_overhead_cycles=0.0,
    packs_operands=True,
    scheduled=True,
    supports_complex=True,
)


class OpenBlasLoop:
    """Loop-around-OpenBLAS comparator: GEMM and TRSM."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.gemm = TraditionalGemm(machine, OPENBLAS_POLICY)
        self.trsm = TraditionalTrsm(machine, OPENBLAS_POLICY,
                                    in_loop_division=True)

    @property
    def name(self) -> str:
        return OPENBLAS_POLICY.name
