"""LIBXSMM modeled as JIT-specialized batched small-GEMM kernels.

The paper's strongest GEMM baseline: "LIBXSMM is optimized for small
matrix multiplication, but it does not support a complex interface",
and it overtakes IATF above the crossovers (sgemm ~30, dgemm ~18)
because it neither packs nor converts layout.  Model parameters:

* **per-matrix overhead 15 cycles** — dispatch through a JITted
  function pointer inside the batch loop;
* **no packing ever**;
* **scheduled kernels** (JIT emits pipelined code);
* **real dtypes only**; no TRSM (the paper: "the TRSM is not available
  in the LIBXSMM library").
"""

from __future__ import annotations

from ..errors import UnsupportedModeError
from ..machine.machines import MachineConfig
from .common import BaselinePolicy, TraditionalGemm

__all__ = ["LibxsmmBatch", "LIBXSMM_POLICY"]

LIBXSMM_POLICY = BaselinePolicy(
    name="LIBXSMM (batch)",
    per_call_overhead_cycles=0.0,
    per_matrix_overhead_cycles=15.0,
    packs_operands=False,
    scheduled=True,
    supports_complex=False,
)


class LibxsmmBatch:
    """LIBXSMM comparator: batched real GEMM only."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.gemm = TraditionalGemm(machine, LIBXSMM_POLICY)

    @property
    def trsm(self):
        raise UnsupportedModeError("LIBXSMM has no TRSM interface")

    @property
    def name(self) -> str:
        return LIBXSMM_POLICY.name
