"""ARM Performance Libraries modeled as a batched interface.

The paper: ARMPL's batch GEMM "parallelized between matrices and do not
use SIMD-friendly data layout".  Model parameters:

* **per-matrix overhead 40 cycles** — one library call for the whole
  batch; the inner batch loop still pays pointer setup and dispatch per
  matrix, but no interface re-entry;
* **no per-call packing** — small-size paths compute from the user's
  buffers (transposed operands still pay a transpose copy);
* **TRSM is a loop around the single-matrix interface** (the paper
  compares against "the loop around ARMPL TRSM calls") with a
  reciprocal-precompute diagonal — better than the in-loop-division
  path, still scalar in the triangular part.
"""

from __future__ import annotations

from ..machine.machines import MachineConfig
from .common import BaselinePolicy, TraditionalGemm
from .trsm_scalar import TraditionalTrsm

__all__ = ["ArmplBatch", "ARMPL_POLICY", "ARMPL_TRSM_POLICY"]

ARMPL_POLICY = BaselinePolicy(
    name="ARMPL (batch)",
    per_call_overhead_cycles=0.0,
    per_matrix_overhead_cycles=40.0,
    packs_operands=False,
    scheduled=True,
    supports_complex=True,
)

ARMPL_TRSM_POLICY = BaselinePolicy(
    name="ARMPL (loop)",
    per_call_overhead_cycles=60.0,
    per_matrix_overhead_cycles=0.0,
    packs_operands=False,
    scheduled=True,
    supports_complex=True,
)


class ArmplBatch:
    """ARMPL comparator: batched GEMM, looped TRSM."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.gemm = TraditionalGemm(machine, ARMPL_POLICY)
        self.trsm = TraditionalTrsm(machine, ARMPL_TRSM_POLICY,
                                    in_loop_division=False)

    @property
    def name(self) -> str:
        return ARMPL_POLICY.name
