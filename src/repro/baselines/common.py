"""Traditional (standard-layout, per-matrix) GEMM machinery for baselines.

A traditional kernel vectorizes along M *inside one matrix* (GOTO-style:
an A-column chunk of ``mv`` vectors times ``nr`` broadcast B scalars),
which is precisely what the paper says is inadequate for small sizes:

* an M that does not fill the vector wastes lanes (partial ``nlanes``
  accesses still occupy full issue slots);
* edge tiles in M and N multiply, and their cost does not shrink;
* per-call overhead and (for OpenBLAS-style paths) per-call packing are
  amortized over a single small matrix instead of a 16384-batch.

Kernels are emitted with the same ISA and scheduled with the same
optimizer as the compact kernels, so the only differences measured are
the layout and the dispatch policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codegen import regs
from ..codegen.optimizer import schedule_program
from ..errors import CodegenError, InvalidProblemError
from ..machine.executor import VectorExecutor
from ..machine.isa import (Instr, fmai, fmla, fmls, fmul, fmuli, ld1r, ld2v,
                           ldrv, st2v, strv, vzero)
from ..machine.machines import MachineConfig
from ..machine.memory import MemorySpace
from ..machine.pipeline import AddressSpace, TimingResult
from ..machine.program import Program
from ..types import BlasDType, GemmProblem, Trans

__all__ = ["BaselinePolicy", "BaselineTiming", "TraditionalGemm",
           "generate_traditional_gemm_kernel", "decompose_vectors",
           "std_colmajor_buffer", "std_from_colmajor"]


@dataclass(frozen=True)
class BaselinePolicy:
    """What distinguishes one baseline library from another."""

    name: str
    per_call_overhead_cycles: float      # fixed cost per library call
    per_matrix_overhead_cycles: float    # batch-loop cost per matrix
    packs_operands: bool                 # copies A (and B) before computing
    scheduled: bool                      # kernel code is well-scheduled
    supports_complex: bool = True


@dataclass
class BaselineTiming:
    """Whole-batch cycle breakdown for a baseline library."""

    name: str
    machine: MachineConfig
    flops: int
    kernel_cycles_per_matrix: int
    pack_cycles_per_matrix: float
    overhead_cycles_per_matrix: float
    batch: int
    detail: TimingResult | None = None

    @property
    def cycles_per_matrix(self) -> float:
        """Kernel + packing + dispatch cycles for one matrix."""
        return (self.kernel_cycles_per_matrix + self.pack_cycles_per_matrix
                + self.overhead_cycles_per_matrix)

    @property
    def total_cycles(self) -> float:
        """Whole-batch cycles."""
        return self.cycles_per_matrix * self.batch

    @property
    def gflops(self) -> float:
        """Simulated GFLOPS over the whole batch."""
        return self.machine.gflops(self.flops, self.total_cycles)

    @property
    def percent_of_peak(self) -> float:
        """Placeholder (callers that know the dtype compute this)."""
        return 0.0  # overridden by callers that know the dtype


# ---------------------------------------------------------------------------
# tile decomposition in units of vectors
# ---------------------------------------------------------------------------

def decompose_vectors(m: int, lanes: int,
                      max_chunk: int = 4) -> list[tuple[int, int]]:
    """Split M rows into (vector_count, lanes_in_last_vector) chunks.

    Chunk heights follow the traditional kernel family {4, 2, 1} vectors
    (capped at ``max_chunk`` — complex kernels top out at 2 for register
    budget); a final partial vector carries ``m % lanes`` live lanes.
    """
    full, tail = divmod(m, lanes)
    chunks: list[tuple[int, int]] = []
    rem = full
    for size in (4, 2, 1):
        if size > max_chunk:
            continue
        while rem >= size:
            chunks.append((size, lanes))
            rem -= size
    if tail:
        chunks.append((1, tail))
    return chunks


def decompose_cols(n: int, max_cols: int = 4) -> list[int]:
    """Column-tile sizes of the traditional kernels ({4, 2, 1})."""
    out = []
    rem = n
    for size in (4, 2, 1):
        if size > max_cols:
            continue
        while rem >= size:
            out.append(size)
            rem -= size
    return out


# ---------------------------------------------------------------------------
# kernel generation
# ---------------------------------------------------------------------------

class _TradRegMap:
    """Registers of a traditional (mv vectors x nr columns) kernel."""

    def __init__(self, mv: int, nr: int, dtype: BlasDType,
                 machine: MachineConfig) -> None:
        self.mv, self.nr = mv, nr
        self.dtype = dtype
        self.ew = dtype.real_itemsize
        self.ncomp = 2 if dtype.is_complex else 1
        # one M-chunk covers `lanes` rows for real AND complex data: a
        # complex chunk is an ld2 of two vectors (re-plane + im-plane),
        # so it also spans vector_bytes/ew rows
        self.lanes = machine.vector_bytes // self.ew
        need = self.ncomp * (2 * mv + 2 * nr + mv * nr)
        if need > machine.num_vregs:
            raise CodegenError(
                f"traditional kernel {mv}vx{nr} {dtype.value} needs {need} regs")

    def a_reg(self, bank: int, v: int, comp: int = 0) -> int:
        return self.ncomp * (bank * self.mv + v) + comp

    def b_reg(self, bank: int, j: int, comp: int = 0) -> int:
        return self.ncomp * (2 * self.mv + bank * self.nr + j) + comp

    def c_reg(self, v: int, j: int, comp: int = 0) -> int:
        return self.ncomp * (2 * self.mv + 2 * self.nr + j * self.mv + v) + comp


def generate_traditional_gemm_kernel(
        mv: int, nr: int, k: int, dtype: "BlasDType | str",
        machine: MachineConfig, a_col_stride: int, b_col_stride: int,
        tail_lanes: int | None = None, alpha: complex = 1.0,
        beta: complex = 1.0) -> Program:
    """One (mv vectors x nr columns x K) traditional GEMM tile kernel.

    Operands are effective-NN and column-major: A's k-column lives at
    ``PA + l*a_col_stride``; B element (l, j) at
    ``PB + j*b_col_stride + l*esz``; C tile column j behind ``PC(j)``.
    ``tail_lanes`` marks the last A vector (and C rows) as partial.
    """
    dt = BlasDType.from_any(dtype)
    ctx = _TradRegMap(mv, nr, dt, machine)
    ew = ctx.ew
    is_c = dt.is_complex
    lanes = ctx.lanes
    vbytes = lanes * ew * ctx.ncomp          # bytes per M-chunk of rows
    tail = tail_lanes if tail_lanes is not None else lanes
    instrs: list[Instr] = []

    def a_loads(bank: int, l: int, tag: str) -> None:
        for v in range(mv):
            off = l * a_col_stride + v * vbytes
            nl = tail if v == mv - 1 and tail != lanes else None
            if is_c:
                instrs.append(ld2v(ctx.a_reg(bank, v, 0), ctx.a_reg(bank, v, 1),
                                   regs.PA, off, ew=ew, nlanes=nl, tag=tag))
            else:
                instrs.append(ldrv(ctx.a_reg(bank, v), regs.PA, off, ew=ew,
                                   nlanes=nl, tag=tag))

    def b_loads(bank: int, l: int, tag: str) -> None:
        for j in range(nr):
            off = j * b_col_stride + l * ew * ctx.ncomp
            instrs.append(ld1r(ctx.b_reg(bank, j, 0), regs.PB, off, ew=ew,
                               tag=tag))
            if is_c:
                instrs.append(ld1r(ctx.b_reg(bank, j, 1), regs.PB, off + ew,
                                   ew=ew, tag=tag))

    def compute(bank: int, first: bool, tag: str) -> None:
        for j in range(nr):
            for v in range(mv):
                if not is_c:
                    a, b = ctx.a_reg(bank, v), ctx.b_reg(bank, j)
                    c = ctx.c_reg(v, j)
                    instrs.append((fmul if first else fmla)(c, a, b, ew=ew,
                                                            tag=tag))
                else:
                    ar, ai = ctx.a_reg(bank, v, 0), ctx.a_reg(bank, v, 1)
                    br, bi = ctx.b_reg(bank, j, 0), ctx.b_reg(bank, j, 1)
                    cr, ci = ctx.c_reg(v, j, 0), ctx.c_reg(v, j, 1)
                    if first:
                        instrs.append(fmul(cr, ar, br, ew=ew, tag=tag))
                        instrs.append(fmul(ci, ar, bi, ew=ew, tag=tag))
                    else:
                        instrs.append(fmla(cr, ar, br, ew=ew, tag=tag))
                        instrs.append(fmla(ci, ar, bi, ew=ew, tag=tag))
                    instrs.append(fmls(cr, ai, bi, ew=ew, tag=tag))
                    instrs.append(fmla(ci, ai, br, ew=ew, tag=tag))

    # k loop with ping-pong banks (bank = l % 2); first step uses FMUL
    for l in range(k):
        bank = l % 2
        a_loads(bank, l, f"K{l}")
        b_loads(bank, l, f"K{l}")
        compute(bank, first=(l == 0), tag=f"K{l}")

    # SAVE: C tile column j, rows contiguous; scratch from the A region
    ar_, ai_ = complex(alpha).real, complex(alpha).imag
    br_, bi_ = complex(beta).real, complex(beta).imag
    for j in range(nr):
        for v in range(mv):
            nl = tail if v == mv - 1 and tail != lanes else None
            off = v * vbytes
            if not is_c:
                acc = ctx.c_reg(v, j)
                s = ctx.a_reg(j % 2, v)
                if beta == 0 and alpha == 1:
                    instrs.append(strv(acc, regs.pc(j), off, ew=ew, nlanes=nl,
                                       tag="SAVE"))
                    continue
                if beta == 0:
                    instrs.append(fmuli(s, acc, ar_, ew=ew, tag="SAVE"))
                else:
                    instrs.append(ldrv(s, regs.pc(j), off, ew=ew, nlanes=nl,
                                       tag="SAVE"))
                    if beta != 1:
                        instrs.append(fmuli(s, s, br_, ew=ew, tag="SAVE"))
                    instrs.append(fmai(s, acc, ar_, ew=ew, tag="SAVE"))
                instrs.append(strv(s, regs.pc(j), off, ew=ew, nlanes=nl,
                                   tag="SAVE"))
            else:
                xr, xi = ctx.c_reg(v, j, 0), ctx.c_reg(v, j, 1)
                sr = ctx.a_reg(j % 2, v, 0)
                si = ctx.a_reg(j % 2, v, 1)
                if beta == 0 and alpha == 1:
                    instrs.append(st2v(xr, xi, regs.pc(j), off, ew=ew,
                                       nlanes=nl, tag="SAVE"))
                    continue
                if beta == 0:
                    instrs.append(fmuli(sr, xr, ar_, ew=ew, tag="SAVE"))
                    instrs.append(fmuli(si, xi, ar_, ew=ew, tag="SAVE"))
                    if ai_:
                        instrs.append(fmai(sr, xi, -ai_, ew=ew, tag="SAVE"))
                        instrs.append(fmai(si, xr, ai_, ew=ew, tag="SAVE"))
                else:
                    instrs.append(ld2v(sr, si, regs.pc(j), off, ew=ew,
                                       nlanes=nl, tag="SAVE"))
                    if beta != 1:
                        # (sr, si) *= beta, needing no extra temp when bi == 0
                        if bi_ == 0:
                            instrs.append(fmuli(sr, sr, br_, ew=ew, tag="SAVE"))
                            instrs.append(fmuli(si, si, br_, ew=ew, tag="SAVE"))
                        else:
                            tr = ctx.b_reg(0, j % ctx.nr, 0)
                            instrs.append(fmuli(tr, sr, br_, ew=ew, tag="SAVE"))
                            instrs.append(fmai(tr, si, -bi_, ew=ew, tag="SAVE"))
                            instrs.append(fmuli(si, si, br_, ew=ew, tag="SAVE"))
                            instrs.append(fmai(si, sr, bi_, ew=ew, tag="SAVE"))
                            instrs.append(fmuli(sr, tr, 1.0, ew=ew, tag="SAVE"))
                    instrs.append(fmai(sr, xr, ar_, ew=ew, tag="SAVE"))
                    instrs.append(fmai(si, xi, ar_, ew=ew, tag="SAVE"))
                    if ai_:
                        instrs.append(fmai(sr, xi, -ai_, ew=ew, tag="SAVE"))
                        instrs.append(fmai(si, xr, ai_, ew=ew, tag="SAVE"))
                instrs.append(st2v(sr, si, regs.pc(j), off, ew=ew, nlanes=nl,
                                   tag="SAVE"))

    name = (f"trad_{dt.value}gemm_{mv}vx{nr}_k{k}"
            + (f"_t{tail}" if tail != lanes else ""))
    # functional lanes of the executor = real elements per vector
    return Program(name, instrs, ew=ew, lanes=ctx.lanes, meta={
        "routine": "trad_gemm", "mv": mv, "nr": nr, "k": k,
        "dtype": dt.value, "tail": tail,
        "rows": (mv - 1) * lanes + tail,
    })


# ---------------------------------------------------------------------------
# standard-layout buffers (column-major per matrix, interleaved complex)
# ---------------------------------------------------------------------------

def std_colmajor_buffer(arr: np.ndarray, dtype: BlasDType) -> np.ndarray:
    """Flatten (batch, rows, cols) to per-matrix column-major real storage."""
    arr = np.ascontiguousarray(arr.transpose(0, 2, 1),
                               dtype=dtype.np_dtype)
    if dtype.is_complex:
        return arr.view(dtype.real_dtype).reshape(-1)
    return arr.reshape(-1)


def std_from_colmajor(buf: np.ndarray, batch: int, rows: int, cols: int,
                      dtype: BlasDType) -> np.ndarray:
    """Inverse of :func:`std_colmajor_buffer`."""
    if dtype.is_complex:
        cm = buf.view(dtype.np_dtype).reshape(batch, cols, rows)
    else:
        cm = buf.reshape(batch, cols, rows)
    return np.ascontiguousarray(cm.transpose(0, 2, 1))


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

class TraditionalGemm:
    """Per-matrix traditional GEMM under a given baseline policy."""

    def __init__(self, machine: MachineConfig, policy: BaselinePolicy) -> None:
        self.machine = machine
        self.policy = policy
        self._kcache: dict[tuple, Program] = {}

    def _kernel(self, mv: int, nr: int, k: int, dt: BlasDType,
                a_cs: int, b_cs: int, tail: int,
                alpha: complex, beta: complex) -> Program:
        key = (mv, nr, k, dt.value, a_cs, b_cs, tail, alpha, beta)
        prog = self._kcache.get(key)
        if prog is None:
            prog = generate_traditional_gemm_kernel(
                mv, nr, k, dt, self.machine, a_cs, b_cs,
                tail_lanes=tail, alpha=alpha, beta=beta)
            if self.policy.scheduled:
                prog = schedule_program(prog, self.machine)
            self._kcache[key] = prog
        return prog

    def _calls(self, p: GemmProblem):
        """Per-matrix command queue: (program, a_off, b_off, c_offsets)."""
        dt = p.dtype
        if dt.is_complex and not self.policy.supports_complex:
            raise InvalidProblemError(
                f"{self.policy.name} has no complex interface")
        esz = dt.itemsize                     # full element bytes
        lanes = self.machine.vector_bytes // dt.real_itemsize
        a_cs = p.m * esz                      # effective-NN A column stride
        b_cs = p.k * esz
        max_chunk = 2 if dt.is_complex else 4
        max_cols = 2 if dt.is_complex else 4
        chunks = decompose_vectors(p.m, lanes, max_chunk)
        cols = decompose_cols(p.n, max_cols)
        calls = []
        ns = 0
        for nt in cols:
            rs = 0
            for mv, tail in chunks:
                rows = (mv - 1) * lanes + tail
                prog = self._kernel(mv, nt, p.k, dt, a_cs, b_cs, tail,
                                    p.alpha, p.beta)
                c_offs = tuple((ns + j) * p.m * esz + rs * esz
                               for j in range(nt))
                calls.append((prog, rs * esz, ns * b_cs, c_offs))
                rs += rows
            ns += nt
        return calls

    # -- functional execution -------------------------------------------

    def execute(self, p: GemmProblem, a: np.ndarray, b: np.ndarray,
                c: np.ndarray) -> np.ndarray:
        """Run the baseline on standard (batch, rows, cols) arrays."""
        dt = p.dtype
        opa = a if p.transa is Trans.N else a.transpose(0, 2, 1)
        opb = b if p.transb is Trans.N else b.transpose(0, 2, 1)
        buf_a = std_colmajor_buffer(opa, dt)
        buf_b = std_colmajor_buffer(opb, dt)
        buf_c = std_colmajor_buffer(c, dt)
        mem = MemorySpace()
        mem.bind("A", buf_a)
        mem.bind("B", buf_b)
        mem.bind("C", buf_c)
        esz = dt.itemsize
        strides = {"A": p.m * p.k * esz, "B": p.k * p.n * esz,
                   "C": p.m * p.n * esz}
        ex = VectorExecutor(mem, groups=p.batch)
        garange = np.arange(p.batch, dtype=np.int64)
        from ..codegen import regs as _r
        for prog, a_off, b_off, c_offs in self._calls(p):
            ex.set_pointer(_r.PA, "A", garange * strides["A"] + a_off)
            ex.set_pointer(_r.PB, "B", garange * strides["B"] + b_off)
            for j, off in enumerate(c_offs):
                ex.set_pointer(_r.pc(j), "C", garange * strides["C"] + off)
            ex.run(prog)
        return std_from_colmajor(buf_c, p.batch, p.m, p.n, dt)

    # -- timing ----------------------------------------------------------

    def time(self, p: GemmProblem) -> BaselineTiming:
        """Steady-state per-matrix simulation, scaled to the batch.

        Two consecutive matrices are simulated at their real adjacent
        addresses; the second — whose operand walks hit the stream
        prefetcher the way every matrix after the first does — is the
        one measured.
        """
        dt = p.dtype
        esz = dt.itemsize
        sA = max(p.m * p.k * esz, 64)
        sB = max(p.k * p.n * esz, 64)
        sC = max(p.m * p.n * esz, 64)
        caches = self.machine.make_caches()
        pipe = self.machine.make_pipeline(caches)
        asp = AddressSpace()
        aA = asp.place("A", 2 * sA)
        aB = asp.place("B", 2 * sB)
        aC = asp.place("C", 2 * sC)
        from ..codegen import regs as _r
        calls = self._calls(p)
        total: TimingResult | None = None
        for mat in (0, 1):
            mat_total: TimingResult | None = None
            for prog, a_off, b_off, c_offs in calls:
                init = {_r.PA: aA + mat * sA + a_off,
                        _r.PB: aB + mat * sB + b_off}
                for j, off in enumerate(c_offs):
                    init[_r.pc(j)] = aC + mat * sC + off
                r = pipe.simulate(prog, init)
                mat_total = r if mat_total is None else mat_total + r
            total = mat_total
        assert total is not None

        pack_cycles = 0.0
        moved = 0
        if self.policy.packs_operands:
            moved += (p.m * p.k + p.k * p.n) * esz
        else:
            # transpose-copy of any transposed operand
            if p.transa is Trans.T:
                moved += p.m * p.k * esz
            if p.transb is Trans.T:
                moved += p.k * p.n * esz
        if moved:
            pack_cycles = 2 * moved / self.machine.copy_bytes_per_cycle + 24

        return BaselineTiming(
            name=self.policy.name, machine=self.machine, flops=p.flops,
            kernel_cycles_per_matrix=total.cycles,
            pack_cycles_per_matrix=pack_cycles,
            overhead_cycles_per_matrix=(self.policy.per_call_overhead_cycles
                                        + self.policy.per_matrix_overhead_cycles),
            batch=p.batch, detail=total,
        )
