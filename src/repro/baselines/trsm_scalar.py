"""Traditional per-matrix TRSM baseline (scalar triangular solves).

The paper's Section 2.2: "The triangular part only accounts for a small
part of the entire TRSM for the large-scale matrix, so the traditional
TRSM algorithm usually does not vectorize this part."  For the paper's
sizes (1..33) the *whole matrix is* the triangular part, so a looped
library call runs an essentially scalar forward substitution per RHS
column — with one element per register lane, per-element loads, and
(for the OpenBLAS-style path) an FP division on every diagonal step.
That combination is what produces the paper's largest speedups (28x for
strsm).

For orders beyond one diagonal block the model follows what real
libraries do (the paper's Section 2.2 / Eq. 1): scalar triangular
solves on diagonal blocks plus *vectorized* traditional-GEMM updates of
the trailing rows — so baseline TRSM performance grows with size the
way the paper's Figure 9 baselines do, while the scalar triangular part
and (for the OpenBLAS-style path) the in-loop divisions keep it far
from the compact kernels.

Timing model: the scalar column program for a diagonal block is
simulated twice — cold (first column: A misses) and warm (every later
column) — and extrapolated to N columns; the rectangular updates reuse
the traditional GEMM kernel timing.  Functional behaviour of the
baseline is, by construction, that of a correct BLAS; `execute`
therefore delegates to the reference solver (the instruction streams
exist purely to be timed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen import regs
from ..machine.isa import Instr, fdiv, fmla, fmls, fmul, ldrv, strv, vmov
from ..machine.machines import MachineConfig
from ..machine.pipeline import AddressSpace, TimingResult
from ..machine.program import Program
from ..reference.naive_blas import trsm_reference
from ..types import BlasDType, GemmProblem, TrsmProblem
from .common import BaselinePolicy, BaselineTiming, TraditionalGemm

__all__ = ["TraditionalTrsm"]

# scalar register file plan for the column solver
_ACC = (0, 1, 2, 3)        # rotating partial accumulators
_ATMP = (4, 5, 6, 7)
_XTMP = (8, 9, 10, 11)
_DIAG = 12
_BVAL = 13


def _scalar_column_program(m: int, dt: BlasDType, machine: MachineConfig,
                           in_loop_division: bool) -> Program:
    """Forward-substitute one RHS column, scalar code with 4-way j-unroll.

    A is addressed column-major full-storage at PA; the column at PB is
    solved in place.  Complex arithmetic doubles the loads and uses the
    4-op multiply pattern; in-loop complex division is modeled as two
    FDIVs plus the magnitude arithmetic.
    """
    ew = dt.real_itemsize
    esz = dt.itemsize
    is_c = dt.is_complex
    ins: list[Instr] = []

    def sload(v: int, base: int, off: int, tag: str) -> None:
        ins.append(ldrv(v, base, off, ew=ew, nlanes=1, tag=tag))

    for i in range(m):
        tag = f"ROW{i}"
        # acc = b_i
        sload(_BVAL, regs.PB, i * esz, tag)
        if is_c:
            sload(_BVAL + 1, regs.PB, i * esz + ew, tag)
        # subtract a_ij * x_j into b's register; the rotating _ATMP/_XTMP
        # temporaries give the load stream the ILP real scalar code has
        for j in range(i):
            a_off = (j * m + i) * esz
            x_off = j * esz
            at = _ATMP[j % 4]
            xt = _XTMP[j % 4]
            sload(at, regs.PA, a_off, tag)
            sload(xt, regs.PB, x_off, tag)
            if not is_c:
                ins.append(fmls(_BVAL, at, xt, ew=ew, tag=tag))
            else:
                sload(at, regs.PA, a_off + ew, tag)   # re-load im plane
                sload(xt, regs.PB, x_off + ew, tag)
                ins.append(fmls(_BVAL, _ATMP[j % 4], _XTMP[j % 4], ew=ew,
                                tag=tag))
                ins.append(fmla(_BVAL, at, xt, ew=ew, tag=tag))
                ins.append(fmls(_BVAL + 1, _ATMP[j % 4], xt, ew=ew, tag=tag))
                ins.append(fmls(_BVAL + 1, at, _XTMP[j % 4], ew=ew, tag=tag))
        d_off = (i * m + i) * esz
        sload(_DIAG, regs.PA, d_off, tag)
        if is_c:
            sload(_DIAG + 1, regs.PA, d_off + ew, tag)
        if in_loop_division:
            if not is_c:
                ins.append(fdiv(_BVAL, _BVAL, _DIAG, ew=ew, tag=tag))
            else:
                # |d|^2 then two divides (the classic complex division)
                ins.append(fmul(_ATMP[0], _DIAG, _DIAG, ew=ew, tag=tag))
                ins.append(fmla(_ATMP[0], _DIAG + 1, _DIAG + 1, ew=ew, tag=tag))
                ins.append(fmul(_XTMP[0], _BVAL, _DIAG, ew=ew, tag=tag))
                ins.append(fmla(_XTMP[0], _BVAL + 1, _DIAG + 1, ew=ew, tag=tag))
                ins.append(fmul(_XTMP[1], _BVAL + 1, _DIAG, ew=ew, tag=tag))
                ins.append(fmls(_XTMP[1], _BVAL, _DIAG + 1, ew=ew, tag=tag))
                ins.append(fdiv(_BVAL, _XTMP[0], _ATMP[0], ew=ew, tag=tag))
                ins.append(fdiv(_BVAL + 1, _XTMP[1], _ATMP[0], ew=ew, tag=tag))
        else:
            # diagonal was pre-reciprocated: multiply
            if not is_c:
                ins.append(fmul(_BVAL, _BVAL, _DIAG, ew=ew, tag=tag))
            else:
                ins.append(fmul(_XTMP[0], _BVAL, _DIAG, ew=ew, tag=tag))
                ins.append(fmls(_XTMP[0], _BVAL + 1, _DIAG + 1, ew=ew, tag=tag))
                ins.append(fmul(_BVAL + 1, _BVAL + 1, _DIAG, ew=ew, tag=tag))
                ins.append(fmla(_BVAL + 1, _BVAL, _DIAG + 1, ew=ew, tag=tag))
                ins.append(vmov(_BVAL, _XTMP[0], ew=ew, tag=tag))
        ins.append(strv(_BVAL, regs.PB, i * esz, ew=ew, nlanes=1, tag=tag))
        if is_c:
            ins.append(strv(_BVAL + 1, regs.PB, i * esz + ew, ew=ew,
                            nlanes=1, tag=tag))
    return Program(f"trad_{dt.value}trsm_col_m{m}"
                   + ("_div" if in_loop_division else "_recip"),
                   ins, ew=ew, lanes=machine.vector_bytes // ew,
                   meta={"routine": "trad_trsm_col", "m": m,
                         "dtype": dt.value})


def _reciprocal_program(m: int, dt: BlasDType,
                        machine: MachineConfig) -> Program:
    """Pre-invert the diagonal: M (complex: 2M) blocking divisions."""
    ew = dt.real_itemsize
    esz = dt.itemsize
    ins: list[Instr] = []
    for i in range(m):
        off = (i * m + i) * esz
        ins.append(ldrv(_DIAG, regs.PA, off, ew=ew, nlanes=1, tag="RECIP"))
        ins.append(fdiv(_ACC[0], _DIAG, _DIAG, ew=ew, tag="RECIP"))
        if dt.is_complex:
            ins.append(fdiv(_ACC[1], _DIAG, _DIAG, ew=ew, tag="RECIP"))
        ins.append(strv(_ACC[0], regs.PA, off, ew=ew, nlanes=1, tag="RECIP"))
    return Program(f"trad_{dt.value}trsm_recip_m{m}", ins, ew=ew,
                   lanes=machine.vector_bytes // ew,
                   meta={"routine": "trad_trsm_recip", "m": m})


DIAG_BLOCK = 8
"""Diagonal-block order of the blocked baseline solve (GEBP-style)."""


class TraditionalTrsm:
    """Looped per-matrix TRSM under a baseline policy."""

    def __init__(self, machine: MachineConfig, policy: BaselinePolicy,
                 in_loop_division: bool) -> None:
        self.machine = machine
        self.policy = policy
        self.in_loop_division = in_loop_division
        self._pcache: dict[tuple, Program] = {}
        self._tcache: dict[tuple, BaselineTiming] = {}
        # internal update engine: same kernels, no per-call packing
        self._gemm = TraditionalGemm(
            machine, BaselinePolicy(policy.name + " [updates]", 0.0, 0.0,
                                    packs_operands=False, scheduled=True))

    def execute(self, p: TrsmProblem, a: np.ndarray,
                b: np.ndarray) -> np.ndarray:
        """Functional result of a correct library call (reference solve)."""
        return trsm_reference(p, a, b)

    def _diag_block_cycles(self, m: int, n_cols: int,
                           dt: BlasDType) -> tuple[int, "TimingResult"]:
        """Steady-state cycles of one m-order scalar solve over n_cols."""
        key = (m, dt.value, self.in_loop_division)
        prog = self._pcache.get(key)
        if prog is None:
            prog = _scalar_column_program(m, dt, self.machine,
                                          self.in_loop_division)
            self._pcache[key] = prog
        esz = dt.itemsize
        sA = max(m * m * esz, 64)
        sB = max(m * n_cols * esz, 64)
        caches = self.machine.make_caches()
        pipe = self.machine.make_pipeline(caches)
        asp = AddressSpace()
        aA = asp.place("A", 2 * sA)
        aB = asp.place("B", 2 * sB)
        recip_cycles = 0
        # matrix 0 primes the stream prefetcher; matrix 1 is measured
        for mat in (0, 1):
            a0, b0 = aA + mat * sA, aB + mat * sB
            if not self.in_loop_division:
                rp = _reciprocal_program(m, dt, self.machine)
                recip_cycles = pipe.simulate(rp, {regs.PA: a0}).cycles
            cold = pipe.simulate(prog, {regs.PA: a0, regs.PB: b0})
            warm = pipe.simulate(prog, {regs.PA: a0, regs.PB: b0 + esz * m})
        cycles = cold.cycles + warm.cycles * max(0, n_cols - 1) + recip_cycles
        return cycles, cold + warm

    def time(self, p: TrsmProblem) -> BaselineTiming:
        """Blocked baseline TRSM timing (diag scalar solves + GEMM updates)."""
        key = (p.a_dim, p.dtype.value, p.m, p.n, p.side.value, p.batch)
        cached = self._tcache.get(key)
        if cached is not None:
            return cached
        dt = p.dtype
        d = p.a_dim
        # canonical column count: side RIGHT solves along the other dim
        n_cols = p.n if p.side.value == "L" else p.m
        kernel = 0
        detail = None
        pos = 0
        while pos < d:
            blk = min(DIAG_BLOCK, d - pos)
            c, det = self._diag_block_cycles(blk, n_cols, dt)
            kernel += c
            detail = det if detail is None else detail + det
            below = d - (pos + blk)
            if below:
                # vectorized trailing update: B[below] -= A_panel @ X_blk
                gp = GemmProblem(below, n_cols, blk, dt, batch=1)
                kernel += self._gemm.time(gp).kernel_cycles_per_matrix
            pos += blk

        t = BaselineTiming(
            name=self.policy.name, machine=self.machine, flops=p.flops,
            kernel_cycles_per_matrix=kernel,
            pack_cycles_per_matrix=0.0,
            overhead_cycles_per_matrix=(self.policy.per_call_overhead_cycles
                                        + self.policy.per_matrix_overhead_cycles),
            batch=p.batch, detail=detail,
        )
        self._tcache[key] = t
        return t
