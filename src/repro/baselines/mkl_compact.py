"""Intel MKL compact BLAS modeled on the Xeon Gold 6240 machine.

Figures 11-12 compare IATF (Kunpeng 920) against MKL compact (Xeon Gold
6240) as *percent of each machine's peak*.  MKL compact uses the same
SIMD-friendly interleaved layout (it introduced it — Kim et al. [14]),
so the model runs the same compact algorithm on the AVX-512 machine
with one difference: MKL's interface is not input-aware — it has no
per-size no-packing fast path, so plans are built with ``force_pack``.
Everything downstream (CMAR-optimal kernels for 32 AVX-512 registers,
scheduling, L1-bounded batching) is shared, which is the point: the
remaining percent-of-peak differences are *architectural* — the 512-bit
lanes need 8x the per-group working set against a half-sized L1, and
sustaining two FMA pipes leaves no issue slack — matching the paper's
discussion of why IATF's percent-of-peak leads for double precision.
"""

from __future__ import annotations

from ..machine.machines import XEON_GOLD_6240, MachineConfig
from ..runtime.iatf import IATF
from ..types import GemmProblem, TrsmProblem

__all__ = ["MklCompact"]


class MklCompact:
    """MKL compact comparator: compact algorithm, Xeon machine, no
    input-aware fast paths."""

    name = "Intel MKL compact"

    def __init__(self, machine: MachineConfig = XEON_GOLD_6240) -> None:
        self.machine = machine
        self._iatf = IATF(machine)

    def time_gemm(self, problem: GemmProblem):
        """Cycle-model GEMM timing on the Xeon (always-pack plans)."""
        return self._iatf.time_gemm(problem, force_pack=True)

    def time_trsm(self, problem: TrsmProblem):
        """Cycle-model TRSM timing on the Xeon (always-pack plans)."""
        return self._iatf.time_trsm(problem, force_pack=True)

    def gemm(self, *args, **kwargs):
        """Functional batched GEMM (standard-array convenience API)."""
        return self._iatf.gemm(*args, **kwargs)

    def trsm(self, *args, **kwargs):
        """Functional batched TRSM (standard-array convenience API)."""
        return self._iatf.trsm(*args, **kwargs)
