"""repro — reproduction of IATF (ICPP'22): an input-aware tuning
framework for compact BLAS, on a simulated ARMv8 machine.

Quick start::

    import numpy as np
    from repro import IATF

    iatf = IATF()                               # Kunpeng 920 model
    A = np.random.rand(1000, 8, 8)
    B = np.random.rand(1000, 8, 8)
    C = np.zeros((1000, 8, 8))
    C = iatf.gemm(A, B, C)                      # batched C = A @ B

    from repro.types import GemmProblem
    t = iatf.time_gemm(GemmProblem(8, 8, 8, "d", batch=16384))
    print(t.gflops, "simulated GFLOPS")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from . import (obs, machine, layout, codegen, packing, runtime, tuning,
               reference, api, baselines, bench, extensions, serve)
from .errors import ReproError
from .layout.compact import CompactBatch
from .machine.machines import KUNPENG_920, XEON_GOLD_6240, MachineConfig
from .runtime.iatf import IATF
from .types import (BlasDType, Diag, GemmProblem, Side, Trans, TrmmProblem,
                    TrsmProblem, UpLo, gemm_flops, trmm_flops, trsm_flops)

__version__ = "1.0.0"

__all__ = [
    "IATF", "CompactBatch", "MachineConfig", "KUNPENG_920", "XEON_GOLD_6240",
    "BlasDType", "Trans", "Side", "UpLo", "Diag",
    "GemmProblem", "TrsmProblem", "TrmmProblem",
    "gemm_flops", "trsm_flops", "trmm_flops",
    "ReproError", "obs", "__version__",
]
