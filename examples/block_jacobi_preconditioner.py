"""Block-Jacobi preconditioning: the paper's batched-TRSM workload.

PDE-based simulations (the paper's intro) precondition Krylov solvers
with block-Jacobi: the system's diagonal blocks are factored once
(Cholesky, L L^T), and every iteration applies the preconditioner by
solving two triangular systems per block — a large group of fixed-size
TRSMs.

This example factors a batch of diagonal blocks *inside the framework*
— the compact batched LU extension (`repro.extensions.CompactGetrf`,
built from the in-register LU kernel plus compact TRSM/GEMM blocks) —
applies the preconditioner with compact triangular solves, verifies
against a direct solve, and reports simulated speedups over looped
library calls.

Run:  python examples/block_jacobi_preconditioner.py
"""

import numpy as np

from repro import IATF, KUNPENG_920
from repro.api import compact_from_batch, compact_to_batch
from repro.baselines import ArmplBatch, OpenBlasLoop
from repro.extensions import CompactGetrf
from repro.types import TrsmProblem


def make_spd_blocks(rng, n_blocks: int, size: int) -> np.ndarray:
    a = rng.standard_normal((n_blocks, size, size))
    return a @ a.transpose(0, 2, 1) + size * np.eye(size)


def main() -> None:
    rng = np.random.default_rng(42)
    iatf = IATF(KUNPENG_920)
    openblas = OpenBlasLoop(KUNPENG_920)
    armpl = ArmplBatch(KUNPENG_920)

    n_blocks, size, nrhs = 4096, 12, 1
    blocks = make_spd_blocks(rng, n_blocks, size)
    residual = rng.standard_normal((n_blocks, size, nrhs))

    # factor once with the framework's own batched LU (blocked
    # right-looking: in-register kernel + compact TRSM/GEMM updates)
    getrf = CompactGetrf(KUNPENG_920, iatf)
    lu = compact_from_batch(blocks)
    getrf.factor(lu)

    # apply: z = (L U)^{-1} r  ==  two compact TRSMs per application
    rhs = compact_from_batch(residual)
    getrf.solve(lu, rhs)
    z = compact_to_batch(rhs)

    direct = np.linalg.solve(blocks, residual)
    err = np.abs(z - direct).max() / np.abs(direct).max()
    print(f"block-Jacobi apply: relative error vs direct solve = {err:.2e}")
    assert err < 1e-8

    # simulated cost of one preconditioner application at scale
    print(f"\nsimulated preconditioner apply "
          f"({n_blocks} blocks of {size}x{size}, two solves each):")
    prob = TrsmProblem(size, nrhs, "d", "L", "L", "N", "N", n_blocks)
    prob_t = TrsmProblem(size, nrhs, "d", "L", "L", "T", "N", n_blocks)
    for label, timer in [
        ("IATF", lambda p: iatf.time_trsm(p)),
        ("OpenBLAS (loop)", lambda p: openblas.trsm.time(p)),
        ("ARMPL (loop)", lambda p: armpl.trsm.time(p)),
    ]:
        cycles = timer(prob).total_cycles + timer(prob_t).total_cycles
        ms = KUNPENG_920.cycles_to_seconds(cycles) * 1e3
        print(f"  {label:<18} {ms:8.3f} ms per application")


if __name__ == "__main__":
    main()
