"""High-order CFD flux kernels: the paper's motivating GEMM workload.

Flux-reconstruction CFD codes (the paper cites GiMMiK / PyFR-style
solvers) evaluate, for every element of an unstructured mesh, small
dense operator products: interpolating solution values to flux points
and accumulating divergence back to solution points.  The operator
matrices are fixed per element type, the element count is huge — a
perfect large-group fixed-size batched GEMM.

This example builds a synthetic 2D quad mesh discretization at several
polynomial orders, runs the operator applications through IATF, checks
against NumPy, and compares simulated performance with the loop-around-
OpenBLAS approach the paper argues against.

Run:  python examples/cfd_flux_kernels.py
"""

import numpy as np

from repro import IATF, KUNPENG_920
from repro.baselines import OpenBlasLoop
from repro.types import GemmProblem


def element_operator(order: int, rng) -> tuple[int, int]:
    """Solution/flux point counts for a Q{order} quad element."""
    n_sol = (order + 1) ** 2
    n_flux = 4 * (order + 1)
    return n_sol, n_flux


def main() -> None:
    rng = np.random.default_rng(7)
    iatf = IATF(KUNPENG_920)
    openblas = OpenBlasLoop(KUNPENG_920)
    n_elements = 16384

    print(f"{'order':>5} {'op shape':>10} {'IATF':>9} {'OpenBLAS':>9} "
          f"{'speedup':>8}")
    for order in (1, 2, 3, 4):
        n_sol, n_flux = element_operator(order, rng)
        # interpolation operator M0: (n_flux x n_sol), per-element states
        # u: (n_sol x n_vars); batched over elements with n_vars = 4
        n_vars = 4
        m0 = rng.standard_normal((n_elements, n_flux, n_sol))
        u = rng.standard_normal((n_elements, n_sol, n_vars))

        # correctness on a small slice
        small = 64
        got = iatf.gemm(m0[:small], u[:small],
                        np.zeros((small, n_flux, n_vars)), beta=0.0)
        want = m0[:small] @ u[:small]
        assert np.abs(got - want).max() < 1e-9, "flux interpolation wrong"

        # simulated performance over the full mesh
        prob = GemmProblem(n_flux, n_vars, n_sol, "d", batch=n_elements)
        t_iatf = iatf.time_gemm(prob)
        t_ob = openblas.gemm.time(prob)
        print(f"{order:>5} {n_flux:>3}x{n_vars}x{n_sol:<3} "
              f"{t_iatf.gflops:>8.2f} {t_ob.gflops:>9.2f} "
              f"{t_iatf.gflops / t_ob.gflops:>7.1f}x")

    print("\nAll flux-kernel results verified against NumPy.")


if __name__ == "__main__":
    main()
