"""Walking the executor-backend ladder: interpret -> compiled -> fused
-> megakernel -> parallel.

Every backend executes the *same* plan and must produce the *same
bytes* — what changes is how much work survives to run time.  The
interpreter resolves every memory operand per instruction per batch;
the compiled replayer did all of that once at lower time; the fused
replayer additionally runs the optimizing pass pipeline (dead-code
elimination, FMLA-chain fusion into macro-ops, load/store coalescing
into wide copies) and replays in L2-resident group blocks; the
megakernel backend goes one further and trace-compiles the whole fused
stream into generated straight-line NumPy source — compiled once,
cached on the lowering, zero per-instruction dispatch in steady state;
the parallel wrapper shards the group axis across threads (or
shared-memory processes) around any of them.

This example times all five on the paper's headline shape (sgemm
8x8x8, batch 16384), verifies bit-identical results, and prints the
explain report's execution-backend section — where the pass pipeline's
per-pass statistics are narrated.

Run:  python examples/backend_showdown.py
"""

import time

import numpy as np

from repro import IATF, KUNPENG_920
from repro.layout import CompactBatch
from repro.types import GemmProblem

BACKENDS = (
    ("interpret", {}),
    ("compiled", {}),
    ("fused", {}),
    ("megakernel", {}),
    ("parallel", {"inner": "megakernel", "workers": 4}),
)


def main() -> None:
    prob = GemmProblem(8, 8, 8, "s", batch=16384)
    lanes = KUNPENG_920.lanes(prob.dtype)
    rng = np.random.default_rng(7)
    a = rng.standard_normal((prob.batch, 8, 8), dtype=np.float32)
    b = rng.standard_normal((prob.batch, 8, 8), dtype=np.float32)
    c = rng.standard_normal((prob.batch, 8, 8), dtype=np.float32)

    print("=" * 70)
    print(f"Backend showdown — sgemm 8x8x8, batch {prob.batch} "
          "(wall clock, best of 5)")
    print("=" * 70)

    results = {}
    reference = None
    for name, kw in BACKENDS:
        fw = IATF(KUNPENG_920, backend=name, **kw)
        ca = CompactBatch.from_matrices(a, lanes)
        cb = CompactBatch.from_matrices(b, lanes)
        cc = CompactBatch.from_matrices(c, lanes)
        fw.gemm_compact(prob, ca, cb, cc)      # warm: plan + lowering
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            fw.gemm_compact(prob, ca, cb, cc)
            best = min(best, time.perf_counter() - t0)
        results[name] = best
        digest = cc.buffer.tobytes()
        if reference is None:
            reference = digest
            verdict = "reference"
        else:
            verdict = ("bit-identical" if digest == reference
                       else "DIVERGED (bug!)")
        label = name if not kw else \
            f"{name}({kw['inner']}, workers={kw['workers']})"
        print(f"  {label:>28}: {best * 1e3:8.2f} ms  "
              f"{results['interpret'] / best:5.2f}x vs interpret  "
              f"[{verdict}]")

    ratio = results["compiled"] / results["fused"]
    print(f"\n  pass-pipeline payoff: fused is {ratio:.2f}x vs compiled")
    mega = results["fused"] / results["megakernel"]
    print(f"  trace-compiler payoff: megakernel is {mega:.2f}x vs fused")

    print()
    print("=" * 70)
    print("What the passes did (explain report, execution backend)")
    print("=" * 70)
    fw = IATF(KUNPENG_920, backend="fused")
    report = fw.explain_gemm(prob)
    for line in report.section("execution backend"):
        print(f"  {line}")


if __name__ == "__main__":
    main()
