"""A tour of IATF's install-time autotuning subsystem.

Drives the real thing end to end: enumerate the candidate space for a
problem shape, sweep it with the cycle model, persist the winners into
a TuningDB, reload that DB in a runtime framework object, and watch a
tuned decision change the execution plan — with full provenance in the
explain report and hit/miss/fallback counters narrating every lookup.

Run:  python examples/autotuning_tour.py
"""

import os
import tempfile

from repro import IATF, KUNPENG_920, obs
from repro.codegen.cmar import optimal_gemm_kernel
from repro.runtime.engine import Engine
from repro.tuning import (TuningDB, enumerate_gemm_space,
                          feasible_gemm_mains, sweep, tune_problem)
from repro.types import GemmProblem, TrsmProblem


def show_space() -> None:
    print("=" * 70)
    print("1. The candidate space (repro.tuning.space)")
    print("=" * 70)
    print(f"\nanalytic CMAR optimum for 'd': {optimal_gemm_kernel('d')}")
    print(f"register-feasible mains, best CMAR first: "
          f"{feasible_gemm_mains('d')}")
    p = GemmProblem(9, 9, 9, "d", batch=16384)
    space = enumerate_gemm_space(p, KUNPENG_920)
    print(f"\ncandidates for dgemm 9x9x9 ({len(space)}):")
    for cand in space:
        mark = "  <- analytic choice" if cand is space[0] else ""
        print(f"  {cand.label}{mark}")


def show_single_tune() -> None:
    print()
    print("=" * 70)
    print("2. Tuning one shape (repro.tuning.tuner)")
    print("=" * 70)
    p = GemmProblem(9, 9, 9, "d", batch=16384)
    out = tune_problem(p, KUNPENG_920)
    print(f"\n{out.describe()}\n")
    print(f"{'candidate':<16} {'cycles':>12} {'GFLOPS':>8}")
    best = min(row["cycles"] for row in out.sweep)
    for row in out.sweep:
        mark = "  <- winner" if row["cycles"] == best else ""
        print(f"{row['candidate']:<16} {row['cycles']:>12.0f} "
              f"{row['gflops']:>8.2f}{mark}")
    print("\nThe analytic candidate is measured first and only a "
          "*strictly* faster\ncandidate replaces it — tuned is never "
          "worse than analytic.")


def sweep_and_persist(path: str) -> None:
    print()
    print("=" * 70)
    print("3. The install-time sweep -> persistent TuningDB")
    print("=" * 70)
    db = TuningDB.load(path)          # missing file: empty, healthy
    outcomes = sweep(db, KUNPENG_920, ops=("gemm", "trsm"),
                     dtypes=("d",), sizes=(3, 6, 9, 12), batch=16384)
    db.save()
    improved = [o for o in outcomes if o.improved]
    print(f"\nswept {len(outcomes)} shapes; "
          f"{len(improved)} improved over analytic:")
    for o in improved:
        print(f"  {o.describe()}")
    print(f"\nDB stats: {db.stats()}")
    print(f"saved atomically to {os.path.basename(path)} "
          f"(schema v{db.version})")


def runtime_with_db(path: str) -> None:
    print()
    print("=" * 70)
    print("4. The run-time stage consults the DB (hit / miss / fallback)")
    print("=" * 70)
    engine = Engine(KUNPENG_920)
    with obs.scoped() as reg:
        tuned = IATF(KUNPENG_920, tuning_db=path)
        plain = IATF(KUNPENG_920)
        p = GemmProblem(9, 9, 9, "d", batch=16384)
        tplan = tuned.plan_gemm(p)        # 9x9x9 was swept -> hit
        pplan = plain.plan_gemm(p)
        tuned.plan_gemm(GemmProblem(31, 31, 31, "d", batch=16384))  # miss
        counters = {k: v for k, v in reg.snapshot()["counters"].items()
                    if k.startswith("tuning.")}
    print(f"\ntuned plan main kernel:    {tplan.meta['main_kernel']} "
          f"(decision source: {tplan.meta['decision']['source']})")
    print(f"analytic plan main kernel: {pplan.meta['main_kernel']} "
          f"(decision source: {pplan.meta['decision']['source']})")
    t = engine.time_plan(tplan).total_cycles
    a = engine.time_plan(pplan).total_cycles
    print(f"cycle model: tuned {t:.0f} vs analytic {a:.0f} "
          f"({a / t:.3f}x)")
    print(f"lookup counters: {counters}")

    print("\nexplain report, decision-provenance section:")
    report = tuned.explain_gemm(p)
    for line in report.section("decision provenance (install-time tuning)"):
        print(f"  {line}")

    print("\nTRSM goes through the same path:")
    trsm_plan = tuned.plan_trsm(TrsmProblem(6, 6, "d", batch=16384))
    print(f"  decision source: {trsm_plan.meta['decision']['source']}, "
          f"packing {trsm_plan.meta['packing']}")


def corruption_is_graceful(path: str) -> None:
    print()
    print("=" * 70)
    print("5. Corruption never crashes the runtime")
    print("=" * 70)
    with open(path, "w") as f:
        f.write("{ a hand-mangled file")
    with obs.scoped() as reg:
        iatf = IATF(KUNPENG_920, tuning_db=path)
        plan = iatf.plan_gemm(GemmProblem(9, 9, 9, "d", batch=16384))
        fallbacks = reg.snapshot()["counters"].get("tuning.fallback", 0)
    print(f"\nDB corrupt: {iatf.tuning_db.corrupt} "
          f"({iatf.tuning_db.corrupt_reason})")
    print(f"plan still built, source: {plan.meta['decision']['source']}; "
          f"tuning.fallback counter: {fallbacks}")


if __name__ == "__main__":
    show_space()
    show_single_tune()
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "kunpeng920.tuning.json")
        sweep_and_persist(db_path)
        runtime_with_db(db_path)
        corruption_is_graceful(db_path)
