"""A tour of the install-time and run-time stages of IATF.

Walks through what the framework actually builds: the CMAR analysis
that picks kernel sizes, a generated kernel's assembly before and after
the optimizer, the Table 1 inventory, and the input-aware decisions the
run-time stage makes for different problem shapes.

Run:  python examples/autotuning_tour.py
"""

from repro import IATF, KUNPENG_920
from repro.codegen.cmar import (cmar_complex, cmar_real, fits_registers,
                                max_triangular_order, optimal_gemm_kernel)
from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.codegen.optimizer import schedule_program
from repro.codegen.registry import table1_inventory
from repro.machine.pipeline import AddressSpace
from repro.types import GemmProblem, TrsmProblem


def show_cmar() -> None:
    print("=" * 70)
    print("1. CMAR analysis (paper Eqs. 2-3): pick the main kernel size")
    print("=" * 70)
    print(f"{'mc x nc':>8} {'regs':>5} {'CMAR(real)':>11}")
    for mc, nc in [(2, 2), (3, 3), (4, 4), (4, 3), (5, 4), (6, 2)]:
        fits = fits_registers(mc, nc, "d")
        regs = 2 * mc + 2 * nc + mc * nc
        mark = "" if fits else "  <- exceeds 32 registers"
        print(f"{mc:>4}x{nc:<3} {regs:>5} {cmar_real(mc, nc):>11.2f}{mark}")
    print(f"\noptimal real kernel:    {optimal_gemm_kernel('d')}")
    print(f"optimal complex kernel: {optimal_gemm_kernel('z')} "
          f"(CMAR {cmar_complex(3, 2):.2f})")
    print(f"TRSM in-register bound: M <= {max_triangular_order('d')} real, "
          f"M <= {max_triangular_order('z')} complex")


def show_kernel() -> None:
    print()
    print("=" * 70)
    print("2. A generated kernel, before and after the optimizer (Fig. 5)")
    print("=" * 70)
    machine = KUNPENG_920
    raw = generate_gemm_kernel(4, 4, 4, "d", machine)
    opt = schedule_program(raw, machine)
    print(f"\nfirst 14 instructions, template order "
          f"({len(raw)} total):")
    for ins in raw.instrs[:14]:
        print("   ", ins.asm())
    print("\nfirst 14 instructions after scheduling "
          "(loads interleaved between FMAs):")
    for ins in opt.instrs[:14]:
        print("   ", ins.asm())

    def cycles(p):
        caches = machine.make_caches()
        pipe = machine.make_pipeline(caches)
        asp = AddressSpace()
        aA = asp.place("pA", 4096)
        aB = asp.place("pB", 4096)
        aC = asp.place("C", 512)
        for a in (aA, aB, aC):
            caches.warm_range(a, 4096)
        init = {0: aA, 1: aB}
        init.update({2 + j: aC + j * 64 for j in range(4)})
        return pipe.simulate(p, init).cycles

    print(f"\ncycles on the Kunpeng 920 model: {cycles(raw)} raw -> "
          f"{cycles(opt)} optimized")


def show_table1() -> None:
    print()
    print("=" * 70)
    print("3. The install-time inventory (paper Table 1)")
    print("=" * 70)
    for fam, entry in table1_inventory().items():
        print(f"  {fam:<14} main {entry['main']}, "
              f"{len(entry['edge'])} edge kernels"
              + (f", triangular {entry['tri']}" if "tri" in entry else ""))


def show_runtime_decisions() -> None:
    print()
    print("=" * 70)
    print("4. Run-time stage: input-aware decisions per problem shape")
    print("=" * 70)
    iatf = IATF(KUNPENG_920)
    cases = [
        GemmProblem(4, 8, 8, "d", batch=16384),       # A fits one tile
        GemmProblem(8, 8, 8, "d", batch=16384),       # A must pack
        GemmProblem(8, 4, 8, "d", transb="T", batch=16384),  # B fast path
        GemmProblem(3, 2, 5, "z", batch=16384),       # complex tiles
    ]
    for p in cases:
        plan = iatf.plan_gemm(p)
        print(f"\n  {p.dtype.value}gemm {p.m}x{p.n}x{p.k} mode {p.mode}: "
              f"packing {plan.meta['packing']}, "
              f"{plan.groups_per_round} groups/round, "
              f"kernels {plan.kernels_used}")
    tcases = [
        TrsmProblem(4, 8, "d", batch=16384),          # in-register solve
        TrsmProblem(4, 8, "d", uplo="U", batch=16384),  # flip => pack
        TrsmProblem(12, 8, "d", batch=16384),         # blocked path
    ]
    for p in tcases:
        plan = iatf.plan_trsm(p)
        print(f"\n  {p.dtype.value}trsm {p.m}x{p.n} mode {p.mode}: "
              f"blocks {plan.meta['blocks']}, "
              f"B no-pack: {plan.meta['b_nopack']}, "
              f"{len(plan.calls)} kernel calls/group")


if __name__ == "__main__":
    show_cmar()
    show_kernel()
    show_table1()
    show_runtime_decisions()
