"""A tour of the simulated ARMv8 machine underneath the framework.

Shows the pieces a performance engineer would poke at: hand-written
assembly parsed into a program, functional execution, the cycle-level
issue trace, and how the Kunpeng 920's issue rules shape throughput
(the paper's Section 6.3 dual-issue discussion, observable directly).

Run:  python examples/simulator_tour.py
"""

import numpy as np

from repro.machine import KUNPENG_920, MemorySpace, Program, VectorExecutor
from repro.machine.asmparse import parse_program
from repro.machine.isa import fmul
from repro.machine.trace import format_trace, issue_histogram, trace_program


def hand_written_kernel() -> None:
    print("=" * 70)
    print("1. Write assembly, execute it on the batch")
    print("=" * 70)
    prog = parse_program("""
        // axpy-ish: y = y + 2.5 * x, two doubles per vector
        ldrv  v0.2d, [x0, #0]      // x
        ldrv  v1.2d, [x1, #0]      // y
        fmai  v1.2d, v0.2d, #2.5
        str   q1, [x1, #0]
    """, name="axpy", lanes=2)
    print(prog.disassemble())

    mem = MemorySpace()
    x = mem.alloc("x", 8, 8)
    y = mem.alloc("y", 8, 8)
    x[:] = np.arange(8)
    y[:] = 1.0
    # four "matrices" of one element -> two groups of two lanes
    ex = VectorExecutor(mem, groups=4)
    offs = np.arange(4, dtype=np.int64) * 16
    ex.set_pointer(0, "x", offs)
    ex.set_pointer(1, "y", offs)
    ex.run(prog)
    print("\ny after batched execution:", y)


def issue_rules_demo() -> None:
    print()
    print("=" * 70)
    print("2. The paper's dual-issue rule, observed (Section 6.3)")
    print("=" * 70)
    # 8 independent multiplies: fp64 issues 1/cycle, fp32 issues 2/cycle
    for ew, label in [(8, "float64"), (4, "float32")]:
        prog = Program("fp", [fmul(i, 30, 31, ew=ew) for i in range(8)],
                       ew=ew, lanes=16 // ew)
        entries = trace_program(KUNPENG_920, prog)
        span = entries[-1][0] - entries[0][0] + 1
        print(f"  8 independent FMULs ({label}): {span} cycles "
              f"-> {8 / span:.1f} FP ops/cycle")


def kernel_trace() -> None:
    print()
    print("=" * 70)
    print("3. Issue trace of an optimized compact kernel")
    print("=" * 70)
    from repro.codegen.generator_gemm import generate_gemm_kernel
    from repro.codegen.optimizer import schedule_program
    prog = schedule_program(
        generate_gemm_kernel(4, 4, 4, "d", KUNPENG_920), KUNPENG_920)
    entries = trace_program(KUNPENG_920, prog)
    print(format_trace(entries, max_rows=24))
    hist = issue_histogram(entries)
    dual = sum(1 for v in hist.values() if v == 2)
    print(f"\n{len(entries)} instructions in "
          f"{entries[-1][0] - entries[0][0] + 1} cycles; "
          f"{dual} cycles dual-issued")


if __name__ == "__main__":
    hand_written_kernel()
    issue_rules_demo()
    kernel_trace()
