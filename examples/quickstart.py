"""Quickstart: batched small-matrix GEMM and TRSM through IATF.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import IATF, KUNPENG_920
from repro.types import GemmProblem, TrsmProblem


def main() -> None:
    rng = np.random.default_rng(0)
    iatf = IATF(KUNPENG_920)

    # --- batched GEMM on plain NumPy arrays --------------------------------
    batch, n = 1000, 8
    a = rng.random((batch, n, n))
    b = rng.random((batch, n, n))
    c = np.zeros((batch, n, n))
    c = iatf.gemm(a, b, c, alpha=1.0, beta=0.0)
    print(f"gemm: max |C - A@B| = {np.abs(c - a @ b).max():.2e}")

    # --- batched TRSM -------------------------------------------------------
    l = np.tril(rng.random((batch, n, n))) + 2 * np.eye(n)
    rhs = rng.random((batch, n, 4))
    x = iatf.trsm(l, rhs.copy(), side="L", uplo="L")
    print(f"trsm: max |L@X - B|  = {np.abs(l @ x - rhs).max():.2e}")

    # --- what did the run-time stage decide? --------------------------------
    plan = iatf.plan_gemm(GemmProblem(n, n, n, "d", batch=batch))
    print()
    print(plan.describe())

    # --- simulated performance on the Kunpeng 920 model ---------------------
    print()
    print("simulated performance (batch = 16384, the paper's protocol):")
    for size in (2, 4, 8, 16, 32):
        t = iatf.time_gemm(GemmProblem(size, size, size, "d", batch=16384))
        print(f"  dgemm {size:>2}^3: {t.gflops:6.2f} GFLOPS "
              f"({t.percent_of_peak:5.1f}% of peak)")
    for size in (2, 4, 8, 16, 32):
        t = iatf.time_trsm(TrsmProblem(size, size, "d", batch=16384))
        print(f"  dtrsm {size:>2}x{size:<2}: {t.gflops:6.2f} GFLOPS "
              f"({t.percent_of_peak:5.1f}% of peak)")


if __name__ == "__main__":
    main()
