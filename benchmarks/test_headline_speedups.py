"""The paper's headline 'up to Nx' speedup claims, measured."""

from conftest import run_once

from repro.bench import experiments


def test_headline_speedups(harness, benchmark, save_result):
    result = run_once(benchmark,
                      lambda: experiments.headline_speedups(harness))
    save_result("headline_speedups", result["render"])
    # every headline must at least be a win; the magnitudes are recorded
    # in EXPERIMENTS.md against the paper's numbers
    for key, (best, at, paper) in result["measured"].items():
        assert best > 1.0, key
