"""Table 2: machine models and their derived peaks."""

import pytest
from conftest import run_once

from repro.bench import experiments


def test_table2_machines(benchmark, save_result):
    result = run_once(benchmark, experiments.table2_machines)
    save_result("table2_machines", result["render"])
    by_name = {r["name"]: r for r in result["rows"]}
    assert by_name["Kunpeng 920"]["peak_fp64"] == pytest.approx(10.4)
    assert by_name["Kunpeng 920"]["peak_fp32"] == pytest.approx(41.6)
    assert by_name["Intel Xeon Gold 6240"]["peak_fp64"] == pytest.approx(83.2)
    assert by_name["Intel Xeon Gold 6240"]["peak_fp32"] == pytest.approx(166.4)
