"""Figure 4: tiling of 15x15 GEMM — traditional vs compact."""

from conftest import run_once

from repro.bench import experiments


def test_fig4_tiling(benchmark, save_result):
    result = run_once(benchmark, experiments.fig4_tiling)
    save_result("fig4_tiling", result["render"])
    assert result["compact"][0] == [4, 4, 4, 3]
    assert result["wasted_lanes"] > 0
