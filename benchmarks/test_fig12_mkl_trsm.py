"""Figure 12: IATF vs Intel MKL compact TRSM, percent of machine peak."""

import pytest
from conftest import run_once

from repro.bench.reporting import series_table


@pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
def test_fig12_mkl_trsm(harness, benchmark, save_result, dtype):
    series = run_once(benchmark, lambda: harness.trsm_percent_peak(dtype))
    text = series_table(series, f"Figure 12 — {dtype}trsm LNLN, % of peak",
                        fmt="{:6.1f}%")
    save_result(f"fig12_{dtype}trsm_pct_peak", text)
    for s in series.values():
        for _, v in s.points:
            assert 0 < v < 100


def test_fig12_double_precision_advantage(harness, benchmark):
    """Paper: 'considerable advantages in double-precision floating-point
    numbers, both for real and complex' (TRSM)."""
    def check():
        wins_by_dtype = {}
        for dtype in ("d", "z"):
            series = harness.trsm_percent_peak(dtype)
            iatf = series["IATF (Kunpeng 920)"]
            mkl = series["MKL compact (Xeon 6240)"]
            wins_by_dtype[dtype] = (
                sum(iatf.value_at(s) > mkl.value_at(s) for s in iatf.sizes),
                len(iatf.sizes))
        return wins_by_dtype
    wins = run_once(benchmark, check)
    for dtype, (won, total) in wins.items():
        assert won > total / 2, dtype
