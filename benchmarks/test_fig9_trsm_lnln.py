"""Figure 9: compact TRSM vs loop-ARMPL / loop-OpenBLAS under LNLN."""

import pytest
from conftest import run_once

from repro.bench.reporting import (ratio_summary, series_csv,
                                   series_table)


@pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
def test_fig9_trsm_lnln(harness, benchmark, save_result, dtype):
    series = run_once(benchmark, lambda: harness.trsm_series(dtype, "LNLN"))
    text = (series_table(series, f"Figure 9 — {dtype}trsm LNLN (GFLOPS), "
                                 f"batch={harness.batch}")
            + "\n" + ratio_summary(series))
    save_result(f"fig9_{dtype}trsm_lnln", text,
                csv=series_csv(series))
    # "IATF achieves extremely large improvements for all sizes"
    for (sz, vi), (_, vo) in zip(series["IATF"].points,
                                 series["OpenBLAS (loop)"].points):
        assert vi > vo, (dtype, sz)
