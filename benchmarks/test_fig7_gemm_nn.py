"""Figure 7: compact GEMM vs ARMPL/LIBXSMM/OpenBLAS under NN mode."""

import pytest
from conftest import run_once

from repro.bench.reporting import (ratio_summary, series_csv,
                                   series_table)


@pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
def test_fig7_gemm_nn(harness, benchmark, save_result, dtype):
    series = run_once(benchmark, lambda: harness.gemm_series(dtype, "NN"))
    text = (series_table(series, f"Figure 7 — {dtype}gemm NN (GFLOPS), "
                                 f"batch={harness.batch}")
            + "\n" + ratio_summary(series))
    save_result(f"fig7_{dtype}gemm_nn", text,
                csv=series_csv(series))
    # shape check: IATF wins at the smallest size against every library
    smallest = series["IATF"].sizes[0]
    for lib, s in series.items():
        if lib != "IATF":
            assert series["IATF"].value_at(smallest) > s.value_at(smallest)
