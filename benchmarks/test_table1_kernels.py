"""Table 1: regenerate the kernel inventory and install the kernels."""

from conftest import run_once

from repro.bench import experiments
from repro.codegen.registry import KernelRegistry
from repro.machine.machines import KUNPENG_920


def test_table1_inventory(benchmark, save_result):
    result = run_once(benchmark, experiments.table1_kernels)
    save_result("table1_kernels", result["render"])
    assert result["real_opt"] == (4, 4)
    assert result["cplx_opt"] == (3, 2)


def test_install_time_stage(benchmark):
    """Time the install-time stage generating the full Table 1 family."""
    def install():
        reg = KernelRegistry(KUNPENG_920)
        return reg.install()
    count = run_once(benchmark, install)
    assert count > 100
