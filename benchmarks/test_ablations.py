"""Ablations of the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.bench import experiments


def test_ablation_scheduling(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ablation_scheduling(sizes=(4, 8, 16, 32)))
    save_result("ablation_scheduling", result["render"])
    for n, on, off, gain in result["rows"]:
        assert gain >= 1.0, n


def test_ablation_nopack(benchmark, save_result):
    result = run_once(
        benchmark, lambda: experiments.ablation_nopack(sizes=(1, 2, 3, 4)))
    save_result("ablation_nopack", result["render"])
    for n, on, off, gain in result["rows"]:
        assert gain > 1.0, n


def test_ablation_batch_counter(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ablation_batch_counter(sizes=(2, 4, 8, 16)))
    save_result("ablation_batch_counter", result["render"])
    for n, on, off, gain in result["rows"]:
        assert gain >= 0.99, n     # never a loss; small wins at tiny sizes


def test_ablation_autotune(benchmark, save_result):
    result = run_once(benchmark, lambda: experiments.ablation_autotune())
    save_result("ablation_autotune", result["render"])
    for n, analytic, tuned, main in result["rows"]:
        assert tuned >= analytic - 1e-9, n
