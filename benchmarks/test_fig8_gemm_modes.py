"""Figure 8: compact GEMM under NN / NT / TN / TT modes."""

import pytest
from conftest import run_once

from repro.bench.reporting import ratio_summary, series_table


@pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
@pytest.mark.parametrize("mode", ["NN", "NT", "TN", "TT"])
def test_fig8_gemm_modes(harness, benchmark, save_result, dtype, mode):
    series = run_once(benchmark, lambda: harness.gemm_series(dtype, mode))
    text = (series_table(series, f"Figure 8 — {dtype}gemm {mode} (GFLOPS)")
            + "\n" + ratio_summary(series))
    save_result(f"fig8_{dtype}gemm_{mode.lower()}", text)
    # the paper: "excellent and stable performances in every mode"
    smallest = series["IATF"].sizes[0]
    assert series["IATF"].value_at(smallest) > \
        series["OpenBLAS (loop)"].value_at(smallest)
