"""Figure 5: the kernel optimizer's instruction-placement stages."""

from conftest import run_once

from repro.bench import experiments


def test_fig5_scheduling(benchmark, save_result):
    result = run_once(benchmark, experiments.fig5_scheduling)
    save_result("fig5_scheduling", result["render"])
    c = {k: v["cycles"] for k, v in result["results"].items()}
    assert c["original"] >= c["reordered"] >= c["optimized"]
