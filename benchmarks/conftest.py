"""Benchmark fixtures.

By default benchmarks run on a reduced size grid so that
``pytest benchmarks/ --benchmark-only`` completes in minutes; set
``REPRO_BENCH_FULL=1`` for the paper's full 1..33 grid (this is what
``benchmarks/generate_experiments.py`` uses to produce EXPERIMENTS.md).

Every benchmark saves its rendered series under ``benchmarks/results/``
so the regenerated paper tables are inspectable artifacts, not just
timings.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.harness import (PAPER_BATCH, PAPER_SIZES, QUICK_SIZES,
                                 BenchHarness)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def harness() -> BenchHarness:
    full = os.environ.get("REPRO_BENCH_FULL")
    sizes = PAPER_SIZES if full else QUICK_SIZES
    batch = PAPER_BATCH
    return BenchHarness(sizes=sizes, batch=batch)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, csv: str | None = None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if csv is not None:
            (RESULTS_DIR / f"{name}.csv").write_text(csv + "\n")
    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    The cycle model is deterministic, so repeated rounds only measure
    the harness's memo cache; one round is the honest measurement.
    """
    return benchmark.pedantic(fn, iterations=1, rounds=1, warmup_rounds=0)
