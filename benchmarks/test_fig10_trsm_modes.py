"""Figure 10: compact TRSM under LNLN / LNUN / LTLN / LTUN modes."""

import pytest
from conftest import run_once

from repro.bench.reporting import ratio_summary, series_table


@pytest.mark.parametrize("dtype", ["s", "d", "c", "z"])
@pytest.mark.parametrize("mode", ["LNLN", "LNUN", "LTLN", "LTUN"])
def test_fig10_trsm_modes(harness, benchmark, save_result, dtype, mode):
    series = run_once(benchmark, lambda: harness.trsm_series(dtype, mode))
    text = (series_table(series, f"Figure 10 — {dtype}trsm {mode} (GFLOPS)")
            + "\n" + ratio_summary(series))
    save_result(f"fig10_{dtype}trsm_{mode.lower()}", text)
    # "nearly consistent high performance with the left side mode"
    for (sz, vi), (_, vo) in zip(series["IATF"].points,
                                 series["OpenBLAS (loop)"].points):
        assert vi > vo, (dtype, mode, sz)
