"""Future-work extensions (paper Section 7): multicore scaling and TRMM."""

from conftest import run_once

from repro.extensions import CompactTrmm
from repro.machine.machines import KUNPENG_920
from repro.runtime.multicore import MulticoreModel
from repro.types import GemmProblem, TrmmProblem


def test_multicore_scaling(benchmark, save_result):
    def sweep():
        lines = ["Future work — multicore scaling model (dgemm NN, "
                 "batch=16384)",
                 f"{'cores':>6} {'n=2':>8} {'n=8':>8} {'n=24':>8}   "
                 "(speedup over one core)"]
        rows = []
        for cores in (1, 2, 4, 8, 16, 32, 64):
            cells = []
            for n in (2, 8, 24):
                p = GemmProblem(n, n, n, "d", batch=16384)
                t = MulticoreModel(KUNPENG_920, cores).time_gemm(p)
                cells.append(t.speedup)
            rows.append((cores, cells))
            lines.append(f"{cores:>6} " + " ".join(f"{c:8.1f}"
                                                   for c in cells))
        return rows, "\n".join(lines)
    rows, text = run_once(benchmark, sweep)
    save_result("future_multicore", text)
    # compute-bound sizes scale further than pack-bound ones at 64 cores
    last = dict(rows)[64]
    assert last[2] > last[0]


def test_trmm_extension(benchmark, save_result):
    def sweep():
        trmm = CompactTrmm(KUNPENG_920)
        from repro import IATF
        iatf = IATF(KUNPENG_920)
        lines = ["Future work — compact TRMM vs dense compact GEMM "
                 "(batch=16384)",
                 f"{'n':>4} {'TRMM GFLOPS':>12} {'GEMM cycles/TRMM cycles':>24}"]
        rows = []
        for n in (4, 8, 16, 24, 32):
            tp = TrmmProblem(n, n, "d", batch=16384)
            t = trmm.time(tp)
            g = iatf.time_gemm(GemmProblem(n, n, n, "d", batch=16384,
                                           beta=0.0))
            ratio = g.total_cycles / t.total_cycles
            rows.append((n, t.gflops, ratio))
            lines.append(f"{n:>4} {t.gflops:>12.2f} {ratio:>24.2f}")
        return rows, "\n".join(lines)
    rows, text = run_once(benchmark, sweep)
    save_result("future_trmm", text)
    # structure exploitation must win at the larger sizes
    assert rows[-1][2] > 1.0
