"""Packing cost-model tests."""

import pytest

from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240
from repro.packing.cost import PER_PANEL_OVERHEAD_CYCLES, PackCost


def test_zero_cost_is_free():
    assert PackCost().is_free
    assert PackCost().cycles(KUNPENG_920) == 0.0


def test_bytes_at_copy_throughput():
    c = PackCost(bytes_read=800, bytes_written=800)
    assert c.cycles(KUNPENG_920) == pytest.approx(
        1600 / KUNPENG_920.copy_bytes_per_cycle)


def test_panel_overhead():
    c = PackCost(panels=10)
    assert c.cycles(KUNPENG_920) == 10 * PER_PANEL_OVERHEAD_CYCLES


def test_divisions_block_fp_pipe():
    c64 = PackCost(div_vectors=5, ew=8)
    c32 = PackCost(div_vectors=5, ew=4)
    assert c64.cycles(KUNPENG_920) == 5 * KUNPENG_920.lat.div_block64
    assert c32.cycles(KUNPENG_920) == 5 * KUNPENG_920.lat.div_block32
    assert c64.cycles(KUNPENG_920) > c32.cycles(KUNPENG_920)


def test_addition_accumulates():
    a = PackCost(bytes_read=10, bytes_written=20, panels=1, div_vectors=2,
                 ew=4)
    b = PackCost(bytes_read=5, bytes_written=5, panels=2, div_vectors=1,
                 ew=8)
    c = a + b
    assert (c.bytes_read, c.bytes_written) == (15, 25)
    assert c.panels == 3 and c.div_vectors == 3
    assert c.ew == 8            # widest element width wins

    assert not c.is_free


def test_xeon_copies_faster():
    c = PackCost(bytes_read=6400, bytes_written=6400)
    assert c.cycles(XEON_GOLD_6240) < c.cycles(KUNPENG_920)
