"""TRSM packing tests: mode normalization, triangle pack, B round trip."""

import numpy as np
import pytest

from repro.layout import CompactBatch
from repro.packing.trsm_pack import (NormalizedTrsm, normalize_trsm_mode,
                                     pack_trsm_a, pack_trsm_b,
                                     unpack_trsm_b)
from repro.types import Diag, Side, Trans, TrsmProblem, UpLo
from tests.conftest import ALL_DTYPES, random_batch, random_triangular

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


def canonical_lower(a_mat, norm):
    """Reference construction of the canonical lower matrix L."""
    op = a_mat.T if norm.gather_trans else a_mat
    if norm.flip:
        op = op[::-1, ::-1]
    return np.tril(op)


class TestNormalization:
    def test_lnln_is_identity(self):
        p = TrsmProblem(4, 5, "d", "L", "L", "N", "N")
        n = normalize_trsm_mode(p)
        assert (n.d, n.n_rhs) == (4, 5)
        assert not n.flip and not n.gather_trans and not n.transpose_b

    def test_upper_flips(self):
        n = normalize_trsm_mode(TrsmProblem(4, 5, "d", "L", "U", "N", "N"))
        assert n.flip and not n.gather_trans

    def test_trans_lower_flips(self):
        """op(A)=A^T with A lower is effectively upper -> flip+gather."""
        n = normalize_trsm_mode(TrsmProblem(4, 5, "d", "L", "L", "T", "N"))
        assert n.flip and n.gather_trans

    def test_trans_upper_no_flip(self):
        """LTUN: A^T of an upper matrix is lower -> no flip."""
        n = normalize_trsm_mode(TrsmProblem(4, 5, "d", "L", "U", "T", "N"))
        assert not n.flip and n.gather_trans

    def test_right_side_swaps_dims(self):
        n = normalize_trsm_mode(TrsmProblem(4, 5, "d", "R", "L", "N", "N"))
        assert (n.d, n.n_rhs) == (5, 4)
        assert n.transpose_b
        assert n.gather_trans          # trans toggled by the transpose

    def test_unit_and_alpha_carried(self):
        n = normalize_trsm_mode(TrsmProblem(3, 3, "z", diag="U",
                                            alpha=2 + 1j))
        assert n.unit and n.alpha == 2 + 1j

    @pytest.mark.parametrize("side", "LR")
    @pytest.mark.parametrize("uplo", "LU")
    @pytest.mark.parametrize("trans", "NT")
    def test_all_modes_produce_lower_solves(self, rng, side, uplo, trans):
        """Whatever the mode, the gathered matrix must be the lower
        triangle whose solve equals the original problem's."""
        p = TrsmProblem(4, 4, "d", side, uplo, trans, "N")
        norm = normalize_trsm_mode(p)
        a = random_triangular(rng, 1, p.a_dim, "d", uplo)[0]
        low = canonical_lower(a, norm)
        # lower triangular with nonzero diagonal
        assert np.allclose(low, np.tril(low))
        assert np.all(np.abs(np.diag(low)) > 0.1)


class TestPackTrsmA:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_single_block_triangle(self, rng, dtype):
        d = 3
        a = random_triangular(rng, LANES[dtype], d, dtype)
        cb = CompactBatch.from_matrices(a, LANES[dtype])
        norm = normalize_trsm_mode(TrsmProblem(d, 2, dtype))
        packed = pack_trsm_a(cb, norm, [d])
        esz = cb.dtype.real_itemsize
        data = packed.data.reshape(cb.groups, -1)
        # triangle order: (0,0) (1,0) (1,1) (2,0) (2,1) (2,2), recip diag
        tri = [(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]
        for t, (i, j) in enumerate(tri):
            val = data[0, t * cb.elem_stride]
            want = a[0, i, j]
            if i == j:
                want = 1.0 / want
            assert val == pytest.approx(want.real, rel=1e-5)

    def test_unit_diag_not_reciprocated(self, rng):
        d = 3
        a = random_triangular(rng, 2, d, "d")
        cb = CompactBatch.from_matrices(a, 2)
        p = TrsmProblem(d, 2, "d", diag="U")
        packed = pack_trsm_a(cb, normalize_trsm_mode(p), [d])
        data = packed.data.reshape(cb.groups, -1)
        assert data[0, 0] == a[0, 0, 0]      # untouched
        assert packed.cost.div_vectors == 0

    def test_blocked_offsets_and_content(self, rng):
        d = 7
        blocks = [4, 3]
        a = random_triangular(rng, 2, d, "d")
        cb = CompactBatch.from_matrices(a, 2)
        packed = pack_trsm_a(cb, normalize_trsm_mode(TrsmProblem(d, 4, "d")),
                             blocks)
        assert packed.blocks == blocks
        assert list(packed.rect_offsets) == [(1, 0)]
        # the L(1,0) block is rows 4..6 x cols 0..3 in [k][i] order
        esz = 8
        start = packed.rect_offsets[(1, 0)] // esz
        data = packed.data.reshape(cb.groups, -1)
        val = data[0, start]                       # k=0, i=0 -> A[4, 0]
        assert val == a[0, 4, 0]
        val = data[0, start + cb.elem_stride]      # k=0, i=1 -> A[5, 0]
        assert val == a[0, 5, 0]

    def test_flip_gather(self, rng):
        """Upper mode: packed element (i, j) must be A[d-1-i, d-1-j]."""
        d = 3
        a = random_triangular(rng, 2, d, "d", uplo="U")
        cb = CompactBatch.from_matrices(a, 2)
        norm = normalize_trsm_mode(TrsmProblem(d, 2, "d", uplo="U"))
        packed = pack_trsm_a(cb, norm, [d])
        data = packed.data.reshape(cb.groups, -1)
        # first packed element is canonical (0,0) -> stored (2,2), recip
        assert data[0, 0] == pytest.approx(1.0 / a[0, 2, 2], rel=1e-6)
        # canonical (1,0) -> stored (1,2)
        assert data[0, cb.elem_stride] == pytest.approx(a[0, 1, 2],
                                                        rel=1e-6)

    def test_zero_padding_lane_diag_safe(self, rng):
        """Padding lanes have zero diagonals; the reciprocal must not
        produce inf (their solves are garbage but finite)."""
        a = random_triangular(rng, 3, 2, "d")    # batch 3, lanes 2 -> pad
        cb = CompactBatch.from_matrices(a, 2)
        packed = pack_trsm_a(cb, normalize_trsm_mode(TrsmProblem(2, 2, "d")),
                             [2])
        assert np.all(np.isfinite(packed.data))


class TestPackB:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_roundtrip_identity_mode(self, rng, dtype):
        b = random_batch(rng, 5, 4, 3, dtype)
        cb = CompactBatch.from_matrices(b, LANES[dtype])
        norm = normalize_trsm_mode(TrsmProblem(4, 3, dtype))
        work, _ = pack_trsm_b(cb, norm, pad_cols_to=1)
        out = CompactBatch.from_matrices(np.zeros_like(b), LANES[dtype])
        unpack_trsm_b(work, out, norm, pad_cols_to=1)
        assert np.allclose(out.to_matrices(), b, atol=1e-6)

    @pytest.mark.parametrize("side,uplo,trans", [
        ("L", "U", "N"), ("L", "L", "T"), ("R", "L", "N"), ("R", "U", "T"),
    ])
    def test_roundtrip_with_transforms(self, rng, side, uplo, trans):
        m, n = 4, 6
        b = random_batch(rng, 3, m, n, "d")
        cb = CompactBatch.from_matrices(b, 2)
        norm = normalize_trsm_mode(
            TrsmProblem(m, n, "d", side, uplo, trans, "N"))
        work, _ = pack_trsm_b(cb, norm, pad_cols_to=4)
        out = CompactBatch.from_matrices(np.zeros_like(b), 2)
        unpack_trsm_b(work, out, norm, pad_cols_to=4)
        assert np.allclose(out.to_matrices(), b, atol=1e-12)

    def test_alpha_scaling(self, rng):
        b = random_batch(rng, 2, 3, 3, "d")
        cb = CompactBatch.from_matrices(b, 2)
        p = TrsmProblem(3, 3, "d", alpha=2.5)
        work, _ = pack_trsm_b(cb, normalize_trsm_mode(p), 1)
        panel = work.reshape(cb.groups, 3, 3, 1, 2)
        assert panel[0, 0, 0, 0, 0] == pytest.approx(2.5 * b[0, 0, 0])

    def test_complex_alpha_scaling(self, rng):
        b = random_batch(rng, 4, 2, 2, "z")
        cb = CompactBatch.from_matrices(b, 2)
        p = TrsmProblem(2, 2, "z", alpha=1 + 2j)
        work, _ = pack_trsm_b(cb, normalize_trsm_mode(p), 1)
        panel = work.reshape(cb.groups, 2, 2, 2, 2)
        want = (1 + 2j) * b[0, 0, 0]
        assert panel[0, 0, 0, 0, 0] == pytest.approx(want.real, rel=1e-5)
        assert panel[0, 0, 0, 1, 0] == pytest.approx(want.imag, rel=1e-5)

    def test_column_padding(self, rng):
        b = random_batch(rng, 2, 3, 5, "d")
        cb = CompactBatch.from_matrices(b, 2)
        norm = normalize_trsm_mode(TrsmProblem(3, 5, "d"))
        work, _ = pack_trsm_b(cb, norm, pad_cols_to=4)
        panel = work.reshape(cb.groups, 8, 3, 1, 2)
        assert panel.shape[1] == 8
        assert not panel[:, 5:].any()
