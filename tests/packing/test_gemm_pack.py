"""GEMM packing tests: panel order, offsets, no-pack analysis, costs."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.layout import CompactBatch
from repro.packing.gemm_pack import pack_gemm_a, pack_gemm_b
from repro.packing.nopack import gemm_a_nopack, gemm_b_nopack
from repro.types import Trans
from tests.conftest import ALL_DTYPES, random_batch

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


def panel_elements(packed, cb, tile_idx, tile_size, k):
    """Slice one tile panel back out as (G, k, tile, ncomp, P)."""
    esz = cb.dtype.real_itemsize
    start = packed.tile_offsets[tile_idx] // esz
    per_group = packed.group_stride_bytes // esz
    data = packed.data.reshape(cb.groups, per_group)
    n = tile_size * k * cb.elem_stride
    return data[:, start:start + n].reshape(cb.groups, k, tile_size,
                                            cb.ncomp, cb.lanes)


class TestPackA:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_nn_stream_order(self, rng, dtype):
        """Packed A panel is [k][i] per tile: the kernel's load order."""
        m, k = 7, 5
        a = random_batch(rng, LANES[dtype], m, k, dtype)
        cb = CompactBatch.from_matrices(a, LANES[dtype])
        packed = pack_gemm_a(cb, Trans.N, k, [4, 3])
        panel = panel_elements(packed, cb, 0, 4, k)
        for l in range(k):
            for i in range(4):
                got = panel[0, l, i, 0, 0]
                assert got == pytest.approx(a[0, i, l].real, abs=1e-6)
        panel2 = panel_elements(packed, cb, 1, 3, k)
        assert panel2[0, 0, 0, 0, 0] == pytest.approx(a[0, 4, 0].real,
                                                      abs=1e-6)

    def test_transposed_gather(self, rng):
        """trans=T: stored (k, m); panel still comes out [l][i] of op(A)."""
        m, k = 3, 4
        a_stored = random_batch(rng, 2, k, m, "d")
        cb = CompactBatch.from_matrices(a_stored, 2)
        packed = pack_gemm_a(cb, Trans.T, k, [3])
        panel = panel_elements(packed, cb, 0, 3, k)
        op_a = a_stored.transpose(0, 2, 1)
        for l in range(k):
            for i in range(m):
                assert panel[0, l, i, 0, 0] == op_a[0, i, l]

    def test_complex_planes(self, rng):
        a = random_batch(rng, 4, 3, 2, "c")
        cb = CompactBatch.from_matrices(a, 4)
        packed = pack_gemm_a(cb, Trans.N, 2, [3])
        panel = panel_elements(packed, cb, 0, 3, 2)
        assert panel[0, 1, 2, 0, 0] == pytest.approx(a[0, 2, 1].real,
                                                     abs=1e-6)
        assert panel[0, 1, 2, 1, 0] == pytest.approx(a[0, 2, 1].imag,
                                                     abs=1e-6)

    def test_shape_mismatch_rejected(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 3, 4, "d"), 2)
        with pytest.raises(LayoutError):
            pack_gemm_a(cb, Trans.N, 5, [3])
        with pytest.raises(LayoutError):
            pack_gemm_a(cb, Trans.T, 4, [3])   # T expects (k, m) = (4, 3)

    def test_cost_accounting(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 4, 6, 5, "d"), 2)
        packed = pack_gemm_a(cb, Trans.N, 5, [4, 2])
        assert packed.cost.bytes_written == packed.data.nbytes
        assert packed.cost.bytes_read == packed.data.nbytes
        assert packed.cost.panels == 2 * cb.groups


class TestPackB:
    def test_nn_z_shape(self, rng):
        """NN-mode B panel is [l][j]: across the row tile, then down K."""
        k, n = 4, 6
        b = random_batch(rng, 2, k, n, "d")
        cb = CompactBatch.from_matrices(b, 2)
        packed = pack_gemm_b(cb, Trans.N, k, [4, 2])
        panel = panel_elements(packed, cb, 0, 4, k)
        for l in range(k):
            for j in range(4):
                assert panel[0, l, j, 0, 0] == b[0, l, j]
        panel2 = panel_elements(packed, cb, 1, 2, k)
        assert panel2[0, 2, 1, 0, 0] == b[0, 2, 5]

    def test_transposed_gather(self, rng):
        k, n = 3, 4
        b_stored = random_batch(rng, 2, n, k, "d")
        cb = CompactBatch.from_matrices(b_stored, 2)
        packed = pack_gemm_b(cb, Trans.T, k, [4])
        panel = panel_elements(packed, cb, 0, 4, k)
        op_b = b_stored.transpose(0, 2, 1)
        for l in range(k):
            for j in range(n):
                assert panel[0, l, j, 0, 0] == op_b[0, l, j]

    def test_shape_mismatch_rejected(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 3, 4, "d"), 2)
        with pytest.raises(LayoutError):
            pack_gemm_b(cb, Trans.N, 4, [4])


class TestNoPack:
    def test_a_nopack_conditions(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 4, 5, "d"), 2)
        # N + single tile: eligible
        alias = gemm_a_nopack(cb, Trans.N, [4])
        assert alias is not None and not alias.packed
        assert alias.cost.is_free
        assert alias.group_stride_bytes == cb.group_stride_bytes
        # transposed: never
        assert gemm_a_nopack(cb, Trans.T, [4]) is None
        # multiple tiles: never
        assert gemm_a_nopack(cb, Trans.N, [4, 4]) is None

    def test_b_nopack_conditions(self, rng):
        cb = CompactBatch.from_matrices(random_batch(rng, 2, 4, 5, "d"), 2)
        assert gemm_b_nopack(cb, Trans.T, [4]) is not None
        assert gemm_b_nopack(cb, Trans.N, [4]) is None
        assert gemm_b_nopack(cb, Trans.T, [2, 2]) is None

    def test_nopack_layout_equals_packed_layout(self, rng):
        """The no-pack fast path is only legal because the compact layout
        *is* the packed layout when M fits one tile; verify bytewise."""
        m, k = 4, 6
        a = random_batch(rng, 2, m, k, "d")
        cb = CompactBatch.from_matrices(a, 2)
        packed = pack_gemm_a(cb, Trans.N, k, [m])
        assert np.array_equal(packed.data, cb.buffer)


class TestFlattenFastPath:
    """The preallocated direct-write panel flatten must stay
    byte-identical to the naive contiguous-copy-then-concatenate
    reference it replaced (the pack layout is a pure permutation, so
    any divergence is a corruption, not a rounding question)."""

    @staticmethod
    def _reference(panels, groups):
        flat = [np.ascontiguousarray(p).reshape(groups, -1)
                for p in panels]
        return np.concatenate(flat, axis=1).reshape(-1)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("trans", [Trans.N, Trans.T])
    def test_matches_reference(self, rng, dtype, trans):
        import repro.packing.gemm_pack as gp

        lanes = {"s": 4, "d": 2, "c": 4, "z": 2}[dtype]
        m, k, tiles = 12, 7, [4, 4, 4]
        shape = (m, k) if trans is Trans.N else (k, m)
        a = random_batch(rng, 3 * lanes, *shape, dtype)
        cb = CompactBatch.from_matrices(a, lanes)
        fast = pack_gemm_a(cb, trans, k, tiles)
        saved = gp._flatten_panels
        gp._flatten_panels = self._reference
        try:
            ref = pack_gemm_a(cb, trans, k, tiles)
        finally:
            gp._flatten_panels = saved
        assert fast.data.tobytes() == ref.data.tobytes()
        assert fast.data.dtype == ref.data.dtype
