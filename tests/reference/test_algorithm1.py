"""Algorithm 1 transcription tests: a layout-level second oracle."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.layout import CompactBatch
from repro.reference import compact_gemm_algorithm1
from tests.conftest import ALL_DTYPES, random_batch, tolerance

LANES = {"s": 4, "d": 2, "c": 4, "z": 2}


@pytest.mark.parametrize("dtype", ALL_DTYPES)
def test_matches_numpy(rng, dtype):
    a = random_batch(rng, 7, 4, 3, dtype)
    b = random_batch(rng, 7, 3, 5, dtype)
    c = random_batch(rng, 7, 4, 5, dtype)
    ca = CompactBatch.from_matrices(a, LANES[dtype])
    cb = CompactBatch.from_matrices(b, LANES[dtype])
    cc = CompactBatch.from_matrices(c, LANES[dtype])
    compact_gemm_algorithm1(ca, cb, cc)
    wide = np.complex128 if dtype in "cz" else np.float64
    want = c + a.astype(wide) @ b.astype(wide)
    assert np.abs(cc.to_matrices() - want).max() < tolerance(dtype)


def test_agrees_with_generated_kernels(rng):
    """Algorithm 1 and the full IATF pipeline must agree bit-for-bit on
    the same compact inputs (both do the identical float64 FMAs)."""
    from repro import IATF, KUNPENG_920
    from repro.types import GemmProblem
    iatf = IATF(KUNPENG_920)
    a = random_batch(rng, 5, 6, 6, "d")
    b = random_batch(rng, 5, 6, 6, "d")
    c = random_batch(rng, 5, 6, 6, "d")
    ca = CompactBatch.from_matrices(a, 2)
    cb = CompactBatch.from_matrices(b, 2)
    c1 = CompactBatch.from_matrices(c, 2)
    c2 = CompactBatch.from_matrices(c, 2)
    compact_gemm_algorithm1(ca, cb, c1)
    iatf.gemm_compact(GemmProblem(6, 6, 6, "d", batch=5), ca, cb, c2)
    assert np.abs(c1.to_matrices() - c2.to_matrices()).max() < 1e-12


def test_shape_mismatch_rejected(rng):
    ca = CompactBatch.from_matrices(random_batch(rng, 2, 3, 3, "d"), 2)
    cb = CompactBatch.from_matrices(random_batch(rng, 2, 4, 3, "d"), 2)
    with pytest.raises(InvalidProblemError):
        compact_gemm_algorithm1(ca, cb, ca)


def test_property_mismatch_rejected(rng):
    ca = CompactBatch.from_matrices(random_batch(rng, 2, 3, 3, "d"), 2)
    cs = CompactBatch.from_matrices(random_batch(rng, 2, 3, 3, "s"), 4)
    with pytest.raises(InvalidProblemError):
        compact_gemm_algorithm1(ca, cs, ca)
