"""Reference-implementation tests (the oracle must itself be right)."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.reference import gemm_reference, trsm_reference
from repro.types import GemmProblem, TrsmProblem
from tests.conftest import random_batch, random_triangular


class TestGemmReference:
    def test_matches_numpy(self, rng):
        a = random_batch(rng, 5, 3, 4, "d")
        b = random_batch(rng, 5, 4, 6, "d")
        c = random_batch(rng, 5, 3, 6, "d")
        p = GemmProblem(3, 6, 4, "d", batch=5, alpha=2.0, beta=-1.0)
        got = gemm_reference(p, a, b, c)
        assert np.allclose(got, 2.0 * (a @ b) - c)

    def test_transpose_handling(self, rng):
        a = random_batch(rng, 2, 4, 3, "d")      # stored (k, m) for T
        b = random_batch(rng, 2, 6, 4, "d")      # stored (n, k) for T
        c = np.zeros((2, 3, 6))
        p = GemmProblem(3, 6, 4, "d", "T", "T", 2, beta=0.0)
        got = gemm_reference(p, a, b, c)
        want = a.transpose(0, 2, 1) @ b.transpose(0, 2, 1)
        assert np.allclose(got, want)

    def test_does_not_mutate_inputs(self, rng):
        a = random_batch(rng, 2, 2, 2, "d")
        c = random_batch(rng, 2, 2, 2, "d")
        c0 = c.copy()
        gemm_reference(GemmProblem(2, 2, 2, "d", batch=2), a, a, c)
        assert np.array_equal(c, c0)

    def test_shape_validation(self, rng):
        p = GemmProblem(3, 3, 3, "d", batch=2)
        good = random_batch(rng, 2, 3, 3, "d")
        bad = random_batch(rng, 2, 3, 4, "d")
        with pytest.raises(InvalidProblemError):
            gemm_reference(p, bad, good, good)

    def test_complex(self, rng):
        a = random_batch(rng, 3, 2, 2, "z")
        b = random_batch(rng, 3, 2, 2, "z")
        c = random_batch(rng, 3, 2, 2, "z")
        p = GemmProblem(2, 2, 2, "z", batch=3, alpha=1j, beta=1.0)
        got = gemm_reference(p, a, b, c)
        assert np.allclose(got, 1j * (a @ b) + c)


class TestTrsmReference:
    @pytest.mark.parametrize("uplo", ["L", "U"])
    def test_left_solves(self, rng, uplo):
        a = random_triangular(rng, 3, 4, "d", uplo)
        b = random_batch(rng, 3, 4, 5, "d")
        p = TrsmProblem(4, 5, "d", "L", uplo, "N", "N", 3, alpha=2.0)
        x = trsm_reference(p, a, b)
        tri = np.tril(a) if uplo == "L" else np.triu(a)
        assert np.allclose(tri @ x, 2.0 * b)

    def test_right_solve(self, rng):
        a = random_triangular(rng, 2, 5, "d")
        b = random_batch(rng, 2, 4, 5, "d")
        p = TrsmProblem(4, 5, "d", "R", "L", "N", "N", 2)
        x = trsm_reference(p, a, b)
        assert np.allclose(x @ np.tril(a), b, atol=1e-10)

    def test_transpose_solve(self, rng):
        a = random_triangular(rng, 2, 4, "d")
        b = random_batch(rng, 2, 4, 3, "d")
        p = TrsmProblem(4, 3, "d", "L", "L", "T", "N", 2)
        x = trsm_reference(p, a, b)
        assert np.allclose(np.tril(a).transpose(0, 2, 1) @ x, b, atol=1e-10)

    def test_unit_diagonal_ignores_diag_values(self, rng):
        a = random_triangular(rng, 2, 4, "d")
        b = random_batch(rng, 2, 4, 3, "d")
        a2 = a.copy()
        for i in range(4):
            a2[:, i, i] = 99.0
        p = TrsmProblem(4, 3, "d", diag="U", batch=2)
        assert np.allclose(trsm_reference(p, a, b),
                           trsm_reference(p, a2, b))

    def test_only_triangle_referenced(self, rng):
        a = random_triangular(rng, 2, 4, "d")
        b = random_batch(rng, 2, 4, 3, "d")
        a_dirty = a + np.triu(np.ones((4, 4)), 1) * 100
        p = TrsmProblem(4, 3, "d", batch=2)
        assert np.allclose(trsm_reference(p, a, b),
                           trsm_reference(p, a_dirty, b))

    def test_complex_residual(self, rng):
        a = random_triangular(rng, 2, 3, "z")
        b = random_batch(rng, 2, 3, 2, "z")
        p = TrsmProblem(3, 2, "z", batch=2, alpha=1 - 1j)
        x = trsm_reference(p, a, b)
        assert np.allclose(np.tril(a) @ x, (1 - 1j) * b)

    def test_shape_validation(self, rng):
        p = TrsmProblem(4, 3, "d", batch=2)
        with pytest.raises(InvalidProblemError):
            trsm_reference(p, random_batch(rng, 2, 3, 3, "d"),
                           random_batch(rng, 2, 4, 3, "d"))
