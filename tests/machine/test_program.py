"""Tests for the Program container."""

import pytest

from repro.machine.isa import Op, addi, fmla, ldpv, ldrv, stpv, vzero
from repro.machine.program import Program


def make_prog():
    return Program("p", [
        ldpv(0, 1, 0, 0), addi(0, 0, 32),
        ldrv(2, 1, 0), vzero(4),
        fmla(4, 0, 2), fmla(4, 1, 2),
        stpv(4, 4, 2, 0),
    ], ew=8, lanes=2)


def test_len_iter_getitem():
    p = make_prog()
    assert len(p) == 7
    assert p[0].op is Op.LDPV
    assert [i.op for i in p][-1] is Op.STPV


def test_register_usage():
    p = make_prog()
    assert p.vregs_used == {0, 1, 2, 4}
    assert p.xregs_used == {0, 1, 2}
    assert p.max_vreg == 4


def test_counts():
    p = make_prog()
    assert p.count(Op.FMLA) == 2
    assert p.num_fp == 3      # two FMLA + VZERO
    assert p.num_mem == 3


def test_flops_per_group():
    p = make_prog()
    # 2 FMLAs x 2 flops x 2 lanes
    assert p.flops_per_group == 8


def test_flops_respects_nlanes():
    p = Program("q", [fmla(0, 1, 2)], ew=8, lanes=2)
    assert p.flops_per_group == 4


def test_with_instrs_copies_meta():
    p = make_prog()
    p.meta["x"] = 1
    q = p.with_instrs(p.instrs[:2], suffix="_cut")
    assert q.name == "p_cut"
    assert q.meta == {"x": 1}
    q.meta["x"] = 2
    assert p.meta["x"] == 1


def test_disassemble_contains_tags_and_name():
    p = make_prog()
    text = p.disassemble()
    assert "// p" in text
    assert "ldp" in text and "fmla" in text


def test_invalid_ew():
    with pytest.raises(ValueError):
        Program("bad", [], ew=3, lanes=2)


def test_invalid_lanes():
    with pytest.raises(ValueError):
        Program("bad", [], ew=8, lanes=0)
