"""Tests for the instruction set definitions."""

import pytest

from repro.machine.isa import (Instr, Op, OpClass, addi, fadd, fdiv, fmai,
                               fmla, fmls, fmul, fmuli, fsub, iclass_of,
                               ld1r, ld2v, ldpv, ldrv, nop, prfm, st2v, stpv,
                               strv, vmov, vzero)


class TestConstructors:
    def test_ldrv(self):
        i = ldrv(3, 0, 16, ew=4)
        assert i.op is Op.LDRV and i.dst == (3,)
        assert i.base == 0 and i.offset == 16 and i.ew == 4

    def test_ldpv_two_destinations(self):
        i = ldpv(1, 2, 0, 32)
        assert i.dst == (1, 2)

    def test_store_sources(self):
        assert strv(5, 1).srcs == (5,)
        assert stpv(5, 6, 1).srcs == (5, 6)
        assert st2v(5, 6, 1).srcs == (5, 6)

    def test_addi(self):
        i = addi(2, 2, 64)
        assert i.xdst == 2 and i.xsrc == 2 and i.ximm == 64

    def test_fmai_immediate(self):
        i = fmai(4, 5, 1.5)
        assert i.imm == 1.5 and i.dst == (4,) and i.srcs == (5,)


class TestValidation:
    def test_vreg_out_of_range(self):
        with pytest.raises(ValueError):
            fmla(32, 0, 1)

    def test_xreg_out_of_range(self):
        with pytest.raises(ValueError):
            ldrv(0, 31)

    def test_bad_element_width(self):
        with pytest.raises(ValueError):
            Instr(Op.FMLA, dst=(0,), srcs=(1, 2), ew=2)


class TestClassification:
    @pytest.mark.parametrize("ins,cls", [
        (ldrv(0, 0), OpClass.MEM_LOAD),
        (ldpv(0, 1, 0), OpClass.MEM_LOAD),
        (ld1r(0, 0), OpClass.MEM_LOAD),
        (ld2v(0, 1, 0), OpClass.MEM_LOAD),
        (strv(0, 0), OpClass.MEM_STORE),
        (stpv(0, 1, 0), OpClass.MEM_STORE),
        (st2v(0, 1, 0), OpClass.MEM_STORE),
        (addi(0, 0, 8), OpClass.INT),
        (fmla(0, 1, 2), OpClass.FP),
        (fdiv(0, 1, 2), OpClass.FP_DIV),
        (vmov(0, 1), OpClass.FP),
        (vzero(0), OpClass.FP),
        (prfm(0), OpClass.PREFETCH),
        (nop(), OpClass.NOP),
    ])
    def test_iclass(self, ins, cls):
        assert ins.iclass is cls
        assert iclass_of(ins.op) is cls

    def test_fma_reads_accumulator(self):
        """FMLA/FMLS/FMAI read their destination — a RAW hazard the
        scheduler and scoreboard must both see."""
        assert 0 in fmla(0, 1, 2).reads
        assert 0 in fmls(0, 1, 2).reads
        assert 0 in fmai(0, 1, 2.0).reads
        assert 0 not in fmul(0, 1, 2).reads

    @pytest.mark.parametrize("ins,fl", [
        (fmla(0, 1, 2), 2), (fmls(0, 1, 2), 2), (fmai(0, 1, 1.0), 2),
        (fmul(0, 1, 2), 1), (fadd(0, 1, 2), 1), (fsub(0, 1, 2), 1),
        (fdiv(0, 1, 2), 1), (ldrv(0, 0), 0), (vmov(0, 1), 0),
    ])
    def test_flops_per_lane(self, ins, fl):
        assert ins.flops_per_lane == fl


class TestDisassembly:
    def test_asm_strings(self):
        assert "ldp   q0, q1, [x0, #0]" == ldpv(0, 1, 0).asm()
        assert "fmla" in fmla(3, 1, 2, ew=4).asm()
        assert ".4s" in fmla(3, 1, 2, ew=4).asm()
        assert ".2d" in fmla(3, 1, 2, ew=8).asm()
        assert "prfm" in prfm(2, 64).asm()
        assert "add   x1, x1, #32" == addi(1, 1, 32).asm()

    def test_every_opcode_has_asm(self):
        samples = [ldrv(0, 0), ldpv(0, 1, 0), ld1r(0, 0), ld2v(0, 1, 0),
                   strv(0, 0), stpv(0, 1, 0), st2v(0, 1, 0), addi(0, 0, 1),
                   fmla(0, 1, 2), fmls(0, 1, 2), fmul(0, 1, 2),
                   fmai(0, 1, 1.0), fmuli(0, 1, 1.0), fadd(0, 1, 2),
                   fsub(0, 1, 2), fdiv(0, 1, 2), vzero(0), vmov(0, 1),
                   prfm(0), nop()]
        assert len({s.op for s in samples}) == len(samples)
        for s in samples:
            assert isinstance(s.asm(), str) and s.asm()
