"""Functional-executor semantics: every opcode, batched fan-out, errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, MachineError
from repro.machine.executor import VectorExecutor
from repro.machine.isa import (addi, fadd, fdiv, fmai, fmla, fmls, fmul,
                               fmuli, fsub, ld1r, ld2v, ldpv, ldrv, nop,
                               prfm, st2v, stpv, strv, vmov, vzero)
from repro.machine.memory import MemorySpace
from repro.machine.program import Program


def run_one(instrs, buffers, pointers, groups=1, ew=8, lanes=2):
    mem = MemorySpace()
    arrays = {}
    for name, data in buffers.items():
        arr = mem.alloc(name, len(data), ew)
        arr[:] = data
        arrays[name] = arr
    ex = VectorExecutor(mem, groups=groups)
    for xreg, (buf, off) in pointers.items():
        ex.set_pointer(xreg, buf, off)
    ex.run(Program("t", instrs, ew=ew, lanes=lanes))
    return arrays, ex


class TestLoadsStores:
    def test_ldrv_strv_roundtrip(self):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), strv(0, 0, 16)],
            {"m": [1, 2, 0, 0]}, {0: ("m", 0)})
        assert list(arrays["m"]) == [1, 2, 1, 2]

    def test_ldpv_loads_two_registers(self):
        _, ex = run_one([ldpv(0, 1, 0, 0)], {"m": [1, 2, 3, 4]},
                        {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [1, 2]
        assert list(ex.vreg(1)[0]) == [3, 4]

    def test_ld1r_broadcasts(self):
        _, ex = run_one([ld1r(0, 0, 8)], {"m": [9, 7]}, {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [7, 7]

    def test_ld2_st2_deinterleave(self):
        arrays, ex = run_one(
            [ld2v(0, 1, 0, 0), st2v(1, 0, 0, 32)],
            {"m": [1, 10, 2, 20, 0, 0, 0, 0]}, {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [1, 2]
        assert list(ex.vreg(1)[0]) == [10, 20]
        assert list(arrays["m"][4:]) == [10, 1, 20, 2]

    def test_partial_load_zero_fills(self):
        _, ex = run_one([ldrv(0, 0, 0, nlanes=1)], {"m": [5, 6]},
                        {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [5, 0]

    def test_partial_store_touches_named_lanes_only(self):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), strv(0, 0, 16, nlanes=1)],
            {"m": [1, 2, -1, -1]}, {0: ("m", 0)})
        assert list(arrays["m"][2:]) == [1, -1]

    def test_offset_addressing(self):
        _, ex = run_one([ldrv(0, 0, 16)], {"m": [0, 0, 3, 4]},
                        {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [3, 4]


class TestArithmetic:
    def setup_method(self):
        self.buffers = {"m": [1.0, 2.0, 3.0, 4.0, 0.0, 0.0]}

    def _binary(self, op, expect):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), ldrv(1, 0, 16), op(2, 0, 1), strv(2, 0, 32)],
            dict(self.buffers), {0: ("m", 0)})
        assert list(arrays["m"][4:]) == expect

    def test_fmul(self):
        self._binary(fmul, [3.0, 8.0])

    def test_fadd(self):
        self._binary(fadd, [4.0, 6.0])

    def test_fsub(self):
        self._binary(fsub, [-2.0, -2.0])

    def test_fdiv(self):
        self._binary(fdiv, [1 / 3, 0.5])

    def test_fmla_accumulates(self):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), ldrv(1, 0, 16), vzero(2),
             fmla(2, 0, 1), fmla(2, 0, 1), strv(2, 0, 32)],
            dict(self.buffers), {0: ("m", 0)})
        assert list(arrays["m"][4:]) == [6.0, 16.0]

    def test_fmls_subtracts(self):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), ldrv(1, 0, 16), vzero(2),
             fmls(2, 0, 1), strv(2, 0, 32)],
            dict(self.buffers), {0: ("m", 0)})
        assert list(arrays["m"][4:]) == [-3.0, -8.0]

    def test_fmai_fmuli_immediates(self):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), fmuli(1, 0, 2.0), fmai(1, 0, 0.5),
             strv(1, 0, 32)],
            dict(self.buffers), {0: ("m", 0)})
        assert list(arrays["m"][4:]) == [2.5, 5.0]

    def test_vmov_vzero(self):
        arrays, _ = run_one(
            [ldrv(0, 0, 0), vmov(1, 0), vzero(0), strv(1, 0, 32)],
            dict(self.buffers), {0: ("m", 0)})
        assert list(arrays["m"][4:]) == [1.0, 2.0]

    def test_prfm_nop_are_functional_noops(self):
        arrays, _ = run_one(
            [prfm(0, 0), nop(), ldrv(0, 0, 0), strv(0, 0, 32)],
            dict(self.buffers), {0: ("m", 0)})
        assert list(arrays["m"][4:]) == [1.0, 2.0]

    def test_float32_rounds_like_float32(self):
        mem = MemorySpace()
        arr = mem.alloc("m", 8, 4)
        arr[:4] = [1e8, 1.0, 0, 0]
        ex = VectorExecutor(mem)
        ex.set_pointer(0, "m", 0)
        ex.run(Program("t", [ldrv(0, 0, 0, ew=4), ldrv(1, 0, 4 * 4, ew=4),
                             fadd(2, 0, 0, ew=4), strv(2, 0, 16, ew=4)],
                       ew=4, lanes=4))
        assert arr[4] == np.float32(1e8) + np.float32(1e8)


class TestPointers:
    def test_addi_bumps(self):
        _, ex = run_one([addi(0, 0, 16), ldrv(0, 0, 0)],
                        {"m": [0, 0, 7, 8]}, {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [7, 8]

    def test_addi_different_dst(self):
        _, ex = run_one([addi(1, 0, 16), ldrv(0, 1, 0)],
                        {"m": [0, 0, 7, 8]}, {0: ("m", 0)})
        assert list(ex.vreg(0)[0]) == [7, 8]


class TestGroupFanOut:
    def test_vectorized_over_groups(self):
        mem = MemorySpace()
        arr = mem.alloc("m", 8, 8)
        arr[:] = [1, 2, 3, 4, 5, 6, 7, 8]
        ex = VectorExecutor(mem, groups=2)
        ex.set_pointer(0, "m", np.array([0, 32]))
        ex.run(Program("t", [ldrv(0, 0, 0), fmuli(1, 0, 10.0),
                             strv(1, 0, 16)], ew=8, lanes=2))
        assert list(arr) == [1, 2, 10, 20, 5, 6, 50, 60]

    def test_fanout_mismatch_rejected(self):
        mem = MemorySpace()
        mem.alloc("m", 8, 8)
        ex = VectorExecutor(mem, groups=3)
        with pytest.raises(ExecutionError):
            ex.set_pointer(0, "m", np.array([0, 32]))


class TestErrors:
    def test_read_uninitialized_vreg(self):
        with pytest.raises(ExecutionError, match="read before write"):
            run_one([strv(0, 0, 0)], {"m": [0, 0]}, {0: ("m", 0)})

    def test_read_uninitialized_pointer(self):
        with pytest.raises(ExecutionError, match="x1"):
            run_one([ldrv(0, 1, 0)], {"m": [0, 0]}, {0: ("m", 0)})

    def test_out_of_bounds(self):
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            run_one([ldrv(0, 0, 8)], {"m": [0, 0]}, {0: ("m", 0)})

    def test_misaligned(self):
        with pytest.raises(ExecutionError, match="misaligned"):
            run_one([ldrv(0, 0, 3)], {"m": [0, 0, 0, 0]}, {0: ("m", 0)})

    def test_unknown_buffer(self):
        mem = MemorySpace()
        ex = VectorExecutor(mem)
        with pytest.raises(ExecutionError):
            ex.set_pointer(0, "nope", 0)

    def test_error_includes_program_context(self):
        with pytest.raises(ExecutionError, match="t @pc=0"):
            run_one([ldrv(0, 0, 64)], {"m": [0, 0]}, {0: ("m", 0)})

    def test_groups_must_be_positive(self):
        with pytest.raises(ExecutionError):
            VectorExecutor(MemorySpace(), groups=0)


class TestMemorySpace:
    def test_double_alloc_rejected(self):
        mem = MemorySpace()
        mem.alloc("x", 4, 8)
        with pytest.raises(MachineError):
            mem.alloc("x", 4, 8)

    def test_bind_requires_1d_contiguous_real(self):
        mem = MemorySpace()
        with pytest.raises(MachineError):
            mem.bind("x", np.zeros((2, 2)))
        with pytest.raises(MachineError):
            mem.bind("x", np.zeros(4, dtype=np.int32))
        with pytest.raises(MachineError):
            mem.bind("x", np.zeros(8)[::2])

    def test_names_and_itemsize(self):
        mem = MemorySpace()
        mem.alloc("b", 4, 4)
        mem.alloc("a", 4, 8)
        assert mem.names() == ["a", "b"]
        assert mem.itemsize("b") == 4
        assert mem.nbytes("a") == 32


@settings(max_examples=30, deadline=None)
@given(a=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=2),
       b=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=2),
       c=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=2))
def test_fmla_matches_numpy_property(a, b, c):
    """Property: FMLA is exactly acc + a*b elementwise in float64."""
    arrays, _ = run_one(
        [ldrv(0, 0, 0), ldrv(1, 0, 16), ldrv(2, 0, 32),
         fmla(2, 0, 1), strv(2, 0, 32)],
        {"m": a + b + c}, {0: ("m", 0)})
    want = np.array(c) + np.array(a) * np.array(b)
    assert np.array_equal(arrays["m"][4:], want)
