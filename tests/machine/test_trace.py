"""Pipeline-trace utility tests."""

from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.codegen.optimizer import schedule_program
from repro.machine.isa import fmla, fmul, ldpv, ldrv, prfm
from repro.machine.machines import KUNPENG_920
from repro.machine.program import Program
from repro.machine.trace import format_trace, issue_histogram, trace_program


def test_every_instruction_traced():
    prog = generate_gemm_kernel(2, 2, 4, "d", KUNPENG_920)
    entries = trace_program(KUNPENG_920, prog)
    assert len(entries) == len(prog)
    cycles = [c for c, _ in entries]
    assert cycles == sorted(cycles)          # in-order issue


def test_coissue_visible():
    # a load and an independent FP op should co-issue on Kunpeng
    # (v1 uninitialized is fine for timing-only purposes)
    prog = Program("t", [ldrv(0, 0, 0), fmul(8, 1, 1, ew=8)],
                   ew=8, lanes=2)
    entries = trace_program(KUNPENG_920, prog)
    assert entries[0][0] == entries[1][0]


def test_dependence_gap_visible():
    prog = Program("t", [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    entries = trace_program(KUNPENG_920, prog)
    assert entries[1][0] - entries[0][0] >= KUNPENG_920.lat.load_use


def test_histogram_respects_issue_width():
    prog = schedule_program(
        generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920), KUNPENG_920)
    hist = issue_histogram(trace_program(KUNPENG_920, prog))
    assert max(hist.values()) <= KUNPENG_920.rules.width


def test_format_trace_renders():
    prog = Program("t", [prfm(0, 0), ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    text = format_trace(trace_program(KUNPENG_920, prog))
    assert "cycle" in text and "prfm" in text
    assert "stall" in text            # the load-use gap

    short = format_trace(trace_program(KUNPENG_920, prog), max_rows=1)
    assert "more" in short
