"""Pipeline-trace utility tests."""

from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.codegen.optimizer import schedule_program
from repro.machine.isa import fmla, fmul, ldpv, ldrv, prfm
from repro.machine.machines import KUNPENG_920
from repro.machine.program import Program
from repro.machine.trace import format_trace, issue_histogram, trace_program


def test_every_instruction_traced():
    prog = generate_gemm_kernel(2, 2, 4, "d", KUNPENG_920)
    entries = trace_program(KUNPENG_920, prog)
    assert len(entries) == len(prog)
    cycles = [c for c, _ in entries]
    assert cycles == sorted(cycles)          # in-order issue


def test_coissue_visible():
    # a load and an independent FP op should co-issue on Kunpeng
    # (v1 uninitialized is fine for timing-only purposes)
    prog = Program("t", [ldrv(0, 0, 0), fmul(8, 1, 1, ew=8)],
                   ew=8, lanes=2)
    entries = trace_program(KUNPENG_920, prog)
    assert entries[0][0] == entries[1][0]


def test_dependence_gap_visible():
    prog = Program("t", [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    entries = trace_program(KUNPENG_920, prog)
    assert entries[1][0] - entries[0][0] >= KUNPENG_920.lat.load_use


def test_histogram_respects_issue_width():
    prog = schedule_program(
        generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920), KUNPENG_920)
    hist = issue_histogram(trace_program(KUNPENG_920, prog))
    assert max(hist.values()) <= KUNPENG_920.rules.width


def test_format_trace_renders():
    prog = Program("t", [prfm(0, 0), ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    text = format_trace(trace_program(KUNPENG_920, prog))
    assert "cycle" in text and "prfm" in text
    assert "stall" in text            # the load-use gap

    short = format_trace(trace_program(KUNPENG_920, prog), max_rows=1)
    assert "more" in short


def test_format_trace_exact_output_with_stall():
    """Regression pin: the stall-gap line renders exactly once, between
    the dependent rows, with the original column layout."""
    prog = Program("t", [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    entries = trace_program(KUNPENG_920, prog)
    gap = KUNPENG_920.lat.load_use        # fmul issues at cycle load_use
    assert entries == [(0, prog.instrs[0]), (gap, prog.instrs[1])]
    assert format_trace(entries) == "\n".join([
        " cycle  instruction",
        "     0   ldrv  v0.2d, [x0, #0]",
        f"        <- {gap - 1} stall cycle(s)",
        f"     {gap}   fmul  v1.2d, v0.2d, v0.2d",
    ])


def test_format_trace_exact_output_coissue_no_stall():
    """Adjacent cycles and co-issued pairs produce no gap line, and
    co-issue is marked with '|'."""
    i1, i2 = ldrv(0, 0, 0), fmul(8, 1, 1, ew=8)
    text = format_trace([(0, i1), (0, i2)])
    assert text == "\n".join([
        " cycle  instruction",
        "     0   ldrv  v0.2d, [x0, #0]",
        "     0 | fmul  v8.2d, v1.2d, v1.2d",
    ])
    assert "stall" not in format_trace([(0, i1), (1, i2)])


def test_format_trace_max_rows_truncation():
    entries = [(i, prfm(0, 0)) for i in range(6)]
    text = format_trace(entries, max_rows=2)
    lines = text.splitlines()
    assert lines[-1] == "... (4 more)"
    assert sum("prfm" in line for line in lines) == 2
    # max_rows >= len(entries) shows everything, no trailer
    assert "more" not in format_trace(entries, max_rows=6)


def test_trace_program_respects_explicit_pointer_init():
    prog = Program("t", [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    entries = trace_program(KUNPENG_920, prog, xreg_init={0: 1 << 20})
    assert len(entries) == len(prog)


def test_trace_program_cold_run_stalls_longer():
    """warm=False leaves the caches cold, so the load's issue-to-use
    gap grows past the warm load-use latency."""
    prog = Program("t", [ldrv(0, 0, 0), fmul(1, 0, 0, ew=8)],
                   ew=8, lanes=2)
    warm = trace_program(KUNPENG_920, prog, warm=True)
    cold = trace_program(KUNPENG_920, prog, warm=False)
    warm_gap = warm[1][0] - warm[0][0]
    cold_gap = cold[1][0] - cold[0][0]
    assert cold_gap > warm_gap


def test_issue_histogram_counts_sum_to_entries():
    prog = schedule_program(
        generate_gemm_kernel(3, 3, 4, "d", KUNPENG_920), KUNPENG_920)
    entries = trace_program(KUNPENG_920, prog)
    hist = issue_histogram(entries)
    assert sum(hist.values()) == len(entries)
    assert all(v >= 1 for v in hist.values())
    assert set(hist) == {c for c, _ in entries}
