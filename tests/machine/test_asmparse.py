"""Assembler round-trip tests: asm() -> parse_instr -> asm()."""

import numpy as np
import pytest

from repro.codegen.generator_gemm import generate_gemm_kernel
from repro.codegen.generator_trsm import (generate_trsm_rect,
                                          generate_trsm_triangular)
from repro.errors import MachineError
from repro.machine import KUNPENG_920, MemorySpace, VectorExecutor
from repro.machine.asmparse import parse_instr, parse_program
from repro.machine.isa import (addi, fadd, fdiv, fmai, fmla, fmls, fmul,
                               fmuli, fsub, ld1r, ld2v, ldpv, ldrv, nop,
                               prfm, st2v, stpv, strv, vmov, vzero)


SAMPLES = [
    ldrv(3, 0, 16, ew=4), ldrv(3, 0, 0, ew=8),
    ldpv(0, 1, 2, 32), ld1r(5, 1, 8, ew=8),
    ld2v(4, 5, 0, 0, ew=4), st2v(4, 5, 0, 64, ew=8),
    strv(7, 3, 0), stpv(8, 9, 4, 128),
    addi(0, 0, 32), addi(6, 1, -16),
    fmla(2, 0, 1, ew=8), fmls(2, 0, 1, ew=4), fmul(2, 0, 1, ew=8),
    fadd(2, 0, 1, ew=4), fsub(2, 0, 1, ew=8), fdiv(2, 0, 1, ew=8),
    fmai(2, 0, 1.5, ew=8), fmuli(2, 0, -0.25, ew=4),
    vzero(9), vmov(9, 3), prfm(2, 64), nop(),
]


@pytest.mark.parametrize("ins", SAMPLES, ids=lambda i: i.asm().strip())
def test_instruction_roundtrip(ins):
    parsed = parse_instr(ins.asm(), default_ew=ins.ew)
    assert parsed.asm() == ins.asm()
    assert parsed.op is ins.op
    assert parsed.dst == ins.dst and parsed.srcs == ins.srcs
    assert parsed.base == ins.base and parsed.offset == ins.offset
    assert parsed.ew == ins.ew or ins.op.value in ("ldpv", "strv", "stpv",
                                                   "vzero", "vmov", "prfm",
                                                   "nop", "addi")


@pytest.mark.parametrize("kernel", [
    generate_gemm_kernel(4, 4, 8, "d", KUNPENG_920),
    generate_gemm_kernel(3, 2, 5, "z", KUNPENG_920, alpha=2.0, beta=0.5),
    generate_trsm_triangular(4, 3, "d", KUNPENG_920),
    generate_trsm_rect(4, 4, 2, "s", KUNPENG_920, 64),
], ids=lambda k: k.name)
def test_generated_kernel_roundtrip(kernel):
    """Disassemble a full generated kernel and parse it back: the
    re-parsed program must behave identically."""
    listing = "\n".join(ins.asm() for ins in kernel)
    parsed = parse_program(listing, name="rt", ew=kernel.ew,
                           lanes=kernel.lanes)
    assert len(parsed) == len(kernel)
    assert [i.asm() for i in parsed] == [i.asm() for i in kernel]


def test_parse_program_executes():
    prog = parse_program("""
        // doubled copy
        ldrv  v0.2d, [x0, #0]
        fmuli v1.2d, v0.2d, #2.0
        str   q1, [x0, #16]
    """, lanes=2)
    mem = MemorySpace()
    buf = mem.alloc("m", 4, 8)
    buf[:2] = [3.0, 4.0]
    ex = VectorExecutor(mem)
    ex.set_pointer(0, "m", 0)
    ex.run(prog)
    assert list(buf[2:]) == [6.0, 8.0]


def test_comments_and_blanks_ignored():
    prog = parse_program("""
        // a comment-only line

        nop
    """)
    assert len(prog) == 1


def test_parse_errors_name_the_line():
    with pytest.raises(MachineError, match="line 3"):
        parse_program("nop\nnop\nfrobnicate v0, v1\n")
    with pytest.raises(MachineError, match="cannot parse"):
        parse_instr("ldr w0, [x0]")
    with pytest.raises(MachineError, match="empty"):
        parse_instr("   // nothing here")
