"""Machine configurations must reproduce the paper's Table 2 exactly."""

import pytest

from repro.machine.machines import KUNPENG_920, XEON_GOLD_6240


class TestKunpeng920:
    def test_table2_peaks(self):
        assert KUNPENG_920.peak_gflops("d") == pytest.approx(10.4)
        assert KUNPENG_920.peak_gflops("s") == pytest.approx(41.6)
        assert KUNPENG_920.peak_gflops("z") == pytest.approx(10.4)
        assert KUNPENG_920.peak_gflops("c") == pytest.approx(41.6)

    def test_table2_specs(self):
        m = KUNPENG_920
        assert m.freq_ghz == 2.6
        assert m.vector_bytes * 8 == 128
        assert m.l1.size == 64 * 1024
        assert m.l2.size == 512 * 1024
        assert m.num_vregs == 32

    def test_paper_issue_statement(self):
        """§6.3: one mem + one FP, or two FP for single precision."""
        m = KUNPENG_920
        assert m.rules.max_mem == 1
        assert m.rules.max_fp(8) == 1
        assert m.rules.max_fp(4) == 2
        assert m.rules.width == 2

    def test_lanes_match_paper_p(self):
        assert KUNPENG_920.lanes("s") == 4    # paper: "P=4 ... fills SIMD"
        assert KUNPENG_920.lanes("d") == 2
        assert KUNPENG_920.lanes("c") == 4
        assert KUNPENG_920.lanes("z") == 2


class TestXeonGold6240:
    def test_table2_peaks(self):
        assert XEON_GOLD_6240.peak_gflops("d") == pytest.approx(83.2)
        assert XEON_GOLD_6240.peak_gflops("s") == pytest.approx(166.4)

    def test_table2_specs(self):
        m = XEON_GOLD_6240
        assert m.vector_bytes * 8 == 512
        assert m.l1.size == 32 * 1024
        assert m.l2.size == 1024 * 1024

    def test_two_fma_pipes(self):
        assert XEON_GOLD_6240.rules.max_fp(8) == 2
        assert XEON_GOLD_6240.rules.max_fp(4) == 2


class TestHelpers:
    def test_gflops_conversion(self):
        m = KUNPENG_920
        # peak flops for 1 cycle at 2.6 GHz
        assert m.gflops(4, 1) == pytest.approx(10.4)
        assert m.gflops(100, 0) == 0.0

    def test_cycles_to_seconds(self):
        assert KUNPENG_920.cycles_to_seconds(2.6e9) == pytest.approx(1.0)

    def test_with_rules_override(self):
        m = KUNPENG_920.with_rules(max_fp64=2)
        assert m.peak_gflops("d") == pytest.approx(20.8)
        assert KUNPENG_920.rules.max_fp64 == 1   # original untouched

    def test_factories_are_independent(self):
        c1 = KUNPENG_920.make_caches()
        c2 = KUNPENG_920.make_caches()
        c1.access(0, 8)
        assert c2.l1.stats.accesses == 0


class TestA64FX:
    """The beyond-the-paper SVE machine (see machines.A64FX)."""

    def test_peaks(self):
        from repro.machine.machines import A64FX
        assert A64FX.peak_gflops("d") == pytest.approx(70.4)
        assert A64FX.peak_gflops("s") == pytest.approx(140.8)

    def test_sve_width_and_lines(self):
        from repro.machine.machines import A64FX
        assert A64FX.vector_bytes * 8 == 512
        assert A64FX.l1.line == 256            # A64FX's unusual line size
        assert A64FX.lanes("d") == 8

    def test_caches_build(self):
        from repro.machine.machines import A64FX
        h = A64FX.make_caches()
        assert h.line == 256
        h.access(0, 8)
        assert h.l1.contains(0)
