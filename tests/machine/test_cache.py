"""Cache hierarchy tests: geometry, LRU, inclusion, streams, stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import Cache, CacheConfig, CacheHierarchy


def small_hierarchy(**kw):
    return CacheHierarchy(
        CacheConfig(size=1024, assoc=2, line=64, penalty=10),
        CacheConfig(size=4096, assoc=4, line=64, penalty=0),
        mem_penalty=100, **kw)


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(64 * 1024, 4, 64).num_sets == 256

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)


class TestCacheLRU:
    def test_hit_after_fill(self):
        c = Cache(CacheConfig(256, 2, 64))
        c.fill(0)
        assert c.lookup(0)

    def test_miss_when_empty(self):
        c = Cache(CacheConfig(256, 2, 64))
        assert not c.lookup(0)

    def test_lru_eviction_order(self):
        # one set (256B, 2-way, 64B lines -> 2 sets); use set 0 lines 0,2,4
        c = Cache(CacheConfig(256, 2, 64))
        c.fill(0)
        c.fill(2)
        c.lookup(0)          # 0 is now MRU
        victim = c.fill(4)   # evicts LRU = 2
        assert victim == 2
        assert c.contains(0) and c.contains(4) and not c.contains(2)

    def test_capacity_bound(self):
        c = Cache(CacheConfig(256, 2, 64))
        for line in range(100):
            c.fill(line)
        assert c.resident_lines <= 4   # 2 sets x 2 ways

    def test_invalidate_and_flush(self):
        c = Cache(CacheConfig(256, 2, 64))
        c.fill(1)
        c.invalidate(1)
        assert not c.contains(1)
        c.fill(1)
        c.flush()
        assert c.resident_lines == 0

    def test_stats(self):
        c = Cache(CacheConfig(256, 2, 64))
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.misses == 1
        assert c.stats.hit_rate == 0.5


class TestHierarchy:
    def test_cold_miss_costs_memory(self):
        h = small_hierarchy()
        assert h.access(0, 8) == 100

    def test_l1_hit_is_free(self):
        h = small_hierarchy()
        h.access(0, 8)
        assert h.access(0, 8) == 0
        assert h.access(32, 8) == 0      # same line

    def test_l2_hit_costs_l1_penalty(self):
        h = small_hierarchy()
        h.access(0, 8)
        # evict from tiny L1 by touching conflicting lines (same set)
        for i in range(1, 4):
            h.access(i * 1024, 8)
        extra = h.access(0, 8)
        assert extra == 10   # still in the larger L2

    def test_inclusive_victims_stay_in_l2(self):
        h = small_hierarchy()
        h.access(0, 8)
        for i in range(1, 4):
            h.access(i * 1024, 8)
        assert h.l2.contains(0)

    def test_spanning_access_touches_both_lines(self):
        h = small_hierarchy()
        h.access(60, 16)    # crosses a 64B boundary
        assert h.l1.contains(0) and h.l1.contains(1)

    def test_prefetch_warms_without_cost(self):
        h = small_hierarchy()
        h.prefetch(128)
        assert h.access(128, 8) == 0

    def test_warm_range_levels(self):
        h = small_hierarchy()
        h.warm_range(0, 128, "l1")
        assert h.access(0, 8) == 0
        h2 = small_hierarchy()
        h2.warm_range(0, 128, "l2")
        assert h2.access(0, 8) == 10

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(CacheConfig(1024, 2, 64),
                           CacheConfig(4096, 4, 128))


class TestStreamPrefetcher:
    def test_sequential_misses_become_cheap(self):
        h = small_hierarchy()
        first = h.access(0, 8)
        second = h.access(64, 8)     # adjacent line: stream detected
        third = h.access(128, 8)     # prefetched ahead
        assert first == 100
        assert second == h.stream_penalty_mem
        assert third == 0

    def test_random_misses_stay_expensive(self):
        h = small_hierarchy()
        assert h.access(0, 8) == 100
        assert h.access(7 * 4096, 8) == 100
        assert h.access(3 * 4096 + 640, 8) == 100

    def test_stream_through_l2(self):
        h = small_hierarchy()
        h.warm_range(0, 4096, "l2")
        # evict some L1 lines then stream through them
        assert h.access(0, 8) in (0, 10)
        h.l1.flush()
        h.access(0, 8)
        got = h.access(64, 8)
        assert got in (0, h.stream_penalty_l2)

    def test_flush_resets(self):
        h = small_hierarchy()
        h.access(0, 8)
        h.flush()
        assert h.access(0, 8) == 100


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_property_residency_never_exceeds_capacity(lines):
    c = Cache(CacheConfig(512, 2, 64))   # 8 lines capacity
    for line in lines:
        if not c.lookup(line):
            c.fill(line)
    assert c.resident_lines <= 8


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
def test_property_immediate_reaccess_hits(seq):
    """Any line accessed twice in a row must hit the second time."""
    h = small_hierarchy()
    for addr in seq:
        h.access(addr * 8, 8)
        assert h.access(addr * 8, 8) == 0
